(* Benchmark harness: regenerates every table of the reproduction
   (experiments E1-E13, one printed table per paper claim) and then
   times the protocol substrates with Bechamel (E9).

   Usage:
     dune exec bench/main.exe            -- everything (default budget)
     dune exec bench/main.exe -- quick   -- reduced sample budget
     dune exec bench/main.exe -- e5      -- a single experiment
     dune exec bench/main.exe -- timing  -- only the Bechamel section
     dune exec bench/main.exe -- --csv=out/  -- also dump each table as CSV *)

let say fmt = Format.printf (fmt ^^ "@.")

(* --- E1..E12 tables ------------------------------------------------ *)

let experiment_of_id setup id =
  match String.lowercase_ascii id with
  | "e1" -> Some (Core.Experiments.e1_distribution_classes ~n:setup.Core.Setup.n ())
  | "e2" -> Some (Core.Experiments.e2_cr_unachievable setup)
  | "e3" -> Some (Core.Experiments.e3_g_unachievable setup)
  | "e4" -> Some (Core.Experiments.e4_feasibility setup)
  | "e5" -> Some (Core.Experiments.e5_pi_g_separation setup)
  | "e6" -> Some (Core.Experiments.e6_singleton_trivial setup)
  | "e7" -> Some (Core.Experiments.e7_implications setup)
  | "e8" -> Some (Core.Experiments.e8_complexity ())
  | "e10" -> Some (Core.Experiments.e10_gss_agreement setup)
  | "e11" -> Some (Core.Experiments.e11_echo_attack setup)
  | "e12" -> Some (Core.Experiments.e12_reveal_ablation setup)
  | "e13" -> Some (Core.Experiments.e13_simulation setup)
  | "e14" -> Some (Core.Experiments.e14_figure1 setup)
  | _ -> None

let csv_dir = ref None

let write_csv (o : Core.Experiments.outcome) =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (String.lowercase_ascii o.Core.Experiments.id ^ ".csv") in
      let oc = open_out path in
      output_string oc (Sb_util.Tabular.to_csv o.Core.Experiments.table);
      close_out oc;
      say "wrote %s" path

let print_outcome (o : Core.Experiments.outcome) =
  Sb_util.Tabular.print o.Core.Experiments.table;
  write_csv o;
  List.iter (fun n -> say "note: %s" n) o.Core.Experiments.notes;
  say "%s: paper-shape check %s (%d rows)@." o.Core.Experiments.id
    (if o.Core.Experiments.ok then "OK" else "MISMATCH")
    o.Core.Experiments.rows_checked

let run_experiments setup ids =
  let all_ids = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e10"; "e11"; "e12"; "e13"; "e14" ] in
  let ids = if ids = [] then all_ids else ids in
  let outcomes =
    List.filter_map
      (fun id ->
        match experiment_of_id setup id with
        | Some o -> Some o
        | None ->
            say "unknown experiment id: %s" id;
            None)
      ids
  in
  List.iter print_outcome outcomes;
  let bad =
    List.filter (fun (o : Core.Experiments.outcome) -> not o.Core.Experiments.ok) outcomes
  in
  say "== summary: %d/%d experiments match the paper's predictions =="
    (List.length outcomes - List.length bad)
    (List.length outcomes);
  List.iter (fun (o : Core.Experiments.outcome) -> say "  MISMATCH: %s" o.Core.Experiments.id) bad

(* --- E9: Bechamel timing ------------------------------------------- *)

open Bechamel

let protocol_bench name (protocol : Sb_sim.Protocol.t) ~n ~thresh =
  Test.make
    ~name:(Printf.sprintf "%s/n=%d" name n)
    (Staged.stage (fun () ->
         let rng = Sb_util.Rng.create 42 in
         let ctx = Sb_sim.Ctx.make ~rng ~n ~thresh ~k:16 () in
         let inputs = Array.init n (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
         ignore (Sb_sim.Network.honest_run ctx ~rng ~protocol ~inputs)))

let crypto_benches =
  [
    Test.make ~name:"sha256/1KiB"
      (Staged.stage
         (let buf = String.make 1024 'x' in
          fun () -> ignore (Sb_crypto.Sha256.digest buf)));
    Test.make ~name:"pedersen-deal/n=8,t=3"
      (Staged.stage (fun () ->
           let rng = Sb_util.Rng.create 7 in
           ignore
             (Sb_crypto.Pedersen.deal rng ~threshold:3 ~parties:8 ~secret:Sb_crypto.Field.one)));
    Test.make ~name:"shamir-reconstruct/t=3"
      (Staged.stage
         (let rng = Sb_util.Rng.create 9 in
          let shares, _ =
            Sb_crypto.Shamir.share rng ~threshold:3 ~parties:8
              ~secret:(Sb_crypto.Field.of_int 5)
          in
          let subset = Array.to_list (Array.sub shares 0 4) in
          fun () -> ignore (Sb_crypto.Shamir.reconstruct subset)));
  ]

let timing_tests =
  let per_protocol =
    List.concat_map
      (fun (name, p) ->
        List.map (fun n -> protocol_bench name p ~n ~thresh:((n - 1) / 2)) [ 5; 8; 16 ])
      [
        ("ideal-fsb", Sb_protocols.Ideal_sb.protocol);
        ("naive-sequential", Sb_protocols.Naive.sequential);
        ("gennaro-constant", Sb_protocols.Gennaro.protocol);
        ("chor-rabin-log", Sb_protocols.Chor_rabin.protocol);
        ("cgma-vss", Sb_protocols.Cgma.protocol);
      ]
  in
  Test.make_grouped ~name:"E9" (crypto_benches @ per_protocol)

let run_timing () =
  say "== E9: wall-clock timing (Bechamel; ns per execution) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances timing_tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  let table =
    Sb_util.Tabular.create ~title:"E9 timings" ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols) ->
          let ns = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan in
          let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
          Sb_util.Tabular.add_row table
            [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.4f" r2 ])
        rows)
    results;
  Sb_util.Tabular.print table

(* --- entry --------------------------------------------------------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let setup =
    if quick then Core.Setup.with_samples 2000 Core.Setup.default else Core.Setup.default
  in
  (match List.find_opt (fun a -> String.length a > 6 && String.sub a 0 6 = "--csv=") args with
  | Some a -> csv_dir := Some (String.sub a 6 (String.length a - 6))
  | None -> ());
  let ids =
    List.filter
      (fun a ->
        a <> "quick" && a <> "timing" && a <> "tables"
        && not (String.length a > 6 && String.sub a 0 6 = "--csv="))
      args
  in
  let timing_only = List.mem "timing" args in
  let tables_only = List.mem "tables" args in
  if not timing_only then run_experiments setup ids;
  if (not tables_only) && (ids = [] || timing_only) then run_timing ()
