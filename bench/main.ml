(* Benchmark harness: regenerates every table of the reproduction
   (experiments E1-E16, one printed table per paper claim) and then
   times the protocol substrates with Bechamel (E9). Every invocation
   also times one fixed 20k-sample G-tester run ("gtester-smoke/20k" in
   the timings block — the scalar CI guards against regression) and
   Every invocation also runs the crypto hot-path probe (crypto.ml:
   "crypto/..." timing entries, one-line summary, crypto.csv under
   --csv) and ends by writing a machine-readable BENCH_<tag>.json run report
   (schema in EXPERIMENTS.md) — the perf trajectory artifact, which
   since schema v2 carries the comm block (message/byte totals).

   Usage:
     dune exec bench/main.exe            -- everything (default budget)
     dune exec bench/main.exe -- quick   -- reduced sample budget
     dune exec bench/main.exe -- e5      -- a single experiment
     dune exec bench/main.exe -- timing  -- only the Bechamel section
     dune exec bench/main.exe -- --csv=out/  -- also dump each table as CSV *)

let say fmt = Format.printf (fmt ^^ "@.")

(* --- E1..E14 tables (dispatched via the shared registry) ----------- *)

let csv_dir = ref None

let write_csv (o : Core.Experiments.outcome) =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (String.lowercase_ascii o.Core.Experiments.id ^ ".csv") in
      let oc = open_out path in
      output_string oc (Sb_util.Tabular.to_csv o.Core.Experiments.table);
      close_out oc;
      say "wrote %s" path

let print_outcome (o : Core.Experiments.outcome) =
  Sb_util.Tabular.print o.Core.Experiments.table;
  write_csv o;
  List.iter (fun n -> say "note: %s" n) o.Core.Experiments.notes;
  say "%s: paper-shape check %s (%d rows)@." o.Core.Experiments.id
    (if o.Core.Experiments.ok then "OK" else "MISMATCH")
    o.Core.Experiments.rows_checked

let run_experiments setup ids =
  let entries =
    if ids = [] then Core.Experiments.catalogue ()
    else
      List.filter_map
        (fun id ->
          match Core.Experiments.find id with
          | Some e -> Some e
          | None ->
              say "unknown experiment id: %s" id;
              None)
        ids
  in
  let outcomes =
    List.map
      (fun (e : Core.Experiments.entry) ->
        let t0 = Unix.gettimeofday () in
        let o = e.Core.Experiments.run setup in
        let wall = Unix.gettimeofday () -. t0 in
        print_outcome o;
        (o, wall))
      entries
  in
  let bad =
    List.filter (fun ((o : Core.Experiments.outcome), _) -> not o.Core.Experiments.ok) outcomes
  in
  say "== summary: %d/%d experiments match the paper's predictions =="
    (List.length outcomes - List.length bad)
    (List.length outcomes);
  List.iter
    (fun ((o : Core.Experiments.outcome), _) -> say "  MISMATCH: %s" o.Core.Experiments.id)
    bad;
  outcomes

(* --- E9: Bechamel timing ------------------------------------------- *)

open Bechamel

let protocol_bench name (protocol : Sb_sim.Protocol.t) ~n ~thresh =
  Test.make
    ~name:(Printf.sprintf "%s/n=%d" name n)
    (Staged.stage (fun () ->
         let rng = Sb_util.Rng.create 42 in
         let ctx = Sb_sim.Ctx.make ~rng ~n ~thresh ~k:16 () in
         let inputs = Array.init n (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
         ignore (Sb_sim.Network.honest_run ctx ~rng ~protocol ~inputs)))

let crypto_benches =
  [
    Test.make ~name:"sha256/1KiB"
      (Staged.stage
         (let buf = String.make 1024 'x' in
          fun () -> ignore (Sb_crypto.Sha256.digest buf)));
    Test.make ~name:"pedersen-deal/n=8,t=3"
      (Staged.stage (fun () ->
           let rng = Sb_util.Rng.create 7 in
           ignore
             (Sb_crypto.Pedersen.deal rng ~threshold:3 ~parties:8 ~secret:Sb_crypto.Field.one)));
    Test.make ~name:"shamir-reconstruct/t=3"
      (Staged.stage
         (let rng = Sb_util.Rng.create 9 in
          let shares, _ =
            Sb_crypto.Shamir.share rng ~threshold:3 ~parties:8
              ~secret:(Sb_crypto.Field.of_int 5)
          in
          let subset = Array.to_list (Array.sub shares 0 4) in
          fun () -> ignore (Sb_crypto.Shamir.reconstruct subset)));
  ]

let timing_tests =
  let per_protocol =
    List.concat_map
      (fun (name, p) ->
        List.map (fun n -> protocol_bench name p ~n ~thresh:((n - 1) / 2)) [ 5; 8; 16 ])
      [
        ("ideal-fsb", Sb_protocols.Ideal_sb.protocol);
        ("naive-sequential", Sb_protocols.Naive.sequential);
        ("gennaro-constant", Sb_protocols.Gennaro.protocol);
        ("chor-rabin-log", Sb_protocols.Chor_rabin.protocol);
        ("cgma-vss", Sb_protocols.Cgma.protocol);
      ]
  in
  Test.make_grouped ~name:"E9" (crypto_benches @ per_protocol)

let run_timing () =
  say "== E9: wall-clock timing (Bechamel; ns per execution) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances timing_tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  let table =
    Sb_util.Tabular.create ~title:"E9 timings" ~columns:[ "benchmark"; "ns/run"; "r^2" ]
  in
  let entries = ref [] in
  Hashtbl.iter
    (fun _instance tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
      List.iter
        (fun (name, ols) ->
          let ns = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan in
          let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
          Sb_util.Tabular.add_row table
            [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.4f" r2 ];
          entries :=
            { Sb_obs.Report.bench_name = name; ns_per_run = ns; r_square = r2 } :: !entries)
        rows)
    results;
  Sb_util.Tabular.print table;
  List.rev !entries

(* --- G-tester smoke: the fixed-cost delivery-path guard ------------ *)

(* One G-independence run at a pinned 20k-sample budget — the
   sampler's hot loop is dominated by network delivery, so this scalar
   tracks the engine itself across commits. Recorded in every
   BENCH_*.json (timings entry "gtester-smoke/20k"); CI diffs it
   against the committed quick baseline. *)
let run_gtester_smoke () =
  let setup = Core.Setup.with_samples 20_000 Core.Setup.default in
  let n = setup.Core.Setup.n in
  let protocol = Sb_protocols.Gennaro.protocol in
  let adversary = Core.Adversaries.semi_honest protocol ~corrupt:[ n - 2; n - 1 ] in
  let t0 = Unix.gettimeofday () in
  let r = Core.G_test.run setup ~protocol ~adversary ~dist:(Sb_dist.Dist.uniform n) () in
  let wall = Unix.gettimeofday () -. t0 in
  say "== gtester-smoke: 20k samples in %.2fs (verdict %s) ==" wall
    (Sb_stats.Verdict.to_string r.Core.G_test.verdict);
  { Sb_obs.Report.bench_name = "gtester-smoke/20k"; ns_per_run = wall *. 1e9; r_square = 1.0 }

(* --- comm totals (schema v2) --------------------------------------- *)

let comm_totals () =
  let c name = Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter name) in
  ( c "sim.broadcasts",
    c "sim.p2p",
    c "sim.bytes.broadcast",
    c "sim.bytes.p2p" )

let print_comm () =
  let bc, p2p, bc_b, p2p_b = comm_totals () in
  say "== comm totals: %d broadcasts (%d B), %d p2p msgs (%d B) ==" bc bc_b p2p p2p_b;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir "comm.csv" in
      let oc = open_out path in
      output_string oc "broadcasts,p2p_messages,broadcast_bytes,p2p_bytes\n";
      Printf.fprintf oc "%d,%d,%d,%d\n" bc p2p bc_b p2p_b;
      close_out oc;
      say "wrote %s" path

(* --- entry --------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: bench [quick] [timing|tables] [EXPERIMENT_ID...] [--csv=DIR] [--jobs=N] [--count=N]";
  Printf.eprintf "known experiment ids: %s\n"
    (String.concat " "
       (List.map (fun (e : Core.Experiments.entry) -> e.Core.Experiments.id)
          (Core.Experiments.catalogue ())));
  exit 2

let () =
  (* E18 lives in sb_workload (it needs the session engine); register
     it before anything touches the catalogue so the default
     run-everything loop and the id filter both see it. *)
  Sb_workload.E18.register ();
  (* The bench run is the perf-trajectory artifact: observability on. *)
  Sb_obs.Metrics.set_enabled true;
  Sb_obs.Span.set_enabled true;
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs_prefix = "--jobs=" in
  let jobs_of a =
    let pl = String.length jobs_prefix in
    if String.length a > pl && String.sub a 0 pl = jobs_prefix then
      int_of_string_opt (String.sub a pl (String.length a - pl))
    else None
  in
  (match List.find_map jobs_of args with
  | Some j when j <= 0 ->
      Printf.eprintf "bench: --jobs must be a positive integer, got %d\n" j;
      exit 2
  | Some j -> Sb_par.Pool.set_default_domains j
  | None -> ());
  (* Sessions-probe batch size; same validation contract as --jobs. *)
  let count_prefix = "--count=" in
  let count_of a =
    let pl = String.length count_prefix in
    if String.length a > pl && String.sub a 0 pl = count_prefix then
      int_of_string_opt (String.sub a pl (String.length a - pl))
    else None
  in
  let session_count =
    match List.find_map count_of args with
    | Some c when c <= 0 ->
        Printf.eprintf "bench: --count must be a positive integer, got %d\n" c;
        exit 2
    | Some c -> c
    | None -> 120
  in
  let quick = List.mem "quick" args in
  let setup =
    if quick then Core.Setup.with_samples 2000 Core.Setup.default else Core.Setup.default
  in
  (match List.find_opt (fun a -> String.length a > 6 && String.sub a 0 6 = "--csv=") args with
  | Some a -> csv_dir := Some (String.sub a 6 (String.length a - 6))
  | None -> ());
  let ids =
    List.filter
      (fun a ->
        a <> "quick" && a <> "timing" && a <> "tables"
        && not (String.length a > 6 && String.sub a 0 6 = "--csv=")
        && jobs_of a = None && count_of a = None)
      args
  in
  (* Reject anything unrecognised up front instead of silently treating
     it as an experiment id: an unknown flag or a typoed id used to
     warn and exit 0, which let CI invocations rot. *)
  List.iter
    (fun a ->
      if String.length a > 1 && a.[0] = '-' then begin
        Printf.eprintf "bench: unknown option %s\n" a;
        usage ()
      end
      else if Core.Experiments.find a = None then begin
        Printf.eprintf "bench: unknown experiment id %s\n" a;
        usage ()
      end)
    ids;
  let timing_only = List.mem "timing" args in
  let tables_only = List.mem "tables" args in
  let outcomes = if timing_only then [] else run_experiments setup ids in
  let timings =
    if (not tables_only) && (ids = [] || timing_only) then run_timing () else []
  in
  let crypto_timings = Crypto.run () in
  Crypto.print_summary crypto_timings;
  (match !csv_dir with Some dir -> Crypto.write_csv dir crypto_timings | None -> ());
  let delivery_timings = Delivery_probe.run () in
  Delivery_probe.print_summary delivery_timings;
  let session_timings, sessions_block = Sessions.run ~count:session_count () in
  let workload_timings = Workloads.run () in
  let timings =
    timings @ [ run_gtester_smoke () ] @ crypto_timings @ delivery_timings
    @ session_timings @ workload_timings
  in
  print_comm ();
  let tag =
    if quick then "quick"
    else if timing_only then "timing"
    else if ids = [] then "full"
    else String.concat "_" (List.map String.lowercase_ascii ids)
  in
  let experiments =
    List.map
      (fun ((o : Core.Experiments.outcome), wall) ->
        {
          Sb_obs.Report.id = o.Core.Experiments.id;
          title = o.Core.Experiments.title;
          ok = o.Core.Experiments.ok;
          rows_checked = o.Core.Experiments.rows_checked;
          wall_clock_s = wall;
          notes = o.Core.Experiments.notes;
        })
      outcomes
  in
  let report =
    Sb_obs.Report.make ~tool:"bench" ~tag
      ~jobs:(Sb_par.Pool.get_default_domains ())
      ~experiments ~timings ?sessions:sessions_block ()
  in
  let path = Printf.sprintf "BENCH_%s.json" tag in
  Sb_obs.Report.write_file path report;
  say "wrote %s" path;
  (* Perf trajectory: one compact row per bench invocation, appended to
     a gitignored jsonl log so local runs accumulate a history that
     `simbcast perf-diff` endpoints can be picked from. *)
  let utc =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec
  in
  let hist = open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_history.jsonl" in
  Fun.protect
    ~finally:(fun () -> close_out hist)
    (fun () ->
      output_string hist (Sb_obs.Json.to_string (Sb_obs.Report.history_row ~utc report));
      output_char hist '\n');
  say "appended BENCH_history.jsonl"
