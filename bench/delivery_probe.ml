(* Delivery-engine probe for the BENCH report: wall-clock for honest
   runs on the arena delivery path (trace off, envelope reuse on,
   comm tallies on — the large-n engine configuration E17 uses).
   Recorded as "delivery/..." timing entries in BENCH_*.json; CI holds
   them to the committed quick baseline alongside crypto/* and
   gtester-smoke/20k. Two shapes per substrate: the n-session
   concurrent composition at n = 32 (the E16 regime — dominated by
   sid bucketing and router delivery) and the single-session large-n
   unit at n = 128 (the E17 regime — dominated by arena reuse and
   substrate bookkeeping). *)

let entry name ns = { Sb_obs.Report.bench_name = name; ns_per_run = ns; r_square = 1.0 }

let time_run (protocol : Sb_sim.Protocol.t) ~n ~reps =
  let rng = Sb_util.Rng.create (9000 + n) in
  let pool = Sb_sim.Envelope.Arena.create () in
  let ctx = Sb_sim.Ctx.make ~rng ~n ~thresh:1 ~k:8 ~pool () in
  let inputs = Array.init n (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
  let run () =
    ignore
      (Sb_sim.Network.honest_run ~record_trace:false ~record_comm:true
         ~reuse_envelopes:true ctx ~rng ~protocol ~inputs)
  in
  (* One warm-up run grows the arena and router buffers to steady
     state, then the timed repetitions. *)
  run ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    run ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps

let run () =
  let schemes =
    [ ("send-echo", Sb_broadcast.Send_echo.scheme); ("bracha", Sb_broadcast.Bracha.scheme) ]
  in
  List.concat_map
    (fun (name, scheme) ->
      [
        entry
          (Printf.sprintf "delivery/concurrent-%s/n=32" name)
          (time_run (Sb_broadcast.Parallel.concurrent scheme) ~n:32 ~reps:5);
        entry
          (Printf.sprintf "delivery/single-%s/n=128" name)
          (time_run (Sb_broadcast.Parallel.single scheme) ~n:128 ~reps:3);
      ])
    schemes

let print_summary entries =
  Format.printf "== delivery probe (arena path, ms/run): %s ==@."
    (String.concat ", "
       (List.map
          (fun (e : Sb_obs.Report.timing_entry) ->
            Printf.sprintf "%s %.1f" e.Sb_obs.Report.bench_name
              (e.Sb_obs.Report.ns_per_run /. 1e6))
          entries))
