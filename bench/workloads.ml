(* Application-workload probe.

   Runs the quick tier of every sb_workload catalogue entry (election,
   auction, lottery) at a fixed seed through the work-stealing session
   scheduler and records the per-session cost as "workload/..."
   entries in the BENCH_*.json timings block. CI holds them to the
   perf-diff threshold against the committed quick baseline alongside
   sessions/ and delivery/, so a scheduler or engine regression on the
   heavy-tailed application mixes shows up as a timings slowdown. *)

open Sb_session

let seed = 23

let entry name ns = { Sb_obs.Report.bench_name = name; ns_per_run = ns; r_square = 1.0 }
let say fmt = Format.printf (fmt ^^ "@.")

let run () =
  List.map
    (fun name ->
      match Sb_workload.Workload.run ~quick:true ~seed name with
      | Error e -> invalid_arg (Printf.sprintf "workload probe %s: %s" name e)
      | Ok o ->
          let agg = o.Sb_workload.Workload.aggregate in
          say "== workload/%s: %d sessions (%d consistent, %d shards) in %.2fs — %.0f \
               sessions/s, %d steals =="
            name agg.Engine.sessions agg.Engine.consistent agg.Engine.shards
            agg.Engine.wall_s agg.Engine.sessions_per_sec agg.Engine.steals;
          entry ("workload/" ^ name)
            (agg.Engine.wall_s *. 1e9 /. float_of_int agg.Engine.sessions))
    Sb_workload.Workload.names
