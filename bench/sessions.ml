(* Session-throughput probe.

   Runs fixed-count batches of whole protocol sessions through
   Sb_session.Engine — the sharded scheduler with per-shard shared
   setup and per-session RNG streams — and records the per-session
   cost as "sessions/..." entries in the BENCH_*.json timings block.
   CI holds them to the perf-diff threshold against the committed
   quick baseline alongside gtester-smoke/20k and crypto/, so a
   scheduler regression (lost parallelism, context rebuilt per run,
   shard-layout churn) shows up as a timings slowdown, and the
   report's sessions block carries the probe's aggregate. *)

open Sb_session

let n = 5
let seed = 11

let entry name ns = { Sb_obs.Report.bench_name = name; ns_per_run = ns; r_square = 1.0 }

let substrate name =
  match List.assoc_opt name (Core.Resilience.substrates ()) with
  | Some p -> p
  | None -> invalid_arg ("sessions probe: unknown substrate " ^ name)

(* Two shapes: a homogeneous batch (pure scheduler+substrate cost) and
   a mixed batch (protocol_at dispatch, uneven per-session cost). *)
let probes ~count =
  let third = count / 3 in
  [
    ("sessions/bracha", [ Engine.spec (substrate "concurrent-bracha") count ]);
    ( "sessions/mixed",
      [
        Engine.spec (substrate "concurrent-bracha") (count - (2 * third));
        Engine.spec (substrate "concurrent-dolev-strong") third;
        Engine.spec Sb_protocols.Commit_open.protocol third;
      ] );
  ]

let say fmt = Format.printf (fmt ^^ "@.")

(* Returns the timing entries plus the last probe's aggregate as the
   report's schema-v4 sessions block. *)
let run ~count () =
  let setup = Core.Setup.{ default with n; thresh = (n - 1) / 2; seed } in
  let dist = Sb_dist.Dist.uniform n in
  let last = ref None in
  let timings =
    List.map
      (fun (name, specs) ->
        let agg, _ = Engine.run ~setup ~dist specs (Sb_util.Rng.create seed) in
        last := Some agg;
        say "== %s: %d sessions (%d consistent, %d shards) in %.2fs — %.0f sessions/s ==" name
          agg.Engine.sessions agg.Engine.consistent agg.Engine.shards agg.Engine.wall_s
          agg.Engine.sessions_per_sec;
        entry name (agg.Engine.wall_s *. 1e9 /. float_of_int agg.Engine.sessions))
      (probes ~count)
  in
  (timings, Option.map Engine.aggregate_to_json !last)
