(* Delivery-engine probe: wall-clock for honest runs of the p2p
   broadcast substrates as n grows. This is the hot path the
   route-indexed engine targets (O(n^2) envelopes per round); run it
   before and after engine changes to quantify the delivery cost.

   Usage:
     dune exec bench/delivery.exe                  -- default n sweep, all substrates
     dune exec bench/delivery.exe -- 32            -- single n
     dune exec bench/delivery.exe -- 32 --reps=10  -- more repetitions per cell
     dune exec bench/delivery.exe -- --single 128 256 512
                        -- one single-sender session per substrate (the E17
                           unit; EIG excluded) on the arena delivery path *)

let substrates =
  [
    Sb_broadcast.Send_echo.scheme;
    Sb_broadcast.Dolev_strong.scheme;
    Sb_broadcast.Eig.scheme;
    Sb_broadcast.Bracha.scheme;
    Sb_broadcast.Phase_king.scheme;
  ]

(* EIG's single-session bodies are Theta(n)-sized path lists — cubic
   bytes per session, excluded from the large-n sweep (same contract
   as E17). *)
let single_substrates =
  [
    Sb_broadcast.Send_echo.scheme;
    Sb_broadcast.Dolev_strong.scheme;
    Sb_broadcast.Bracha.scheme;
    Sb_broadcast.Phase_king.scheme;
  ]

let time_cell (protocol : Sb_sim.Protocol.t) ~n ~reps ~arena =
  let rng = Sb_util.Rng.create (9000 + n) in
  let pool = if arena then Some (Sb_sim.Envelope.Arena.create ()) else None in
  let ctx = Sb_sim.Ctx.make ~rng ~n ~thresh:1 ~k:8 ?pool () in
  let inputs = Array.init n (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
  let run () =
    if arena then
      Sb_sim.Network.honest_run ~record_trace:false ~record_comm:true
        ~reuse_envelopes:true ctx ~rng ~protocol ~inputs
    else Sb_sim.Network.honest_run ctx ~rng ~protocol ~inputs
  in
  (* One warm-up run, then the timed repetitions. *)
  let r = run () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (run ())
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (dt /. float_of_int reps, r.Sb_sim.Network.p2p_messages)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let single = List.mem "--single" args in
  let reps =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--reps" ->
            int_of_string (String.sub a (i + 1) (String.length a - i - 1))
        | _ -> acc)
      5 args
  in
  let ns =
    match List.filter_map int_of_string_opt args with
    | [] -> if single then [ 128; 256; 512 ] else [ 8; 16; 32; 64 ]
    | l -> l
  in
  let title =
    if single then
      "delivery probe (single-session honest runs, arena path, thresh = 1)"
    else "delivery probe (honest runs, thresh = 1)"
  in
  let table =
    Sb_util.Tabular.create ~title ~columns:[ "substrate"; "n"; "ms/run"; "p2p msgs" ]
  in
  List.iter
    (fun (s : Sb_broadcast.Session.scheme) ->
      let protocol =
        if single then Sb_broadcast.Parallel.single s
        else Sb_broadcast.Parallel.concurrent s
      in
      List.iter
        (fun n ->
          let secs, msgs = time_cell protocol ~n ~reps ~arena:single in
          Sb_util.Tabular.add_row table
            [
              protocol.Sb_sim.Protocol.name;
              string_of_int n;
              Printf.sprintf "%.2f" (secs *. 1e3);
              string_of_int msgs;
            ])
        ns)
    (if single then single_substrates else substrates);
  Sb_util.Tabular.print table
