(* Delivery-engine probe: wall-clock for honest runs of the p2p
   broadcast substrates as n grows. This is the hot path the
   route-indexed engine targets (O(n^2) envelopes per round); run it
   before and after engine changes to quantify the delivery cost.

   Usage:
     dune exec bench/delivery.exe                  -- default n sweep, all substrates
     dune exec bench/delivery.exe -- 32            -- single n
     dune exec bench/delivery.exe -- 32 --reps=10  -- more repetitions per cell *)

let substrates =
  [
    Sb_broadcast.Send_echo.scheme;
    Sb_broadcast.Dolev_strong.scheme;
    Sb_broadcast.Eig.scheme;
    Sb_broadcast.Bracha.scheme;
    Sb_broadcast.Phase_king.scheme;
  ]

let time_cell (protocol : Sb_sim.Protocol.t) ~n ~reps =
  let rng = Sb_util.Rng.create (9000 + n) in
  let ctx = Sb_sim.Ctx.make ~rng ~n ~thresh:1 ~k:8 () in
  let inputs = Array.init n (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
  (* One warm-up run, then the timed repetitions. *)
  let r = Sb_sim.Network.honest_run ctx ~rng ~protocol ~inputs in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sb_sim.Network.honest_run ctx ~rng ~protocol ~inputs)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (dt /. float_of_int reps, r.Sb_sim.Network.p2p_messages)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let reps =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--reps" ->
            int_of_string (String.sub a (i + 1) (String.length a - i - 1))
        | _ -> acc)
      5 args
  in
  let ns =
    match List.filter_map int_of_string_opt args with [] -> [ 8; 16; 32; 64 ] | l -> l
  in
  let table =
    Sb_util.Tabular.create ~title:"delivery probe (honest runs, thresh = 1)"
      ~columns:[ "substrate"; "n"; "ms/run"; "p2p msgs" ]
  in
  List.iter
    (fun (s : Sb_broadcast.Session.scheme) ->
      let protocol = Sb_broadcast.Parallel.concurrent s in
      List.iter
        (fun n ->
          let secs, msgs = time_cell protocol ~n ~reps in
          Sb_util.Tabular.add_row table
            [
              protocol.Sb_sim.Protocol.name;
              string_of_int n;
              Printf.sprintf "%.2f" (secs *. 1e3);
              string_of_int msgs;
            ])
        ns)
    substrates;
  Sb_util.Tabular.print table
