(* Crypto hot-path microbench probe.

   Fixed-iteration timings for the four operations that dominate the
   VSS-backed experiments (E4/E5): group exponentiation (generic
   ladder vs fixed-base window table), the fused Pedersen double
   exponentiation, share verification, and Lagrange reconstruction at
   n in {4, 16, 64}. Every bench invocation runs this probe and
   records the numbers as "crypto/..." entries in the BENCH_*.json
   timings block; CI holds them to within 20% of the committed quick
   baseline, alongside gtester-smoke/20k. *)

open Sb_crypto

let sizes = [ 4; 16; 64 ]

(* Deterministic exponent stream: the probe always does the same
   work, only the wall clock varies. *)
let exponents =
  let rng = Sb_util.Rng.create 2718 in
  Array.init 1024 (fun _ -> Field.random rng)

let time_ns ~iters f =
  (* One untimed pass warms tables and caches. *)
  f 0 |> ignore;
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    f i |> ignore
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let entry name ns = { Sb_obs.Report.bench_name = name; ns_per_run = ns; r_square = 1.0 }

let dealt_for n =
  let rng = Sb_util.Rng.create (41 + n) in
  Pedersen.deal rng ~threshold:((n - 1) / 2) ~parties:n ~secret:Field.one

let run () =
  let e i = exponents.(i land 1023) in
  let pow_ns = time_ns ~iters:300_000 (fun i -> Modgroup.pow Modgroup.g (e i)) in
  let pow_g_ns = time_ns ~iters:1_000_000 (fun i -> Modgroup.pow_g (e i)) in
  let pow_gh_ns = time_ns ~iters:1_000_000 (fun i -> Modgroup.pow_gh (e i) (e (i + 1))) in
  let per_n =
    List.concat_map
      (fun n ->
        let d = dealt_for n in
        let shares = d.Pedersen.shares in
        let verify_ns =
          time_ns ~iters:(200_000 / n) (fun i ->
              Pedersen.verify_share d.Pedersen.commitment shares.(i mod n))
        in
        let subset = Array.to_list (Array.sub shares 0 (((n - 1) / 2) + 1)) in
        let reconstruct_ns = time_ns ~iters:100_000 (fun _ -> Pedersen.reconstruct subset) in
        [
          entry (Printf.sprintf "crypto/verify_share/n=%d" n) verify_ns;
          entry (Printf.sprintf "crypto/reconstruct/n=%d" n) reconstruct_ns;
        ])
      sizes
  in
  entry "crypto/pow" pow_ns
  :: entry "crypto/pow_g" pow_g_ns
  :: entry "crypto/pow_gh" pow_gh_ns
  :: per_n

let find entries name =
  List.find_map
    (fun (t : Sb_obs.Report.timing_entry) ->
      if String.equal t.Sb_obs.Report.bench_name name then Some t.Sb_obs.Report.ns_per_run
      else None)
    entries
  |> Option.get

let print_summary entries =
  Format.printf
    "== crypto probe: pow %.0fns, pow_g %.0fns, pow_gh %.0fns, verify_share(n=16) %.0fns, \
     reconstruct(n=16) %.0fns ==@."
    (find entries "crypto/pow") (find entries "crypto/pow_g")
    (find entries "crypto/pow_gh")
    (find entries "crypto/verify_share/n=16")
    (find entries "crypto/reconstruct/n=16")

let write_csv dir entries =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir "crypto.csv" in
  let oc = open_out path in
  output_string oc "benchmark,ns_per_op,ops_per_s\n";
  List.iter
    (fun (t : Sb_obs.Report.timing_entry) ->
      Printf.fprintf oc "%s,%.1f,%.0f\n" t.Sb_obs.Report.bench_name t.Sb_obs.Report.ns_per_run
        (1e9 /. t.Sb_obs.Report.ns_per_run))
    entries;
  close_out oc;
  Format.printf "wrote %s@." path
