(* simbcast — command-line front end to the simultaneous-broadcast
   reproduction.

     simbcast list                         catalogue of protocols/dists/adversaries
     simbcast run -p gennaro-constant -x 10110
     simbcast classify -d xor-parity -n 5
     simbcast test -t cr -p naive-sequential -a echo -d uniform
     simbcast experiment e5 *)

open Cmdliner

(* --- shared argument parsing -------------------------------------- *)

let dist_names = [ "uniform"; "xor-parity"; "copy-pair"; "biased"; "almost-uniform"; "rare-leak" ]

let dist_of_name name n =
  match name with
  | "uniform" -> Ok (Sb_dist.Dist.uniform n)
  | "xor-parity" -> Ok (Sb_dist.Dist.xor_parity ~even:true n)
  | "copy-pair" -> Ok (Sb_dist.Dist.copy_pair n)
  | "biased" -> Ok (Sb_dist.Dist.product 0.25 n)
  | "almost-uniform" ->
      Ok ((Sb_dist.Family.almost_uniform n).Sb_dist.Family.ensemble.Sb_dist.Ensemble.at 8)
  | "rare-leak" ->
      Ok ((Sb_dist.Family.rare_leak n).Sb_dist.Family.ensemble.Sb_dist.Ensemble.at 8)
  | other -> Error (Printf.sprintf "unknown distribution %S (try: %s)" other
                      (String.concat ", " dist_names))

let adversary_names = [ "passive"; "semi-honest"; "echo"; "a-star"; "withhold"; "silent" ]

let adversary_of_name name (protocol : Sb_sim.Protocol.t) n =
  match name with
  | "passive" -> Ok Core.Adversaries.passive
  | "semi-honest" -> Ok (Core.Adversaries.semi_honest protocol ~corrupt:[ n - 2; n - 1 ])
  | "echo" ->
      let mode =
        if String.equal protocol.Sb_sim.Protocol.name "naive-concurrent" then `Concurrent
        else `Sequential
      in
      Ok (Core.Adversaries.echo ~mode ~copier:(n - 1) ~target:0 ())
  | "a-star" -> Ok (Core.Adversaries.a_star ~corrupt:(n - 2, n - 1))
  | "silent" -> Ok (Core.Adversaries.silent ~corrupt:[ n - 1 ])
  | "withhold" ->
      let reveal_round, prefix, probe =
        if String.equal protocol.Sb_sim.Protocol.name "commit-open" then
          ((fun _ -> 1), "co-open", Core.Adversaries.probe_commit_open_parity)
        else
          ( (fun (ctx : Sb_sim.Ctx.t) ->
              if String.equal protocol.Sb_sim.Protocol.name "cgma-vss" then
                Sb_protocols.Cgma.reveal_round ~n:ctx.Sb_sim.Ctx.n
              else if String.equal protocol.Sb_sim.Protocol.name "chor-rabin-log" then
                Sb_protocols.Chor_rabin.reveal_round ~n:ctx.Sb_sim.Ctx.n
              else Sb_protocols.Gennaro.reveal_round),
            "vss:",
            Core.Adversaries.probe_vss_secret ~dealer:0 )
      in
      Ok
        (Core.Adversaries.reveal_withhold protocol ~corrupt:[ n - 1 ] ~reveal_round
           ~reveal_tag_prefix:prefix ~honest_probe:probe)
  | other ->
      Error (Printf.sprintf "unknown adversary %S (try: %s)" other
               (String.concat ", " adversary_names))

let protocol_of_name name =
  match Sb_protocols.Registry.find name with
  | Some e -> Ok e.Sb_protocols.Registry.protocol
  | None -> (
      if String.equal name "commit-open" then Ok Sb_protocols.Commit_open.protocol
      else
        let substrates = Core.Resilience.substrates () in
        match List.assoc_opt name substrates with
        | Some p -> Ok p
        | None -> (
            (* Substrate shorthand: `bracha` for `concurrent-bracha`. *)
            match List.assoc_opt ("concurrent-" ^ name) substrates with
            | Some p -> Ok p
            | None ->
                Error
                  (Printf.sprintf "unknown protocol %S (try: %s)" name
                     (String.concat ", "
                        (("commit-open" :: Sb_protocols.Registry.names)
                        @ List.map fst substrates)))))

let n_arg =
  let doc = "Number of parties." in
  Arg.(value & opt int 5 & info [ "n"; "parties" ] ~doc)

let thresh_arg =
  let doc = "Corruption bound t (default (n-1)/2)." in
  Arg.(value & opt (some int) None & info [ "t"; "thresh" ] ~doc)

let seed_arg =
  let doc = "Master seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let samples_arg =
  let doc = "Monte-Carlo sample budget." in
  Arg.(value & opt int 6000 & info [ "samples" ] ~doc)

let protocol_arg =
  let doc = "Protocol name (see `simbcast list`)." in
  Arg.(value & opt string "gennaro-constant" & info [ "p"; "protocol" ] ~doc)

let dist_arg =
  let doc = "Input distribution name." in
  Arg.(value & opt string "uniform" & info [ "d"; "dist" ] ~doc)

let adversary_arg =
  let doc = "Adversary name." in
  Arg.(value & opt string "passive" & info [ "a"; "adversary" ] ~doc)

(* A 0- or negative-domain pool is meaningless; reject it at parse
   time with a proper cmdliner diagnostic instead of letting the pool
   constructor blow up mid-run. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some i when i > 0 -> Ok i
    | Some i -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" i))
    | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo sampling (default: physical cores; must be \
     positive). Results are byte-identical for every value, including 1."
  in
  Arg.(value & opt (some pos_int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")

let sched_arg =
  let doc =
    "Session scheduler: $(b,steal) (fine-grained shards claimed from a shared atomic \
     counter; default) or $(b,static) (historical coarse ≤32-shard layout). Reports \
     are byte-identical at every --jobs under either; the two differ only in shard \
     assignment and wall clock."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("steal", Sb_session.Engine.Steal); ("static", Sb_session.Engine.Static) ])
        Sb_session.Engine.Steal
    & info [ "sched" ] ~doc ~docv:"MODE")

let setup_jobs = function
  | None -> ()
  | Some j -> Sb_par.Pool.set_default_domains j

let fail fmt = Printf.ksprintf (fun s -> `Error (false, s)) fmt

let resolve_thresh n = function Some t -> t | None -> (n - 1) / 2

(* --- fault plans ---------------------------------------------------- *)

let faults_arg =
  let doc =
    "Inject faults: ';'-separated specs crash:$(i,P)\\@$(i,R), \
     drop:$(i,PROB)[:$(i,SRC)->$(i,DST)][\\@$(i,R)], \
     delay:$(i,BY)[:$(i,SRC)->$(i,DST)][\\@$(i,R)], \
     part:$(i,G)|$(i,G)\\@$(i,FIRST)-$(i,LAST) ('*' matches any endpoint; \\@$(i,R) \
     scopes a drop/delay to one sending round), e.g. \
     'crash:4\\@1;drop:0.1;delay:2:0->3' or the checker-style 'drop:1:2->0\\@1'."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~doc ~docv:"SPEC")

let plan_of_spec ~n = function
  | None -> Ok []
  | Some s -> (
      match Sb_fault.Plan.of_string s with
      | Error e -> Error (Printf.sprintf "--faults: %s" e)
      | Ok plan -> (
          match Sb_fault.Plan.validate ~n plan with
          | Error e -> Error (Printf.sprintf "--faults: %s" e)
          | Ok () -> Ok plan))

(* --- observability plumbing ---------------------------------------- *)

let metrics_arg =
  let doc = "Collect metrics and print a summary table at the end." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let report_arg =
  let doc = "Write a versioned JSON run report (implies metric collection)." in
  Arg.(value & opt (some string) None & info [ "report" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record a causal trace (session/round/party/phase span trees, flow edges per \
     delivered envelope) and write it as Chrome trace-event JSON to $(docv) — open in \
     ui.perfetto.dev. Tracing never perturbs seeded protocol outputs."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let setup_obs ?trace metrics report =
  if metrics || report <> None then begin
    Sb_obs.Metrics.set_enabled true;
    Sb_obs.Span.set_enabled true
  end;
  match trace with
  | Some _ -> Sb_obs.Trace_ctx.set_enabled true
  | None -> ()

(* Instrumentation never touches the split RNG streams, so the printed
   protocol outputs are identical with or without these flags. *)
let finish_obs ?(experiments = []) ?trace ?sessions ?check ?workload ~tag metrics report =
  (match trace with
  | None -> ()
  | Some file -> (
      try
        Sb_obs.Perfetto.write_file file;
        Printf.printf "wrote %s (%d/%d sessions traced)\n" file
          (Sb_obs.Trace_ctx.sessions_traced ())
          (Sb_obs.Trace_ctx.session_total ())
      with Sys_error msg ->
        Printf.eprintf "simbcast: cannot write trace: %s\n" msg;
        exit 1));
  if metrics then Sb_util.Tabular.print (Sb_obs.Metrics.to_table ());
  match report with
  | None -> ()
  | Some file -> (
      let trace_block =
        match trace with None -> None | Some _ -> Some (Sb_obs.Perfetto.summary ())
      in
      let report =
        Sb_obs.Report.make ~tool:"simbcast" ~tag
          ~jobs:(Sb_par.Pool.get_default_domains ())
          ~experiments ?trace:trace_block ?sessions ?check ?workload ()
      in
      try
        Sb_obs.Report.write_file file report;
        Printf.printf "wrote %s\n" file
      with Sys_error msg ->
        Printf.eprintf "simbcast: cannot write report: %s\n" msg;
        exit 1)

(* --- list ---------------------------------------------------------- *)

let claim_cell b = if b then "claims independence" else "parallel only"

let list_cmd =
  let run () =
    let table =
      Sb_util.Tabular.create ~title:"protocols" ~columns:[ "name"; "independence"; "resilience" ]
    in
    List.iter
      (fun (e : Sb_protocols.Registry.entry) ->
        Sb_util.Tabular.add_row table
          [
            e.Sb_protocols.Registry.protocol.Sb_sim.Protocol.name;
            claim_cell e.Sb_protocols.Registry.claims_independence;
            e.Sb_protocols.Registry.min_honest_fraction;
          ])
      Sb_protocols.Registry.all;
    Sb_util.Tabular.add_row table [ "commit-open"; "none (ablation target)"; "t < n/2" ];
    Sb_util.Tabular.print table;
    Printf.printf "distributions: %s\n" (String.concat ", " dist_names);
    Printf.printf "adversaries  : %s\n" (String.concat ", " adversary_names);
    Printf.printf "experiments  : e1..e8, e10..e18  (see bench/main.exe; e9 = its timing section)\n";
    Printf.printf "workloads    : %s  (workload, quick/full tiers)\n"
      (String.concat ", " Sb_workload.Workload.names);
    Printf.printf "fault plans  : crash:P@R  drop:PROB[:S->D][@R]  delay:BY[:S->D][@R]  part:G|G@A-B  (fault-sweep, run --faults)\n";
    Printf.printf "checkable    : %s  (check, n <= %d)\n"
      (String.concat ", " (List.map fst Sb_check.Checker.schemes))
      Sb_check.Checker.max_n
  in
  Cmd.v (Cmd.info "list" ~doc:"List protocols, distributions and adversaries")
    Term.(const run $ const ())

(* --- run ------------------------------------------------------------ *)

let verbose_arg =
  let doc = "Log network round events to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.Src.set_level Sb_sim.Network.log_src (Some Logs.Debug)
  end

let run_cmd =
  let inputs_arg =
    let doc = "Input bit vector, e.g. 10110 (defaults to uniform random)." in
    Arg.(value & opt (some string) None & info [ "x"; "inputs" ] ~doc)
  in
  let pos_protocol_arg =
    let doc = "Protocol name (positional alternative to $(b,-p))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let run pos_pname pname n thresh seed inputs adversary_name fault_spec verbose metrics
      report trace jobs =
    (* `simbcast run bracha ...` and `simbcast run -p bracha ...` are
       equivalent; the positional wins when both are given. *)
    let pname = Option.value ~default:pname pos_pname in
    setup_logging verbose;
    setup_obs ?trace metrics report;
    setup_jobs jobs;
    match (protocol_of_name pname, plan_of_spec ~n fault_spec) with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok protocol, Ok plan -> (
        match adversary_of_name adversary_name protocol n with
        | Error e -> fail "%s" e
        | Ok adversary ->
            let thresh = resolve_thresh n thresh in
            let rng = Sb_util.Rng.create seed in
            let x =
              match inputs with
              | Some s ->
                  if String.length s <> n then failwith "input length must equal n"
                  else Sb_util.Bitvec.of_string s
              | None -> Sb_util.Bitvec.random rng n
            in
            let setup = Core.Setup.{ default with n; thresh; seed } in
            let faults =
              if plan = [] then None else Some (Sb_fault.Inject.compile ~n plan)
            in
            let r =
              Sb_obs.Span.with_span ~attrs:[ ("protocol", pname) ] "run" (fun () ->
                  Core.Announced.run_once setup ~protocol ~adversary ~x ?faults rng)
            in
            Printf.printf "protocol   : %s\n" protocol.Sb_sim.Protocol.name;
            Printf.printf "adversary  : %s (corrupted %s)\n" adversary.Sb_sim.Adversary.name
              (String.concat "," (List.map string_of_int r.Core.Announced.corrupted));
            if plan <> [] then begin
              match Sb_fault.Plan.crashed_parties plan with
              | [] -> Printf.printf "faults     : %s\n" (Sb_fault.Plan.to_string plan)
              | crashed ->
                  Printf.printf "faults     : %s (crashed %s)\n" (Sb_fault.Plan.to_string plan)
                    (String.concat "," (List.map string_of_int crashed))
            end;
            Printf.printf "inputs     : %s\n" (Sb_util.Bitvec.to_string r.Core.Announced.x);
            Printf.printf "announced  : %s\n" (Sb_util.Bitvec.to_string r.Core.Announced.w);
            Printf.printf "consistent : %b\n" r.Core.Announced.consistent;
            finish_obs ?trace ~tag:"run" metrics report;
            `Ok ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one protocol execution and print the announced vector")
    Term.(
      ret
        (const run $ pos_protocol_arg $ protocol_arg $ n_arg $ thresh_arg $ seed_arg
       $ inputs_arg $ adversary_arg $ faults_arg $ verbose_arg $ metrics_arg $ report_arg
       $ trace_arg $ jobs_arg))

(* --- classify ------------------------------------------------------- *)

let classify_cmd =
  let run dname n =
    let entries = Sb_dist.Family.battery n in
    let matching =
      List.filter
        (fun (e : Sb_dist.Family.entry) ->
          dname = "all"
          || String.length e.Sb_dist.Family.ensemble.Sb_dist.Ensemble.name >= String.length dname
             && String.sub e.Sb_dist.Family.ensemble.Sb_dist.Ensemble.name 0 (String.length dname)
                = dname)
        entries
    in
    if matching = [] then fail "no battery distribution matches %S" dname
    else begin
      List.iter
        (fun (e : Sb_dist.Family.entry) ->
          let v = Sb_dist.Classes.classify e.Sb_dist.Family.ensemble in
          Format.printf "%-34s %a@." e.Sb_dist.Family.ensemble.Sb_dist.Ensemble.name
            Sb_dist.Classes.pp v;
          Format.printf "  note: %s@." e.Sb_dist.Family.note)
        matching;
      `Ok ()
    end
  in
  let dist_prefix =
    let doc = "Distribution name prefix from the battery, or 'all'." in
    Arg.(value & opt string "all" & info [ "d"; "dist" ] ~doc)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify input distributions into the paper's classes")
    Term.(ret (const run $ dist_prefix $ n_arg))

(* --- test ----------------------------------------------------------- *)

let test_cmd =
  let tester_arg =
    let doc = "Which definition to test: cr, g, gss, or sb." in
    Arg.(value & opt string "cr" & info [ "t"; "tester" ] ~doc)
  in
  let run tester pname aname dname n samples seed metrics report jobs =
    setup_obs metrics report;
    setup_jobs jobs;
    let done_obs ret =
      finish_obs ~tag:("test-" ^ tester) metrics report;
      ret
    in
    match protocol_of_name pname with
    | Error e -> fail "%s" e
    | Ok protocol -> (
        match (adversary_of_name aname protocol n, dist_of_name dname n) with
        | Error e, _ | _, Error e -> fail "%s" e
        | Ok adversary, Ok dist -> (
            let setup = Core.Setup.{ default with n; thresh = (n - 1) / 2; samples; seed } in
            match tester with
            | "cr" ->
                let r = Core.Cr_test.run setup ~protocol ~adversary ~dist () in
                Printf.printf "CR verdict: %s\n" (Sb_stats.Verdict.to_string r.Core.Cr_test.verdict);
                (match r.Core.Cr_test.worst with
                | Some w ->
                    Format.printf "worst: honest P%d, predicate %s, gap %a@."
                      w.Core.Cr_test.honest_party w.Core.Cr_test.predicate Sb_stats.Estimate.pp
                      w.Core.Cr_test.gap
                | None -> ());
                done_obs (`Ok ())
            | "g" ->
                let r = Core.G_test.run setup ~protocol ~adversary ~dist () in
                Printf.printf "G verdict: %s (buckets %d used, %d skipped)\n"
                  (Sb_stats.Verdict.to_string r.Core.G_test.verdict) r.Core.G_test.buckets_used
                  r.Core.G_test.buckets_skipped;
                (match r.Core.G_test.worst with
                | Some w ->
                    Format.printf "worst bucket %s for P%d: gap %a@."
                      (Sb_util.Bitvec.to_string w.Core.G_test.bucket) w.Core.G_test.corrupted_party
                      Sb_stats.Estimate.pp w.Core.G_test.gap
                | None -> ());
                done_obs (`Ok ())
            | "gss" ->
                let r = Core.Gss_test.run setup ~protocol ~adversary () in
                Printf.printf "G** verdict: %s\n" (Sb_stats.Verdict.to_string r.Core.Gss_test.verdict);
                (match r.Core.Gss_test.worst with
                | Some w ->
                    Format.printf "worst pair x=%s vs x=%s for P%d: gap %a@."
                      (Sb_util.Bitvec.to_string w.Core.Gss_test.r)
                      (Sb_util.Bitvec.to_string w.Core.Gss_test.s)
                      w.Core.Gss_test.corrupted_party Sb_stats.Estimate.pp w.Core.Gss_test.gap
                | None -> ());
                done_obs (`Ok ())
            | "sb" ->
                let r =
                  Core.Sb_test.run setup ~protocol ~adversary ~dist
                    ~simulator:Core.Sb_test.truthful ()
                in
                Printf.printf "Sb verdict: %s\n" (Sb_stats.Verdict.to_string r.Core.Sb_test.verdict);
                List.iter
                  (fun (f : Core.Sb_test.falsifier_result) ->
                    if f.Core.Sb_test.verdict = Sb_stats.Verdict.Fail then
                      Format.printf "falsified by %s: real %a, ideal band [%.3f, %.3f]@."
                        f.Core.Sb_test.falsifier Sb_stats.Estimate.pp f.Core.Sb_test.real_p
                        f.Core.Sb_test.ideal_min f.Core.Sb_test.ideal_max)
                  r.Core.Sb_test.falsifiers;
                (match (r.Core.Sb_test.sim_tvd, r.Core.Sb_test.baseline_tvd) with
                | Some t, Some b ->
                    Printf.printf "joint TVD vs truthful simulator: %.4f (baseline %.4f)\n" t b
                | _ -> ());
                done_obs (`Ok ())
            | other -> fail "unknown tester %S (cr, g, gss, sb)" other))
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Run an independence tester on (protocol, adversary, distribution)")
    Term.(
      ret
        (const run $ tester_arg $ protocol_arg $ adversary_arg $ dist_arg $ n_arg $ samples_arg
       $ seed_arg $ metrics_arg $ report_arg $ jobs_arg))

(* --- exact ----------------------------------------------------------- *)

let exact_cmd =
  let scenario_arg =
    let doc = "Closed-form scenario: identity, echo, or pi-g." in
    Arg.(value & opt string "pi-g" & info [ "s"; "scenario" ] ~doc)
  in
  let run scenario dname n =
    match dist_of_name dname n with
    | Error e -> fail "%s" e
    | Ok dist -> (
        let show name w_dist ~honest ~corrupted =
          Format.printf "scenario      : %s over %s (n = %d)@." name dname n;
          Format.printf "exact CR gap  : %.6f (battery of %d predicates)@."
            (Core.Exact.cr_gap_battery w_dist ~honest)
            (List.length (Core.Predicate.battery ~n));
          Format.printf "exact G gap   : %.6f@." (Core.Exact.g_gap w_dist ~corrupted)
        in
        match scenario with
        | "identity" ->
            show "announced = inputs" dist ~honest:(List.init n Fun.id) ~corrupted:[];
            `Ok ()
        | "echo" ->
            let w =
              Core.Exact.push_deterministic dist (Core.Exact.echo_map ~copier:(n - 1) ~target:0)
            in
            show "echo (copier = last, target = 0)" w
              ~honest:(List.init (n - 1) Fun.id)
              ~corrupted:[ n - 1 ];
            `Ok ()
        | "pi-g" ->
            let w =
              Core.Exact.push_coin dist (Core.Exact.pi_g_astar_map ~l1:(n - 2) ~l2:(n - 1))
            in
            show "Pi_G under A* (last two corrupted)" w
              ~honest:(List.init (n - 2) Fun.id)
              ~corrupted:[ n - 2; n - 1 ];
            `Ok ()
        | other -> fail "unknown scenario %S (identity, echo, pi-g)" other)
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Compute CR/G independence gaps in closed form for analytically known scenarios")
    Term.(ret (const run $ scenario_arg $ dist_arg $ n_arg))

(* --- experiment ------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (e1..e8, e10..e18)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let quick_arg =
    let doc = "Reduced sample budget." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let csv_arg =
    let doc = "Also dump the table as $(docv)/<id>.csv." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc ~docv:"DIR")
  in
  let n_max_arg =
    let doc =
      "Cap the E17 size sweep at $(docv) parties (an integer, at least 128 — the \
       smallest E17 size). Only meaningful with e17."
    in
    Arg.(value & opt (some string) None & info [ "n-max" ] ~doc ~docv:"N")
  in
  let run id quick csv n_max metrics report trace jobs =
    (* Match sessions' contract for flag validation: a malformed or
       out-of-range --n-max is a usage error with exit 2 (cmdliner's
       own parse failures exit 124, so parse the string here). *)
    let n_max =
      match n_max with
      | None -> None
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some m when m >= 128 -> Some m
          | _ ->
              Printf.eprintf
                "simbcast: --n-max must be an integer >= 128 (the smallest E17 size), \
                 got %S\n"
                s;
              exit 2)
    in
    setup_obs ?trace metrics report;
    setup_jobs jobs;
    let setup =
      if quick then Core.Setup.with_samples 2000 Core.Setup.default else Core.Setup.default
    in
    let found =
      match (Core.Experiments.find id, n_max) with
      | None, _ -> None
      | (Some _ as e), None -> e
      | Some e, Some m ->
          if String.lowercase_ascii e.Core.Experiments.id = "e17" then
            Some
              (Core.Experiments.entry "E17" e.Core.Experiments.title
                 (Core.Experiments.e17_scaling ~n_max:m))
          else begin
            Printf.eprintf "simbcast: --n-max only applies to experiment e17\n";
            exit 2
          end
    in
    match found with
    | None ->
        fail "unknown experiment %S (try: %s)" id
          (String.concat ", " (Core.Experiments.ids ()))
    | Some e ->
        let t0 = Unix.gettimeofday () in
        let o = e.Core.Experiments.run setup in
        let wall = Unix.gettimeofday () -. t0 in
        Sb_util.Tabular.print o.Core.Experiments.table;
        (match csv with
        | None -> ()
        | Some dir ->
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            let path =
              Filename.concat dir (String.lowercase_ascii o.Core.Experiments.id ^ ".csv")
            in
            let oc = open_out path in
            output_string oc (Sb_util.Tabular.to_csv o.Core.Experiments.table);
            close_out oc;
            Printf.printf "wrote %s\n" path);
        List.iter (Printf.printf "note: %s\n") o.Core.Experiments.notes;
        Printf.printf "%s: paper-shape check %s\n" o.Core.Experiments.id
          (if o.Core.Experiments.ok then "OK" else "MISMATCH");
        let experiments =
          [
            {
              Sb_obs.Report.id = o.Core.Experiments.id;
              title = o.Core.Experiments.title;
              ok = o.Core.Experiments.ok;
              rows_checked = o.Core.Experiments.rows_checked;
              wall_clock_s = wall;
              notes = o.Core.Experiments.notes;
            };
          ]
        in
        finish_obs ~experiments ?trace ~tag:(String.lowercase_ascii o.Core.Experiments.id)
          metrics report;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's claims (E1..E18)")
    Term.(
      ret
        (const run $ id_arg $ quick_arg $ csv_arg $ n_max_arg $ metrics_arg $ report_arg
       $ trace_arg $ jobs_arg))

(* --- fault-sweep ----------------------------------------------------- *)

let fault_sweep_cmd =
  let drops_arg =
    let doc = "Omission rates for the grid (comma-separated)." in
    Arg.(value & opt (list float) [ 0.0; 0.1; 0.3 ] & info [ "drops" ] ~doc ~docv:"RATES")
  in
  let crashes_arg =
    let doc = "Crash counts for the grid (comma-separated; crashes are staggered \
               starting from the highest party id)." in
    Arg.(value & opt (list int) [ 0; 1; 2 ] & info [ "crashes" ] ~doc ~docv:"COUNTS")
  in
  let sweep_protocol_arg =
    let doc = "Protocol to sweep, or 'all' for every substrate and VSS protocol." in
    Arg.(value & opt string "all" & info [ "p"; "protocol" ] ~doc)
  in
  let catalogue () = Core.Resilience.substrates () @ Core.Resilience.vss_protocols () in
  let run pname n thresh seed samples fault_spec drops crashes metrics report trace jobs =
    setup_obs ?trace metrics report;
    setup_jobs jobs;
    let protocols =
      if pname = "all" then Ok (catalogue ())
      else
        match List.assoc_opt pname (catalogue ()) with
        | Some p -> Ok [ (pname, p) ]
        | None ->
            Error
              (Printf.sprintf "unknown protocol %S (try: all, %s)" pname
                 (String.concat ", " (List.map fst (catalogue ()))))
    in
    match (protocols, plan_of_spec ~n fault_spec) with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok protocols, Ok spec_plan ->
        if List.exists (fun c -> c < 0 || c >= n) crashes then
          fail "--crashes: counts must lie in [0, %d)" n
        else if List.exists (fun r -> r < 0.0 || r > 1.0) drops then
          fail "--drops: rates must lie in [0, 1]"
        else begin
          let thresh = resolve_thresh n thresh in
          let setup = Core.Setup.{ default with n; thresh; seed; samples } in
          let plans =
            (* A --faults spec replaces the grid: one cell per protocol. *)
            if fault_spec <> None then [ spec_plan ]
            else
              List.concat_map
                (fun c ->
                  List.map
                    (fun r ->
                      Core.Resilience.drop_plan r @ Core.Resilience.crash_plan ~n ~count:c)
                    drops)
                crashes
          in
          let table =
            Sb_util.Tabular.create
              ~title:
                (Printf.sprintf "fault sweep (n = %d, t = %d, %d samples/cell)" n thresh
                   samples)
              ~columns:[ "protocol"; "faults"; "agreement"; "validity" ]
          in
          let t0 = Unix.gettimeofday () in
          let cells =
            List.concat_map
              (fun (name, protocol) ->
                List.map
                  (fun plan ->
                    let c =
                      Core.Resilience.measure setup ~protocol
                        ~adversary:Core.Adversaries.passive
                        ~dist:(Sb_dist.Dist.uniform n) ~plan (Sb_util.Rng.create seed)
                    in
                    Sb_util.Tabular.add_row table
                      [
                        name;
                        (match Sb_fault.Plan.to_string plan with "" -> "none" | s -> s);
                        Format.asprintf "%a" Sb_stats.Estimate.pp c.Core.Resilience.agree;
                        Format.asprintf "%a" Sb_stats.Estimate.pp c.Core.Resilience.valid;
                      ];
                    c)
                  plans)
              protocols
          in
          let wall = Unix.gettimeofday () -. t0 in
          Sb_util.Tabular.print table;
          let experiments =
            [
              {
                Sb_obs.Report.id = "FAULT-SWEEP";
                title = "Resilience sweep over injected fault plans";
                ok = true;
                rows_checked = List.length cells;
                wall_clock_s = wall;
                notes = [];
              };
            ]
          in
          finish_obs ~experiments ?trace ~tag:"fault-sweep" metrics report;
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "fault-sweep"
       ~doc:
         "Measure agreement/validity resilience curves under injected faults (crash-stop, \
          omission, delay, partition); see also experiment e15")
    Term.(
      ret
        (const run $ sweep_protocol_arg $ n_arg $ thresh_arg $ seed_arg $ samples_arg
       $ faults_arg $ drops_arg $ crashes_arg $ metrics_arg $ report_arg $ trace_arg
       $ jobs_arg))

(* --- profile --------------------------------------------------------- *)

let profile_cmd =
  let id_arg =
    let doc = "Experiment id to profile (e1..e8, e10..e18)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let quick_arg =
    let doc = "Reduced sample budget." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let top_arg =
    let doc = "Rows of the phase-time attribution table to print." in
    Arg.(value & opt int 20 & info [ "top" ] ~doc ~docv:"K")
  in
  let run id quick top trace jobs =
    setup_jobs jobs;
    Sb_obs.Metrics.set_enabled true;
    Sb_obs.Trace_ctx.set_enabled true;
    match Core.Experiments.find id with
    | None ->
        fail "unknown experiment %S (try: %s)" id (String.concat ", " (Core.Experiments.ids ()))
    | Some e ->
        let setup =
          if quick then Core.Setup.with_samples 2000 Core.Setup.default else Core.Setup.default
        in
        let t0 = Unix.gettimeofday () in
        let o = e.Core.Experiments.run setup in
        let wall = Unix.gettimeofday () -. t0 in
        Printf.printf "%s: %s — %s in %.2fs\n" o.Core.Experiments.id o.Core.Experiments.title
          (if o.Core.Experiments.ok then "OK" else "MISMATCH")
          wall;
        Sb_util.Tabular.print (Sb_obs.Perfetto.flame_table ~top ());
        (match trace with
        | None -> ()
        | Some file -> (
            try
              Sb_obs.Perfetto.write_file file;
              Printf.printf "wrote %s (%d/%d sessions traced)\n" file
                (Sb_obs.Trace_ctx.sessions_traced ())
                (Sb_obs.Trace_ctx.session_total ())
            with Sys_error msg ->
              Printf.eprintf "simbcast: cannot write trace: %s\n" msg;
              exit 1));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment with causal tracing on and print the phase-time attribution \
          table (self/total wall time per span path); --trace additionally saves the \
          Perfetto trace")
    Term.(ret (const run $ id_arg $ quick_arg $ top_arg $ trace_arg $ jobs_arg))

(* --- sessions -------------------------------------------------------- *)

let sessions_cmd =
  let protos_arg =
    let doc =
      "Comma-separated protocol names; the session budget is split evenly across them \
       (earlier protocols absorb the remainder)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOLS" ~doc)
  in
  let count_arg =
    let doc = "Total number of sessions to run (must be positive)." in
    Arg.(value & opt int 256 & info [ "count" ] ~doc ~docv:"N")
  in
  let session_log_arg =
    let doc =
      "Write one JSON object per session (JSON Lines) to $(docv) — byte-identical at \
       every --jobs value."
    in
    Arg.(value & opt (some string) None & info [ "session-log" ] ~doc ~docv:"FILE")
  in
  let run pnames count n thresh seed dname metrics report session_log sched jobs =
    (* Match bench's contract for batch-size validation: a non-positive
       --count is a usage error with exit 2 (cmdliner's own parse
       failures exit 124, so this needs an explicit check). *)
    if count <= 0 then begin
      Printf.eprintf "simbcast: --count must be a positive integer, got %d\n" count;
      exit 2
    end;
    setup_obs metrics report;
    (* Comm totals and throughput rates come off the sim.* counter
       deltas, so the engine needs metrics on even without --metrics;
       the summary table still prints only when asked for. *)
    Sb_obs.Metrics.set_enabled true;
    setup_jobs jobs;
    let names = List.filter (fun s -> s <> "") (String.split_on_char ',' pnames) in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match protocol_of_name name with
          | Ok p -> resolve (p :: acc) rest
          | Error e -> Error e)
    in
    match (resolve [] names, dist_of_name dname n) with
    | Error e, _ | _, Error e -> fail "%s" e
    | Ok [], _ -> fail "no protocol names given"
    | Ok protocols, Ok dist ->
        let open Sb_session in
        let thresh = resolve_thresh n thresh in
        let setup = Core.Setup.{ default with n; thresh; seed } in
        let k = List.length protocols in
        let base = count / k and extra = count mod k in
        let specs =
          List.filteri
            (fun i _ -> base > 0 || i < extra)
            (List.mapi
               (fun i protocol ->
                 Engine.spec protocol (base + if i < extra then 1 else 0))
               protocols)
        in
        let agg, reports = Engine.run ~sched ~setup ~dist specs (Sb_util.Rng.create seed) in
        Printf.printf "sessions   : %d total, %d consistent, %d shards\n"
          agg.Engine.sessions agg.Engine.consistent agg.Engine.shards;
        Printf.printf "protocols  : %s\n"
          (String.concat ", "
             (List.map
                (fun (s : Engine.spec) ->
                  Printf.sprintf "%s x%d" s.protocol.Sb_sim.Protocol.name s.count)
                specs));
        Printf.printf "comm       : %d broadcasts (%d B), %d p2p (%d B)\n"
          agg.Engine.broadcasts agg.Engine.broadcast_bytes agg.Engine.p2p
          agg.Engine.p2p_bytes;
        (* The only wall-clock-derived line; CI's jobs-invariance diff
           filters it (everything above is deterministic). *)
        Printf.printf "throughput : %.1f sessions/s, %.1f msgs/s, %.1f B/s (wall %.3fs)\n"
          agg.Engine.sessions_per_sec agg.Engine.msgs_per_sec agg.Engine.bytes_per_sec
          agg.Engine.wall_s;
        (* Scheduling-race observability (steal counts depend on the
           claiming race, so CI's jobs-invariance diff filters this
           line alongside the throughput one). *)
        Printf.printf "sched      : %s, %d workers, %d steals\n"
          (match agg.Engine.sched with Engine.Steal -> "steal" | Engine.Static -> "static")
          agg.Engine.workers agg.Engine.steals;
        (match session_log with
        | None -> ()
        | Some file -> (
            try
              let oc = open_out file in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  Array.iter
                    (fun r ->
                      output_string oc
                        (Sb_obs.Json.to_string (Engine.session_report_to_json r));
                      output_char oc '\n')
                    reports);
              Printf.printf "wrote %s\n" file
            with Sys_error msg ->
              Printf.eprintf "simbcast: cannot write session log: %s\n" msg;
              exit 1));
        finish_obs ~tag:"sessions" ~sessions:(Engine.aggregate_to_json agg) metrics report;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:
         "Run a batch of whole protocol sessions sharded across the domain pool — \
          shared per-shard setup, per-session RNG streams, aggregate throughput in the \
          report's sessions block; results are byte-identical at every --jobs value")
    Term.(
      ret
        (const run $ protos_arg $ count_arg $ n_arg $ thresh_arg $ seed_arg $ dist_arg
       $ metrics_arg $ report_arg $ session_log_arg $ sched_arg $ jobs_arg))

(* --- workload -------------------------------------------------------- *)

let workload_cmd =
  let name_arg =
    let doc =
      "Workload name: election (Broadbent–Tapp-style referendum), auction (sealed-bid \
       lots), or lottery (XOR-coin draws)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let quick_arg =
    let doc = "CI-sized tier (50k voters instead of 2M, etc.)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let session_log_arg =
    let doc =
      "Write one JSON object per session (JSON Lines) to $(docv) — byte-identical at \
       every --jobs value."
    in
    Arg.(value & opt (some string) None & info [ "session-log" ] ~doc ~docv:"FILE")
  in
  let run name quick seed fault_spec metrics report session_log sched jobs =
    (* Unknown workload names are usage errors with exit 2, matching
       `sessions --count` and `check` (cmdliner's own parse failures
       exit 124). *)
    if not (List.mem name Sb_workload.Workload.names) then begin
      Printf.eprintf "simbcast: unknown workload %S (try: %s)\n" name
        (String.concat ", " Sb_workload.Workload.names);
      exit 2
    end;
    setup_obs metrics report;
    (* Comm totals and throughput come off the sim.* counter deltas,
       exactly as in `sessions`. *)
    Sb_obs.Metrics.set_enabled true;
    setup_jobs jobs;
    let faults =
      match fault_spec with
      | None -> Ok None
      | Some s -> (
          (* Party bounds are checked by the engine against the heavy
             spec's own n, which varies per workload — only the syntax
             is checked here. *)
          match Sb_fault.Plan.of_string s with
          | Error e -> Error (Printf.sprintf "--faults: %s" e)
          | Ok plan -> Ok (Some plan))
    in
    match faults with
    | Error e -> fail "%s" e
    | Ok faults -> (
        match
          Sb_workload.Workload.run ?faults ~sched ~quick ~seed name
        with
        | Error e -> fail "%s" e
        | Ok o ->
            let open Sb_session in
            let agg = o.Sb_workload.Workload.aggregate in
            List.iter print_endline (Sb_workload.Workload.deterministic_lines o);
            (* The wall-clock and scheduling-race lines; CI's
               jobs-invariance diff filters both. *)
            Printf.printf
              "throughput : %.1f sessions/s, %.1f msgs/s, %.1f B/s (wall %.3fs)\n"
              agg.Engine.sessions_per_sec agg.Engine.msgs_per_sec agg.Engine.bytes_per_sec
              agg.Engine.wall_s;
            Printf.printf "sched      : %s, %d workers, %d steals\n"
              (match agg.Engine.sched with
              | Engine.Steal -> "steal"
              | Engine.Static -> "static")
              agg.Engine.workers agg.Engine.steals;
            (match session_log with
            | None -> ()
            | Some file -> (
                try
                  let oc = open_out file in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () ->
                      Array.iter
                        (fun r ->
                          output_string oc
                            (Sb_obs.Json.to_string (Engine.session_report_to_json r));
                          output_char oc '\n')
                        o.Sb_workload.Workload.reports);
                  Printf.printf "wrote %s\n" file
                with Sys_error msg ->
                  Printf.eprintf "simbcast: cannot write session log: %s\n" msg;
                  exit 1));
            finish_obs ~tag:"workload"
              ~sessions:(Engine.aggregate_to_json agg)
              ~workload:(Sb_workload.Workload.to_json o)
              metrics report;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Run a benchmarked application workload (election / auction / lottery) — a \
          heavy-tailed mix of broadcast sessions fed with application data, executed by \
          the work-stealing session scheduler; the summary, session log and report \
          workload block are byte-identical at every --jobs value")
    Term.(
      ret
        (const run $ name_arg $ quick_arg $ seed_arg $ faults_arg $ metrics_arg
       $ report_arg $ session_log_arg $ sched_arg $ jobs_arg))

(* --- check ----------------------------------------------------------- *)

let check_cmd =
  let proto_arg =
    let doc =
      "Substrate to check — one of the session schemes (bare name or the composed \
       concurrent- form); see `simbcast list`."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let max_states_arg =
    let doc =
      "State budget across all configurations; when exhausted, still-unviolated \
       properties report inconclusive instead of exact-pass."
    in
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc ~docv:"N")
  in
  (* Local copies of -n / -t with long aliases whose unambiguous
     prefixes make `--n 4 --t 1` work (the shared args only define the
     short forms, and `--t` would collide with `--trace`). *)
  let check_n_arg =
    let doc = "Number of parties (exhaustive checking supports up to 5)." in
    Arg.(value & opt int 4 & info [ "n"; "num"; "parties" ] ~doc)
  in
  let check_t_arg =
    let doc = "Corruption bound t (default (n-1)/2)." in
    Arg.(value & opt (some int) None & info [ "t"; "thresh" ] ~doc)
  in
  let usage () = Printf.eprintf "usage: simbcast check PROTOCOL --n N [--t T]\n" in
  let verdict_cell = function
    | Sb_check.Checker.Holds -> "exact-pass"
    | Sb_check.Checker.Violated _ -> "VIOLATED"
    | Sb_check.Checker.Inconclusive -> "inconclusive (state budget)"
  in
  let run pname n thresh seed max_states metrics report =
    setup_obs metrics report;
    match Sb_check.Checker.find_scheme pname with
    | None ->
        (* Usage errors exit 2, matching `sessions --count`; cmdliner's
           own parse failures exit 124. *)
        Printf.eprintf "simbcast: unknown checkable protocol %S (try: %s)\n" pname
          (String.concat ", " (List.map fst Sb_check.Checker.schemes));
        usage ();
        exit 2
    | Some scheme ->
        if n <= 0 || n > Sb_check.Checker.max_n then begin
          Printf.eprintf
            "simbcast: --n %d is out of exhaustive-checking range (1..%d)\n" n
            Sb_check.Checker.max_n;
          usage ();
          exit 2
        end;
        let thresh = resolve_thresh n thresh in
        let setup = Core.Setup.{ default with n; thresh; seed } in
        let ctx =
          Core.Setup.fresh_ctx setup (Sb_util.Rng.split (Sb_util.Rng.create seed))
        in
        let r = Sb_check.Checker.check ~max_states ~scheme ctx in
        let open Sb_check.Checker in
        Printf.printf "protocol       : %s (n=%d, t=%d)\n" r.protocol r.n r.t;
        Printf.printf "states         : %d explored, %d memo hits, %d terminals, %d configs%s\n"
          r.stats.explored r.stats.memo_hits r.stats.terminals r.stats.configs
          (if r.capped then Printf.sprintf " (budget %d EXHAUSTED)" r.max_states else "");
        List.iter
          (fun (name, verdict) ->
            Printf.printf "%-15s: %s\n" name (verdict_cell verdict);
            match verdict with
            | Violated w ->
                Printf.printf "  witness      : %s\n"
                  (Format.asprintf "%a" pp_witness w);
                let faults = Sb_fault.Plan.to_string (plan_of_witness w) in
                Printf.printf "  replay       : simbcast run %s -n %d -t %d -x %s%s\n"
                  r.protocol r.n r.t (witness_inputs ~n:r.n w)
                  (if faults = "" then "" else Printf.sprintf " --faults '%s'" faults)
            | Holds | Inconclusive -> ())
          [
            ("agreement", r.agreement);
            ("validity", r.validity);
            ("unforgeability", r.unforgeability);
          ];
        (* Cross-validate against the hand-derived E15 exact cells where
           this (protocol, n, t) point has recorded ground truth. *)
        let mismatches =
          match
            List.find_opt
              (fun (c : Core.Resilience.exact_cell) ->
                c.cell_protocol = r.protocol && c.cell_n = r.n && c.cell_t = r.t)
              Core.Resilience.exact_cells
          with
          | None ->
              Printf.printf "cross-check    : no exact cell recorded for this point\n";
              []
          | Some cell ->
              List.filter_map
                (fun (name, expected, verdict) ->
                  match (expected, verdict) with
                  | None, _ | _, Inconclusive -> None
                  | Some true, Holds | Some false, Violated _ -> None
                  | Some e, _ ->
                      Some
                        (Printf.sprintf "%s: checker says %s, exact cell says %s" name
                           (verdict_name verdict)
                           (if e then "holds" else "violated")))
                [
                  ("agreement", cell.exp_agreement, r.agreement);
                  ("validity", cell.exp_validity, r.validity);
                  ("unforgeability", cell.exp_unforgeability, r.unforgeability);
                ]
        in
        (match mismatches with
        | [] ->
            if
              List.exists
                (fun (c : Core.Resilience.exact_cell) ->
                  c.cell_protocol = r.protocol && c.cell_n = r.n && c.cell_t = r.t)
                Core.Resilience.exact_cells
            then Printf.printf "cross-check    : consistent with recorded exact cells\n"
        | ms -> List.iter (Printf.printf "cross-check    : MISMATCH %s\n") ms);
        finish_obs ~tag:"check" ~check:(result_to_json r) metrics report;
        if mismatches <> [] then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check a broadcast substrate's agreement, validity and \
          unforgeability at small n: every faulty set up to t, every sender and value, \
          every per-round crash/omission/delay schedule — exact verdicts, with a \
          minimal replayable --faults counterexample on violation")
    Term.(
      ret
        (const run $ proto_arg $ check_n_arg $ check_t_arg $ seed_arg $ max_states_arg
       $ metrics_arg $ report_arg))

(* --- perf-diff -------------------------------------------------------- *)

let perf_diff_cmd =
  let base_arg =
    let doc = "Baseline report (e.g. the committed BENCH_quick.json)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE" ~doc)
  in
  let fresh_arg =
    let doc = "Fresh report to compare against the baseline." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FRESH" ~doc)
  in
  let threshold_arg =
    let doc =
      "Allowed relative slowdown per timing entry; a fresh/base ratio above \
       1 + $(docv) is a regression and the command exits 1."
    in
    Arg.(value & opt float 0.2 & info [ "threshold" ] ~doc ~docv:"FRAC")
  in
  let match_arg =
    let doc =
      "Comma-separated name prefixes to compare (default: every baseline entry), e.g. \
       'gtester-smoke,crypto/'."
    in
    Arg.(value & opt (list string) [] & info [ "match" ] ~doc ~docv:"PREFIXES")
  in
  let read_report path =
    match
      In_channel.with_open_bin path (fun ic -> Sb_obs.Json.of_string (In_channel.input_all ic))
    with
    | Ok json -> Ok json
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | exception Sys_error msg -> Error msg
  in
  let run base_path fresh_path threshold prefixes =
    if threshold < 0.0 then fail "--threshold must be non-negative"
    else
      match (read_report base_path, read_report fresh_path) with
      | Error e, _ | _, Error e -> fail "%s" e
      | Ok base, Ok fresh ->
          let deltas, missing = Sb_obs.Report.perf_diff ~prefixes ~base ~fresh () in
          if deltas = [] && missing = [] then
            fail "no baseline timing entries match%s"
              (if prefixes = [] then "" else " --match " ^ String.concat "," prefixes)
          else begin
            let table =
              Sb_util.Tabular.create
                ~title:
                  (Printf.sprintf "perf diff vs %s (threshold %+.0f%%)" base_path
                     (100.0 *. threshold))
                ~columns:[ "name"; "base ns/run"; "fresh ns/run"; "ratio"; "verdict" ]
            in
            let regressions = ref [] in
            List.iter
              (fun (d : Sb_obs.Report.perf_delta) ->
                let bad = Float.is_nan d.ratio || d.ratio > 1.0 +. threshold in
                if bad then regressions := d.name :: !regressions;
                Sb_util.Tabular.add_row table
                  [
                    d.name;
                    Printf.sprintf "%.0f" d.base_ns;
                    Printf.sprintf "%.0f" d.fresh_ns;
                    Printf.sprintf "%.3f" d.ratio;
                    (if bad then "REGRESSION" else "ok");
                  ])
              deltas;
            List.iter
              (fun name ->
                regressions := name :: !regressions;
                Sb_util.Tabular.add_row table [ name; "-"; "missing"; "-"; "REGRESSION" ])
              missing;
            Sb_util.Tabular.print table;
            if !regressions <> [] then begin
              Printf.eprintf "simbcast: perf regression in: %s\n"
                (String.concat ", " (List.rev !regressions));
              exit 1
            end;
            `Ok ()
          end
  in
  Cmd.v
    (Cmd.info "perf-diff"
       ~doc:
         "Compare the timings blocks of two run reports entry-by-entry and fail (exit 1) \
          on any slowdown beyond the threshold — the perf-trajectory guard used by CI")
    Term.(ret (const run $ base_arg $ fresh_arg $ threshold_arg $ match_arg))

let () =
  (* E18 lives in sb_workload (it needs the session engine, which core
     cannot depend on); adding it to the catalogue here makes
     `experiment e18` / `profile e18` resolve like any core entry. *)
  Sb_workload.E18.register ();
  let info =
    Cmd.info "simbcast" ~version:"1.0.0"
      ~doc:"Simultaneous broadcast protocols and independence definitions (PODC 2005 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            classify_cmd;
            test_cmd;
            exact_cmd;
            experiment_cmd;
            fault_sweep_cmd;
            profile_cmd;
            sessions_cmd;
            workload_cmd;
            check_cmd;
            perf_diff_cmd;
          ]))
