(* Tests for sb_mpc: circuit construction and plain evaluation, the
   BGW engine against the plain reference, and the real-Θ instantiation
   of Π_G (Theta_real) against the ideal function g. *)

open Sb_sim
open Sb_crypto
open Sb_mpc

let seed = ref 0

let fresh_rng () =
  incr seed;
  Sb_util.Rng.create (77000 + !seed)

let make_ctx ?(n = 5) ?(thresh = 2) () = Ctx.make ~rng:(fresh_rng ()) ~n ~thresh ~k:8 ()

let fe = Alcotest.testable (fun fmt x -> Field.pp fmt x) Field.equal

(* --- circuits ------------------------------------------------------- *)

let test_circuit_plain_eval () =
  (* (x0 + 3) * x1 - x2, two parties: P0 owns x0, x1; P1 owns x2. *)
  let c = Circuit.create ~n_parties:2 in
  let x0 = Circuit.input c ~party:0 in
  let x1 = Circuit.input c ~party:0 in
  let x2 = Circuit.input c ~party:1 in
  let e = Circuit.sub c (Circuit.mul c (Circuit.add c x0 (Circuit.const c (Field.of_int 3))) x1) x2 in
  Circuit.output c e;
  let out =
    Circuit.eval_plain c
      ~inputs:[| [ Field.of_int 4; Field.of_int 5 ]; [ Field.of_int 6 ] |]
  in
  Alcotest.(check (list fe)) "(4+3)*5-6" [ Field.of_int 29 ] out

let test_circuit_bit_algebra () =
  let c = Circuit.create ~n_parties:1 in
  let a = Circuit.input c ~party:0 in
  let b = Circuit.input c ~party:0 in
  Circuit.output c (Circuit.bit_xor c a b);
  Circuit.output c (Circuit.bit_and c a b);
  Circuit.output c (Circuit.bit_not c a);
  List.iter
    (fun (x, y) ->
      let out =
        Circuit.eval_plain c ~inputs:[| [ Field.of_bool x; Field.of_bool y ] |]
      in
      Alcotest.(check (list fe))
        (Printf.sprintf "bits %b %b" x y)
        [ Field.of_bool (x <> y); Field.of_bool (x && y); Field.of_bool (not x) ]
        out)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_circuit_xor_fold () =
  let c = Circuit.create ~n_parties:1 in
  let ws = List.init 5 (fun _ -> Circuit.input c ~party:0) in
  Circuit.output c (Circuit.xor_fold c ws);
  for v = 0 to 31 do
    let bits = List.init 5 (fun i -> (v lsr i) land 1 = 1) in
    let out = Circuit.eval_plain c ~inputs:[| List.map Field.of_bool bits |] in
    let expected = List.fold_left ( <> ) false bits in
    Alcotest.(check (list fe)) (string_of_int v) [ Field.of_bool expected ] out
  done

let test_circuit_layers () =
  let c = Circuit.create ~n_parties:1 in
  let a = Circuit.input c ~party:0 in
  let b = Circuit.input c ~party:0 in
  let ab = Circuit.mul c a b in
  let abb = Circuit.mul c ab b in
  Circuit.output c abb;
  Alcotest.(check int) "two layers" 2 (Circuit.layers c);
  Alcotest.(check int) "two mults" 2 (Circuit.mul_count c)

let test_circuit_arity_checks () =
  let c = Circuit.create ~n_parties:2 in
  let _ = Circuit.input c ~party:0 in
  Alcotest.check_raises "wrong count" (Invalid_argument "Circuit.eval_plain: wrong input count")
    (fun () -> ignore (Circuit.eval_plain c ~inputs:[| []; [] |]))

(* --- BGW engine ------------------------------------------------------ *)

(* A small but representative circuit: per party one input bit;
   output0 = XOR of all, output1 = AND of first two, output2 =
   x0 + 2*x1. Exercises layered mults, linear gates, multiple outputs. *)
let demo_circuit n =
  let c = Circuit.create ~n_parties:n in
  let xs = List.init n (fun i -> Circuit.input c ~party:i) in
  Circuit.output c (Circuit.xor_fold c xs);
  (match xs with
  | a :: b :: _ ->
      Circuit.output c (Circuit.bit_and c a b);
      Circuit.output c (Circuit.add c a (Circuit.scale c (Field.of_int 2) b))
  | _ -> assert false);
  c

let run_bgw ?(n = 5) ?(thresh = 2) circuit inputs_bits =
  let protocol =
    Bgw.protocol ~name:"bgw-test" ~circuit
      ~encode:(fun ~rng:_ ~id:_ input ->
        [ (match input with Msg.Bit b -> Field.of_bool b | _ -> Field.zero) ])
      ~decode:(fun outs -> Msg.List (List.map (fun v -> Msg.Fe v) outs))
  in
  let ctx = make_ctx ~n ~thresh () in
  let inputs = Array.of_list (List.map (fun b -> Msg.Bit b) inputs_bits) in
  let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol ~inputs in
  match r.Network.outputs with
  | (_, Msg.List l) :: rest ->
      List.iter
        (fun (_, m) -> Alcotest.(check bool) "bgw consistency" true (Msg.equal m (Msg.List l)))
        rest;
      List.map (function Msg.Fe v -> v | _ -> Field.zero) l
  | _ -> Alcotest.fail "bad bgw output"

let test_bgw_matches_plain () =
  let c = demo_circuit 5 in
  List.iter
    (fun v ->
      let bits = List.init 5 (fun i -> (v lsr i) land 1 = 1) in
      let got = run_bgw c bits in
      let expected =
        Circuit.eval_plain c
          ~inputs:(Array.of_list (List.map (fun b -> [ Field.of_bool b ]) bits))
      in
      Alcotest.(check (list fe)) (Printf.sprintf "input %d" v) expected got)
    [ 0; 1; 7; 21; 30; 31 ]

let test_bgw_thresholds () =
  (* Works at t = 1 and t = 2 with n = 5, and at t = 1, n = 3. *)
  let c5 = demo_circuit 5 in
  let expected =
    Circuit.eval_plain c5
      ~inputs:(Array.of_list (List.map (fun b -> [ Field.of_bool b ]) [ true; true; false; true; false ]))
  in
  Alcotest.(check (list fe)) "t=1" expected (run_bgw ~thresh:1 c5 [ true; true; false; true; false ]);
  Alcotest.(check (list fe)) "t=2" expected (run_bgw ~thresh:2 c5 [ true; true; false; true; false ]);
  let c3 = demo_circuit 3 in
  let expected3 =
    Circuit.eval_plain c3
      ~inputs:(Array.of_list (List.map (fun b -> [ Field.of_bool b ]) [ true; false; true ]))
  in
  Alcotest.(check (list fe)) "n=3 t=1" expected3
    (run_bgw ~n:3 ~thresh:1 c3 [ true; false; true ])

let test_bgw_round_count () =
  let c = demo_circuit 5 in
  Alcotest.(check int) "rounds = 2 + layers" (2 + Circuit.layers c) (Bgw.rounds c)

let qcheck_bgw_random_circuits =
  (* Random linear+mult circuits over 3 parties, compared to plain
     evaluation. *)
  QCheck.Test.make ~name:"bgw random circuits match plain eval" ~count:15
    QCheck.(pair (list_of_size Gen.(2 -- 10) (int_bound 5)) (int_bound 7))
    (fun (ops, v) ->
      let n = 3 in
      let c = Circuit.create ~n_parties:n in
      let xs = Array.init n (fun i -> Circuit.input c ~party:i) in
      let wires = ref (Array.to_list xs) in
      let pick k = List.nth !wires (k mod List.length !wires) in
      List.iteri
        (fun idx op ->
          let a = pick (op + idx) and b = pick (op * 2) in
          let w =
            match op mod 4 with
            | 0 -> Circuit.add c a b
            | 1 -> Circuit.sub c a b
            | 2 -> Circuit.mul c a b
            | _ -> Circuit.scale c (Field.of_int (op + 1)) a
          in
          wires := w :: !wires)
        ops;
      Circuit.output c (List.hd !wires);
      let bits = List.init n (fun i -> (v lsr i) land 1 = 1) in
      let expected =
        Circuit.eval_plain c
          ~inputs:(Array.of_list (List.map (fun b -> [ Field.of_bool b ]) bits))
      in
      let got = run_bgw ~n ~thresh:1 c bits in
      List.for_all2 Field.equal expected got)

(* --- the real Theta --------------------------------------------------- *)

let test_theta_circuit_matches_g () =
  (* The g-circuit, evaluated in the clear, agrees with the reference
     Theta.g for every input, flag pattern and coin at n = 4. *)
  let n = 4 in
  let c = Sb_protocols.Theta_real.circuit ~n in
  List.iter
    (fun xv ->
      List.iter
        (fun bv ->
          List.iter
            (fun coin ->
              (* encode rho so that xor rho_i = coin: rho_0 = coin. *)
              let inputs =
                Array.init n (fun i ->
                    [
                      Field.of_bool ((xv lsr i) land 1 = 1);
                      Field.of_bool ((bv lsr i) land 1 = 1);
                      Field.of_bool (i = 0 && coin);
                    ])
              in
              let got = Circuit.eval_plain c ~inputs in
              let v = Array.init n (fun i -> ((xv lsr i) land 1 = 1, (bv lsr i) land 1 = 1)) in
              let expected = Sb_protocols.Theta.g ~r:coin v in
              Alcotest.(check (list fe))
                (Printf.sprintf "x=%d b=%d r=%b" xv bv coin)
                (Array.to_list (Array.map Field.of_bool expected))
                got)
            [ false; true ])
        [ 0; 1; 3; 5; 9; 15 ])
    [ 0; 6; 10; 15 ]

let test_pi_g_real_honest () =
  let n = 5 in
  let p = Sb_protocols.Theta_real.protocol ~n in
  List.iter
    (fun v ->
      let ctx = make_ctx ~n ~thresh:2 () in
      let x = Sb_util.Bitvec.of_int n v in
      let inputs = Array.init n (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs in
      match r.Network.outputs with
      | (_, m) :: _ ->
          Alcotest.(check string) "honest pi-g-bgw is parallel broadcast"
            (Sb_util.Bitvec.to_string x)
            (Sb_util.Bitvec.to_string (Msg.to_bitvec_exn m))
      | [] -> Alcotest.fail "no outputs")
    [ 0; 13; 31 ]

let test_pi_g_real_astar_forces_parity () =
  (* Claim 6.6 end-to-end over the REAL MPC substrate. *)
  let n = 5 in
  let p = Sb_protocols.Theta_real.protocol ~n in
  let astar = Sb_protocols.Theta_real.a_star_real ~n ~corrupt:(3, 4) in
  for trial = 1 to 10 do
    let ctx = make_ctx ~n ~thresh:2 () in
    let rng = Sb_util.Rng.create (6000 + trial) in
    let inputs = Array.init n (fun _ -> Msg.Bit (Sb_util.Rng.bool rng)) in
    let r = Network.run ctx ~rng ~protocol:p ~adversary:astar ~inputs () in
    match r.Network.outputs with
    | (_, m) :: _ ->
        Alcotest.(check bool) "xor of announced = 0" false
          (Sb_util.Bitvec.parity (Msg.to_bitvec_exn m))
    | [] -> Alcotest.fail "no outputs"
  done

let () =
  Alcotest.run "sb_mpc"
    [
      ( "circuit",
        [
          Alcotest.test_case "plain eval" `Quick test_circuit_plain_eval;
          Alcotest.test_case "bit algebra" `Quick test_circuit_bit_algebra;
          Alcotest.test_case "xor fold" `Quick test_circuit_xor_fold;
          Alcotest.test_case "layers" `Quick test_circuit_layers;
          Alcotest.test_case "arity checks" `Quick test_circuit_arity_checks;
        ] );
      ( "bgw",
        [
          Alcotest.test_case "matches plain eval" `Quick test_bgw_matches_plain;
          Alcotest.test_case "thresholds" `Quick test_bgw_thresholds;
          Alcotest.test_case "round count" `Quick test_bgw_round_count;
          QCheck_alcotest.to_alcotest qcheck_bgw_random_circuits;
        ] );
      ( "theta-real",
        [
          Alcotest.test_case "circuit = g" `Quick test_theta_circuit_matches_g;
          Alcotest.test_case "honest parallel broadcast" `Quick test_pi_g_real_honest;
          Alcotest.test_case "A* forces parity over BGW" `Quick
            test_pi_g_real_astar_forces_parity;
        ] );
    ]
