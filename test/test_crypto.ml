(* Tests for sb_crypto: SHA-256 FIPS vectors, field axioms, polynomial
   interpolation, Shamir sharing, the Feldman group and VSS, both
   commitment backends, and the ideal signature registry. *)

open Sb_crypto

let rng () = Sb_util.Rng.create 12345

(* --- SHA-256 ------------------------------------------------------ *)

let test_sha_fips_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]
  in
  List.iter (fun (m, d) -> Alcotest.(check string) m d (Sha256.hex m)) cases

let test_sha_million_a () =
  (* FIPS 180-4 long vector: one million 'a's. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed ctx chunk
  done;
  Alcotest.(check string) "1M a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_sha_incremental_matches_oneshot () =
  let msg = String.init 300 (fun i -> Char.chr (i mod 251)) in
  (* Every split point must give the same digest as the one-shot. *)
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub msg 0 cut);
      Sha256.feed ctx (String.sub msg cut (String.length msg - cut));
      Alcotest.(check string)
        (Printf.sprintf "split at %d" cut)
        (Sha256.to_hex (Sha256.digest msg))
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 300 ]

let test_sha_avalanche () =
  let a = Sha256.digest "simultaneous broadcast" in
  let b = Sha256.digest "simultaneous broadcasu" in
  let diff = ref 0 in
  String.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code b.[i] in
      for bit = 0 to 7 do
        if (x lsr bit) land 1 = 1 then incr diff
      done)
    a;
  (* ~128 of 256 bits should flip; accept a generous window. *)
  Alcotest.(check bool) "avalanche" true (!diff > 80 && !diff < 176)

let test_sha_xor_strings () =
  let a = "\x01\x02\xff" and b = "\x01\x0f\x0f" in
  Alcotest.(check string) "xor" "\x00\x0d\xf0" (Sha256.xor_strings a b)

(* --- Field -------------------------------------------------------- *)

let fe = Alcotest.testable (fun fmt x -> Field.pp fmt x) Field.equal

let test_field_basic () =
  Alcotest.check fe "1+(-1)=0" Field.zero Field.(add one (neg one));
  Alcotest.check fe "p reduces to 0" Field.zero (Field.of_int Field.p);
  Alcotest.check fe "negatives reduce" (Field.of_int (Field.p - 1)) (Field.of_int (-1));
  let x = Field.of_int 123456789 in
  Alcotest.check fe "x * x^-1 = 1" Field.one (Field.mul x (Field.inv x));
  Alcotest.check fe "x / x = 1" Field.one (Field.div x x)

let test_field_pow () =
  let x = Field.of_int 3 in
  Alcotest.check fe "3^0" Field.one (Field.pow x 0);
  Alcotest.check fe "3^5" (Field.of_int 243) (Field.pow x 5);
  (* Fermat: x^(p-1) = 1. *)
  Alcotest.check fe "fermat" Field.one (Field.pow x (Field.p - 1))

let test_field_inv_zero_raises () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Field.inv Field.zero))

let arbitrary_fe = QCheck.map (fun i -> Field.of_int i) QCheck.(int_range 0 (Field.p - 1))

let qcheck_field_assoc =
  QCheck.Test.make ~name:"field mul associative" ~count:1000
    QCheck.(triple arbitrary_fe arbitrary_fe arbitrary_fe)
    (fun (a, b, c) -> Field.(equal (mul a (mul b c)) (mul (mul a b) c)))

let qcheck_field_distrib =
  QCheck.Test.make ~name:"field distributive" ~count:1000
    QCheck.(triple arbitrary_fe arbitrary_fe arbitrary_fe)
    (fun (a, b, c) -> Field.(equal (mul a (add b c)) (add (mul a b) (mul a c))))

let qcheck_field_inverse =
  QCheck.Test.make ~name:"field inverse" ~count:1000 arbitrary_fe (fun a ->
      Field.equal a Field.zero || Field.(equal one (mul a (inv a))))

let qcheck_field_add_comm =
  QCheck.Test.make ~name:"field add commutative" ~count:1000
    QCheck.(pair arbitrary_fe arbitrary_fe)
    (fun (a, b) -> Field.(equal (add a b) (add b a)))

(* --- Poly --------------------------------------------------------- *)

let test_poly_eval () =
  (* f(X) = 2 + 3X + X^2; f(5) = 42. *)
  let f = Poly.of_coeffs [| Field.of_int 2; Field.of_int 3; Field.of_int 1 |] in
  Alcotest.check fe "horner" (Field.of_int 42) (Poly.eval f (Field.of_int 5))

let test_poly_normalisation () =
  let f = Poly.of_coeffs [| Field.of_int 7; Field.zero; Field.zero |] in
  Alcotest.(check int) "degree" 0 (Poly.degree f);
  Alcotest.(check int) "zero degree" (-1) (Poly.degree Poly.zero)

let test_poly_interpolate_recovers () =
  let rng = rng () in
  let f = Poly.random rng ~degree:4 ~constant:(Field.of_int 99) in
  let pts = List.init 5 (fun i -> (Field.of_int (i + 1), Poly.eval f (Field.of_int (i + 1)))) in
  Alcotest.(check bool) "exact recovery" true (Poly.equal f (Poly.interpolate pts));
  Alcotest.check fe "value at 0" (Field.of_int 99) (Poly.interpolate_at pts Field.zero)

let test_poly_interpolate_rejects_duplicates () =
  let pts = [ (Field.one, Field.one); (Field.one, Field.zero) ] in
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate abscissae")
    (fun () -> ignore (Poly.interpolate pts))

let qcheck_poly_add_eval =
  QCheck.Test.make ~name:"poly add is pointwise" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 6) arbitrary_fe)
        (list_of_size Gen.(1 -- 6) arbitrary_fe)
        arbitrary_fe)
    (fun (ca, cb, x) ->
      let pa = Poly.of_coeffs (Array.of_list ca) and pb = Poly.of_coeffs (Array.of_list cb) in
      Field.equal (Poly.eval (Poly.add pa pb) x) (Field.add (Poly.eval pa x) (Poly.eval pb x)))

let qcheck_poly_mul_eval =
  QCheck.Test.make ~name:"poly mul is pointwise" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 5) arbitrary_fe)
        (list_of_size Gen.(1 -- 5) arbitrary_fe)
        arbitrary_fe)
    (fun (ca, cb, x) ->
      let pa = Poly.of_coeffs (Array.of_list ca) and pb = Poly.of_coeffs (Array.of_list cb) in
      Field.equal (Poly.eval (Poly.mul pa pb) x) (Field.mul (Poly.eval pa x) (Poly.eval pb x)))

(* --- Lagrange cache / eval_many ----------------------------------- *)

(* Distinct abscissae: dedup a small int list, keep it non-empty. *)
let arbitrary_points =
  QCheck.map
    (fun (xs, ys, y0) ->
      let xs = List.sort_uniq Int.compare xs in
      let ys = y0 :: ys in
      List.mapi (fun i x -> (Field.of_int (x + 1), List.nth ys (i mod List.length ys))) xs)
    QCheck.(
      triple (list_of_size Gen.(0 -- 6) (int_range 0 40)) (list_of_size Gen.(0 -- 6) arbitrary_fe)
        arbitrary_fe)

let qcheck_lagrange_cached_eq_uncached =
  QCheck.Test.make ~name:"cached interpolate_at = uncached" ~count:300
    QCheck.(pair arbitrary_points arbitrary_fe)
    (fun (pts, x0) ->
      Field.equal (Lagrange.interpolate_at pts x0) (Poly.interpolate_at pts x0)
      && Field.equal (Lagrange.interpolate_at pts Field.zero)
           (Poly.interpolate_at pts Field.zero))

let test_lagrange_single_point () =
  (* Degree-0 interpolation: one point determines the constant. *)
  let pts = [ (Field.of_int 3, Field.of_int 17) ] in
  Alcotest.check fe "single point at 0" (Field.of_int 17) (Lagrange.interpolate_at pts Field.zero);
  Alcotest.check fe "single point elsewhere" (Field.of_int 17)
    (Lagrange.interpolate_at pts (Field.of_int 9))

let test_lagrange_rejects_duplicates () =
  let pts = [ (Field.one, Field.one); (Field.one, Field.zero) ] in
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate abscissae")
    (fun () -> ignore (Lagrange.interpolate_at pts Field.zero))

let test_lagrange_at_zero_matches_direct () =
  (* The BGW recombination vector: at_zero n against the classical
     num/den product formula. *)
  List.iter
    (fun n ->
      let lam = Lagrange.at_zero n in
      Array.iteri
        (fun i li ->
          let xi = Field.of_int (i + 1) in
          let num = ref Field.one and den = ref Field.one in
          for j = 0 to n - 1 do
            if j <> i then begin
              let xj = Field.of_int (j + 1) in
              num := Field.mul !num xj;
              den := Field.mul !den (Field.sub xj xi)
            end
          done;
          Alcotest.check fe (Printf.sprintf "lambda_%d (n=%d)" i n) (Field.div !num !den) li)
        lam)
    [ 1; 2; 5; 16 ]

let qcheck_eval_many_eq_horner =
  QCheck.Test.make ~name:"eval_many = per-point Horner" ~count:300
    QCheck.(pair (list_of_size Gen.(0 -- 6) arbitrary_fe) (int_range 1 12))
    (fun (coeffs, n) ->
      let p = Poly.of_coeffs (Array.of_list coeffs) in
      let many = Poly.eval_many p n in
      Array.length many = n
      && Array.for_all2 Field.equal many
           (Array.init n (fun i -> Poly.eval p (Field.of_int (i + 1)))))

let test_eval_many_degenerate () =
  (* Constant (threshold = 0) and zero polynomials. *)
  let c = Poly.constant (Field.of_int 5) in
  Array.iter (fun v -> Alcotest.check fe "constant" (Field.of_int 5) v) (Poly.eval_many c 7);
  Array.iter (fun v -> Alcotest.check fe "zero poly" Field.zero v) (Poly.eval_many Poly.zero 4);
  Alcotest.(check int) "n=1" 1 (Array.length (Poly.eval_many c 1))

(* --- Shamir ------------------------------------------------------- *)

let test_shamir_reconstruct () =
  let rng = rng () in
  let secret = Field.of_int 777 in
  let shares, _ = Shamir.share rng ~threshold:2 ~parties:5 ~secret in
  (* Any 3 of 5 shares reconstruct. *)
  List.iter
    (fun idxs ->
      let subset = List.map (fun i -> shares.(i)) idxs in
      Alcotest.check fe "reconstruct" secret (Shamir.reconstruct subset))
    [ [ 0; 1; 2 ]; [ 2; 3; 4 ]; [ 0; 2; 4 ]; [ 1; 3; 4 ] ]

let test_shamir_t_shares_vary () =
  (* Two sharings of different secrets must not produce systematically
     equal share values at any single index. *)
  let rng = rng () in
  let differs = ref 0 in
  for _ = 1 to 50 do
    let s0, _ = Shamir.share rng ~threshold:1 ~parties:3 ~secret:Field.zero in
    let s1, _ = Shamir.share rng ~threshold:1 ~parties:3 ~secret:Field.one in
    if not (Field.equal s0.(0).Shamir.value s1.(0).Shamir.value) then incr differs
  done;
  Alcotest.(check bool) "shares vary" true (!differs > 40)

let test_shamir_threshold_zero () =
  let rng = rng () in
  let shares, _ = Shamir.share rng ~threshold:0 ~parties:3 ~secret:(Field.of_int 5) in
  Array.iter (fun s -> Alcotest.check fe "constant poly" (Field.of_int 5) s.Shamir.value) shares

let qcheck_shamir_roundtrip =
  QCheck.Test.make ~name:"shamir share/reconstruct" ~count:100
    QCheck.(pair arbitrary_fe (int_range 1 4))
    (fun (secret, t) ->
      let rng = Sb_util.Rng.create (Field.to_int secret + t) in
      let n = (2 * t) + 1 in
      let shares, _ = Shamir.share rng ~threshold:t ~parties:n ~secret in
      let subset = Array.to_list (Array.sub shares 0 (t + 1)) in
      Field.equal secret (Shamir.reconstruct subset))

(* --- Modgroup / Feldman ------------------------------------------- *)

let test_modgroup_order () =
  Alcotest.(check bool) "g is member" true (Modgroup.is_member (Modgroup.to_int Modgroup.g));
  Alcotest.(check bool) "g^order = 1" true
    (Modgroup.equal Modgroup.one (Modgroup.pow_int Modgroup.g Modgroup.order));
  Alcotest.(check bool) "2 is not a member" false (Modgroup.is_member 2)

let test_modgroup_inv () =
  let h = Modgroup.pow_int Modgroup.g 12345 in
  Alcotest.(check bool) "h * h^-1 = 1" true
    (Modgroup.equal Modgroup.one (Modgroup.mul h (Modgroup.inv h)))

let arbitrary_member =
  (* Random subgroup members as g^r: every member is a power of g. *)
  QCheck.map (fun r -> Modgroup.pow_int Modgroup.g r) QCheck.(int_range 1 (Modgroup.order - 1))

let qcheck_modgroup_inv_matches_pow =
  (* The extended-Euclid inverse against the old h^(q-1) definition. *)
  QCheck.Test.make ~name:"euclid inv = pow (order-1)" ~count:300 arbitrary_member (fun h ->
      Modgroup.equal (Modgroup.inv h) (Modgroup.pow_int h (Modgroup.order - 1)))

let qcheck_modgroup_pow_g_windowed =
  QCheck.Test.make ~name:"fixed-base pow_g = naive pow" ~count:500 arbitrary_fe (fun e ->
      Modgroup.equal (Modgroup.pow_g e) (Modgroup.pow Modgroup.g e))

let qcheck_modgroup_pow_h_windowed =
  QCheck.Test.make ~name:"fixed-base pow_h = naive pow" ~count:500 arbitrary_fe (fun e ->
      Modgroup.equal (Modgroup.pow_h e) (Modgroup.pow Modgroup.h e))

let qcheck_modgroup_pow_gh_fused =
  QCheck.Test.make ~name:"pow_gh = mul (pow g a) (pow h b)" ~count:500
    QCheck.(pair arbitrary_fe arbitrary_fe)
    (fun (a, b) ->
      Modgroup.equal (Modgroup.pow_gh a b)
        (Modgroup.mul (Modgroup.pow Modgroup.g a) (Modgroup.pow Modgroup.h b)))

let test_modgroup_pow_boundaries () =
  (* Window-table edges: exponents 0, 1, 15, 16, and q-1. *)
  List.iter
    (fun e ->
      let e = Field.of_int e in
      Alcotest.(check bool) "pow_g edge" true
        (Modgroup.equal (Modgroup.pow_g e) (Modgroup.pow Modgroup.g e));
      Alcotest.(check bool) "pow_gh edge" true
        (Modgroup.equal (Modgroup.pow_gh e e)
           (Modgroup.mul (Modgroup.pow Modgroup.g e) (Modgroup.pow Modgroup.h e))))
    [ 0; 1; 15; 16; 255; 256; Field.p - 1 ]

(* --- Montgomery arithmetic ----------------------------------------- *)

let qcheck_mont_roundtrip =
  QCheck.Test.make ~name:"REDC round-trip: to_elt (of_elt x) = x" ~count:1000
    arbitrary_member (fun x ->
      Modgroup.equal (Modgroup.Mont.to_elt (Modgroup.Mont.of_elt x)) x)

let qcheck_mont_mul_matches_group =
  QCheck.Test.make ~name:"mont mul = group mul" ~count:1000
    QCheck.(pair arbitrary_member arbitrary_member)
    (fun (a, b) ->
      Modgroup.equal
        (Modgroup.Mont.to_elt
           (Modgroup.Mont.mul (Modgroup.Mont.of_elt a) (Modgroup.Mont.of_elt b)))
        (Modgroup.mul a b))

let qcheck_mont_pow_matches_naive =
  (* Arbitrary bases dispatch to the Montgomery ladder in [pow]; the
     division ladder [pow_naive] is the reference. *)
  QCheck.Test.make ~name:"arbitrary-base pow = naive pow" ~count:500
    QCheck.(pair arbitrary_member arbitrary_fe)
    (fun (b, e) -> Modgroup.equal (Modgroup.pow b e) (Modgroup.pow_naive b e))

let test_mont_pow_boundaries () =
  (* Exponent edges for a non-g/h base: 0, 1, 2, q-2, q-1. *)
  let b = Modgroup.pow_int Modgroup.g 777 in
  List.iter
    (fun e ->
      let e = Field.of_int e in
      Alcotest.(check bool) "pow edge = naive" true
        (Modgroup.equal (Modgroup.pow b e) (Modgroup.pow_naive b e)))
    [ 0; 1; 2; Field.p - 2; Field.p - 1 ];
  Alcotest.(check bool) "mont one is the identity" true
    (Modgroup.equal Modgroup.one (Modgroup.Mont.to_elt Modgroup.Mont.one));
  let m = Modgroup.Mont.of_elt b in
  Alcotest.(check bool) "in-domain m^0 = 1" true
    (Modgroup.equal Modgroup.one (Modgroup.Mont.to_elt (Modgroup.Mont.pow m 0)));
  Alcotest.(check bool) "in-domain m^1 = b" true
    (Modgroup.equal b (Modgroup.Mont.to_elt (Modgroup.Mont.pow m 1)))

let test_modgroup_exponent_arith () =
  (* g^a * g^b = g^(a+b mod q). *)
  let a = Field.of_int 1000000 and b = Field.of_int (Field.p - 3) in
  let lhs = Modgroup.mul (Modgroup.commit_g a) (Modgroup.commit_g b) in
  Alcotest.(check bool) "homomorphic" true
    (Modgroup.equal lhs (Modgroup.commit_g (Field.add a b)))

let test_feldman_verifies_honest () =
  let rng = rng () in
  let shares, c = Feldman.deal rng ~threshold:2 ~parties:5 ~secret:(Field.of_int 42) in
  Array.iter
    (fun s -> Alcotest.(check bool) "share verifies" true (Feldman.verify_share c s))
    shares;
  Alcotest.(check bool) "secret verifies" true (Feldman.verify_secret c (Field.of_int 42));
  Alcotest.(check bool) "wrong secret rejected" false
    (Feldman.verify_secret c (Field.of_int 43))

let test_feldman_rejects_bad_share () =
  let rng = rng () in
  let shares, c = Feldman.deal rng ~threshold:2 ~parties:5 ~secret:(Field.of_int 7) in
  let bad = { shares.(1) with Shamir.value = Field.add shares.(1).Shamir.value Field.one } in
  Alcotest.(check bool) "tampered share rejected" false (Feldman.verify_share c bad)

let test_feldman_binding_across_sharings () =
  let rng = rng () in
  let _, c0 = Feldman.deal rng ~threshold:1 ~parties:3 ~secret:Field.zero in
  let _, c1 = Feldman.deal rng ~threshold:1 ~parties:3 ~secret:Field.one in
  Alcotest.(check bool) "distinct commitments" false (Array.for_all2 Modgroup.equal c0 c1)

let qcheck_feldman_all_shares_verify =
  QCheck.Test.make ~name:"feldman honest shares verify" ~count:50
    QCheck.(pair arbitrary_fe (int_range 1 3))
    (fun (secret, t) ->
      let rng = Sb_util.Rng.create ((Field.to_int secret * 31) + t) in
      let n = (2 * t) + 1 in
      let shares, c = Feldman.deal rng ~threshold:t ~parties:n ~secret in
      Array.for_all (fun s -> Feldman.verify_share c s) shares)

(* --- Pedersen ------------------------------------------------------ *)

let test_pedersen_verifies_honest () =
  let rng = rng () in
  let d = Pedersen.deal rng ~threshold:2 ~parties:5 ~secret:(Field.of_int 1) in
  Array.iter
    (fun s -> Alcotest.(check bool) "share verifies" true (Pedersen.verify_share d.Pedersen.commitment s))
    d.Pedersen.shares;
  Alcotest.(check bool) "opening verifies" true
    (Pedersen.verify_opening d.Pedersen.commitment ~secret:(Field.of_int 1)
       ~blind:d.Pedersen.blind0)

let test_pedersen_rejects_tampering () =
  let rng = rng () in
  let d = Pedersen.deal rng ~threshold:2 ~parties:5 ~secret:(Field.of_int 7) in
  let s = d.Pedersen.shares.(2) in
  Alcotest.(check bool) "tampered value" false
    (Pedersen.verify_share d.Pedersen.commitment
       { s with Pedersen.value = Field.add s.Pedersen.value Field.one });
  Alcotest.(check bool) "tampered blind" false
    (Pedersen.verify_share d.Pedersen.commitment
       { s with Pedersen.blind = Field.add s.Pedersen.blind Field.one });
  Alcotest.(check bool) "wrong secret opening" false
    (Pedersen.verify_opening d.Pedersen.commitment ~secret:(Field.of_int 8)
       ~blind:d.Pedersen.blind0)

let test_pedersen_reconstruct_both () =
  let rng = rng () in
  let secret = Field.of_int 123 in
  let d = Pedersen.deal rng ~threshold:2 ~parties:5 ~secret in
  let subset = [ d.Pedersen.shares.(0); d.Pedersen.shares.(2); d.Pedersen.shares.(4) ] in
  Alcotest.check fe "value reconstructs" secret (Pedersen.reconstruct subset);
  Alcotest.check fe "blind reconstructs" d.Pedersen.blind0 (Pedersen.reconstruct_blind subset)

let test_pedersen_hiding_shape () =
  (* Perfectly hiding: commitments to 0 and to 1 under fresh blinding
     are both valid group-element vectors; no single component reveals
     the secret bit the way Feldman's g^secret does. We check the
     structural property that the constant-term commitments of many
     0-deals and 1-deals cover overlapping values. *)
  let sample secret seed =
    let rng = Sb_util.Rng.create seed in
    let d = Pedersen.deal rng ~threshold:1 ~parties:3 ~secret in
    Modgroup.to_int d.Pedersen.commitment.(0)
  in
  let zeros = List.init 40 (fun i -> sample Field.zero (1000 + i)) in
  let ones = List.init 40 (fun i -> sample Field.one (2000 + i)) in
  (* All distinct (blinding randomises), none repeated across lists. *)
  Alcotest.(check int) "0-commitments distinct" 40
    (List.length (List.sort_uniq Int.compare zeros));
  Alcotest.(check int) "1-commitments distinct" 40
    (List.length (List.sort_uniq Int.compare ones))

let qcheck_pedersen_roundtrip =
  QCheck.Test.make ~name:"pedersen deal/verify/reconstruct" ~count:40
    QCheck.(pair arbitrary_fe (int_range 1 3))
    (fun (secret, t) ->
      let rng = Sb_util.Rng.create ((Field.to_int secret * 7) + t) in
      let nparties = (2 * t) + 1 in
      let d = Pedersen.deal rng ~threshold:t ~parties:nparties ~secret in
      Array.for_all (Pedersen.verify_share d.Pedersen.commitment) d.Pedersen.shares
      && Field.equal secret
           (Pedersen.reconstruct (Array.to_list (Array.sub d.Pedersen.shares 0 (t + 1)))))

(* --- Commit ------------------------------------------------------- *)

let test_commit_roundtrip backend () =
  let s = Commit.create backend in
  let rng = rng () in
  let c, o = Commit.commit s rng "hello" in
  Alcotest.(check bool) "verifies" true (Commit.verify s c o);
  Alcotest.(check bool) "wrong value rejected" false
    (Commit.verify s c { o with Commit.value = "world" })

let test_commit_hiding backend () =
  (* Same value twice gives different commitment strings. *)
  let s = Commit.create backend in
  let rng = rng () in
  let c1, _ = Commit.commit s rng "v" in
  let c2, _ = Commit.commit s rng "v" in
  Alcotest.(check bool) "distinct commitments" false (String.equal c1 c2)

let test_commit_extract () =
  let s = Commit.create Commit.Ideal in
  let rng = rng () in
  let c, _ = Commit.commit s rng "payload" in
  Alcotest.(check (option string)) "extract" (Some "payload") (Commit.extract s c);
  Alcotest.(check (option string)) "unknown handle" None (Commit.extract s "nonsense")

let test_commit_hash_extract_records_oracle () =
  let s = Commit.create Commit.Hash in
  let rng = rng () in
  let c, _ = Commit.commit s rng "seen" in
  Alcotest.(check (option string)) "extracts own commits" (Some "seen") (Commit.extract s c);
  Alcotest.(check (option string)) "blind on foreign strings" None
    (Commit.extract s (String.make 32 'x'))

let test_commit_equivocation () =
  let s = Commit.create Commit.Ideal in
  let rng = rng () in
  let c = Commit.commit_placeholder s rng in
  let o = Commit.equivocate s c "late-bound" in
  Alcotest.(check bool) "equivocated opening verifies" true (Commit.verify s c o);
  Alcotest.check_raises "double bind rejected"
    (Invalid_argument "Commit.equivocate: handle already bound") (fun () ->
      ignore (Commit.equivocate s c "other"))

let test_commit_hash_no_equivocation () =
  let s = Commit.create Commit.Hash in
  let rng = rng () in
  Alcotest.check_raises "hash backend placeholder"
    (Invalid_argument "Commit.commit_placeholder: Hash backend is not equivocable") (fun () ->
      ignore (Commit.commit_placeholder s rng))

let test_commit_binding_hash () =
  let s = Commit.create Commit.Hash in
  let rng = rng () in
  let c, o = Commit.commit s rng "bind-me" in
  Alcotest.(check bool) "other nonce rejected" false
    (Commit.verify s c
       { o with Commit.nonce = String.make (String.length o.Commit.nonce) '\000' })

(* --- Sig ---------------------------------------------------------- *)

let test_sig_verify () =
  let rng = rng () in
  let s = Sig.create rng ~n:4 in
  let m = "round-1 value" in
  let signature = Sig.sign s ~signer:2 m in
  Alcotest.(check bool) "verifies" true (Sig.verify s ~signer:2 m signature);
  Alcotest.(check bool) "other signer rejected" false (Sig.verify s ~signer:1 m signature);
  Alcotest.(check bool) "other message rejected" false
    (Sig.verify s ~signer:2 "tampered" signature);
  Alcotest.(check bool) "out of range signer" false (Sig.verify s ~signer:7 m signature)

let test_sig_schemes_independent () =
  let rng = rng () in
  let s1 = Sig.create rng ~n:2 and s2 = Sig.create rng ~n:2 in
  let m = "msg" in
  Alcotest.(check bool) "cross-scheme rejected" false
    (Sig.verify s2 ~signer:0 m (Sig.sign s1 ~signer:0 m))

let () =
  Alcotest.run "sb_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha_fips_vectors;
          Alcotest.test_case "million a's" `Slow test_sha_million_a;
          Alcotest.test_case "incremental = one-shot" `Quick test_sha_incremental_matches_oneshot;
          Alcotest.test_case "avalanche" `Quick test_sha_avalanche;
          Alcotest.test_case "xor_strings" `Quick test_sha_xor_strings;
        ] );
      ( "field",
        [
          Alcotest.test_case "basic identities" `Quick test_field_basic;
          Alcotest.test_case "pow" `Quick test_field_pow;
          Alcotest.test_case "inv zero raises" `Quick test_field_inv_zero_raises;
          QCheck_alcotest.to_alcotest qcheck_field_assoc;
          QCheck_alcotest.to_alcotest qcheck_field_distrib;
          QCheck_alcotest.to_alcotest qcheck_field_inverse;
          QCheck_alcotest.to_alcotest qcheck_field_add_comm;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "normalisation" `Quick test_poly_normalisation;
          Alcotest.test_case "interpolation recovers" `Quick test_poly_interpolate_recovers;
          Alcotest.test_case "duplicate abscissae" `Quick test_poly_interpolate_rejects_duplicates;
          QCheck_alcotest.to_alcotest qcheck_poly_add_eval;
          QCheck_alcotest.to_alcotest qcheck_poly_mul_eval;
        ] );
      ( "lagrange",
        [
          Alcotest.test_case "single point" `Quick test_lagrange_single_point;
          Alcotest.test_case "duplicate abscissae" `Quick test_lagrange_rejects_duplicates;
          Alcotest.test_case "at_zero = num/den formula" `Quick test_lagrange_at_zero_matches_direct;
          Alcotest.test_case "eval_many degenerate" `Quick test_eval_many_degenerate;
          QCheck_alcotest.to_alcotest qcheck_lagrange_cached_eq_uncached;
          QCheck_alcotest.to_alcotest qcheck_eval_many_eq_horner;
        ] );
      ( "shamir",
        [
          Alcotest.test_case "reconstruct" `Quick test_shamir_reconstruct;
          Alcotest.test_case "shares vary" `Quick test_shamir_t_shares_vary;
          Alcotest.test_case "threshold zero" `Quick test_shamir_threshold_zero;
          QCheck_alcotest.to_alcotest qcheck_shamir_roundtrip;
        ] );
      ( "feldman",
        [
          Alcotest.test_case "group order" `Quick test_modgroup_order;
          Alcotest.test_case "group inverse" `Quick test_modgroup_inv;
          Alcotest.test_case "exponent homomorphism" `Quick test_modgroup_exponent_arith;
          Alcotest.test_case "window-table boundaries" `Quick test_modgroup_pow_boundaries;
          QCheck_alcotest.to_alcotest qcheck_modgroup_inv_matches_pow;
          QCheck_alcotest.to_alcotest qcheck_modgroup_pow_g_windowed;
          QCheck_alcotest.to_alcotest qcheck_modgroup_pow_h_windowed;
          QCheck_alcotest.to_alcotest qcheck_modgroup_pow_gh_fused;
          Alcotest.test_case "montgomery boundaries" `Quick test_mont_pow_boundaries;
          QCheck_alcotest.to_alcotest qcheck_mont_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_mont_mul_matches_group;
          QCheck_alcotest.to_alcotest qcheck_mont_pow_matches_naive;
          Alcotest.test_case "honest shares verify" `Quick test_feldman_verifies_honest;
          Alcotest.test_case "bad share rejected" `Quick test_feldman_rejects_bad_share;
          Alcotest.test_case "binding across sharings" `Quick test_feldman_binding_across_sharings;
          QCheck_alcotest.to_alcotest qcheck_feldman_all_shares_verify;
        ] );
      ( "pedersen",
        [
          Alcotest.test_case "honest verifies" `Quick test_pedersen_verifies_honest;
          Alcotest.test_case "tampering rejected" `Quick test_pedersen_rejects_tampering;
          Alcotest.test_case "reconstruct value and blind" `Quick test_pedersen_reconstruct_both;
          Alcotest.test_case "hiding shape" `Quick test_pedersen_hiding_shape;
          QCheck_alcotest.to_alcotest qcheck_pedersen_roundtrip;
        ] );
      ( "commit",
        [
          Alcotest.test_case "hash roundtrip" `Quick (test_commit_roundtrip Commit.Hash);
          Alcotest.test_case "ideal roundtrip" `Quick (test_commit_roundtrip Commit.Ideal);
          Alcotest.test_case "hash hiding" `Quick (test_commit_hiding Commit.Hash);
          Alcotest.test_case "ideal hiding" `Quick (test_commit_hiding Commit.Ideal);
          Alcotest.test_case "ideal extraction" `Quick test_commit_extract;
          Alcotest.test_case "hash oracle extraction" `Quick test_commit_hash_extract_records_oracle;
          Alcotest.test_case "equivocation" `Quick test_commit_equivocation;
          Alcotest.test_case "hash not equivocable" `Quick test_commit_hash_no_equivocation;
          Alcotest.test_case "hash binding" `Quick test_commit_binding_hash;
        ] );
      ( "sig",
        [
          Alcotest.test_case "verify" `Quick test_sig_verify;
          Alcotest.test_case "schemes independent" `Quick test_sig_schemes_independent;
        ] );
    ]
