(* End-to-end tests against the built simbcast binary (path in
   argv.(1)): strict argument parsing (no subcommand may silently
   accept trailing junk), traced-run output validity, report inertness
   under tracing at jobs 1 and 2, perf-diff exit codes, and the
   profile subcommand. *)

open Sb_obs

let simbcast = ref ""

(* cmdliner's exit code for a command-line parse error. *)
let cli_error = 124

let command ?out args =
  let redirect = match out with None -> "/dev/null" | Some f -> Filename.quote f in
  Sys.command
    (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote !simbcast)
       (String.concat " " (List.map Filename.quote args))
       redirect)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let parse_file path =
  match Json.of_string (read_file path) with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" path e

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let temp name = Filename.temp_file "simbcast_cli" name

(* --- strict argument parsing --------------------------------------- *)

let test_trailing_args_rejected () =
  List.iter
    (fun args ->
      Alcotest.(check int)
        ("rejects: " ^ String.concat " " args)
        cli_error (command args))
    [
      [ "list"; "junk" ];
      [ "run"; "bracha"; "junk" ];
      [ "run"; "--bogus-flag" ];
      [ "classify"; "junk" ];
      [ "exact"; "junk" ];
      [ "test"; "junk" ];
      [ "experiment"; "e1"; "junk" ];
      [ "fault-sweep"; "junk" ];
      [ "profile"; "e1"; "junk" ];
      [ "sessions"; "bracha"; "junk" ];
      [ "sessions" ];
      [ "workload"; "election"; "junk" ];
      [ "workload" ];
      [ "check"; "bracha"; "junk" ];
      [ "check" ];
      [ "perf-diff"; "a.json"; "b.json"; "junk" ];
      [ "perf-diff"; "only-one.json" ];
      [ "profile" ];
    ]

(* --- traced run ----------------------------------------------------- *)

let test_run_trace_output () =
  let trace = temp ".trace.json" in
  Alcotest.(check int) "traced run exits 0" 0
    (command [ "run"; "bracha"; "-n"; "8"; "--seed"; "3"; "--trace"; trace ]);
  let v = parse_file trace in
  let events = Option.bind (Json.member "traceEvents" v) Json.to_list_opt |> Option.get in
  let ph e = Option.bind (Json.member "ph" e) Json.to_str_opt in
  let count p = List.length (List.filter (fun e -> ph e = Some p) events) in
  Alcotest.(check bool) "span events present" true (count "X" > 0);
  Alcotest.(check bool) "flow events present" true (count "s" > 0);
  Alcotest.(check int) "flow starts pair with finishes" (count "s") (count "f");
  let cats =
    List.filter_map (fun e -> Option.bind (Json.member "cat" e) Json.to_str_opt) events
  in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " cat present") true (List.mem c cats))
    [ "session"; "round"; "party"; "phase" ];
  Sys.remove trace

(* --- tracing leaves reports unchanged ------------------------------- *)

(* The deterministic surface of a run report: experiment outcomes
   (minus wall clock), the comm totals, and the metric counters.
   Gauges, histograms and the trace block are wall-clock derived, and
   the par.domain<k>.samples counters record which pool domain drained
   which chunk — scheduling accounting that varies between identical
   runs (the submitting domain competes with the workers), so they are
   excluded too. *)
let deterministic_subset json =
  let strip_wall = function
    | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "wall_clock_s") kvs)
    | other -> other
  in
  let exps =
    match Option.bind (Json.member "experiments" json) Json.to_list_opt with
    | Some l -> Json.List (List.map strip_wall l)
    | None -> Json.Null
  in
  let comm = Option.value ~default:Json.Null (Json.member "comm" json) in
  let counters =
    match Option.bind (Json.member "metrics" json) (Json.member "counters") with
    | Some (Json.Obj kvs) ->
        Json.Obj
          (List.filter (fun (k, _) -> not (String.starts_with ~prefix:"par.domain" k)) kvs)
    | _ -> Json.Null
  in
  Json.to_string (Json.List [ exps; comm; counters ])

let test_trace_keeps_reports_identical () =
  List.iter
    (fun jobs ->
      let plain = temp ".plain.json" and traced = temp ".traced.json" in
      let trace = temp ".trace.json" in
      let base = [ "experiment"; "e6"; "--quick"; "--jobs"; string_of_int jobs ] in
      Alcotest.(check int) "plain run exits 0" 0 (command (base @ [ "--report"; plain ]));
      Alcotest.(check int) "traced run exits 0" 0
        (command (base @ [ "--report"; traced; "--trace"; trace ]));
      Alcotest.(check string)
        (Printf.sprintf "deterministic report surface identical at jobs %d" jobs)
        (deterministic_subset (parse_file plain))
        (deterministic_subset (parse_file traced));
      (* The traced report carries the v3 trace block; the plain one
         doesn't. *)
      Alcotest.(check bool) "trace block only when traced" true
        (Json.member "trace" (parse_file traced) <> None
        && Json.member "trace" (parse_file plain) = None);
      List.iter Sys.remove [ plain; traced; trace ])
    [ 1; 2 ]

(* --- perf-diff ------------------------------------------------------- *)

let report_json timings =
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Int Report.schema_version);
         ("tag", Json.Str "cli-test");
         ( "timings",
           Json.List
             (List.map
                (fun (name, ns) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("ns_per_run", Json.Float ns);
                      ("r_square", Json.Float 1.0);
                    ])
                timings) );
       ])

let test_perf_diff_exit_codes () =
  let base = temp ".base.json" in
  let within = temp ".within.json" in
  let regressed = temp ".regressed.json" in
  let missing = temp ".missing.json" in
  write_file base (report_json [ ("gtester-smoke/20k", 1e6); ("crypto/pow_g", 500.0) ]);
  write_file within (report_json [ ("gtester-smoke/20k", 1.1e6); ("crypto/pow_g", 480.0) ]);
  write_file regressed (report_json [ ("gtester-smoke/20k", 1.5e6); ("crypto/pow_g", 480.0) ]);
  write_file missing (report_json [ ("crypto/pow_g", 480.0) ]);
  Alcotest.(check int) "within threshold passes" 0 (command [ "perf-diff"; base; within ]);
  Alcotest.(check int) "synthetic regression fails" 1 (command [ "perf-diff"; base; regressed ]);
  Alcotest.(check int) "missing baseline entry fails" 1 (command [ "perf-diff"; base; missing ]);
  Alcotest.(check int) "tighter threshold flips the verdict" 1
    (command [ "perf-diff"; base; within; "--threshold"; "0.05" ]);
  Alcotest.(check int) "--match can scope the regression away" 0
    (command [ "perf-diff"; base; regressed; "--match"; "crypto/" ]);
  Alcotest.(check int) "no matching entries is an error" cli_error
    (command [ "perf-diff"; base; within; "--match"; "nonexistent/" ]);
  List.iter Sys.remove [ base; within; regressed; missing ]

(* --- sessions -------------------------------------------------------- *)

let test_sessions_count_validation () =
  (* Non-positive --count is a usage error with exit 2, matching the
     bench harness's contract for its own --count/--jobs — distinct
     from cmdliner's 124 for unparseable arguments. *)
  Alcotest.(check int) "count 0 exits 2" 2 (command [ "sessions"; "bracha"; "--count"; "0" ]);
  Alcotest.(check int) "negative count exits 2" 2
    (command [ "sessions"; "bracha"; "--count=-4" ])

(* --- experiment --n-max --------------------------------------------- *)

let test_experiment_n_max_validation () =
  (* Malformed --n-max is a usage error with exit 2 (distinct from
     cmdliner's 124 for unparseable arguments), and the flag only
     applies to the E17 scaling sweep. *)
  Alcotest.(check int) "n-max 0 exits 2" 2
    (command [ "experiment"; "e17"; "--quick"; "--n-max"; "0" ]);
  Alcotest.(check int) "negative n-max exits 2" 2
    (command [ "experiment"; "e17"; "--quick"; "--n-max=-5" ]);
  Alcotest.(check int) "non-integer n-max exits 2" 2
    (command [ "experiment"; "e17"; "--quick"; "--n-max"; "many" ]);
  Alcotest.(check int) "n-max below the smallest E17 size exits 2" 2
    (command [ "experiment"; "e17"; "--quick"; "--n-max"; "64" ]);
  Alcotest.(check int) "n-max on a non-e17 experiment exits 2" 2
    (command [ "experiment"; "e4"; "--quick"; "--n-max"; "128" ])

let test_experiment_e17_quick_report () =
  (* A capped quick sweep exits 0 and writes a validating report whose
     single experiment entry is E17 and ok. *)
  let report = temp ".e17.json" in
  Alcotest.(check int) "e17 quick exits 0" 0
    (command [ "experiment"; "e17"; "--quick"; "--n-max"; "128"; "--report"; report ]);
  let json = parse_file report in
  (match Report.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "e17 report invalid: %s" e);
  match Option.bind (Json.member "experiments" json) Json.to_list_opt with
  | Some [ e ] ->
      Alcotest.(check (option string))
        "id" (Some "E17")
        (Option.bind (Json.member "id" e) Json.to_str_opt);
      Alcotest.(check bool) "ok" true
        (match Json.member "ok" e with Some (Json.Bool b) -> b | _ -> false)
  | _ -> Alcotest.fail "expected exactly one experiment entry"

let test_sessions_jobs_invariant () =
  (* End-to-end jobs-invariance: stdout minus the wall-clock-derived
     throughput line, the JSONL session log, and the report's sessions
     block (minus wall_s and the rates) are identical at jobs 1 and 2. *)
  let run jobs =
    let out = temp ".sessions.out" and log = temp ".sessions.jsonl" in
    let report = temp ".sessions.json" in
    Alcotest.(check int)
      (Printf.sprintf "sessions exits 0 at jobs %d" jobs)
      0
      (command ~out
         [
           "sessions"; "bracha,commit-open"; "--count"; "24"; "--seed"; "5";
           "--jobs"; string_of_int jobs; "--session-log"; log; "--report"; report;
         ]);
    let stdout_det =
      String.concat "\n"
        (List.filter
           (fun l ->
             not
               (String.starts_with ~prefix:"throughput" l
               || String.starts_with ~prefix:"sched" l
               || String.starts_with ~prefix:"wrote " l))
           (String.split_on_char '\n' (read_file out)))
    in
    let sessions_block =
      match Json.member "sessions" (parse_file report) with
      | Some (Json.Obj kvs) ->
          Json.to_string
            (Json.Obj
               (List.filter
                  (fun (k, _) ->
                    k <> "wall_s" && not (String.ends_with ~suffix:"_per_sec" k))
                  kvs))
      | _ -> Alcotest.fail "report lacks a sessions block"
    in
    let log_contents = read_file log in
    List.iter Sys.remove [ out; log; report ];
    (stdout_det, log_contents, sessions_block)
  in
  let o1, l1, s1 = run 1 and o2, l2, s2 = run 2 in
  Alcotest.(check string) "stdout jobs-invariant" o1 o2;
  Alcotest.(check string) "session log jobs-invariant" l1 l2;
  Alcotest.(check string) "sessions block jobs-invariant" s1 s2

(* --- workload -------------------------------------------------------- *)

let test_workload_usage_errors () =
  (* An unknown workload name is a usage error with exit 2, matching
     `sessions --count` and `check` — distinct from cmdliner's 124 for
     unparseable arguments. *)
  Alcotest.(check int) "unknown workload exits 2" 2
    (command [ "workload"; "no-such-workload" ])

let test_workload_jobs_invariant () =
  (* End-to-end jobs-invariance on the election workload: stdout minus
     the wall-clock-derived throughput and scheduler-race sched lines,
     the JSONL session log, and the report's workload block are
     identical at jobs 1 and 2 — and the report validates at schema v7
     with the workload block present. *)
  let run jobs =
    let out = temp ".workload.out" and log = temp ".workload.jsonl" in
    let report = temp ".workload.json" in
    Alcotest.(check int)
      (Printf.sprintf "workload exits 0 at jobs %d" jobs)
      0
      (command ~out
         [
           "workload"; "election"; "--quick"; "--seed"; "5";
           "--jobs"; string_of_int jobs; "--session-log"; log; "--report"; report;
         ]);
    let stdout_det =
      String.concat "\n"
        (List.filter
           (fun l ->
             not
               (String.starts_with ~prefix:"throughput" l
               || String.starts_with ~prefix:"sched" l
               || String.starts_with ~prefix:"wrote " l))
           (String.split_on_char '\n' (read_file out)))
    in
    let json = parse_file report in
    (match Report.validate json with
    | Ok () -> ()
    | Error e -> Alcotest.failf "workload report invalid: %s" e);
    let workload_block =
      match Json.member "workload" json with
      | Some w -> Json.to_string w
      | None -> Alcotest.fail "report lacks a workload block"
    in
    Alcotest.(check (option string))
      "workload block names the workload" (Some "election")
      (Option.bind (Json.member "workload" json) (fun w ->
           Option.bind (Json.member "name" w) Json.to_str_opt));
    let log_contents = read_file log in
    List.iter Sys.remove [ out; log; report ];
    (stdout_det, log_contents, workload_block)
  in
  let o1, l1, w1 = run 1 and o2, l2, w2 = run 2 in
  Alcotest.(check string) "stdout jobs-invariant" o1 o2;
  Alcotest.(check string) "session log jobs-invariant" l1 l2;
  Alcotest.(check string) "workload block jobs-invariant" w1 w2

(* --- check ----------------------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_check_usage_errors () =
  (* Unknown protocol and out-of-budget n are usage errors (exit 2 with
     a usage line), distinct from cmdliner's 124 for unparseable args. *)
  let out = temp ".check.err" in
  Alcotest.(check int) "unknown protocol exits 2" 2
    (command ~out [ "check"; "no-such-proto" ]);
  Alcotest.(check bool) "unknown protocol prints usage" true
    (contains (read_file out) "usage");
  Alcotest.(check int) "n above the budget exits 2" 2
    (command ~out [ "check"; "bracha"; "--n"; "6" ]);
  Alcotest.(check bool) "n above the budget prints usage" true
    (contains (read_file out) "usage");
  Sys.remove out

let test_check_holding_cell () =
  let out = temp ".check.out" and report = temp ".check.json" in
  Alcotest.(check int) "check bracha 4/1 exits 0" 0
    (command ~out [ "check"; "bracha"; "--n"; "4"; "--t"; "1"; "--report"; report ]);
  let printed = read_file out in
  List.iter
    (fun line ->
      Alcotest.(check bool) line true (contains printed line))
    [
      "agreement      : exact-pass";
      "validity       : exact-pass";
      "unforgeability : exact-pass";
    ];
  Alcotest.(check bool) "no violation at 4/1" false (contains printed "VIOLATED");
  (* The report validates at schema v5 and carries the check block. *)
  let v = parse_file report in
  (match Report.validate v with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check report invalid: %s" e);
  let check_block = Option.get (Json.member "check" v) in
  let int_field k = Option.bind (Json.member k check_block) Json.to_int_opt |> Option.get in
  Alcotest.(check bool) "explored nonzero" true (int_field "explored" > 0);
  Alcotest.(check bool) "memo hits nonzero" true (int_field "memo_hits" > 0);
  List.iter Sys.remove [ out; report ]

let test_check_violated_cell () =
  let out = temp ".check.out" in
  Alcotest.(check int) "check bracha 4/2 exits 0" 0
    (command ~out [ "check"; "bracha"; "--n"; "4"; "--t"; "2" ]);
  let printed = read_file out in
  Alcotest.(check bool) "validity violated at 4/2" true (contains printed "VIOLATED");
  Alcotest.(check bool) "prints a replay hint" true (contains printed "simbcast run");
  Sys.remove out

let test_check_reports_deterministic () =
  (* Two identical check invocations must produce byte-identical
     reports: the check path opens no spans and reads no clocks. *)
  let r1 = temp ".check1.json" and r2 = temp ".check2.json" in
  let args report =
    [ "check"; "dolev-strong"; "--n"; "4"; "--t"; "1"; "--seed"; "9"; "--report"; report ]
  in
  Alcotest.(check int) "first check exits 0" 0 (command (args r1));
  Alcotest.(check int) "second check exits 0" 0 (command (args r2));
  Alcotest.(check string) "reports byte-identical" (read_file r1) (read_file r2);
  List.iter Sys.remove [ r1; r2 ]

let test_check_counterexample_replays () =
  (* The bracha 4/2 validity counterexample is the empty plan with a
     benign-faulty sender: replaying that configuration through the
     real network reproduces the violation (input 1 announced as 0). *)
  let out = temp ".replay.out" in
  Alcotest.(check int) "replay run exits 0" 0
    (command ~out [ "run"; "bracha"; "-n"; "4"; "-t"; "2"; "-x"; "1000" ]);
  let printed = read_file out in
  Alcotest.(check bool) "replay reproduces the violation" true
    (contains printed "announced  : 0000");
  Sys.remove out

(* --- profile --------------------------------------------------------- *)

let test_profile_runs () =
  let out = temp ".profile.out" in
  Alcotest.(check int) "profile exits 0" 0
    (command ~out [ "profile"; "e6"; "--quick"; "--top"; "5" ]);
  let printed = read_file out in
  Alcotest.(check bool) "prints the attribution table" true
    (contains printed "phase-time attribution");
  Alcotest.(check bool) "prints flame paths" true (contains printed "/round/");
  Sys.remove out

let () =
  (if Array.length Sys.argv < 2 then (
     prerr_endline "usage: test_cli SIMBCAST_BINARY";
     exit 2));
  simbcast := Sys.argv.(1);
  Alcotest.run ~argv:[| "test_cli" |] "simbcast_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "trailing args rejected" `Quick test_trailing_args_rejected;
          Alcotest.test_case "traced run emits valid trace JSON" `Quick test_run_trace_output;
          Alcotest.test_case "tracing keeps reports identical (jobs 1, 2)" `Quick
            test_trace_keeps_reports_identical;
          Alcotest.test_case "perf-diff exit codes" `Quick test_perf_diff_exit_codes;
          Alcotest.test_case "experiment --n-max validation" `Quick
            test_experiment_n_max_validation;
          Alcotest.test_case "e17 quick report validates" `Quick
            test_experiment_e17_quick_report;
          Alcotest.test_case "sessions --count validation" `Quick
            test_sessions_count_validation;
          Alcotest.test_case "sessions jobs-invariant (jobs 1, 2)" `Quick
            test_sessions_jobs_invariant;
          Alcotest.test_case "workload usage errors" `Quick test_workload_usage_errors;
          Alcotest.test_case "workload jobs-invariant (jobs 1, 2)" `Quick
            test_workload_jobs_invariant;
          Alcotest.test_case "check usage errors" `Quick test_check_usage_errors;
          Alcotest.test_case "check holding cell (bracha 4/1)" `Quick test_check_holding_cell;
          Alcotest.test_case "check violated cell (bracha 4/2)" `Quick
            test_check_violated_cell;
          Alcotest.test_case "check reports byte-identical" `Quick
            test_check_reports_deterministic;
          Alcotest.test_case "check counterexample replays" `Quick
            test_check_counterexample_replays;
          Alcotest.test_case "profile prints attribution" `Quick test_profile_runs;
        ] );
    ]
