(* Tests for sb_broadcast: each single-sender scheme satisfies the
   broadcast contract (consistency + correctness with an honest sender;
   consistency with a corrupted sender), and the parallel compositions
   satisfy the parallel-broadcast contract of §3.2. *)

open Sb_sim

let seed = ref 0

let fresh_rng () =
  incr seed;
  Sb_util.Rng.create (40000 + !seed)

let make_ctx ?(n = 4) ?(thresh = 1) () = Ctx.make ~rng:(fresh_rng ()) ~n ~thresh ~k:8 ()

(* Drive one single-sender session for every party over the plain
   network, by wrapping it as a Protocol. *)
let session_protocol (scheme : Sb_broadcast.Session.scheme) ~sender =
  {
    Protocol.name = "session-" ^ scheme.Sb_broadcast.Session.scheme_name;
    rounds = (fun ctx -> scheme.Sb_broadcast.Session.rounds ctx);
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let value = if id = sender then Some input else None in
        let s =
          scheme.Sb_broadcast.Session.create ctx ~rng ~sid:"test" ~sender ~me:id ~value
        in
        {
          Party.step =
            (fun ~round ~inbox ->
              s.Sb_broadcast.Session.step ~round
                ~inbox:(Sb_broadcast.Session.inbox_for ~sid:"test" inbox));
          output = (fun () -> s.Sb_broadcast.Session.result ());
        });
  }

let schemes =
  [
    ("send-echo", Sb_broadcast.Send_echo.scheme);
    ("dolev-strong", Sb_broadcast.Dolev_strong.scheme);
    ("eig", Sb_broadcast.Eig.scheme);
    ("bracha", Sb_broadcast.Bracha.scheme);
  ]

let check_all_agree ~msg expected outputs =
  List.iter
    (fun (_, out) -> Alcotest.(check bool) msg true (Msg.equal out expected))
    outputs

let test_honest_sender_correct scheme () =
  (* Every sender position, both bit values. *)
  List.iter
    (fun sender ->
      List.iter
        (fun b ->
          let ctx = make_ctx () in
          let inputs = Array.make 4 (Msg.Bit b) in
          let r =
            Network.honest_run ctx ~rng:(fresh_rng ())
              ~protocol:(session_protocol scheme ~sender) ~inputs
          in
          check_all_agree ~msg:"correct broadcast" (Msg.Bit b) r.Network.outputs)
        [ true; false ])
    [ 0; 1; 2; 3 ]

let test_honest_sender_vs_lying_echoers scheme () =
  (* Corrupted non-senders echo lies; honest parties must still decide
     the sender's value. *)
  let protocol = session_protocol scheme ~sender:0 in
  let adv =
    {
      Adversary.name = "liar";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                (* Replay every rushed honest message with the bit
                   flipped, as party 3. Crude, but enough to stress
                   majority/signature logic of every scheme. *)
                List.concat_map
                  (fun (e : Envelope.t) ->
                    match e.Envelope.body with
                    | Msg.Tag (tag, Msg.Bit b) ->
                        Envelope.to_all ~n:ctx.Ctx.n ~src:3 (Msg.Tag (tag, Msg.Bit (not b)))
                    | Msg.Tag (tag, Msg.Tag ("echo", Msg.Bit b)) ->
                        Envelope.to_all ~n:ctx.Ctx.n ~src:3
                          (Msg.Tag (tag, Msg.Tag ("echo", Msg.Bit (not b))))
                    | _ -> [])
                  view.Adversary.rushed
                |> fun l -> if view.Adversary.round <= 2 then l else []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx () in
  let inputs = Array.make 4 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  check_all_agree ~msg:"sender value wins" (Msg.Bit true) r.Network.outputs

let test_corrupted_sender_consistency scheme () =
  (* A corrupted sender equivocates: sends 1 to low-numbered parties
     and 0 to the rest in its first round. Honest parties must still
     agree with each other (consistency), whatever they decide. *)
  let sender = 0 in
  let protocol = session_protocol scheme ~sender in
  let adv =
    {
      Adversary.name = "equivocator";
      choose_corrupt = (fun _ ~rng:_ -> [ sender ]);
      init =
        (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          let sigs = ctx.Ctx.sigs in
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round <> 0 then []
                else
                  List.init ctx.Ctx.n (fun dst ->
                      let v = Msg.Bit (dst < ctx.Ctx.n / 2) in
                      (* Speak each scheme's wire format well enough to
                         be heard: send-echo takes the raw value; DS
                         needs a signature; EIG needs a path. *)
                      let body =
                        match scheme.Sb_broadcast.Session.scheme_name with
                        | "send-echo" -> v
                        | "bracha" -> Msg.Tag ("br-init", v)
                        | "dolev-strong" ->
                            let base = "ds:test:" ^ Msg.serialize v in
                            Msg.List
                              [
                                v;
                                Msg.List
                                  [
                                    Msg.List
                                      [
                                        Msg.Int sender;
                                        Msg.Str (Sb_crypto.Sig.sign sigs ~signer:sender base);
                                      ];
                                  ];
                              ]
                        | _ -> Msg.List [ Msg.List [ Msg.List [ Msg.Int sender ]; v ] ]
                      in
                      Envelope.make ~src:sender ~dst
                        (Sb_broadcast.Session.wrap ~sid:"test" body)));
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx () in
  let inputs = Array.make 4 (Msg.Bit false) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  match r.Network.outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | (_, first) :: rest ->
      List.iter
        (fun (_, out) -> Alcotest.(check bool) "consistency" true (Msg.equal out first))
        rest

(* --- Parallel compositions ---------------------------------------- *)

let bitvec_of_result (r : Network.result) =
  match r.Network.outputs with
  | (_, m) :: _ -> Msg.to_bitvec_exn m
  | [] -> Alcotest.fail "no outputs"

let test_parallel_contract make_protocol scheme () =
  (* Honest runs: every announced vector equals the input vector, and
     all parties agree. *)
  let protocol = make_protocol scheme in
  List.iter
    (fun v ->
      let ctx = make_ctx () in
      let x = Sb_util.Bitvec.of_int 4 v in
      let inputs = Array.init 4 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol ~inputs in
      let w = bitvec_of_result r in
      Alcotest.(check string) "announced = inputs" (Sb_util.Bitvec.to_string x)
        (Sb_util.Bitvec.to_string w);
      match r.Network.outputs with
      | (_, first) :: rest ->
          List.iter
            (fun (_, m) -> Alcotest.(check bool) "agreement" true (Msg.equal m first))
            rest
      | [] -> Alcotest.fail "no outputs")
    [ 0; 5; 10; 15 ]

let test_sequential_rounds_linear () =
  let scheme = Sb_broadcast.Send_echo.scheme in
  let p = Sb_broadcast.Parallel.sequential scheme in
  let c = Sb_broadcast.Parallel.concurrent scheme in
  let ctx4 = make_ctx ~n:4 () in
  let ctx8 = make_ctx ~n:8 () in
  Alcotest.(check int) "sequential n=4" 11 (p.Protocol.rounds ctx4);
  Alcotest.(check int) "sequential n=8" 23 (p.Protocol.rounds ctx8);
  Alcotest.(check int) "concurrent constant" (c.Protocol.rounds ctx4)
    (c.Protocol.rounds ctx8)

(* --- targeted adversarial cases ------------------------------------ *)

let test_dolev_strong_rejects_forgery () =
  (* A corrupted non-sender injects a value with a bogus signature
     chain; honest parties must ignore it and stick to the sender's
     value. *)
  let protocol = session_protocol Sb_broadcast.Dolev_strong.scheme ~sender:0 in
  let adv =
    {
      Adversary.name = "forger";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          let sigs = ctx.Ctx.sigs in
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round <> 1 then []
                else begin
                  (* Fake chains for value 0: (a) self-signed only —
                     lacks the sender's signature; (b) carrying a
                     signature attributed to the sender but computed by
                     party 3 — fails verification. *)
                  let v = Msg.Bit false in
                  let base = "ds:test:" ^ Msg.serialize v in
                  let chain_a =
                    Msg.List [ Msg.List [ Msg.Int 3; Msg.Str (Sb_crypto.Sig.sign sigs ~signer:3 base) ] ]
                  in
                  let chain_b =
                    Msg.List
                      [
                        Msg.List [ Msg.Int 0; Msg.Str (Sb_crypto.Sig.sign sigs ~signer:3 base) ];
                        Msg.List [ Msg.Int 3; Msg.Str (Sb_crypto.Sig.sign sigs ~signer:3 base) ];
                      ]
                  in
                  List.concat_map
                    (fun chain ->
                      Envelope.to_all ~n:ctx.Ctx.n ~src:3
                        (Sb_broadcast.Session.wrap ~sid:"test" (Msg.List [ v; chain ])))
                    [ chain_a; chain_b ]
                end);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx () in
  let inputs = Array.make 4 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  check_all_agree ~msg:"forgeries ignored" (Msg.Bit true) r.Network.outputs

let test_eig_two_corruptions () =
  (* EIG at t = 2 needs n >= 7; two corrupted relays lie, the honest
     majority resolution still recovers the sender's value. *)
  let protocol = session_protocol Sb_broadcast.Eig.scheme ~sender:0 in
  let adv =
    {
      Adversary.name = "two-liars";
      choose_corrupt = (fun _ ~rng:_ -> [ 5; 6 ]);
      init =
        (fun ctx ~rng:_ ~corrupted ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                (* Relay a flipped value for every path, as both liars. *)
                if view.Adversary.round < 1 || view.Adversary.round > ctx.Ctx.thresh then []
                else
                  List.concat_map
                    (fun me ->
                      Envelope.to_all ~n:ctx.Ctx.n ~src:me
                        (Sb_broadcast.Session.wrap ~sid:"test"
                           (Msg.List
                              [
                                Msg.List
                                  [ Msg.List [ Msg.Int 0; Msg.Int me ]; Msg.Bit false ];
                              ])))
                    corrupted);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx ~n:7 ~thresh:2 () in
  let inputs = Array.make 7 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  check_all_agree ~msg:"eig t=2 validity" (Msg.Bit true) r.Network.outputs

let test_bracha_no_quorum_defaults () =
  (* A silent sender: nobody echoes, nobody accepts; all honest output
     the default, consistently. *)
  let protocol = session_protocol Sb_broadcast.Bracha.scheme ~sender:0 in
  let adv =
    {
      Adversary.name = "silent-sender";
      choose_corrupt = (fun _ ~rng:_ -> [ 0 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          { Adversary.act = (fun _ -> []); adv_output = (fun () -> Msg.Unit) });
    }
  in
  let ctx = make_ctx () in
  let inputs = Array.make 4 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  check_all_agree ~msg:"default on silence" (Msg.Bit false) r.Network.outputs

let test_spoofed_sources_counted () =
  (* A corrupted party impersonating honest senders: the authenticated
     network must discard exactly the spoofed envelopes AND tally them
     under sim.forgeries_dropped (the outputs-only check above cannot
     tell "dropped" from "ignored by the protocol"). *)
  let protocol = session_protocol Sb_broadcast.Send_echo.scheme ~sender:0 in
  let spoof_rounds = 2 in
  let adv =
    {
      Adversary.name = "spoofer";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round >= spoof_rounds then []
                else
                  (* Two forged envelopes (src 1 and 2) plus one honestly
                     sourced one that must pass the filter. *)
                  List.map
                    (fun src ->
                      Envelope.make ~src ~dst:2
                        (Sb_broadcast.Session.wrap ~sid:"test"
                           (Msg.Tag ("echo", Msg.Bit false))))
                    [ 1; 2; 3 ]);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  Sb_obs.Metrics.reset ();
  Sb_obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Sb_obs.Metrics.set_enabled false;
      Sb_obs.Metrics.reset ())
    (fun () ->
      let ctx = make_ctx () in
      let inputs = Array.make 4 (Msg.Bit true) in
      let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
      check_all_agree ~msg:"spoofing changes nothing" (Msg.Bit true) r.Network.outputs;
      Alcotest.(check int) "exactly the forged envelopes are tallied"
        (2 * spoof_rounds)
        (Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter "sim.forgeries_dropped")))

(* --- Phase King (needs n > 4t: use n = 5, t = 1) ------------------- *)

let test_phase_king_honest () =
  List.iter
    (fun sender ->
      List.iter
        (fun b ->
          let ctx = make_ctx ~n:5 ~thresh:1 () in
          let inputs = Array.make 5 (Msg.Bit b) in
          let r =
            Network.honest_run ctx ~rng:(fresh_rng ())
              ~protocol:(session_protocol Sb_broadcast.Phase_king.scheme ~sender)
              ~inputs
          in
          check_all_agree ~msg:"phase-king correct" (Msg.Bit b) r.Network.outputs)
        [ true; false ])
    [ 0; 2; 4 ]

let test_phase_king_equivocating_sender () =
  (* Corrupted sender 4 (not a king: kings are 0 and 1) splits the
     parties; honest parties must still agree. *)
  let sender = 4 in
  let protocol = session_protocol Sb_broadcast.Phase_king.scheme ~sender in
  let adv =
    {
      Adversary.name = "pk-equivocator";
      choose_corrupt = (fun _ ~rng:_ -> [ sender ]);
      init =
        (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round <> 0 then []
                else
                  List.init ctx.Ctx.n (fun dst ->
                      let v = Msg.Bit (dst mod 2 = 0) in
                      Envelope.make ~src:sender ~dst
                        (Sb_broadcast.Session.wrap ~sid:"test" (Msg.Tag ("pk-send", v)))));
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx ~n:5 ~thresh:1 () in
  let inputs = Array.make 5 (Msg.Bit false) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  match r.Network.outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | (_, first) :: rest ->
      List.iter
        (fun (_, out) -> Alcotest.(check bool) "pk consistency" true (Msg.equal out first))
        rest

let test_phase_king_lying_nonking () =
  (* A corrupted non-king echoing garbage in the exchanges cannot move
     an honest sender's value (t < n/4 validity). *)
  let protocol = session_protocol Sb_broadcast.Phase_king.scheme ~sender:0 in
  let adv =
    {
      Adversary.name = "pk-liar";
      choose_corrupt = (fun _ ~rng:_ -> [ 4 ]);
      init =
        (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round mod 2 = 1 then
                  Envelope.to_all ~n:ctx.Ctx.n ~src:4
                    (Sb_broadcast.Session.wrap ~sid:"test"
                       (Msg.Tag ("pk-val", Msg.Bit false)))
                else []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let ctx = make_ctx ~n:5 ~thresh:1 () in
  let inputs = Array.make 5 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol ~adversary:adv ~inputs () in
  check_all_agree ~msg:"validity under lies" (Msg.Bit true) r.Network.outputs

let test_phase_king_rounds () =
  let ctx1 = make_ctx ~n:5 ~thresh:1 () in
  let ctx2 = make_ctx ~n:9 ~thresh:2 () in
  Alcotest.(check int) "t=1" 5 (Sb_broadcast.Phase_king.scheme.Sb_broadcast.Session.rounds ctx1);
  Alcotest.(check int) "t=2" 7 (Sb_broadcast.Phase_king.scheme.Sb_broadcast.Session.rounds ctx2)

let test_window () =
  let lo, hi =
    Sb_broadcast.Parallel.window ~mode:`Sequential ~scheme_rounds:2 ~sender:3
  in
  Alcotest.(check (pair int int)) "window" (9, 11) (lo, hi);
  let lo, hi =
    Sb_broadcast.Parallel.window ~mode:`Concurrent ~scheme_rounds:2 ~sender:3
  in
  Alcotest.(check (pair int int)) "concurrent window" (0, 2) (lo, hi)

(* --- differential: Bitvec hot paths vs the seed implementations ----- *)

(* Pinned copies of the pre-Bitvec Bracha and Dolev-Strong sessions
   (hashtable receive sets re-counted per candidate; list-scan signer
   chains). The library rewrote those hot paths over Sb_util.Bitvec;
   these copies replay the same adversarial traffic through the old
   code so any semantic drift shows up as an output mismatch. *)
module Seed_bracha = struct
  module Session = Sb_broadcast.Session

  let default = Msg.Bit false

  let scheme =
    {
      Session.scheme_name = "bracha-seed";
      rounds = (fun _ -> 4);
      create =
        (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
          assert ((me = sender) = Option.is_some value);
          let n = ctx.Ctx.n in
          let t = ctx.Ctx.thresh in
          let echo_quorum = (n + t + 2) / 2 in
          let echoes : (int, Msg.t) Hashtbl.t = Hashtbl.create 8 in
          let readies : (int, Msg.t) Hashtbl.t = Hashtbl.create 8 in
          let echoed = ref false in
          let ready_sent = ref false in
          let wrap m = Session.wrap ~sid m in
          let send_all m =
            List.map
              (fun (e : Envelope.t) -> { e with Envelope.body = wrap e.Envelope.body })
              (Envelope.to_all ~n ~src:me m)
          in
          let count table v =
            Hashtbl.fold (fun _ m acc -> if Msg.equal m v then acc + 1 else acc) table 0
          in
          let values table =
            let seen = Hashtbl.create 4 in
            Hashtbl.iter (fun _ m -> Hashtbl.replace seen (Msg.serialize m) m) table;
            Hashtbl.fold (fun _ m acc -> m :: acc) seen []
          in
          let record inbox =
            List.iter
              (fun (e : Envelope.t) ->
                match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
                | Some src, Some (Msg.Tag ("br-echo", v)) ->
                    if not (Hashtbl.mem echoes src) then Hashtbl.replace echoes src v
                | Some src, Some (Msg.Tag ("br-ready", v)) ->
                    if not (Hashtbl.mem readies src) then Hashtbl.replace readies src v
                | _ -> ())
              inbox
          in
          let maybe_ready () =
            if !ready_sent then []
            else
              let candidates =
                List.filter
                  (fun v -> count echoes v >= echo_quorum || count readies v >= t + 1)
                  (values echoes @ values readies)
              in
              match candidates with
              | v :: _ ->
                  ready_sent := true;
                  send_all (Msg.Tag ("br-ready", v))
              | [] -> []
          in
          let step ~round ~inbox =
            record inbox;
            match round with
            | 0 -> (
                match value with
                | Some v -> send_all (Msg.Tag ("br-init", v))
                | None -> [])
            | 1 ->
                if not !echoed then begin
                  let init =
                    List.find_map
                      (fun (e : Envelope.t) ->
                        match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
                        | Some src, Some (Msg.Tag ("br-init", v)) when src = sender -> Some v
                        | _ -> None)
                      inbox
                  in
                  match init with
                  | Some v ->
                      echoed := true;
                      send_all (Msg.Tag ("br-echo", v))
                  | None -> []
                end
                else []
            | 2 | 3 -> maybe_ready ()
            | _ -> []
          in
          let result () =
            match
              List.find_opt (fun v -> count readies v >= (2 * t) + 1) (values readies)
            with
            | Some v -> v
            | None -> default
          in
          { Session.step; result });
    }
end

module Seed_dolev_strong = struct
  module Session = Sb_broadcast.Session

  let default = Msg.Bit false
  let base ~sid v = "ds:" ^ sid ^ ":" ^ Msg.serialize v

  let encode v sigs =
    Msg.List
      [ v; Msg.List (List.map (fun (i, s) -> Msg.List [ Msg.Int i; Msg.Str s ]) sigs) ]

  let decode m =
    match m with
    | Msg.List [ v; Msg.List sigs ] ->
        let decode_sig = function
          | Msg.List [ Msg.Int i; Msg.Str s ] -> Some (i, s)
          | _ -> None
        in
        let decoded = List.filter_map decode_sig sigs in
        if List.length decoded = List.length sigs then Some (v, decoded) else None
    | _ -> None

  let scheme =
    {
      Session.scheme_name = "dolev-strong-seed";
      rounds = (fun ctx -> ctx.Ctx.thresh + 1);
      create =
        (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
          assert ((me = sender) = Option.is_some value);
          let n = ctx.Ctx.n in
          let t = ctx.Ctx.thresh in
          let sigs = ctx.Ctx.sigs in
          let accepted : Msg.t list ref = ref [] in
          let outbox : (Msg.t * (int * string) list) list ref = ref [] in
          let valid_chain ~need v chain =
            let signers = List.map fst chain in
            List.length chain >= need
            && List.mem sender signers
            && List.length (List.sort_uniq Int.compare signers) = List.length signers
            && List.for_all
                 (fun (i, s) -> Sb_crypto.Sig.verify sigs ~signer:i (base ~sid v) s)
                 chain
          in
          let process ~round inbox =
            List.iter
              (fun (e : Envelope.t) ->
                match Option.bind (Session.unwrap ~sid e.Envelope.body) decode with
                | Some (v, chain)
                  when valid_chain ~need:round v chain
                       && (not (List.exists (Msg.equal v) !accepted))
                       && List.length !accepted < 2 ->
                    accepted := v :: !accepted;
                    if round <= t && not (List.exists (fun (i, _) -> i = me) chain) then
                      outbox :=
                        (v, (me, Sb_crypto.Sig.sign sigs ~signer:me (base ~sid v)) :: chain)
                        :: !outbox
                | _ -> ())
              inbox
          in
          let step ~round ~inbox =
            process ~round inbox;
            if round = 0 then begin
              match value with
              | Some v ->
                  accepted := [ v ];
                  let chain = [ (me, Sb_crypto.Sig.sign sigs ~signer:me (base ~sid v)) ] in
                  List.map
                    (fun (e : Envelope.t) ->
                      { e with Envelope.body = Session.wrap ~sid e.Envelope.body })
                    (Envelope.to_all ~n ~src:me (encode v chain))
              | None -> []
            end
            else begin
              let out =
                List.concat_map
                  (fun (v, chain) ->
                    List.map
                      (fun (e : Envelope.t) ->
                        { e with Envelope.body = Session.wrap ~sid e.Envelope.body })
                      (Envelope.to_all ~n ~src:me (encode v chain)))
                  !outbox
              in
              outbox := [];
              out
            end
          in
          let result () = match !accepted with [ v ] -> v | _ -> default in
          { Session.step; result });
    }
end

(* Pinned pre-Bitvec send-echo: per-source hashtable of echoes with
   Hashtbl.replace last-write-wins, per-envelope session wrapping. The
   library now keeps a mutable membership vector plus a value array
   and wraps once per broadcast. *)
module Seed_send_echo = struct
  module Session = Sb_broadcast.Session

  let default = Msg.Bit false

  let scheme =
    {
      Session.scheme_name = "send-echo-seed";
      rounds = (fun _ -> 2);
      create =
        (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
          assert ((me = sender) = Option.is_some value);
          let n = ctx.Ctx.n in
          let received = ref None in
          let echoes = Hashtbl.create 8 in
          let send_all m =
            List.map
              (fun (e : Envelope.t) ->
                { e with Envelope.body = Session.wrap ~sid e.Envelope.body })
              (Envelope.to_all ~n ~src:me m)
          in
          let step ~round ~inbox =
            let payloads =
              List.filter_map
                (fun (e : Envelope.t) ->
                  match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
                  | Some src, Some m -> Some (src, m)
                  | _ -> None)
                inbox
            in
            match round with
            | 0 -> (
                match value with
                | Some v ->
                    received := Some v;
                    send_all v
                | None -> [])
            | 1 ->
                if me <> sender then
                  received :=
                    Some
                      (match List.assoc_opt sender payloads with
                      | Some m -> m
                      | None -> default);
                let v = Option.value !received ~default in
                send_all (Msg.Tag ("echo", v))
            | 2 ->
                List.iter
                  (fun (src, m) ->
                    match m with
                    | Msg.Tag ("echo", v) -> Hashtbl.replace echoes src v
                    | _ -> ())
                  payloads;
                []
            | _ -> []
          in
          let result () =
            let counts = Hashtbl.create 8 in
            for src = 0 to n - 1 do
              let v =
                match Hashtbl.find_opt echoes src with Some v -> v | None -> default
              in
              let key = Msg.serialize v in
              let c =
                match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0
              in
              Hashtbl.replace counts key (c + 1, v)
            done;
            let best = ref (0, default) in
            Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
            snd !best
          in
          { Session.step; result });
    }
end

(* Pinned pre-Bitvec EIG: path distinctness via sort_uniq over the
   whole list (indices unconstrained), per-envelope session wrapping.
   The library now marks a scratch membership vector for in-range
   paths and falls back to exactly this check on any out-of-range
   index. *)
module Seed_eig = struct
  module Session = Sb_broadcast.Session

  let default = Msg.Bit false

  let encode_pair (path, v) =
    Msg.List [ Msg.List (List.map (fun i -> Msg.Int i) path); v ]

  let decode_pair = function
    | Msg.List [ Msg.List path; v ] ->
        let ints = List.filter_map (function Msg.Int i -> Some i | _ -> None) path in
        if List.length ints = List.length path then Some (ints, v) else None
    | _ -> None

  let distinct l = List.length (List.sort_uniq Int.compare l) = List.length l

  let scheme =
    {
      Session.scheme_name = "eig-seed";
      rounds = (fun ctx -> ctx.Ctx.thresh + 1);
      create =
        (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
          assert ((me = sender) = Option.is_some value);
          let n = ctx.Ctx.n in
          let t = ctx.Ctx.thresh in
          let tree : (int list, Msg.t) Hashtbl.t = Hashtbl.create 64 in
          let last_level : (int list * Msg.t) list ref = ref [] in
          let store ~round inbox =
            List.iter
              (fun (e : Envelope.t) ->
                let src = Envelope.src_party e in
                match Option.map Msg.to_list_exn (Session.unwrap ~sid e.Envelope.body) with
                | Some pairs ->
                    List.iter
                      (fun pair ->
                        match decode_pair pair with
                        | Some (path, v)
                          when List.length path = round
                               && distinct path
                               && (match path with p0 :: _ -> p0 = sender | [] -> false)
                               && (match List.rev path with
                                  | last :: _ -> Some last = src
                                  | [] -> false)
                               && not (Hashtbl.mem tree path) ->
                            Hashtbl.replace tree path v;
                            last_level := (path, v) :: !last_level
                        | _ -> ())
                      pairs
                | None -> ()
                | exception Invalid_argument _ -> ())
              inbox
          in
          let broadcast_pairs pairs =
            if pairs = [] then []
            else
              List.map
                (fun (e : Envelope.t) ->
                  { e with Envelope.body = Session.wrap ~sid e.Envelope.body })
                (Envelope.to_all ~n ~src:me (Msg.List (List.map encode_pair pairs)))
          in
          let step ~round ~inbox =
            last_level := [];
            store ~round inbox;
            if round = 0 then (
              match value with
              | Some v ->
                  Hashtbl.replace tree [ sender ] v;
                  broadcast_pairs [ ([ sender ], v) ]
              | None -> [])
            else if round <= t then
              broadcast_pairs
                (List.filter_map
                   (fun (path, v) ->
                     if List.mem me path then None else Some (path @ [ me ], v))
                   !last_level)
            else []
          in
          let result () =
            let rec resolve path =
              if List.length path = t + 1 then
                Option.value (Hashtbl.find_opt tree path) ~default
              else begin
                let children =
                  List.filter_map
                    (fun j ->
                      if List.mem j path then None else Some (resolve (path @ [ j ])))
                    (List.init n Fun.id)
                in
                let counts = Hashtbl.create 8 in
                List.iter
                  (fun v ->
                    let key = Msg.serialize v in
                    let c =
                      match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0
                    in
                    Hashtbl.replace counts key (c + 1, v))
                  children;
                let best = ref (0, default) in
                Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
                if 2 * fst !best > List.length children then snd !best else default
              end
            in
            if t = 0 then Option.value (Hashtbl.find_opt tree [ sender ]) ~default
            else resolve [ sender ]
          in
          { Session.step; result });
    }
end

(* One deterministic adversarial scenario: everything (context,
   network schedule, adversarial traffic) is derived from [seed]
   alone, so running two schemes under the same seed feeds them
   identical traffic and their honest outputs must match exactly. *)
let differential_outputs ?(thresh = 1) scheme ~sender ~adv ~seed =
  let ctx = Ctx.make ~rng:(Sb_util.Rng.create (70000 + seed)) ~n:5 ~thresh ~k:8 () in
  let inputs = Array.init 5 (fun i -> Msg.Bit ((seed + i) mod 2 = 0)) in
  let r =
    Network.run ctx
      ~rng:(Sb_util.Rng.create (80000 + seed))
      ~protocol:(session_protocol scheme ~sender) ~adversary:(adv ~seed) ~inputs ()
  in
  List.map (fun (id, m) -> (id, Msg.serialize m)) r.Network.outputs

(* Chaos traffic for Bracha: the corrupted party floods randomly
   chosen br-echo / br-ready messages over several distinct values
   (including non-Bit ones), per destination, so the receive sets see
   duplicate sources, equivocation and multi-candidate tallies. When
   it is the sender it also equivocates br-init per destination. *)
let bracha_chaos ~corrupt ~seed =
  {
    Adversary.name = "bracha-chaos";
    choose_corrupt = (fun _ ~rng:_ -> [ corrupt ]);
    init =
      (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let arng = Sb_util.Rng.create (90000 + seed) in
        {
          Adversary.act =
            (fun view ->
              let round = view.Adversary.round in
              let chaos () =
                List.concat
                  (List.init ctx.Ctx.n (fun dst ->
                       List.init 2 (fun _ ->
                           let tag =
                             if Sb_util.Rng.bool arng then "br-echo" else "br-ready"
                           in
                           let v =
                             match Sb_util.Rng.int arng 3 with
                             | 0 -> Msg.Bit true
                             | 1 -> Msg.Bit false
                             | _ -> Msg.Int (Sb_util.Rng.int arng 4)
                           in
                           Envelope.make ~src:corrupt ~dst
                             (Sb_broadcast.Session.wrap ~sid:"test" (Msg.Tag (tag, v))))))
              in
              if round = 0 then
                List.init ctx.Ctx.n (fun dst ->
                    Envelope.make ~src:corrupt ~dst
                      (Sb_broadcast.Session.wrap ~sid:"test"
                         (Msg.Tag ("br-init", Msg.Bit (dst mod 2 = 0)))))
              else if round <= 3 then chaos ()
              else []);
          adv_output = (fun () -> Msg.Unit);
        });
  }

(* Chaos traffic for Dolev-Strong: competing values under every chain
   shape the acceptance predicate discriminates on — valid two-chains,
   duplicate signers, out-of-range signers, a chain missing the
   sender, and a chain whose sender signature was computed under the
   wrong key. *)
let ds_chaos ~seed =
  {
    Adversary.name = "ds-chaos";
    choose_corrupt = (fun _ ~rng:_ -> [ 4 ]);
    init =
      (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let arng = Sb_util.Rng.create (95000 + seed) in
        let sigs = ctx.Ctx.sigs in
        {
          Adversary.act =
            (fun view ->
              if view.Adversary.round < 1 then []
              else
                List.concat
                  (List.init 3 (fun _ ->
                       let v = Msg.Bit (Sb_util.Rng.bool arng) in
                       let base = "ds:test:" ^ Msg.serialize v in
                       let good i =
                         Msg.List
                           [ Msg.Int i; Msg.Str (Sb_crypto.Sig.sign sigs ~signer:i base) ]
                       in
                       let chain =
                         match Sb_util.Rng.int arng 5 with
                         | 0 -> [ good 4; good 0 ]
                         | 1 -> [ good 4; good 4; good 0 ]
                         | 2 -> [ Msg.List [ Msg.Int 9; Msg.Str "zz" ]; good 0 ]
                         | 3 -> [ good 4 ]
                         | _ ->
                             [
                               Msg.List
                                 [
                                   Msg.Int 0;
                                   Msg.Str (Sb_crypto.Sig.sign sigs ~signer:4 base);
                                 ];
                               good 4;
                             ]
                       in
                       Envelope.to_all ~n:ctx.Ctx.n ~src:4
                         (Sb_broadcast.Session.wrap ~sid:"test"
                            (Msg.List [ v; Msg.List chain ])))));
          adv_output = (fun () -> Msg.Unit);
        });
  }

(* Chaos traffic for send-echo: duplicate "echo"-tagged messages with
   conflicting values per destination (the per-source slot must keep
   the LAST write, as Hashtbl.replace did), malformed payloads, and —
   when the corrupted party is the sender — an equivocating round-0
   send. *)
let se_chaos ~corrupt ~seed =
  {
    Adversary.name = "se-chaos";
    choose_corrupt = (fun _ ~rng:_ -> [ corrupt ]);
    init =
      (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let arng = Sb_util.Rng.create (91000 + seed) in
        {
          Adversary.act =
            (fun view ->
              let round = view.Adversary.round in
              if round = 0 then
                List.init ctx.Ctx.n (fun dst ->
                    Envelope.make ~src:corrupt ~dst
                      (Sb_broadcast.Session.wrap ~sid:"test" (Msg.Bit (dst mod 2 = 0))))
              else if round = 1 then
                (* Delivered at round 2, when echoes are recorded. *)
                List.concat
                  (List.init ctx.Ctx.n (fun dst ->
                       List.init 3 (fun _ ->
                           let m =
                             match Sb_util.Rng.int arng 4 with
                             | 0 -> Msg.Tag ("echo", Msg.Bit true)
                             | 1 -> Msg.Tag ("echo", Msg.Bit false)
                             | 2 -> Msg.Tag ("echo", Msg.Int (Sb_util.Rng.int arng 3))
                             | _ -> Msg.Str "junk"
                           in
                           Envelope.make ~src:corrupt ~dst
                             (Sb_broadcast.Session.wrap ~sid:"test" m))))
              else []);
          adv_output = (fun () -> Msg.Unit);
        });
  }

(* Chaos traffic for EIG (run at thresh = 2 so level-3 paths exist):
   encoded path/value pairs under every shape the store predicate
   discriminates on — a valid relay, out-of-range and negative middle
   indices (the library's fast path must fall back to the seed's
   sort_uniq check, never crash), duplicate indices, wrong first/last
   elements, wrong lengths and non-integer path entries. *)
let eig_chaos ~seed =
  {
    Adversary.name = "eig-chaos";
    choose_corrupt = (fun _ ~rng:_ -> [ 4 ]);
    init =
      (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let arng = Sb_util.Rng.create (93000 + seed) in
        let pair path v =
          Msg.List [ Msg.List (List.map (fun i -> Msg.Int i) path); v ]
        in
        {
          Adversary.act =
            (fun view ->
              let round = view.Adversary.round in
              if round < 1 || round > 2 then []
              else
                let v () = Msg.Bit (Sb_util.Rng.bool arng) in
                let pairs =
                  if round = 1 then
                    (* Delivered at round 2: length-2 paths compete. *)
                    [
                      pair [ 0; 4 ] (v ());
                      pair [ 4; 4 ] (v ());
                      pair [ 1; 4 ] (v ());
                      pair [ 0; 9 ] (v ());
                      pair [ 0 ] (v ());
                      Msg.List [ Msg.List [ Msg.Str "x"; Msg.Int 4 ]; v () ];
                    ]
                  else
                    (* Delivered at round 3 = t + 1: length-3 paths,
                       including out-of-range middles that only the
                       sort_uniq fallback can judge. *)
                    [
                      pair [ 0; 1; 4 ] (v ());
                      pair [ 0; 9; 4 ] (v ());
                      pair [ 0; -1; 4 ] (v ());
                      pair [ 0; 0; 4 ] (v ());
                      pair [ 1; 9; 4 ] (v ());
                      pair [ 0; 9; 9; 4 ] (v ());
                    ]
                in
                Envelope.to_all ~n:ctx.Ctx.n ~src:4
                  (Sb_broadcast.Session.wrap ~sid:"test" (Msg.List pairs)));
          adv_output = (fun () -> Msg.Unit);
        });
  }

let outputs_t = Alcotest.(list (pair int string))

let test_bracha_differential () =
  for seed = 1 to 25 do
    (* Corrupted non-sender flooding chaos. *)
    Alcotest.check outputs_t "bracha vs seed (chaotic echoer)"
      (differential_outputs Seed_bracha.scheme ~sender:0 ~adv:(bracha_chaos ~corrupt:4)
         ~seed)
      (differential_outputs Sb_broadcast.Bracha.scheme ~sender:0
         ~adv:(bracha_chaos ~corrupt:4) ~seed);
    (* Corrupted sender: equivocating init plus chaos. *)
    Alcotest.check outputs_t "bracha vs seed (chaotic sender)"
      (differential_outputs Seed_bracha.scheme ~sender:0 ~adv:(bracha_chaos ~corrupt:0)
         ~seed)
      (differential_outputs Sb_broadcast.Bracha.scheme ~sender:0
         ~adv:(bracha_chaos ~corrupt:0) ~seed)
  done

let test_dolev_strong_differential () =
  for seed = 1 to 25 do
    Alcotest.check outputs_t "dolev-strong vs seed (chain chaos)"
      (differential_outputs Seed_dolev_strong.scheme ~sender:0 ~adv:ds_chaos ~seed)
      (differential_outputs Sb_broadcast.Dolev_strong.scheme ~sender:0 ~adv:ds_chaos ~seed)
  done

let test_send_echo_differential () =
  for seed = 1 to 25 do
    (* Corrupted non-sender flooding conflicting echoes. *)
    Alcotest.check outputs_t "send-echo vs seed (chaotic echoer)"
      (differential_outputs Seed_send_echo.scheme ~sender:0 ~adv:(se_chaos ~corrupt:4)
         ~seed)
      (differential_outputs Sb_broadcast.Send_echo.scheme ~sender:0
         ~adv:(se_chaos ~corrupt:4) ~seed);
    (* Corrupted sender: equivocating round-0 send plus echo chaos. *)
    Alcotest.check outputs_t "send-echo vs seed (chaotic sender)"
      (differential_outputs Seed_send_echo.scheme ~sender:0 ~adv:(se_chaos ~corrupt:0)
         ~seed)
      (differential_outputs Sb_broadcast.Send_echo.scheme ~sender:0
         ~adv:(se_chaos ~corrupt:0) ~seed)
  done

let test_eig_differential () =
  for seed = 1 to 25 do
    Alcotest.check outputs_t "eig vs seed (path chaos)"
      (differential_outputs ~thresh:2 Seed_eig.scheme ~sender:0 ~adv:eig_chaos ~seed)
      (differential_outputs ~thresh:2 Sb_broadcast.Eig.scheme ~sender:0 ~adv:eig_chaos
         ~seed)
  done

let () =
  let scheme_cases name scheme =
    [
      Alcotest.test_case (name ^ ": honest sender correct") `Quick
        (test_honest_sender_correct scheme);
      Alcotest.test_case (name ^ ": lying echoers") `Quick
        (test_honest_sender_vs_lying_echoers scheme);
      Alcotest.test_case (name ^ ": equivocating sender consistent") `Quick
        (test_corrupted_sender_consistency scheme);
    ]
  in
  Alcotest.run "sb_broadcast"
    [
      ("send-echo", scheme_cases "send-echo" (List.assoc "send-echo" schemes));
      ("dolev-strong", scheme_cases "dolev-strong" (List.assoc "dolev-strong" schemes));
      ("eig", scheme_cases "eig" (List.assoc "eig" schemes));
      ("bracha", scheme_cases "bracha" (List.assoc "bracha" schemes));
      ( "adversarial",
        [
          Alcotest.test_case "dolev-strong rejects forgery" `Quick
            test_dolev_strong_rejects_forgery;
          Alcotest.test_case "eig with two corruptions" `Quick test_eig_two_corruptions;
          Alcotest.test_case "bracha silence defaults" `Quick test_bracha_no_quorum_defaults;
          Alcotest.test_case "spoofed sources counted" `Quick test_spoofed_sources_counted;
        ] );
      ( "differential",
        [
          Alcotest.test_case "bracha bitvec = seed semantics" `Quick
            test_bracha_differential;
          Alcotest.test_case "dolev-strong bitvec = seed semantics" `Quick
            test_dolev_strong_differential;
          Alcotest.test_case "send-echo slots = seed semantics" `Quick
            test_send_echo_differential;
          Alcotest.test_case "eig distinct = seed semantics" `Quick test_eig_differential;
        ] );
      ( "phase-king",
        [
          Alcotest.test_case "honest sender" `Quick test_phase_king_honest;
          Alcotest.test_case "equivocating sender" `Quick test_phase_king_equivocating_sender;
          Alcotest.test_case "lying non-king" `Quick test_phase_king_lying_nonking;
          Alcotest.test_case "round formula" `Quick test_phase_king_rounds;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "sequential send-echo contract" `Quick
            (test_parallel_contract Sb_broadcast.Parallel.sequential
               Sb_broadcast.Send_echo.scheme);
          Alcotest.test_case "concurrent send-echo contract" `Quick
            (test_parallel_contract Sb_broadcast.Parallel.concurrent
               Sb_broadcast.Send_echo.scheme);
          Alcotest.test_case "sequential dolev-strong contract" `Quick
            (test_parallel_contract Sb_broadcast.Parallel.sequential
               Sb_broadcast.Dolev_strong.scheme);
          Alcotest.test_case "concurrent dolev-strong contract" `Quick
            (test_parallel_contract Sb_broadcast.Parallel.concurrent
               Sb_broadcast.Dolev_strong.scheme);
          Alcotest.test_case "concurrent eig contract" `Quick
            (test_parallel_contract Sb_broadcast.Parallel.concurrent
               Sb_broadcast.Eig.scheme);
          Alcotest.test_case "round counts" `Quick test_sequential_rounds_linear;
          Alcotest.test_case "windows" `Quick test_window;
        ] );
    ]
