(* Tests for the causal tracing engine: Trace_ctx span-tree mechanics,
   flow edges counted against the network transcript, Perfetto JSON
   parse-back, the one hard contract (tracing must not perturb seeded
   runs, at any pool size), flame aggregation determinism, and the
   perf-trajectory helpers (Report.perf_diff / history_row). *)

open Sb_obs

(* Trace state is process-global; funnel every enabling test through
   this so a failure cannot leak enablement into a later test. *)
let with_trace f =
  Trace_ctx.reset ();
  Trace_ctx.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace_ctx.set_enabled false;
      Trace_ctx.set_max_sessions 64;
      Trace_ctx.reset ())
    f

(* --- engine mechanics ---------------------------------------------- *)

let test_span_tree_mechanics () =
  with_trace (fun () ->
      let s = Trace_ctx.begin_session ~args:[ ("k", "v") ] "sess" in
      let r = Trace_ctx.begin_span ~agg:"round" ~cat:"round" "round 0" in
      let p = Trace_ctx.begin_span ~cat:"party" "P0" in
      Trace_ctx.end_span p;
      Trace_ctx.end_span r;
      Trace_ctx.end_span s;
      match Trace_ctx.spans () with
      | [ a; b; c ] ->
          (* sorted by (track, start, id): session, round, party *)
          Alcotest.(check string) "root name" "sess" a.Trace_ctx.name;
          Alcotest.(check int) "root parent" (-1) a.Trace_ctx.parent;
          Alcotest.(check string) "root cat" "session" a.Trace_ctx.cat;
          Alcotest.(check int) "root track" 1 a.Trace_ctx.track;
          Alcotest.(check int) "round parent is session" a.Trace_ctx.id b.Trace_ctx.parent;
          Alcotest.(check string) "agg key kept" "round" b.Trace_ctx.agg;
          Alcotest.(check int) "party parent is round" b.Trace_ctx.id c.Trace_ctx.parent;
          Alcotest.(check string) "agg defaults to name" "P0" c.Trace_ctx.agg;
          List.iter
            (fun (sp : Trace_ctx.span) ->
              Alcotest.(check bool) "closed" false (Float.is_nan sp.Trace_ctx.end_us);
              Alcotest.(check bool) "duration non-negative" true
                (sp.Trace_ctx.end_us >= sp.Trace_ctx.start_us))
            [ a; b; c ]
      | sps -> Alcotest.failf "expected 3 spans, got %d" (List.length sps))

let test_disabled_is_inert () =
  Trace_ctx.reset ();
  Trace_ctx.set_enabled false;
  Alcotest.(check bool) "session handle is None" true
    (Trace_ctx.begin_session "ghost" = Trace_ctx.none);
  Alcotest.(check bool) "span handle is None" true
    (Trace_ctx.begin_span ~cat:"phase" "ghost" = Trace_ctx.none);
  Alcotest.(check int) "with_span still runs the thunk" 42
    (Trace_ctx.with_span ~cat:"phase" "ghost" (fun () -> 42));
  Trace_ctx.bucket_add "ghost" 1.0;
  Trace_ctx.flow ~src:Trace_ctx.none ~dst:Trace_ctx.none;
  Alcotest.(check int) "nothing collected" 0 (List.length (Trace_ctx.spans ()));
  Alcotest.(check int) "no sessions counted" 0 (Trace_ctx.session_total ())

let test_session_cap () =
  with_trace (fun () ->
      Trace_ctx.set_max_sessions 2;
      let s1 = Trace_ctx.begin_session "one" in
      Trace_ctx.end_span s1;
      let s2 = Trace_ctx.begin_session "two" in
      Trace_ctx.end_span s2;
      let s3 = Trace_ctx.begin_session "three" in
      Alcotest.(check bool) "first session traced" true (s1 <> Trace_ctx.none);
      Alcotest.(check bool) "third session dropped" true (s3 = Trace_ctx.none);
      (* Spans under a dropped session are dropped too: the open stack
         is empty, so children have no parent to attach to. *)
      let orphan = Trace_ctx.begin_span ~cat:"phase" "orphan" in
      Alcotest.(check bool) "child of dropped session dropped" true (orphan = Trace_ctx.none);
      Alcotest.(check int) "all sessions counted" 3 (Trace_ctx.session_total ());
      Alcotest.(check int) "traced bounded by cap" 2 (Trace_ctx.sessions_traced ()))

let test_unbalanced_close_recovers () =
  with_trace (fun () ->
      let s = Trace_ctx.begin_session "sess" in
      let outer = Trace_ctx.begin_span ~cat:"phase" "outer" in
      let _leaked = Trace_ctx.begin_span ~cat:"phase" "leaked" in
      (* Closing [outer] with [leaked] still open (an exception skipped
         its end_span) must pop past it. *)
      Trace_ctx.end_span outer;
      let next = Trace_ctx.begin_span ~cat:"phase" "next" in
      Trace_ctx.end_span next;
      Trace_ctx.end_span s;
      let spans = Trace_ctx.spans () in
      let names = List.map (fun (sp : Trace_ctx.span) -> sp.Trace_ctx.name) spans in
      Alcotest.(check (list string)) "leaked span never completes"
        [ "sess"; "outer"; "next" ] names;
      let session = List.hd spans in
      let next_sp = List.nth spans 2 in
      Alcotest.(check int) "stack recovered: next hangs off the session"
        session.Trace_ctx.id next_sp.Trace_ctx.parent)

let test_bucket_attribution () =
  with_trace (fun () ->
      let s = Trace_ctx.begin_session "sess" in
      let p = Trace_ctx.begin_span ~cat:"phase" "work" in
      Trace_ctx.bucket_add "pow_g" 5.0;
      Trace_ctx.bucket_add "pow_g" 7.0;
      Trace_ctx.bucket_add "reconstruct" 2.0;
      Trace_ctx.end_span p;
      Trace_ctx.end_span s;
      let work =
        List.find
          (fun (sp : Trace_ctx.span) -> sp.Trace_ctx.name = "work")
          (Trace_ctx.spans ())
      in
      let sorted =
        List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) work.Trace_ctx.buckets
      in
      match sorted with
      | [ ("pow_g", c1, t1); ("reconstruct", c2, t2) ] ->
          Alcotest.(check int) "pow_g calls" 2 c1;
          Alcotest.(check (float 1e-9)) "pow_g total" 12.0 t1;
          Alcotest.(check int) "reconstruct calls" 1 c2;
          Alcotest.(check (float 1e-9)) "reconstruct total" 2.0 t2
      | bs -> Alcotest.failf "expected 2 buckets, got %d" (List.length bs))

(* --- the simulator under tracing ----------------------------------- *)

let fixture_protocol = Sb_protocols.Gennaro.protocol

let run_fixture () =
  let ctx = Sb_sim.Ctx.make ~rng:(Sb_util.Rng.create 2026) ~n:5 ~thresh:2 ~k:8 () in
  let inputs = Array.init 5 (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
  Sb_sim.Network.run ctx ~rng:(Sb_util.Rng.create 7) ~protocol:fixture_protocol
    ~adversary:(Core.Adversaries.semi_honest fixture_protocol ~corrupt:[ 3; 4 ])
    ~inputs ()

(* Envelopes the network routed into a next round: party traffic minus
   the ideal channel, plus every functionality reply. The tracing
   engine records exactly one flow edge per such delivery. *)
let delivered_count (trace : Sb_sim.Trace.t) =
  List.fold_left
    (fun acc (r : Sb_sim.Trace.round_record) ->
      let party_sourced =
        List.filter
          (fun e -> not (Sb_sim.Envelope.is_func_bound e))
          (r.Sb_sim.Trace.honest_sent @ r.Sb_sim.Trace.adv_sent)
      in
      acc + List.length party_sourced + List.length r.Sb_sim.Trace.func_sent)
    0 trace

let test_flow_edge_per_delivered_envelope () =
  with_trace (fun () ->
      let r = run_fixture () in
      Alcotest.(check int) "one session" 1 (Trace_ctx.session_total ());
      Alcotest.(check int) "one flow edge per delivered envelope"
        (delivered_count r.Sb_sim.Network.trace)
        (List.length (Trace_ctx.flows ()));
      (* Every edge endpoint is a completed span. *)
      let ids =
        List.fold_left
          (fun acc (sp : Trace_ctx.span) -> sp.Trace_ctx.id :: acc)
          [] (Trace_ctx.spans ())
      in
      List.iter
        (fun (src, dst) ->
          Alcotest.(check bool) "src recorded" true (List.mem src ids);
          Alcotest.(check bool) "dst recorded" true (List.mem dst ids))
        (Trace_ctx.flows ()))

let test_perfetto_parse_back () =
  with_trace (fun () ->
      let r = run_fixture () in
      let json = Perfetto.to_json () in
      (* The export must survive its own serialisation. *)
      let reparsed =
        match Json.of_string (Json.to_string json) with
        | Ok v -> v
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
        (Option.bind (Json.member "displayTimeUnit" reparsed) Json.to_str_opt);
      let events =
        Option.bind (Json.member "traceEvents" reparsed) Json.to_list_opt |> Option.get
      in
      let ph e = Option.bind (Json.member "ph" e) Json.to_str_opt |> Option.get in
      let cat e = Option.bind (Json.member "cat" e) Json.to_str_opt in
      let xs = List.filter (fun e -> ph e = "X") events in
      let cats = List.filter_map cat xs in
      List.iter
        (fun c ->
          Alcotest.(check bool) (c ^ " spans present") true (List.mem c cats))
        [ "session"; "round"; "party"; "phase" ];
      Alcotest.(check int) "one X event per completed span"
        (List.length (Trace_ctx.spans ()))
        (List.length xs);
      let starts = List.filter (fun e -> ph e = "s") events in
      let finishes = List.filter (fun e -> ph e = "f") events in
      Alcotest.(check int) "one flow start per edge"
        (delivered_count r.Sb_sim.Network.trace)
        (List.length starts);
      Alcotest.(check int) "flow starts and finishes pair up" (List.length starts)
        (List.length finishes);
      (* X events carry the Gc delta args. *)
      let first_x = List.hd xs in
      let args = Json.member "args" first_x |> Option.get in
      Alcotest.(check bool) "minor_words arg present" true
        (Json.member "minor_words" args <> None))

let test_flame_aggregation () =
  with_trace (fun () ->
      ignore (run_fixture ());
      let frames = Perfetto.flame () in
      Alcotest.(check bool) "frames exist" true (frames <> []);
      (* Deterministic: a second aggregation over the same spans is
         identical. *)
      Alcotest.(check bool) "aggregation is deterministic" true (frames = Perfetto.flame ());
      let root =
        List.find (fun (f : Perfetto.frame) -> f.Perfetto.path = fixture_protocol.Sb_sim.Protocol.name) frames
      in
      Alcotest.(check int) "one session root frame" 1 root.Perfetto.count;
      List.iter
        (fun (f : Perfetto.frame) ->
          Alcotest.(check bool) (f.Perfetto.path ^ " self <= total") true
            (f.Perfetto.self_us <= f.Perfetto.total_us +. 1e-9);
          Alcotest.(check bool) (f.Perfetto.path ^ " rooted at the session") true
            (String.length f.Perfetto.path
             >= String.length fixture_protocol.Sb_sim.Protocol.name
            && String.sub f.Perfetto.path 0 (String.length fixture_protocol.Sb_sim.Protocol.name)
               = fixture_protocol.Sb_sim.Protocol.name))
        frames;
      (* The crypto hot path surfaces as bucket pseudo-leaves. *)
      Alcotest.(check bool) "commit_pair bucket attributed" true
        (List.exists
           (fun (f : Perfetto.frame) ->
             String.length f.Perfetto.path >= 13
             && String.sub f.Perfetto.path (String.length f.Perfetto.path - 13) 13
                = "[commit_pair]")
           frames))

(* The hard contract: tracing must not change what a seeded run
   computes — same outputs, same transcript — at any pool size. *)
let render (r : Sb_sim.Network.result) =
  let outputs =
    List.map
      (fun (i, m) -> Printf.sprintf "%d=%s" i (Sb_sim.Msg.to_string m))
      r.Sb_sim.Network.outputs
  in
  String.concat ";" outputs ^ "|" ^ Format.asprintf "%a" Sb_sim.Trace.pp r.Sb_sim.Network.trace

let outcome_csv () =
  let e = Option.get (Core.Experiments.find "E6") in
  let o = e.Core.Experiments.run (Core.Setup.with_samples 400 Core.Setup.quick) in
  Sb_util.Tabular.to_csv o.Core.Experiments.table

let test_tracing_is_inert () =
  Trace_ctx.set_enabled false;
  let plain = render (run_fixture ()) in
  let traced = with_trace (fun () -> render (run_fixture ())) in
  Alcotest.(check string) "byte-identical run under tracing" plain traced;
  (* And across worker-domain counts, through the experiment harness
     (Monte-Carlo sampling over Sb_par.Pool). *)
  List.iter
    (fun jobs ->
      Sb_par.Pool.set_default_domains jobs;
      let plain = outcome_csv () in
      let traced = with_trace (fun () -> outcome_csv ()) in
      Alcotest.(check string)
        (Printf.sprintf "E6 outcome identical under tracing at jobs %d" jobs)
        plain traced)
    [ 1; 2 ];
  Sb_par.Pool.set_default_domains 1

(* --- perf trajectory helpers --------------------------------------- *)

let report_with ~tag timings =
  Json.Obj
    [
      ("schema_version", Json.Int Report.schema_version);
      ("tag", Json.Str tag);
      ( "timings",
        Json.List
          (List.map
             (fun (name, ns) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("ns_per_run", Json.Float ns);
                   ("r_square", Json.Float 1.0);
                 ])
             timings) );
    ]

let test_perf_diff () =
  let base = report_with ~tag:"base" [ ("a", 100.0); ("b", 200.0); ("gone", 5.0) ] in
  let fresh = report_with ~tag:"fresh" [ ("a", 150.0); ("b", 190.0); ("new", 7.0) ] in
  let deltas, missing = Report.perf_diff ~base ~fresh () in
  (match deltas with
  | [ a; b ] ->
      Alcotest.(check string) "baseline order kept" "a" a.Report.name;
      Alcotest.(check (float 1e-9)) "slowdown ratio" 1.5 a.Report.ratio;
      Alcotest.(check (float 1e-9)) "speedup ratio" 0.95 b.Report.ratio
  | ds -> Alcotest.failf "expected 2 deltas, got %d" (List.length ds));
  Alcotest.(check (list string)) "baseline-only entries reported" [ "gone" ] missing;
  (* Prefix filtering. *)
  let deltas, missing = Report.perf_diff ~prefixes:[ "a" ] ~base ~fresh () in
  Alcotest.(check int) "prefix keeps one" 1 (List.length deltas);
  Alcotest.(check int) "prefix drops the missing entry" 0 (List.length missing)

let test_history_row () =
  let report = report_with ~tag:"quick" [ ("a", 100.0); ("b", 200.0) ] in
  let row = Report.history_row ~utc:"2026-01-01T00:00:00Z" report in
  (* One line of compact JSON, reparseable. *)
  let line = Json.to_string row in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  let v = match Json.of_string line with Ok v -> v | Error e -> Alcotest.fail e in
  Alcotest.(check (option string)) "utc kept" (Some "2026-01-01T00:00:00Z")
    (Option.bind (Json.member "utc" v) Json.to_str_opt);
  Alcotest.(check (option string)) "tag kept" (Some "quick")
    (Option.bind (Json.member "tag" v) Json.to_str_opt);
  let timings = Json.member "timings" v |> Option.get in
  Alcotest.(check (option (float 1e-9))) "timing flattened" (Some 100.0)
    (Option.bind (Json.member "a" timings) Json.to_float_opt)

let test_report_trace_block () =
  with_trace (fun () ->
      ignore (run_fixture ());
      let j = Report.make ~tool:"test" ~tag:"traced" ~trace:(Perfetto.summary ()) () in
      (match Report.validate j with Ok () -> () | Error e -> Alcotest.fail e);
      let t = Json.member "trace" j |> Option.get in
      Alcotest.(check (option int)) "sessions_traced" (Some 1)
        (Option.bind (Json.member "sessions_traced" t) Json.to_int_opt);
      (* A malformed trace block must be rejected. *)
      let bad =
        Report.make ~tool:"test" ~tag:"bad" ~trace:(Json.Obj [ ("spans", Json.Str "x") ]) ()
      in
      match Report.validate bad with
      | Ok () -> Alcotest.fail "accepted malformed trace block"
      | Error _ -> ())

let () =
  Alcotest.run "sb_trace"
    [
      ( "engine",
        [
          Alcotest.test_case "span tree mechanics" `Quick test_span_tree_mechanics;
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "session cap" `Quick test_session_cap;
          Alcotest.test_case "unbalanced close recovers" `Quick test_unbalanced_close_recovers;
          Alcotest.test_case "bucket attribution" `Quick test_bucket_attribution;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "flow edge per delivered envelope" `Quick
            test_flow_edge_per_delivered_envelope;
          Alcotest.test_case "perfetto parse-back" `Quick test_perfetto_parse_back;
          Alcotest.test_case "flame aggregation" `Quick test_flame_aggregation;
          Alcotest.test_case "tracing is inert (jobs 1 and 2)" `Quick test_tracing_is_inert;
        ] );
      ( "perf-trajectory",
        [
          Alcotest.test_case "perf_diff deltas and missing" `Quick test_perf_diff;
          Alcotest.test_case "history row" `Quick test_history_row;
          Alcotest.test_case "report trace block" `Quick test_report_trace_block;
        ] );
    ]
