(* sb_check: the exhaustive small-n model checker.

   The load-bearing facts pinned here: the standalone replay executor
   agrees with the real network (Network.run + Inject-compiled plans)
   on every schedule we throw at it, checker verdicts match the
   hand-derived exact cells recorded in Core.Resilience, emitted
   counterexamples are minimal and reproduce their violation when
   replayed through the --faults pipeline, and the whole thing is
   deterministic. *)

open Sb_sim
open Sb_check

let seed = 7

let ctx_for n t =
  let setup = Core.Setup.{ default with n; thresh = t; seed } in
  Core.Setup.fresh_ctx setup (Sb_util.Rng.split (Sb_util.Rng.create seed))

let scheme_exn name =
  match Checker.find_scheme name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scheme %s" name

(* A single broadcast session as a Protocol.t, so Network.run can
   drive exactly what Exec.replay simulates. *)
let single_session (scheme : Sb_broadcast.Session.scheme) ~sender ~value =
  {
    Protocol.name = "single-" ^ scheme.Sb_broadcast.Session.scheme_name;
    rounds = scheme.Sb_broadcast.Session.rounds;
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input:_ ->
        let s =
          scheme.Sb_broadcast.Session.create ctx ~rng ~sid:"chk" ~sender ~me:id
            ~value:(if id = sender then Some value else None)
        in
        { Party.step = s.Sb_broadcast.Session.step; output = s.Sb_broadcast.Session.result });
  }

let witness_of ~sender ~value ~faulty decisions =
  {
    Checker.w_property = Checker.Agreement;
    w_sender = sender;
    w_value = value;
    w_faulty = faulty;
    w_decisions = decisions;
  }

(* Run the same single session through the real network under the
   compiled plan of [decisions] and collect every party's result. *)
let network_results ctx scheme ~sender ~value ~faulty decisions =
  let n = ctx.Ctx.n in
  let plan = Checker.plan_of_witness (witness_of ~sender ~value ~faulty decisions) in
  let protocol = single_session scheme ~sender ~value in
  let inputs = Array.init n (fun i -> if i = sender then value else Msg.Bit false) in
  let r =
    Network.run ctx
      ~rng:(Sb_util.Rng.create seed)
      ~protocol
      ~adversary:(Adversary.passive protocol)
      ~inputs ~record_trace:false
      ~faults:(Sb_fault.Inject.compile ~n plan)
      ()
  in
  Array.init n (fun i -> List.assoc i r.Network.outputs)

let exec_results config decisions =
  let total = Exec.total_rounds config in
  let padded =
    decisions @ List.init (max 0 (total - List.length decisions)) (fun _ -> [])
  in
  match (Exec.replay config padded).Exec.status with
  | Exec.Terminal results -> results
  | Exec.Mid _ -> Alcotest.fail "padded replay did not terminate"

let msg = Alcotest.testable (Fmt.of_to_string Msg.serialize) Msg.equal

(* --- executor vs real network differential --------------------------- *)

let test_exec_matches_network () =
  let schedules p =
    [
      [];
      [ [ (p, Exec.Crash) ] ];
      [ [ (p, Exec.Omit) ] ];
      [ [ (p, Exec.Delay) ] ];
      [ []; [ (p, Exec.Omit) ] ];
      [ []; [ (p, Exec.Delay) ] ];
      [ []; [ (p, Exec.Crash) ] ];
      [ [ (p, Exec.Omit) ]; [ (p, Exec.Delay) ] ];
      [ [ (p, Exec.Delay) ]; []; [ (p, Exec.Omit) ] ];
      [ []; [ (p, Exec.Delay) ]; [ (p, Exec.Crash) ] ];
    ]
  in
  List.iter
    (fun name ->
      let scheme = scheme_exn name in
      let ctx = ctx_for 4 1 in
      List.iter
        (fun value ->
          List.iter
            (fun p ->
              List.iter
                (fun decisions ->
                  (* Schemes differ in round count; clip schedules that
                     outrun this one (dolev-strong has t+1 = 2). *)
                  let config =
                    { Exec.ctx; scheme; sender = 0; value; faulty = [ p ] }
                  in
                  let decisions =
                    List.filteri (fun i _ -> i < Exec.total_rounds config) decisions
                  in
                  let ex = exec_results config decisions in
                  let nw =
                    network_results ctx scheme ~sender:0 ~value ~faulty:[ p ] decisions
                  in
                  Alcotest.(check (array msg))
                    (Printf.sprintf "%s value=%s faulty=%d schedule=%d-entries" name
                       (Msg.serialize value) p (List.length decisions))
                    nw ex)
                (schedules p))
            [ 0; 3 ])
        [ Msg.Bit false; Msg.Bit true ])
    [ "bracha"; "dolev-strong"; "send-echo" ]

(* Two faulty parties acting in the same round, against the network. *)
let test_exec_matches_network_two_faulty () =
  let scheme = scheme_exn "bracha" in
  let ctx = ctx_for 4 2 in
  let decisions = [ [ (0, Exec.Omit); (3, Exec.Delay) ]; [ (3, Exec.Crash) ] ] in
  let config =
    { Exec.ctx; scheme; sender = 0; value = Msg.Bit true; faulty = [ 0; 3 ] }
  in
  let ex = exec_results config decisions in
  let nw =
    network_results ctx scheme ~sender:0 ~value:(Msg.Bit true) ~faulty:[ 0; 3 ] decisions
  in
  Alcotest.(check (array msg)) "joint schedule matches network" nw ex

(* --- checker verdicts ------------------------------------------------- *)

let verdict = Alcotest.testable (Fmt.of_to_string Checker.verdict_name) (fun a b ->
    Checker.verdict_name a = Checker.verdict_name b)

let test_bracha_below_boundary () =
  let r = Checker.check ~scheme:(scheme_exn "bracha") (ctx_for 4 1) in
  Alcotest.(check verdict) "agreement" Checker.Holds r.Checker.agreement;
  Alcotest.(check verdict) "validity" Checker.Holds r.Checker.validity;
  Alcotest.(check verdict) "unforgeability" Checker.Holds r.Checker.unforgeability;
  Alcotest.(check bool) "not capped" false r.Checker.capped;
  Alcotest.(check bool) "explored states" true (r.Checker.stats.explored > 0);
  Alcotest.(check bool) "memo hits" true (r.Checker.stats.memo_hits > 0);
  Alcotest.(check bool) "terminals" true (r.Checker.stats.terminals > 0)

let test_bracha_above_boundary () =
  let r = Checker.check ~scheme:(scheme_exn "bracha") (ctx_for 4 2) in
  Alcotest.(check verdict) "agreement still holds" Checker.Holds r.Checker.agreement;
  Alcotest.(check verdict) "unforgeability still holds" Checker.Holds
    r.Checker.unforgeability;
  match r.Checker.validity with
  | Checker.Violated w ->
      (* Accepting needs 2t+1 = 5 > n = 4 readies: a true broadcast is
         lost with no faults injected at all. *)
      Alcotest.(check (list (list (pair int (Alcotest.testable (fun _ _ -> ()) ( = ))))))
        "fault-free minimal witness" [] w.Checker.w_decisions;
      Alcotest.(check (list int)) "no faulty party needed" [] w.Checker.w_faulty;
      Alcotest.(check msg) "true value lost" (Msg.Bit true) w.Checker.w_value
  | v -> Alcotest.failf "expected validity violation, got %s" (Checker.verdict_name v)

let test_exact_cells_differential () =
  List.iter
    (fun (c : Core.Resilience.exact_cell) ->
      let scheme = scheme_exn c.Core.Resilience.cell_protocol in
      let r = Checker.check ~scheme (ctx_for c.cell_n c.cell_t) in
      let point = Printf.sprintf "%s n=%d t=%d" c.cell_protocol c.cell_n c.cell_t in
      List.iter
        (fun (prop, expected, got) ->
          match expected with
          | None -> ()
          | Some holds ->
              let want = if holds then "pass" else "violated" in
              Alcotest.(check string)
                (Printf.sprintf "%s %s" point prop)
                want
                (Checker.verdict_name got))
        [
          ("agreement", c.exp_agreement, r.Checker.agreement);
          ("validity", c.exp_validity, r.Checker.validity);
          ("unforgeability", c.exp_unforgeability, r.Checker.unforgeability);
        ])
    Core.Resilience.exact_cells

let test_deterministic () =
  let run () = Checker.check ~scheme:(scheme_exn "send-echo") (ctx_for 3 2) in
  Alcotest.(check bool) "two runs structurally equal" true (run () = run ())

let test_state_budget_caps () =
  let r = Checker.check ~max_states:10 ~scheme:(scheme_exn "bracha") (ctx_for 4 1) in
  Alcotest.(check bool) "capped" true r.Checker.capped;
  Alcotest.(check verdict) "holding verdicts degrade to inconclusive" Checker.Inconclusive
    r.Checker.agreement

let test_rejects_large_n () =
  Alcotest.check_raises "n=6 refused"
    (Invalid_argument "Sb_check.Checker.check: n = 6 exceeds max_n = 5") (fun () ->
      ignore (Checker.check ~scheme:(scheme_exn "send-echo") (ctx_for 6 1)))

(* --- counterexample round-trip --------------------------------------- *)

let validity_witness () =
  let r = Checker.check ~scheme:(scheme_exn "send-echo") (ctx_for 3 2) in
  match r.Checker.validity with
  | Checker.Violated w -> w
  | v -> Alcotest.failf "expected validity violation, got %s" (Checker.verdict_name v)

let violates_validity ctx scheme (w : Checker.witness) decisions =
  let results =
    network_results ctx scheme ~sender:w.Checker.w_sender ~value:w.Checker.w_value
      ~faulty:w.Checker.w_faulty decisions
  in
  let honest = Sb_util.Subset.complement ctx.Ctx.n w.Checker.w_faulty in
  (not (Sb_util.Subset.mem w.Checker.w_sender w.Checker.w_faulty))
  && not (List.for_all (fun i -> Msg.equal results.(i) w.Checker.w_value) honest)

let test_counterexample_roundtrip () =
  let w = validity_witness () in
  let ctx = ctx_for 3 2 in
  let scheme = scheme_exn "send-echo" in
  (* The emitted schedule, compiled to a --faults plan and replayed
     through the real network, reproduces the violation... *)
  Alcotest.(check bool) "witness replays to a violation" true
    (violates_validity ctx scheme w w.Checker.w_decisions);
  (* ...and it is minimal: removing any single entry loses it. *)
  List.iteri
    (fun r d ->
      List.iteri
        (fun k _ ->
          let shrunk =
            List.mapi
              (fun r' d' ->
                if r' = r then List.filteri (fun k' _ -> k' <> k) d' else d')
              w.Checker.w_decisions
          in
          Alcotest.(check bool)
            (Printf.sprintf "dropping entry %d of round %d loses the violation" k r)
            false
            (violates_validity ctx scheme w shrunk))
        d)
    w.Checker.w_decisions

let test_witness_plan_grammar_roundtrip () =
  let w = validity_witness () in
  let plan = Checker.plan_of_witness w in
  Alcotest.(check bool) "witness plan is non-empty" true (plan <> []);
  let s = Sb_fault.Plan.to_string plan in
  match Sb_fault.Plan.of_string s with
  | Ok plan' -> Alcotest.(check bool) ("reparses: " ^ s) true (plan = plan')
  | Error e -> Alcotest.failf "%s does not reparse: %s" s e

(* --- observability ---------------------------------------------------- *)

let test_check_metrics () =
  Sb_obs.Metrics.set_enabled true;
  Sb_obs.Metrics.reset ();
  let r = Checker.check ~scheme:(scheme_exn "dolev-strong") (ctx_for 3 1) in
  let c name = Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter name) in
  Alcotest.(check int) "check.states counter" r.Checker.stats.explored (c "check.states");
  Alcotest.(check int) "check.memo_hits counter" r.Checker.stats.memo_hits
    (c "check.memo_hits");
  Alcotest.(check int) "check.terminals counter" r.Checker.stats.terminals
    (c "check.terminals");
  Sb_obs.Metrics.reset ();
  Sb_obs.Metrics.set_enabled false

let test_report_block_validates () =
  let r = Checker.check ~scheme:(scheme_exn "bracha") (ctx_for 4 1) in
  let report = Sb_obs.Report.make ~tag:"check" ~check:(Checker.result_to_json r) () in
  (match Sb_obs.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check report invalid: %s" e);
  (* A malformed verdict string must be rejected. *)
  let bad =
    Sb_obs.Report.make ~tag:"check"
      ~check:
        (Sb_obs.Json.Obj
           [
             ("n", Sb_obs.Json.Int 4);
             ("t", Sb_obs.Json.Int 1);
             ("max_states", Sb_obs.Json.Int 1);
             ("configs", Sb_obs.Json.Int 1);
             ("explored", Sb_obs.Json.Int 1);
             ("memo_hits", Sb_obs.Json.Int 0);
             ("terminals", Sb_obs.Json.Int 1);
             ("agreement", Sb_obs.Json.Str "maybe");
             ("validity", Sb_obs.Json.Str "pass");
             ("unforgeability", Sb_obs.Json.Str "pass");
           ])
      ()
  in
  match Sb_obs.Report.validate bad with
  | Ok () -> Alcotest.fail "bad verdict string validated"
  | Error _ -> ()

let () =
  Alcotest.run "sb_check"
    [
      ( "executor",
        [
          Alcotest.test_case "matches the real network" `Quick test_exec_matches_network;
          Alcotest.test_case "matches with two faulty parties" `Quick
            test_exec_matches_network_two_faulty;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "bracha 4/1 exact-pass" `Quick test_bracha_below_boundary;
          Alcotest.test_case "bracha 4/2 validity flip" `Quick test_bracha_above_boundary;
          Alcotest.test_case "matches recorded exact cells" `Quick
            test_exact_cells_differential;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "state budget caps" `Quick test_state_budget_caps;
          Alcotest.test_case "rejects n beyond max_n" `Quick test_rejects_large_n;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "round-trip through --faults" `Quick
            test_counterexample_roundtrip;
          Alcotest.test_case "plan grammar round-trip" `Quick
            test_witness_plan_grammar_roundtrip;
        ] );
      ( "observability",
        [
          Alcotest.test_case "check.* counters" `Quick test_check_metrics;
          Alcotest.test_case "report block validates" `Quick test_report_block_validates;
        ] );
    ]
