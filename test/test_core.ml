(* Tests for core: announced-vector extraction, the predicate battery,
   adversary constructions, and — crucially — CALIBRATION of the four
   independence testers against synthetic protocols whose announced-
   value distributions have analytically known gaps. *)

open Sb_sim

let setup = Core.Setup.{ default with samples = 4000 }
let gsetup = Core.Setup.{ default with samples = 16000 }
let uniform = Sb_dist.Dist.uniform 5

(* Synthetic protocol: announced vector = f(x, coin). One round, no
   messages; each party computes the same announced vector locally
   from its input share... that is impossible without communication,
   so instead parties are fed the full input via a functionality-free
   trick: party 0 broadcasts x_0... Simplest honest approach: every
   party broadcasts its input bit in round 0 and output = f(all bits,
   shared coin from the CRS). This keeps consistency by construction
   and lets us dial in any announced-value distribution. *)
let synthetic ~name f =
  {
    Protocol.name;
    rounds = (fun _ -> 1);
    make_functionality = None;
    make_party =
      (fun ctx ~rng:_ ~id ~input ->
        let heard = Array.make ctx.Ctx.n false in
        let step ~round ~inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match (Envelope.src_party e, e.Envelope.body) with
              | Some src, Msg.Tag ("syn", Msg.Bit b) -> heard.(src) <- b
              | _ -> ())
            inbox;
          if round = 0 then [ Envelope.broadcast ~src:id (Msg.Tag ("syn", input)) ] else []
        in
        let output () =
          (* Derive a shared coin from the CRS so all parties agree. *)
          let coin = Char.code ctx.Ctx.crs.[0] land 1 = 1 in
          Msg.bits (Array.to_list (f ~coin heard))
        in
        { Party.step; output });
  }

let identity_protocol = synthetic ~name:"syn-identity" (fun ~coin:_ x -> x)

(* Party 4's announced value is the parity of the others: a large,
   exactly computable CR violation (gap 1/4 for the parity predicate)
   and a G violation when 4 is corrupted. *)
let parity_protocol =
  synthetic ~name:"syn-parity" (fun ~coin:_ x ->
      let p = ref false in
      Array.iteri (fun j v -> if j <> 4 && v then p := not !p) x;
      Array.mapi (fun i b -> if i = 4 then !p else b) x)

(* Party 4 announces a coin independent of everything. *)
let coin_protocol =
  synthetic ~name:"syn-coin" (fun ~coin x ->
      Array.mapi (fun i b -> if i = 4 then coin else b) x)

let null_adv corrupt =
  {
    Adversary.name = "observer";
    choose_corrupt = (fun _ ~rng:_ -> corrupt);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        { Adversary.act = (fun _ -> []); adv_output = (fun () -> Msg.Unit) });
  }

(* --- Announced ------------------------------------------------------- *)

let test_announced_extraction () =
  let rng = Sb_util.Rng.create 5 in
  let x = Sb_util.Bitvec.of_string "10101" in
  let r =
    Core.Announced.run_once setup ~protocol:identity_protocol
      ~adversary:Core.Adversaries.passive ~x rng
  in
  Alcotest.(check string) "w = x" "10101" (Sb_util.Bitvec.to_string r.Core.Announced.w);
  Alcotest.(check bool) "consistent" true r.Core.Announced.consistent;
  Alcotest.(check (list int)) "no corruption" [] r.Core.Announced.corrupted

let test_announced_sample_count () =
  let count = ref 0 in
  let small = Core.Setup.{ setup with samples = 123 } in
  Core.Announced.sample small ~protocol:identity_protocol ~adversary:Core.Adversaries.passive
    ~dist:uniform (Sb_util.Rng.create 3) (fun _ -> incr count);
  Alcotest.(check int) "exactly samples runs" 123 !count

let test_corrupted_of () =
  Alcotest.(check (list int)) "corrupted set" [ 2; 4 ]
    (Core.Announced.corrupted_of setup ~protocol:identity_protocol
       ~adversary:(null_adv [ 2; 4 ]))

(* --- Predicate battery ------------------------------------------------ *)

let test_predicates () =
  let z = [| true; false; true |] in
  Alcotest.(check bool) "parity of 101 is 0" true (Core.Predicate.parity.Core.Predicate.eval z);
  Alcotest.(check bool) "bit 0" true ((Core.Predicate.bit 0).Core.Predicate.eval z);
  Alcotest.(check bool) "bit 1" false ((Core.Predicate.bit 1).Core.Predicate.eval z);
  Alcotest.(check bool) "majority 101" true (Core.Predicate.majority.Core.Predicate.eval z);
  Alcotest.(check bool) "all zero" false (Core.Predicate.all_zero.Core.Predicate.eval z);
  Alcotest.(check bool) "all zero on zeros" true
    (Core.Predicate.all_zero.Core.Predicate.eval [| false; false |]);
  Alcotest.(check bool) "adjacent equal" false
    (Core.Predicate.any_two_equal_adjacent.Core.Predicate.eval z);
  Alcotest.(check int) "battery size" 8 (List.length (Core.Predicate.battery ~n:5))

(* --- CR tester calibration -------------------------------------------- *)

let test_cr_passes_identity () =
  let r =
    Core.Cr_test.run setup ~protocol:identity_protocol ~adversary:Core.Adversaries.passive
      ~dist:uniform ()
  in
  Alcotest.(check string) "verdict" "PASS" (Sb_stats.Verdict.to_string r.Core.Cr_test.verdict);
  Alcotest.(check int) "no inconsistent runs" 0 r.Core.Cr_test.inconsistent_runs

let test_cr_fails_parity_with_quarter_gap () =
  let r =
    Core.Cr_test.run setup ~protocol:parity_protocol ~adversary:Core.Adversaries.passive
      ~dist:uniform ()
  in
  Alcotest.(check string) "verdict" "FAIL" (Sb_stats.Verdict.to_string r.Core.Cr_test.verdict);
  match r.Core.Cr_test.worst with
  | Some w ->
      Alcotest.(check bool) "gap is ~1/4" true
        (Float.abs (w.Core.Cr_test.gap.Sb_stats.Estimate.point -. 0.25) < 0.03)
  | None -> Alcotest.fail "expected findings"

let test_cr_restricted_predicates () =
  (* With only the 'all-zero' predicate the parity protocol's violation
     is much smaller; the battery choice matters and is explicit. *)
  let r =
    Core.Cr_test.run setup ~protocol:parity_protocol ~adversary:Core.Adversaries.passive
      ~dist:uniform ~predicates:[ Core.Predicate.all_zero ] ()
  in
  Alcotest.(check int) "one predicate x 5 honest" 5 (List.length r.Core.Cr_test.findings)

(* --- G tester calibration ---------------------------------------------- *)

let test_g_passes_independent_coin () =
  let r =
    Core.G_test.run gsetup ~protocol:coin_protocol ~adversary:(null_adv [ 4 ]) ~dist:uniform ()
  in
  Alcotest.(check string) "verdict" "PASS" (Sb_stats.Verdict.to_string r.Core.G_test.verdict)

let test_g_fails_parity_announcer () =
  let r =
    Core.G_test.run gsetup ~protocol:parity_protocol ~adversary:(null_adv [ 4 ]) ~dist:uniform ()
  in
  Alcotest.(check string) "verdict" "FAIL" (Sb_stats.Verdict.to_string r.Core.G_test.verdict);
  (* The conditional probabilities are 0 or 1 per bucket: the raw
     pairwise gap must be ~1. *)
  match r.Core.G_test.worst_pair with
  | Some (_, _, gap) -> Alcotest.(check bool) "pairwise gap ~1" true (gap > 0.9)
  | None -> Alcotest.fail "expected pairs"

let test_g_chi2_corroborates () =
  (* The global homogeneity statistic agrees with the verdict on both
     calibration protocols. *)
  let fail_r =
    Core.G_test.run gsetup ~protocol:parity_protocol ~adversary:(null_adv [ 4 ]) ~dist:uniform ()
  in
  (match List.assoc_opt 4 fail_r.Core.G_test.chi2 with
  | Some c -> Alcotest.(check bool) "parity: p ~ 0" true (c.Sb_stats.Chi2.p_value < 1e-10)
  | None -> Alcotest.fail "expected chi2 for the corrupted party");
  let pass_r =
    Core.G_test.run gsetup ~protocol:coin_protocol ~adversary:(null_adv [ 4 ]) ~dist:uniform ()
  in
  match List.assoc_opt 4 pass_r.Core.G_test.chi2 with
  | Some c -> Alcotest.(check bool) "coin: p not tiny" true (c.Sb_stats.Chi2.p_value > 1e-4)
  | None -> Alcotest.fail "expected chi2 for the corrupted party"

let test_g_trivial_without_corruption () =
  let r =
    Core.G_test.run setup ~protocol:parity_protocol ~adversary:Core.Adversaries.passive
      ~dist:uniform ()
  in
  Alcotest.(check string) "vacuous pass" "PASS" (Sb_stats.Verdict.to_string r.Core.G_test.verdict)

let test_g_vacuous_on_singleton () =
  let r =
    Core.G_test.run setup ~protocol:identity_protocol ~adversary:(null_adv [ 4 ])
      ~dist:(Sb_dist.Dist.singleton (Sb_util.Bitvec.zero 5))
      ()
  in
  Alcotest.(check string) "single bucket pass" "PASS"
    (Sb_stats.Verdict.to_string r.Core.G_test.verdict)

(* --- G** tester calibration --------------------------------------------- *)

let test_gss_passes_coin () =
  let r = Core.Gss_test.run setup ~protocol:coin_protocol ~adversary:(null_adv [ 4 ]) () in
  Alcotest.(check string) "verdict" "PASS" (Sb_stats.Verdict.to_string r.Core.Gss_test.verdict)

let test_gss_fails_parity () =
  let r = Core.Gss_test.run setup ~protocol:parity_protocol ~adversary:(null_adv [ 4 ]) () in
  Alcotest.(check string) "verdict" "FAIL" (Sb_stats.Verdict.to_string r.Core.Gss_test.verdict);
  match r.Core.Gss_test.worst with
  | Some w ->
      (* Deterministic flip between adjacent inputs: gap 1. *)
      Alcotest.(check bool) "gap ~1" true (w.Core.Gss_test.gap.Sb_stats.Estimate.point > 0.9)
  | None -> Alcotest.fail "expected findings"

let test_gss_pass_without_corruption () =
  let r =
    Core.Gss_test.run setup ~protocol:parity_protocol ~adversary:Core.Adversaries.passive ()
  in
  Alcotest.(check string) "trivial" "PASS" (Sb_stats.Verdict.to_string r.Core.Gss_test.verdict)

(* --- Sb tester ------------------------------------------------------------ *)

let test_sb_ideal_band_exact () =
  (* For psi = x_j under uniform inputs the band is exactly [1/2, 1/2];
     under a singleton it is [0, 1]. Checked through the public API by
     reading falsifier results. *)
  let echo = Core.Adversaries.echo ~mode:`Sequential ~copier:4 ~target:0 () in
  let r =
    Core.Sb_test.run setup ~protocol:Sb_protocols.Naive.sequential ~adversary:echo ~dist:uniform
      ()
  in
  let f =
    List.find
      (fun (f : Core.Sb_test.falsifier_result) ->
        String.equal f.Core.Sb_test.falsifier "phi=W[4] vs psi=W[0]")
      r.Core.Sb_test.falsifiers
  in
  Alcotest.(check (float 1e-9)) "ideal max" 0.5 f.Core.Sb_test.ideal_max;
  Alcotest.(check (float 1e-9)) "ideal min" 0.5 f.Core.Sb_test.ideal_min;
  Alcotest.(check bool) "real ~1" true (f.Core.Sb_test.real_p.Sb_stats.Estimate.point > 0.97);
  Alcotest.(check string) "verdict" "FAIL" (Sb_stats.Verdict.to_string r.Core.Sb_test.verdict)

let test_sb_passes_identity_with_truthful_sim () =
  let r =
    Core.Sb_test.run setup ~protocol:identity_protocol ~adversary:(null_adv [ 3; 4 ])
      ~dist:uniform ~simulator:Core.Sb_test.truthful ()
  in
  (* The observer adversary corrupts but behaves honestly... actually
     null_adv sends nothing, so corrupted announced values default to 0
     in a real protocol; in syn-identity corrupted parties still
     broadcast (the protocol code runs only for honest parties: the
     corrupted slots stay silent and announce... syn-identity defaults
     heard to false). The truthful simulator does NOT match that; use
     the constant-0 simulator, which does. *)
  ignore r;
  let r0 =
    Core.Sb_test.run setup ~protocol:identity_protocol ~adversary:(null_adv [ 3; 4 ])
      ~dist:uniform ~simulator:(Core.Sb_test.constant false) ()
  in
  Alcotest.(check string) "verdict with matching simulator" "PASS"
    (Sb_stats.Verdict.to_string r0.Core.Sb_test.verdict)

let test_sb_semi_honest_gennaro_passes () =
  let p = Sb_protocols.Gennaro.protocol in
  let r =
    Core.Sb_test.run setup ~protocol:p
      ~adversary:(Core.Adversaries.semi_honest p ~corrupt:[ 3; 4 ])
      ~dist:uniform ~simulator:Core.Sb_test.truthful ()
  in
  Alcotest.(check string) "verdict" "PASS" (Sb_stats.Verdict.to_string r.Core.Sb_test.verdict)

let test_sb_wrong_simulator_not_pass () =
  (* The constant-1 simulator badly mismatches the semi-honest Gennaro
     execution over uniform inputs: the tester must not certify it. *)
  let p = Sb_protocols.Gennaro.protocol in
  let r =
    Core.Sb_test.run setup ~protocol:p
      ~adversary:(Core.Adversaries.semi_honest p ~corrupt:[ 3; 4 ])
      ~dist:uniform ~simulator:(Core.Sb_test.constant true) ()
  in
  Alcotest.(check bool) "not certified" true (r.Core.Sb_test.verdict <> Sb_stats.Verdict.Pass);
  match (r.Core.Sb_test.sim_tvd, r.Core.Sb_test.baseline_tvd) with
  | Some tvd, Some base -> Alcotest.(check bool) "tvd clearly above baseline" true (tvd > 2.0 *. base)
  | _ -> Alcotest.fail "expected tvd measurements"

let test_sb_sandbox_simulator_vss () =
  (* The sandbox simulator certifies Gennaro under reveal-withholding —
     the adversary whose behaviour actually depends on honest traffic. *)
  let p = Sb_protocols.Gennaro.protocol in
  let adversary =
    Core.Adversaries.reveal_withhold p ~corrupt:[ 4 ]
      ~reveal_round:(fun _ -> Sb_protocols.Gennaro.reveal_round)
      ~reveal_tag_prefix:"vss:"
      ~honest_probe:(Core.Adversaries.probe_vss_secret ~dealer:0)
  in
  let r =
    Core.Sb_test.run setup ~protocol:p ~adversary ~dist:uniform
      ~simulator:(Core.Sb_test.sandbox ~protocol:p ~adversary)
      ()
  in
  Alcotest.(check string) "certified" "PASS" (Sb_stats.Verdict.to_string r.Core.Sb_test.verdict)

let test_sb_astar_fails_by_xor_probe () =
  let r =
    Core.Sb_test.run setup ~protocol:Sb_protocols.Pi_g.protocol
      ~adversary:(Core.Adversaries.a_star ~corrupt:(3, 4))
      ~dist:uniform ()
  in
  Alcotest.(check string) "verdict" "FAIL" (Sb_stats.Verdict.to_string r.Core.Sb_test.verdict);
  let xor_fails =
    List.exists
      (fun (f : Core.Sb_test.falsifier_result) ->
        String.equal f.Core.Sb_test.falsifier "phi=xor vs psi=xor"
        && f.Core.Sb_test.verdict = Sb_stats.Verdict.Fail)
      r.Core.Sb_test.falsifiers
  in
  Alcotest.(check bool) "xor probe is the witness" true xor_fails

(* --- exact tester cross-checks ----------------------------------------- *)

let test_exact_identity_has_no_gap () =
  (* W = x under any product distribution: CR gap exactly 0. *)
  let d = Sb_dist.Dist.product 0.3 5 in
  Alcotest.(check (float 1e-12)) "cr gap" 0.0
    (Core.Exact.cr_gap_battery d ~honest:[ 0; 1; 2; 3; 4 ]);
  Alcotest.(check (float 1e-12)) "g gap" 0.0 (Core.Exact.g_gap d ~corrupted:[ 4 ])

let test_exact_echo_quarter () =
  (* The echo map on uniform inputs: exact CR gap is 1/4 (the W_target
     bit predicate at the copier... seen from any honest party whose
     reduced vector contains both). *)
  let w_dist =
    Core.Exact.push_deterministic (Sb_dist.Dist.uniform 5)
      (Core.Exact.echo_map ~copier:4 ~target:0)
  in
  Alcotest.(check (float 1e-12)) "cr gap = 1/4" 0.25
    (Core.Exact.cr_gap_battery w_dist ~honest:[ 0; 1; 2; 3 ]);
  (* And the exact G gap with the copier corrupted is 1 (deterministic
     given the honest vector). *)
  Alcotest.(check (float 1e-12)) "g gap = 1" 1.0 (Core.Exact.g_gap w_dist ~corrupted:[ 4 ])

let test_exact_pi_g_astar () =
  (* Lemma 6.4's numbers, exactly: CR gap 1/4, G gap 0. *)
  let w_dist =
    Core.Exact.push_coin (Sb_dist.Dist.uniform 5) (Core.Exact.pi_g_astar_map ~l1:3 ~l2:4)
  in
  Alcotest.(check (float 1e-12)) "cr gap = 1/4" 0.25
    (Core.Exact.cr_gap_battery w_dist ~honest:[ 0; 1; 2 ]);
  Alcotest.(check (float 1e-12)) "g gap = 0" 0.0 (Core.Exact.g_gap w_dist ~corrupted:[ 3; 4 ])

let test_exact_matches_sampled_cr () =
  (* The Monte-Carlo CR tester's worst-gap estimate must agree with the
     exact value within its own confidence interval. *)
  let exact =
    Core.Exact.cr_gap_battery
      (Core.Exact.push_coin (Sb_dist.Dist.uniform 5) (Core.Exact.pi_g_astar_map ~l1:3 ~l2:4))
      ~honest:[ 0; 1; 2 ]
  in
  let sampled =
    Core.Cr_test.run setup ~protocol:Sb_protocols.Pi_g.protocol
      ~adversary:(Core.Adversaries.a_star ~corrupt:(3, 4))
      ~dist:(Sb_dist.Dist.uniform 5) ()
  in
  match sampled.Core.Cr_test.worst with
  | Some w ->
      Alcotest.(check bool) "exact inside sampled CI" true
        (w.Core.Cr_test.gap.Sb_stats.Estimate.lo <= exact
        && exact <= w.Core.Cr_test.gap.Sb_stats.Estimate.hi)
  | None -> Alcotest.fail "expected findings"

let test_exact_pushforward_mass () =
  let d =
    Core.Exact.push_deterministic (Sb_dist.Dist.copy_pair 4)
      (Core.Exact.echo_map ~copier:3 ~target:1)
  in
  Alcotest.(check (float 1e-12)) "mass 1" 1.0
    (Array.fold_left ( +. ) 0.0 (Sb_dist.Dist.pmf d))

(* --- adversary constructions ------------------------------------------ *)

let test_echo_requires_order () =
  Alcotest.(check bool) "constructor asserts copier > target" true
    (try
       ignore (Core.Adversaries.echo ~mode:`Sequential ~copier:0 ~target:3 ());
       false
     with Assert_failure _ -> true)

let test_substitute_constant () =
  let p = identity_protocol in
  let adv = Core.Adversaries.substitute_constant p ~corrupt:[ 4 ] ~value:true in
  let rng = Sb_util.Rng.create 9 in
  let x = Sb_util.Bitvec.zero 5 in
  let r = Core.Announced.run_once setup ~protocol:p ~adversary:adv ~x rng in
  Alcotest.(check bool) "substituted to 1" true (Sb_util.Bitvec.get r.Core.Announced.w 4);
  Alcotest.(check bool) "honest untouched" false (Sb_util.Bitvec.get r.Core.Announced.w 0)

let test_negating_echo () =
  let adv = Core.Adversaries.echo ~mode:`Sequential ~copier:4 ~target:0 ~negate:true () in
  let rng = Sb_util.Rng.create 10 in
  List.iter
    (fun s ->
      let x = Sb_util.Bitvec.of_string s in
      let r =
        Core.Announced.run_once setup ~protocol:Sb_protocols.Naive.sequential ~adversary:adv ~x
          (Sb_util.Rng.split rng)
      in
      Alcotest.(check bool) "negated copy"
        (not (Sb_util.Bitvec.get r.Core.Announced.w 0))
        (Sb_util.Bitvec.get r.Core.Announced.w 4))
    [ "00000"; "10000"; "11111" ]

let () =
  Alcotest.run "core"
    [
      ( "announced",
        [
          Alcotest.test_case "extraction" `Quick test_announced_extraction;
          Alcotest.test_case "sample count" `Quick test_announced_sample_count;
          Alcotest.test_case "corrupted_of" `Quick test_corrupted_of;
        ] );
      ("predicates", [ Alcotest.test_case "battery" `Quick test_predicates ]);
      ( "cr-tester",
        [
          Alcotest.test_case "passes identity" `Slow test_cr_passes_identity;
          Alcotest.test_case "fails parity (gap 1/4)" `Slow test_cr_fails_parity_with_quarter_gap;
          Alcotest.test_case "restricted predicates" `Slow test_cr_restricted_predicates;
        ] );
      ( "g-tester",
        [
          Alcotest.test_case "passes independent coin" `Slow test_g_passes_independent_coin;
          Alcotest.test_case "fails parity announcer" `Slow test_g_fails_parity_announcer;
          Alcotest.test_case "chi2 corroborates" `Slow test_g_chi2_corroborates;
          Alcotest.test_case "trivial without corruption" `Slow test_g_trivial_without_corruption;
          Alcotest.test_case "vacuous on singleton" `Slow test_g_vacuous_on_singleton;
        ] );
      ( "gss-tester",
        [
          Alcotest.test_case "passes coin" `Slow test_gss_passes_coin;
          Alcotest.test_case "fails parity" `Slow test_gss_fails_parity;
          Alcotest.test_case "trivial without corruption" `Quick test_gss_pass_without_corruption;
        ] );
      ( "sb-tester",
        [
          Alcotest.test_case "ideal band exact" `Slow test_sb_ideal_band_exact;
          Alcotest.test_case "identity with matching simulator" `Slow
            test_sb_passes_identity_with_truthful_sim;
          Alcotest.test_case "semi-honest gennaro" `Slow test_sb_semi_honest_gennaro_passes;
          Alcotest.test_case "wrong simulator rejected" `Slow test_sb_wrong_simulator_not_pass;
          Alcotest.test_case "sandbox simulator on VSS" `Slow test_sb_sandbox_simulator_vss;
          Alcotest.test_case "A* xor probe" `Slow test_sb_astar_fails_by_xor_probe;
        ] );
      ( "exact",
        [
          Alcotest.test_case "identity no gap" `Quick test_exact_identity_has_no_gap;
          Alcotest.test_case "echo gap 1/4 exactly" `Quick test_exact_echo_quarter;
          Alcotest.test_case "pi-g/A* gaps exactly" `Quick test_exact_pi_g_astar;
          Alcotest.test_case "sampled CR agrees with exact" `Slow test_exact_matches_sampled_cr;
          Alcotest.test_case "pushforward mass" `Quick test_exact_pushforward_mass;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "echo order assert" `Quick test_echo_requires_order;
          Alcotest.test_case "substitute constant" `Quick test_substitute_constant;
          Alcotest.test_case "negating echo" `Quick test_negating_echo;
        ] );
    ]
