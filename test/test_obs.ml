(* Tests for sb_obs: metric semantics (including bucketed quantiles on
   known data), span nesting, JSON emission/parsing, report shape, and
   the layer's one hard contract: instrumentation must not perturb
   seeded protocol runs. *)

open Sb_obs

(* Metrics/span state is process-global; every test that enables the
   layer funnels through this so a failure cannot leak enablement into
   a later test. *)
let with_obs f =
  Metrics.reset ();
  Span.reset ();
  Metrics.set_enabled true;
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Span.set_enabled false;
      Sink.detach_all ())
    f

(* --- counters and gauges ------------------------------------------ *)

let test_counter_semantics () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "t.counter" in
  Metrics.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Metrics.counter_value c);
  with_obs (fun () ->
      Metrics.incr c;
      Metrics.incr ~by:41 c;
      Alcotest.(check int) "enabled incr accumulates" 42 (Metrics.counter_value c);
      let c' = Metrics.counter "t.counter" in
      Metrics.incr c';
      Alcotest.(check int) "interned by name" 43 (Metrics.counter_value c));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_gauge_semantics () =
  with_obs (fun () ->
      let g = Metrics.gauge "t.gauge" in
      Metrics.set g 2.5;
      Metrics.set g 7.25;
      Alcotest.(check (float 0.0)) "last write wins" 7.25 (Metrics.gauge_value g))

(* --- histograms ---------------------------------------------------- *)

let test_histogram_quantiles () =
  with_obs (fun () ->
      (* Unit-width buckets 1..100; observing each integer once makes
         the interpolated quantiles exact. *)
      let buckets = Array.init 100 (fun i -> float_of_int (i + 1)) in
      let h = Metrics.histogram ~buckets "t.hist" in
      for v = 1 to 100 do
        Metrics.observe h (float_of_int v)
      done;
      let s = Metrics.stats h in
      Alcotest.(check int) "count" 100 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
      Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
      Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
      Alcotest.(check (float 1.0)) "p50" 50.0 s.Metrics.p50;
      Alcotest.(check (float 1.0)) "p95" 95.0 s.Metrics.p95)

let test_histogram_single_value () =
  with_obs (fun () ->
      let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "t.hist1" in
      for _ = 1 to 10 do
        Metrics.observe h 7.0
      done;
      let s = Metrics.stats h in
      (* Quantiles clamp to the observed range, so a constant stream
         reports the constant, not a bucket bound. *)
      Alcotest.(check (float 1e-9)) "p50 clamps to observed" 7.0 s.Metrics.p50;
      Alcotest.(check (float 1e-9)) "p95 clamps to observed" 7.0 s.Metrics.p95;
      Alcotest.(check (float 1e-9)) "mean" 7.0 s.Metrics.mean)

let test_histogram_overflow_bucket () =
  with_obs (fun () ->
      let h = Metrics.histogram ~buckets:[| 1.0; 2.0 |] "t.hist2" in
      Metrics.observe h 0.5;
      Metrics.observe h 1000.0;
      let s = Metrics.stats h in
      Alcotest.(check int) "overflow observed" 2 s.Metrics.count;
      Alcotest.(check (float 1e-9)) "max tracked past last bound" 1000.0 s.Metrics.max)

let test_disabled_histogram_observes_nothing () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let h = Metrics.histogram ~buckets:[| 1.0 |] "t.hist3" in
  Metrics.observe h 0.5;
  Alcotest.(check int) "no count when disabled" 0 (Metrics.stats h).Metrics.count

(* --- spans --------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Span.with_span "outer" (fun () -> Span.with_span "inner" (fun () -> 42))
      in
      Alcotest.(check int) "value returned" 42 r;
      match Span.records () with
      | [ inner; outer ] ->
          Alcotest.(check string) "inner closes first" "inner" inner.Span.name;
          Alcotest.(check int) "inner depth" 1 inner.Span.depth;
          Alcotest.(check (option string)) "inner parent" (Some "outer") inner.Span.parent;
          Alcotest.(check string) "outer last" "outer" outer.Span.name;
          Alcotest.(check int) "outer depth" 0 outer.Span.depth;
          Alcotest.(check (option string)) "outer parent" None outer.Span.parent;
          Alcotest.(check bool) "outer spans inner" true
            (outer.Span.duration_s >= inner.Span.duration_s)
      | rs -> Alcotest.failf "expected 2 spans, got %d" (List.length rs))

let test_span_records_on_exception () =
  with_obs (fun () ->
      (try Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      match Span.find "boom" with
      | Some _ -> ()
      | None -> Alcotest.fail "span not recorded on exception");
  (* The open-span stack must be popped, too. *)
  with_obs (fun () ->
      ignore (Span.with_span "after" (fun () -> 0));
      match Span.records () with
      | [ r ] -> Alcotest.(check int) "depth back to 0" 0 r.Span.depth
      | rs -> Alcotest.failf "expected 1 span, got %d" (List.length rs))

let test_span_disabled_records_nothing () =
  Span.reset ();
  Span.set_enabled false;
  ignore (Span.with_span "ghost" (fun () -> 1));
  Alcotest.(check int) "no records when disabled" 0 (List.length (Span.records ()))

(* --- json ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\"y\n\tz\\" ]);
        ("c", Json.Float 1.5);
        ("d", Json.Obj []);
        ("e", Json.List []);
        ("neg", Json.Int (-3));
        ("exp", Json.Float 1.25e-3);
      ]
  in
  let check_roundtrip label s =
    match Json.of_string s with
    | Ok v' -> Alcotest.(check bool) label true (v = v')
    | Error e -> Alcotest.fail e
  in
  check_roundtrip "compact roundtrip" (Json.to_string v);
  check_roundtrip "indented roundtrip" (Json.to_string ~indent:true v)

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_json_member_access () =
  match Json.of_string "{\"x\": {\"y\": [1, 2.5, \"s\"]}}" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      let y = Option.bind (Json.member "x" v) (Json.member "y") in
      let items = Option.bind y Json.to_list_opt |> Option.get in
      Alcotest.(check int) "int elem" 1 (Json.to_int_opt (List.nth items 0) |> Option.get);
      Alcotest.(check (float 1e-9)) "float elem" 2.5
        (Json.to_float_opt (List.nth items 1) |> Option.get);
      Alcotest.(check string) "str elem" "s" (Json.to_str_opt (List.nth items 2) |> Option.get)

(* --- report -------------------------------------------------------- *)

let test_report_shape () =
  with_obs (fun () ->
      Metrics.incr (Metrics.counter "t.report.counter");
      let e =
        {
          Report.id = "E1";
          title = "unit fixture";
          ok = true;
          rows_checked = 3;
          wall_clock_s = 0.5;
          notes = [ "a note" ];
        }
      in
      let j = Report.make ~tool:"test" ~tag:"unit" ~experiments:[ e ] () in
      (match Report.validate j with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* The serialized form must parse back and still validate. *)
      match Json.of_string (Json.to_string ~indent:true j) with
      | Error msg -> Alcotest.fail msg
      | Ok j' ->
          (match Report.validate j' with
          | Ok () -> ()
          | Error msg -> Alcotest.fail ("reparsed: " ^ msg));
          Alcotest.(check (option string)) "tag survives" (Some "unit")
            (Option.bind (Json.member "tag" j') Json.to_str_opt);
          let exps = Option.bind (Json.member "experiments" j') Json.to_list_opt |> Option.get in
          Alcotest.(check int) "one experiment" 1 (List.length exps);
          Alcotest.(check (option string)) "id survives" (Some "E1")
            (Option.bind (Json.member "id" (List.hd exps)) Json.to_str_opt))

let test_report_validate_rejects () =
  let wrong = Json.Obj [ ("schema_version", Json.Int 999) ] in
  (match Report.validate wrong with
  | Ok () -> Alcotest.fail "accepted wrong schema_version"
  | Error _ -> ());
  match Report.validate (Json.Obj []) with
  | Ok () -> Alcotest.fail "accepted empty object"
  | Error _ -> ()

(* --- events and sinks ---------------------------------------------- *)

let test_event_emission () =
  with_obs (fun () ->
      let sink, read = Sink.memory () in
      Sink.attach sink;
      Event.emit ~fields:[ ("k", Json.Int 1) ] "unit-test";
      Sink.detach sink;
      Event.emit "after-detach";
      match read () with
      | [ line ] -> (
          match Json.of_string line with
          | Ok v ->
              Alcotest.(check (option string)) "ev name" (Some "unit-test")
                (Option.bind (Json.member "ev" v) Json.to_str_opt);
              Alcotest.(check (option int)) "field" (Some 1)
                (Option.bind (Json.member "k" v) Json.to_int_opt)
          | Error e -> Alcotest.fail e)
      | lines -> Alcotest.failf "expected 1 line, got %d" (List.length lines))

let seq_of_line line =
  match Json.of_string line with
  | Ok v -> Option.bind (Json.member "seq" v) Json.to_int_opt |> Option.get
  | Error e -> Alcotest.fail e

let test_event_seq_monotone_under_domains () =
  (* Worker domains emitting concurrently must never duplicate or skip
     a sequence number: the collected seqs are exactly 1..N. *)
  with_obs (fun () ->
      Event.reset ();
      let sink, read = Sink.memory () in
      Sink.attach sink;
      let pool = Sb_par.Pool.create ~domains:3 () in
      let chunks = Array.init 8 Fun.id in
      ignore
        (Sb_par.Pool.map_chunks pool
           ~f:(fun c ->
             for i = 0 to 24 do
               Event.emit
                 ~fields:[ ("chunk", Json.Int c); ("i", Json.Int i) ]
                 "unit.par"
             done;
             c)
           chunks);
      Sb_par.Pool.shutdown pool;
      let total = 8 * 25 in
      Alcotest.(check int) "seq advanced once per emit" total (Event.seq ());
      let seqs = List.sort Int.compare (List.map seq_of_line (read ())) in
      Alcotest.(check int) "every line delivered" total (List.length seqs);
      Alcotest.(check (list int)) "seqs are exactly 1..N" (List.init total (fun i -> i + 1))
        seqs)

let test_sink_fanout_under_domains () =
  (* Every attached sink receives every line, even when emissions come
     from several worker domains at once. *)
  with_obs (fun () ->
      Event.reset ();
      let sink_a, read_a = Sink.memory () in
      let sink_b, read_b = Sink.memory () in
      Sink.attach sink_a;
      Sink.attach sink_b;
      let pool = Sb_par.Pool.create ~domains:3 () in
      ignore
        (Sb_par.Pool.map_chunks pool
           ~f:(fun c ->
             for _ = 1 to 10 do
               Event.emit ~fields:[ ("chunk", Json.Int c) ] "unit.fanout"
             done;
             c)
           (Array.init 6 Fun.id));
      Sb_par.Pool.shutdown pool;
      let a = List.sort String.compare (read_a ()) in
      let b = List.sort String.compare (read_b ()) in
      Alcotest.(check int) "sink a got all lines" 60 (List.length a);
      Alcotest.(check (list string)) "both sinks saw the same lines" a b)

let test_histogram_bucket_mismatch_warns_once () =
  with_obs (fun () ->
      let sink, read = Sink.memory () in
      Sink.attach sink;
      let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 3.0 |] "t.mismatch" in
      let h' = Metrics.histogram ~buckets:[| 5.0; 50.0 |] "t.mismatch" in
      Alcotest.(check bool) "existing histogram returned" true (h == h');
      ignore (Metrics.histogram ~buckets:[| 7.0 |] "t.mismatch");
      ignore (Metrics.histogram ~buckets:[| 1.0; 2.0; 3.0 |] "t.mismatch");
      ignore (Metrics.histogram "t.mismatch");
      let mismatches =
        List.filter_map
          (fun line ->
            match Json.of_string line with
            | Ok v
              when Option.bind (Json.member "ev" v) Json.to_str_opt
                   = Some "metrics.bucket_mismatch" ->
                Some v
            | _ -> None)
          (read ())
      in
      (match mismatches with
      | [ ev ] ->
          Alcotest.(check (option string)) "names the histogram" (Some "t.mismatch")
            (Option.bind (Json.member "name" ev) Json.to_str_opt);
          Alcotest.(check (option int)) "registered bucket count" (Some 3)
            (Option.bind (Json.member "registered_buckets" ev) Json.to_int_opt);
          Alcotest.(check (option int)) "requested bucket count" (Some 2)
            (Option.bind (Json.member "requested_buckets" ev) Json.to_int_opt)
      | evs -> Alcotest.failf "expected exactly 1 mismatch event, got %d" (List.length evs));
      (* reset rearms the warning. *)
      Metrics.reset ();
      ignore (Metrics.histogram ~buckets:[| 9.0 |] "t.mismatch");
      let after =
        List.filter (fun l -> String.length l > 0) (read ())
        |> List.filter (fun line ->
               match Json.of_string line with
               | Ok v ->
                   Option.bind (Json.member "ev" v) Json.to_str_opt
                   = Some "metrics.bucket_mismatch"
               | Error _ -> false)
      in
      Alcotest.(check int) "reset rearms the one-shot" 2 (List.length after))

(* --- the simulator under instrumentation --------------------------- *)

let fixture_protocol = Sb_protocols.Gennaro.protocol

let run_fixture () =
  let ctx = Sb_sim.Ctx.make ~rng:(Sb_util.Rng.create 2026) ~n:5 ~thresh:2 ~k:8 () in
  let inputs = Array.init 5 (fun i -> Sb_sim.Msg.Bit (i mod 2 = 0)) in
  Sb_sim.Network.run ctx ~rng:(Sb_util.Rng.create 7) ~protocol:fixture_protocol
    ~adversary:(Core.Adversaries.semi_honest fixture_protocol ~corrupt:[ 3; 4 ])
    ~inputs ()

let render (r : Sb_sim.Network.result) =
  let outputs =
    List.map (fun (i, m) -> Printf.sprintf "%d=%s" i (Sb_sim.Msg.to_string m)) r.Sb_sim.Network.outputs
  in
  String.concat ";" outputs ^ "|" ^ Format.asprintf "%a" Sb_sim.Trace.pp r.Sb_sim.Network.trace

let test_instrumentation_is_inert () =
  (* The acceptance bar: a seeded run yields byte-identical outputs and
     trace with observability fully on (metrics + spans + sinks) vs
     fully off. *)
  Metrics.set_enabled false;
  Span.set_enabled false;
  let plain = render (run_fixture ()) in
  let observed =
    with_obs (fun () ->
        let sink, read = Sink.memory () in
        Sink.attach sink;
        let r = render (run_fixture ()) in
        Alcotest.(check bool) "events were emitted" true (List.length (read ()) > 0);
        r)
  in
  Alcotest.(check string) "byte-identical outputs and trace" plain observed;
  let plain_again = render (run_fixture ()) in
  Alcotest.(check string) "still identical after disabling" plain plain_again

let test_network_counters_match_trace () =
  with_obs (fun () ->
      let r = run_fixture () in
      let per_round = Sb_sim.Trace.per_round_counts r.Sb_sim.Network.trace in
      let sum f = List.fold_left (fun acc t -> acc + f t) 0 per_round in
      let honest = sum (fun (h, _, _) -> h)
      and adv = sum (fun (_, a, _) -> a)
      and func = sum (fun (_, _, f) -> f) in
      let counter name = Metrics.counter_value (Metrics.counter name) in
      Alcotest.(check int) "honest envelopes" honest (counter "sim.envelopes.honest");
      Alcotest.(check int) "adv envelopes" adv (counter "sim.envelopes.adv");
      Alcotest.(check int) "func envelopes" func (counter "sim.envelopes.func");
      Alcotest.(check int) "rounds = rounds_used + final delivery" (r.Sb_sim.Network.rounds_used + 1)
        (counter "sim.rounds");
      Alcotest.(check int) "p2p agrees with trace"
        (Sb_sim.Trace.p2p_message_count r.Sb_sim.Network.trace)
        (counter "sim.p2p");
      Alcotest.(check int) "broadcasts agree with trace"
        (Sb_sim.Trace.broadcast_count r.Sb_sim.Network.trace)
        (counter "sim.broadcasts"))

let test_messages_from_agrees_with_per_round () =
  let r = run_fixture () in
  let trace = r.Sb_sim.Network.trace in
  let by_party = List.init 5 (Sb_sim.Trace.messages_from trace) in
  let total_party_sourced = List.fold_left ( + ) 0 by_party in
  let per_round = Sb_sim.Trace.per_round_counts trace in
  let honest_plus_adv =
    List.fold_left (fun acc (h, a, _) -> acc + h + a) 0 per_round
  in
  Alcotest.(check int) "per-party sums match per-round sums" honest_plus_adv total_party_sourced

(* --- the experiment registry --------------------------------------- *)

let test_registry_covers_all_and_finds () =
  Alcotest.(check (list string)) "canonical id list"
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E10"; "E11"; "E12"; "E13"; "E14";
      "E15"; "E16"; "E17";
    ]
    (Core.Experiments.ids ());
  (match Core.Experiments.find "e5" with
  | Some e -> Alcotest.(check string) "case-insensitive find" "E5" e.Core.Experiments.id
  | None -> Alcotest.fail "find e5");
  Alcotest.(check bool) "unknown id rejected" true (Core.Experiments.find "e9" = None)

let test_registry_runner_spans_and_counters () =
  with_obs (fun () ->
      let e = Option.get (Core.Experiments.find "E6") in
      let setup = Core.Setup.with_samples 400 Core.Setup.quick in
      let o = e.Core.Experiments.run setup in
      Alcotest.(check bool) "outcome ok" true o.Core.Experiments.ok;
      (match Span.find "experiment:E6" with
      | Some s -> Alcotest.(check bool) "span has duration" true (s.Span.duration_s >= 0.0)
      | None -> Alcotest.fail "experiment span missing");
      Alcotest.(check bool) "samples counted" true
        (Metrics.counter_value (Metrics.counter "exp.samples_drawn") > 0);
      Alcotest.(check int) "rows rolled up" o.Core.Experiments.rows_checked
        (Metrics.counter_value (Metrics.counter "exp.rows_checked")))

let () =
  Alcotest.run "sb_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram quantiles on known data" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram single value" `Quick test_histogram_single_value;
          Alcotest.test_case "histogram overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "disabled histogram" `Quick test_disabled_histogram_observes_nothing;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "records on exception" `Quick test_span_records_on_exception;
          Alcotest.test_case "disabled records nothing" `Quick test_span_disabled_records_nothing;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "member access" `Quick test_json_member_access;
        ] );
      ( "report",
        [
          Alcotest.test_case "shape and reparse" `Quick test_report_shape;
          Alcotest.test_case "validate rejects" `Quick test_report_validate_rejects;
        ] );
      ( "event",
        [
          Alcotest.test_case "emission to memory sink" `Quick test_event_emission;
          Alcotest.test_case "seq monotone under worker domains" `Quick
            test_event_seq_monotone_under_domains;
          Alcotest.test_case "sink fan-out under worker domains" `Quick
            test_sink_fanout_under_domains;
          Alcotest.test_case "histogram bucket mismatch warns once" `Quick
            test_histogram_bucket_mismatch_warns_once;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "instrumentation is inert" `Quick test_instrumentation_is_inert;
          Alcotest.test_case "counters match trace" `Quick test_network_counters_match_trace;
          Alcotest.test_case "messages_from vs per_round_counts" `Quick
            test_messages_from_agrees_with_per_round;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids and find" `Quick test_registry_covers_all_and_finds;
          Alcotest.test_case "runner instruments" `Quick test_registry_runner_spans_and_counters;
        ] );
    ]
