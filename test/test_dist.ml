(* Tests for sb_dist: exact pmf machinery, constructors, projections,
   conditionals, the local-independence gap, ensemble decay
   classification, and the battery's expected class memberships. *)

open Sb_util
open Sb_dist

let feps = 1e-9
let check_float msg expected actual = Alcotest.(check (float feps)) msg expected actual

(* --- basic pmf machinery ------------------------------------------- *)

let test_pmf_normalises () =
  let d = Dist.of_pmf 2 [| 1.0; 1.0; 2.0; 0.0 |] in
  check_float "p(00)" 0.25 (Dist.prob_idx d 0);
  check_float "p(01)" 0.25 (Dist.prob_idx d 1);
  check_float "p(10)" 0.5 (Dist.prob_idx d 2);
  check_float "p(11)" 0.0 (Dist.prob_idx d 3)

let test_pmf_rejects_bad () =
  Alcotest.check_raises "negative mass" (Invalid_argument "Dist.of_pmf: bad mass") (fun () ->
      ignore (Dist.of_pmf 1 [| 0.5; -0.5 |]));
  Alcotest.check_raises "wrong length" (Invalid_argument "Dist.of_pmf: wrong pmf length")
    (fun () -> ignore (Dist.of_pmf 2 [| 1.0 |]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Dist.of_pmf: zero total mass") (fun () ->
      ignore (Dist.of_pmf 1 [| 0.0; 0.0 |]))

let test_uniform () =
  let d = Dist.uniform 3 in
  List.iter (fun v -> check_float "uniform mass" 0.125 (Dist.prob d v)) (Bitvec.all 3);
  check_float "entropy" 3.0 (Dist.entropy_bits d)

let test_singleton () =
  let v = Bitvec.of_string "101" in
  let d = Dist.singleton v in
  check_float "point mass" 1.0 (Dist.prob d v);
  check_float "entropy" 0.0 (Dist.entropy_bits d);
  Alcotest.(check int) "support" 1 (List.length (Dist.support d))

let test_bernoulli_product () =
  let d = Dist.bernoulli_product [| 0.5; 0.25 |] in
  check_float "p(00)" 0.375 (Dist.prob d (Bitvec.of_string "00"));
  check_float "p(11)" 0.125 (Dist.prob d (Bitvec.of_string "11"));
  check_float "marginal 0" 0.5 (Dist.marginal d 0);
  check_float "marginal 1" 0.25 (Dist.marginal d 1)

let test_xor_parity () =
  let d = Dist.xor_parity ~even:true 3 in
  List.iter
    (fun v ->
      let expected = if Bitvec.parity v then 0.0 else 0.25 in
      check_float (Bitvec.to_string v) expected (Dist.prob d v))
    (Bitvec.all 3);
  (* Marginals are uniform even though the joint is far from it. *)
  Array.iter (fun m -> check_float "uniform marginal" 0.5 m) (Dist.marginals d)

let test_copy_pair () =
  let d = Dist.copy_pair 3 in
  check_float "p(x0=x1=0)" 0.25 (Dist.prob d (Bitvec.of_string "000"));
  check_float "p(x0<>x1)" 0.0 (Dist.prob d (Bitvec.of_string "100"));
  check_float "marginal" 0.5 (Dist.marginal d 0)

let test_noisy_copy_limits () =
  (* flip = 0.5 must be exactly uniform. *)
  Alcotest.(check bool) "flip 0.5 is uniform" true
    (Dist.equal (Dist.noisy_copy 3 ~flip:0.5) (Dist.uniform 3));
  (* flip = 0 is copy-pair. *)
  Alcotest.(check bool) "flip 0 is copy" true
    (Dist.equal (Dist.noisy_copy 3 ~flip:0.0) (Dist.copy_pair 3))

let test_mixture () =
  let d = Dist.mixture [ (0.5, Dist.uniform 2); (0.5, Dist.singleton (Bitvec.of_string "11")) ] in
  check_float "p(11)" 0.625 (Dist.prob d (Bitvec.of_string "11"));
  check_float "p(00)" 0.125 (Dist.prob d (Bitvec.of_string "00"))

let test_conditioned () =
  let d = Dist.conditioned (Dist.uniform 3) ~on:(fun v -> Bitvec.get v 0) in
  check_float "p given x0=1" 0.25 (Dist.prob d (Bitvec.of_string "100"));
  check_float "excluded" 0.0 (Dist.prob d (Bitvec.of_string "000"));
  Alcotest.check_raises "empty event" (Invalid_argument "Dist.conditioned: zero-mass event")
    (fun () -> ignore (Dist.conditioned (Dist.uniform 2) ~on:(fun _ -> false)))

let test_proj_pmf () =
  let d = Dist.copy_pair 3 in
  let p01 = Dist.proj_pmf d [ 0; 1 ] in
  check_float "proj p(00)" 0.5 p01.(0);
  check_float "proj p(10)" 0.0 p01.(1);
  check_float "proj p(11)" 0.5 p01.(3);
  let p2 = Dist.proj_pmf d [ 2 ] in
  check_float "proj free coord" 0.5 p2.(0)

let test_cond_proj_pmf () =
  let d = Dist.copy_pair 3 in
  let w = Bitvec.of_string "100" in
  (* x1 given x0 = 1 must be deterministic 1. *)
  match Dist.cond_proj_pmf d ~of_:[ 1 ] ~given:[ 0 ] w with
  | Some p ->
      check_float "p(x1=0|x0=1)" 0.0 p.(0);
      check_float "p(x1=1|x0=1)" 1.0 p.(1)
  | None -> Alcotest.fail "conditioning event has mass"

let test_tvd () =
  check_float "tvd self" 0.0 (Dist.tvd (Dist.uniform 3) (Dist.uniform 3));
  check_float "tvd parity vs uniform" 0.5
    (Dist.tvd (Dist.xor_parity ~even:true 3) (Dist.uniform 3));
  check_float "tvd disjoint singletons" 1.0
    (Dist.tvd (Dist.singleton (Bitvec.zero 2)) (Dist.singleton (Bitvec.of_string "11")))

let test_sampling_agrees_with_pmf () =
  let d = Dist.bernoulli_product [| 0.3; 0.7; 0.5 |] in
  let rng = Rng.create 77 in
  let counts = Array.make 8 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Dist.sample d rng in
    counts.(Bitvec.to_int v) <- counts.(Bitvec.to_int v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = Dist.prob_idx d i in
      let observed = float_of_int c /. float_of_int trials in
      Alcotest.(check bool)
        (Printf.sprintf "cell %d within 3 sigma" i)
        true
        (Float.abs (observed -. expected) < 0.01))
    counts

(* --- independence gaps ---------------------------------------------- *)

let test_local_gap_zero_on_products () =
  check_float "uniform" 0.0 (Dist.local_gap (Dist.uniform 4));
  check_float "biased product" 0.0 (Dist.local_gap (Dist.product 0.25 4));
  check_float "singleton" 0.0 (Dist.local_gap (Dist.singleton (Bitvec.of_string "0110")))

let test_local_gap_on_correlated () =
  (* xor-parity: conditioned on the others, the last bit is
     deterministic: gap 1/2 against its uniform marginal. *)
  check_float "xor parity gap" 0.5 (Dist.local_gap (Dist.xor_parity ~even:true 3));
  check_float "copy gap" 0.5 (Dist.local_gap (Dist.copy_pair 3))

let test_independence_gap () =
  check_float "product" 0.0 (Dist.independence_gap (Dist.product 0.3 3));
  Alcotest.(check bool) "parity gap = 1/2" true
    (Float.abs (Dist.independence_gap (Dist.xor_parity ~even:true 3) -. 0.5) < feps);
  Alcotest.(check bool) "is_product" true (Dist.is_product (Dist.uniform 3));
  Alcotest.(check bool) "is_product correlated" false (Dist.is_product (Dist.copy_pair 3))

let qcheck_products_locally_independent =
  QCheck.Test.make ~name:"random products have zero local gap" ~count:30
    QCheck.(list_of_size (QCheck.Gen.return 4) (float_range 0.05 0.95))
    (fun ps ->
      let d = Dist.bernoulli_product (Array.of_list ps) in
      Dist.local_gap d < 1e-9)

let qcheck_mixture_mass =
  QCheck.Test.make ~name:"mixtures stay normalised" ~count:50
    QCheck.(pair (float_range 0.01 0.99) (int_bound 7))
    (fun (w, v) ->
      let d =
        Dist.mixture [ (w, Dist.uniform 3); (1.0 -. w, Dist.singleton (Bitvec.of_int 3 v)) ]
      in
      Float.abs (Array.fold_left ( +. ) 0.0 (Dist.pmf d) -. 1.0) < 1e-9)

let qcheck_tvd_triangle =
  QCheck.Test.make ~name:"tvd triangle inequality" ~count:50
    QCheck.(triple (int_bound 7) (int_bound 7) (int_bound 7))
    (fun (a, b, c) ->
      let da = Dist.mixture [ (0.5, Dist.uniform 3); (0.5, Dist.singleton (Bitvec.of_int 3 a)) ] in
      let db = Dist.mixture [ (0.5, Dist.uniform 3); (0.5, Dist.singleton (Bitvec.of_int 3 b)) ] in
      let dc = Dist.mixture [ (0.5, Dist.uniform 3); (0.5, Dist.singleton (Bitvec.of_int 3 c)) ] in
      Dist.tvd da dc <= Dist.tvd da db +. Dist.tvd db dc +. 1e-9)

(* --- ensembles and classes ------------------------------------------ *)

let test_decay_classification () =
  let ks = Ensemble.default_ks in
  Alcotest.(check string) "zero" "zero"
    (Ensemble.decay_to_string (Ensemble.classify_decay (fun _ -> 0.0) ~ks));
  Alcotest.(check string) "vanishing" "vanishing"
    (Ensemble.decay_to_string
       (Ensemble.classify_decay (fun k -> Float.pow 2.0 (-.float_of_int k)) ~ks));
  Alcotest.(check string) "persistent" "persistent"
    (Ensemble.decay_to_string (Ensemble.classify_decay (fun _ -> 0.25) ~ks));
  Alcotest.(check string) "growing is persistent" "persistent"
    (Ensemble.decay_to_string
       (Ensemble.classify_decay (fun k -> 0.01 *. float_of_int k) ~ks))

let test_battery_expected_membership () =
  (* The executable classifier must agree with the analytic ground
     truth for every battery entry — this is experiment E1's core. *)
  List.iter
    (fun (e : Family.entry) ->
      let v = Classes.classify e.Family.ensemble in
      let m = e.Family.expected in
      let name = e.Family.ensemble.Ensemble.name in
      Alcotest.(check bool) (name ^ ": independent") m.Family.independent v.Classes.independent;
      Alcotest.(check bool) (name ^ ": psi_L") m.Family.psi_l v.Classes.psi_l;
      Alcotest.(check bool) (name ^ ": psi_C") m.Family.psi_c v.Classes.psi_c;
      Alcotest.(check bool) (name ^ ": hierarchy") true (Classes.check_hierarchy v))
    (Family.battery 4)

let test_hierarchy_strictness_witnesses () =
  let v_of e = Classes.classify e.Family.ensemble in
  (* psi_L strictly inside psi_C: rare-leak. *)
  let rare = v_of (Family.rare_leak 4) in
  Alcotest.(check bool) "rare-leak in psi_C" true rare.Classes.psi_c;
  Alcotest.(check bool) "rare-leak not in psi_L" false rare.Classes.psi_l;
  (* products strictly inside psi_L: almost-uniform. *)
  let almost = v_of (Family.almost_uniform 4) in
  Alcotest.(check bool) "almost-uniform in psi_L" true almost.Classes.psi_l;
  Alcotest.(check bool) "almost-uniform not independent" false almost.Classes.independent;
  (* all correlated outside psi_C. *)
  let parity = v_of (Family.xor_parity 4) in
  Alcotest.(check bool) "xor-parity outside psi_C" false parity.Classes.psi_c

let test_new_families () =
  let d = Dist.markov 4 ~flip:0.2 in
  (* Chain probabilities: p(0000) = 0.5 * 0.8^3. *)
  check_float "markov chain mass" (0.5 *. (0.8 ** 3.0)) (Dist.prob d (Bitvec.of_string "0000"));
  Alcotest.(check bool) "markov 0.5 uniform" true
    (Dist.equal (Dist.markov 4 ~flip:0.5) (Dist.uniform 4));
  let oh = Dist.one_hot 4 in
  check_float "one-hot weight-1" 0.25 (Dist.prob oh (Bitvec.of_string "0100"));
  check_float "one-hot weight-2" 0.0 (Dist.prob oh (Bitvec.of_string "0110"));
  let ae = Dist.all_equal 3 in
  check_float "all-equal zeros" 0.5 (Dist.prob ae (Bitvec.zero 3));
  check_float "all-equal mixed" 0.0 (Dist.prob ae (Bitvec.of_string "010"));
  (* Correlated families are outside psi_C. *)
  List.iter
    (fun d -> Alcotest.(check bool) "correlated" true (Dist.independence_gap d > 0.05))
    [ Dist.markov 4 ~flip:0.2; Dist.one_hot 4; Dist.all_equal 4 ]

let test_classify_reports_grid () =
  let v = Classes.classify (Family.uniform 3).Family.ensemble in
  Alcotest.(check int) "grid size" (List.length Ensemble.default_ks)
    (List.length v.Classes.local_gaps)

let () =
  Alcotest.run "sb_dist"
    [
      ( "pmf",
        [
          Alcotest.test_case "normalises" `Quick test_pmf_normalises;
          Alcotest.test_case "rejects bad input" `Quick test_pmf_rejects_bad;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "bernoulli product" `Quick test_bernoulli_product;
          Alcotest.test_case "xor parity" `Quick test_xor_parity;
          Alcotest.test_case "copy pair" `Quick test_copy_pair;
          Alcotest.test_case "noisy copy limits" `Quick test_noisy_copy_limits;
          Alcotest.test_case "mixture" `Quick test_mixture;
          Alcotest.test_case "conditioned" `Quick test_conditioned;
          Alcotest.test_case "projection" `Quick test_proj_pmf;
          Alcotest.test_case "conditional projection" `Quick test_cond_proj_pmf;
          Alcotest.test_case "tvd" `Quick test_tvd;
          Alcotest.test_case "sampling agrees with pmf" `Slow test_sampling_agrees_with_pmf;
          QCheck_alcotest.to_alcotest qcheck_mixture_mass;
          QCheck_alcotest.to_alcotest qcheck_tvd_triangle;
        ] );
      ( "gaps",
        [
          Alcotest.test_case "local gap zero on products" `Quick test_local_gap_zero_on_products;
          Alcotest.test_case "local gap on correlated" `Quick test_local_gap_on_correlated;
          Alcotest.test_case "independence gap" `Quick test_independence_gap;
          QCheck_alcotest.to_alcotest qcheck_products_locally_independent;
        ] );
      ( "classes",
        [
          Alcotest.test_case "decay classification" `Quick test_decay_classification;
          Alcotest.test_case "battery memberships" `Quick test_battery_expected_membership;
          Alcotest.test_case "new families" `Quick test_new_families;
          Alcotest.test_case "strictness witnesses" `Quick test_hierarchy_strictness_witnesses;
          Alcotest.test_case "classify reports grid" `Quick test_classify_reports_grid;
        ] );
    ]
