(* Tests for sb_fault: the plan DSL (parse/print/validate), the
   compiled interceptor's per-fault semantics on hand-built envelope
   lists, end-to-end resilience facts (Dolev-Strong under every crash
   subset, the Bracha/EIG n/3 flips), fault counters, and jobs-count
   invariance of measured cells. *)

open Sb_sim
open Sb_fault

let msg = Msg.Bit true

(* --- plan DSL ------------------------------------------------------ *)

let example = "crash:4@1;drop:0.1;delay:2:0->3;part:0,1|2,3,4@2-5"

let test_plan_roundtrip () =
  match Plan.of_string example with
  | Error e -> Alcotest.failf "example does not parse: %s" e
  | Ok plan ->
      Alcotest.(check string) "prints back" example (Plan.to_string plan);
      Alcotest.(check bool) "validates at n=5" true (Plan.validate ~n:5 plan = Ok ());
      Alcotest.(check (list int)) "crashed parties" [ 4 ] (Plan.crashed_parties plan);
      (match Plan.of_string (Plan.to_string plan) with
      | Ok plan' -> Alcotest.(check bool) "round-trips" true (plan = plan')
      | Error e -> Alcotest.failf "reparse failed: %s" e);
      Alcotest.(check bool) "empty plan" true (Plan.of_string "" = Ok [])

(* Round-scoped drops and delays — the checker's counterexample form. *)
let test_plan_round_scopes () =
  let example = "drop:1:2->0@1;delay:1:2->*@2;drop:0.5@0" in
  (match Plan.of_string example with
  | Error e -> Alcotest.failf "scoped example does not parse: %s" e
  | Ok plan ->
      Alcotest.(check string) "prints back" example (Plan.to_string plan);
      Alcotest.(check bool) "validates at n=3" true (Plan.validate ~n:3 plan = Ok ());
      Alcotest.(check bool) "scoped constructors match"
        true
        (plan
        = [
            Plan.drop ~src:2 ~dst:0 ~at:1 1.0;
            Plan.delay ~src:2 ~at:2 1;
            Plan.drop ~at:0 0.5;
          ]));
  (match Plan.of_string "drop:1:0->1@x" with
  | Ok _ -> Alcotest.fail "non-numeric round scope parsed"
  | Error _ -> ());
  match Plan.validate ~n:4 [ Plan.drop ~at:(-1) 1.0 ] with
  | Ok () -> Alcotest.fail "negative round scope validated"
  | Error _ -> ()

let test_plan_parse_errors () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "boom:1@2";          (* unknown kind *)
      "crash:1";           (* missing @round *)
      "drop:x";            (* non-numeric rate *)
      "delay:2:0>3";       (* malformed link *)
      "part:0,1@2-5";      (* single group *)
      "crash";             (* no ':' *)
    ]

let test_plan_validate_errors () =
  List.iter
    (fun plan ->
      match Plan.validate ~n:4 plan with
      | Ok () -> Alcotest.failf "%s should not validate at n=4" (Plan.to_string plan)
      | Error _ -> ())
    [
      [ Plan.crash ~party:4 ~round:0 ];
      [ Plan.crash ~party:0 ~round:(-1) ];
      [ Plan.drop 1.5 ];
      [ Plan.drop ~src:9 0.5 ];
      [ Plan.delay 0 ];
      [ Plan.partition ~groups:[ [ 0; 1 ]; [ 1; 2 ] ] ~first:0 ~last:3 ];
      [ Plan.partition ~groups:[ [ 0 ]; [ 1 ] ] ~first:3 ~last:1 ];
    ]

(* --- interceptor semantics ----------------------------------------- *)

let interceptor plan = Inject.compile ~n:4 plan ~rng:(Sb_util.Rng.create 11)

let p2p ~src ~dst = Envelope.make ~src ~dst msg

let test_crash_silences_everything () =
  let f = interceptor [ Plan.crash ~party:1 ~round:2 ] in
  let traffic =
    [ p2p ~src:1 ~dst:0; Envelope.broadcast ~src:1 msg; Envelope.to_func ~src:1 msg;
      p2p ~src:0 ~dst:1 ]
  in
  Alcotest.(check int) "pre-crash round passes" 4 (List.length (f ~round:1 traffic));
  Alcotest.(check (list bool))
    "from round 2 only the other party's envelope survives"
    [ false; false; false; true ]
    (List.map (fun e -> List.mem e (f ~round:2 traffic)) traffic)

let test_drop_spares_model_channels () =
  (* Certain drop: every distinct-endpoint p2p envelope dies, but
     self-delivery, the broadcast channel, and the functionality
     channel are model primitives and pass untouched. *)
  let f = interceptor [ Plan.drop 1.0 ] in
  let kept =
    f ~round:0
      [ p2p ~src:0 ~dst:2; p2p ~src:2 ~dst:2; Envelope.broadcast ~src:3 msg;
        Envelope.to_func ~src:1 msg; Envelope.from_func ~dst:1 msg ]
  in
  Alcotest.(check int) "four of five survive" 4 (List.length kept);
  Alcotest.(check bool) "the p2p link is the casualty" false
    (List.mem (p2p ~src:0 ~dst:2) kept)

let test_drop_link_restriction () =
  let f = interceptor [ Plan.drop ~src:0 ~dst:2 1.0 ] in
  let kept = f ~round:0 [ p2p ~src:0 ~dst:2; p2p ~src:2 ~dst:0; p2p ~src:0 ~dst:1 ] in
  Alcotest.(check bool) "0->2 dropped" false (List.mem (p2p ~src:0 ~dst:2) kept);
  Alcotest.(check bool) "2->0 kept" true (List.mem (p2p ~src:2 ~dst:0) kept);
  Alcotest.(check bool) "0->1 kept" true (List.mem (p2p ~src:0 ~dst:1) kept)

let test_delay_holds_and_releases () =
  let f = interceptor [ Plan.delay ~src:0 2 ] in
  let e1 = p2p ~src:0 ~dst:1 and e2 = p2p ~src:0 ~dst:2 in
  Alcotest.(check int) "held at the send round" 0 (List.length (f ~round:0 [ e1; e2 ]));
  Alcotest.(check int) "still in flight" 0 (List.length (f ~round:1 []));
  Alcotest.(check bool) "released as if sent 2 rounds later, in order" true
    (f ~round:2 [] = [ e1; e2 ]);
  Alcotest.(check int) "released only once" 0 (List.length (f ~round:3 []))

let test_round_scoped_drop_and_delay () =
  (* @R restricts a rule to envelopes sent in exactly that round. *)
  let f = interceptor [ Plan.drop ~src:0 ~at:1 1.0 ] in
  let e = p2p ~src:0 ~dst:1 in
  Alcotest.(check bool) "other rounds untouched" true (f ~round:0 [ e ] = [ e ]);
  Alcotest.(check int) "scoped round dropped" 0 (List.length (f ~round:1 [ e ]));
  Alcotest.(check bool) "after the scope untouched" true (f ~round:2 [ e ] = [ e ]);
  let g = interceptor [ Plan.delay ~src:0 ~at:1 1 ] in
  Alcotest.(check bool) "delay out of scope passes" true (g ~round:0 [ e ] = [ e ]);
  Alcotest.(check int) "delay in scope holds" 0 (List.length (g ~round:1 [ e ]));
  Alcotest.(check bool) "released one round later" true (g ~round:2 [] = [ e ])

let test_partition_window () =
  let f = interceptor [ Plan.partition ~groups:[ [ 0; 1 ] ] ~first:1 ~last:2 ] in
  (* Parties 2 and 3 are unlisted: they form the implicit other side. *)
  let cross = p2p ~src:0 ~dst:2 and inside = p2p ~src:0 ~dst:1 and far = p2p ~src:2 ~dst:3 in
  Alcotest.(check int) "window closed before" 3 (List.length (f ~round:0 [ cross; inside; far ]));
  Alcotest.(check bool) "cross-group dropped inside the window" true
    (f ~round:1 [ cross; inside; far ] = [ inside; far ]);
  Alcotest.(check int) "window closed after" 3 (List.length (f ~round:3 [ cross; inside; far ]))

let test_first_matching_rule_wins () =
  (* Drop before delay in plan order: nothing survives to be delayed. *)
  let f = interceptor [ Plan.drop 1.0; Plan.delay 1 ] in
  Alcotest.(check int) "dropped" 0 (List.length (f ~round:0 [ p2p ~src:0 ~dst:1 ]));
  Alcotest.(check int) "nothing was held" 0 (List.length (f ~round:1 []))

(* --- end-to-end ----------------------------------------------------- *)

let uniform n = Sb_dist.Dist.uniform n

let measure ?(samples = 40) ~setup ~protocol ~adversary ~dist plan =
  let setup = Core.Setup.with_samples samples setup in
  Core.Resilience.measure setup ~protocol ~adversary ~dist ~plan
    (Sb_util.Rng.create setup.Core.Setup.seed)

let check_point what expected (i : Sb_stats.Estimate.interval) =
  Alcotest.(check (float 0.0)) what expected i.Sb_stats.Estimate.point

let test_empty_plan_is_inert () =
  (* A present-but-empty interceptor must not perturb the seeded run:
     the fault stream is split only when the hook is installed, and an
     empty plan consumes no coins. *)
  let setup = Core.Setup.with_n ~n:4 ~thresh:1 Core.Setup.quick in
  let protocol = Sb_protocols.Gennaro.protocol in
  let run ?faults () =
    let rng = Sb_util.Rng.create 33 in
    let ctx = Core.Setup.fresh_ctx setup (Sb_util.Rng.split rng) in
    let inputs = Array.init 4 (fun i -> Msg.Bit (i mod 2 = 0)) in
    Network.run ctx ~rng ~protocol
      ~adversary:(Adversary.passive protocol)
      ~inputs ?faults ()
  in
  let plain = run () in
  let faulted = run ~faults:(Inject.compile ~n:4 []) () in
  Alcotest.(check bool) "outputs identical" true
    (List.for_all2
       (fun (i, a) (j, b) -> i = j && Msg.equal a b)
       plain.Network.outputs faulted.Network.outputs)

let test_dolev_strong_any_crash_subset () =
  (* DS tolerates ANY t < n faults: with thresh = n-1, every non-empty
     crash pattern over n = 4 (sizes 1..3, staggered rounds) leaves
     the survivors in exact agreement. *)
  let setup = Core.Setup.with_n ~n:4 ~thresh:3 Core.Setup.quick in
  let protocol = Sb_broadcast.Parallel.concurrent Sb_broadcast.Dolev_strong.scheme in
  let subsets =
    List.filter_map
      (fun mask ->
        let s = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3 ] in
        if s = [] || List.length s = 4 then None else Some s)
      (List.init 16 Fun.id)
  in
  List.iter
    (fun subset ->
      let plan = List.mapi (fun k p -> Plan.crash ~party:p ~round:(k + 1)) subset in
      let c =
        measure ~samples:20 ~setup ~protocol ~adversary:Core.Adversaries.passive
          ~dist:(uniform 4) plan
      in
      check_point
        (Printf.sprintf "agreement under crashes {%s}"
           (String.concat "," (List.map string_of_int subset)))
        1.0 c.Core.Resilience.agree)
    subsets

let test_bracha_flip_at_boundary () =
  let setup = Core.Setup.with_n ~n:4 ~thresh:1 Core.Setup.quick in
  let protocol = Sb_broadcast.Parallel.concurrent Sb_broadcast.Bracha.scheme in
  let dist = Sb_dist.Dist.product 1.0 4 in
  let below =
    measure ~setup ~protocol ~adversary:Core.Resilience.bracha_flip ~dist []
  in
  check_point "1 corruption <= t: exact agreement" 1.0 below.Core.Resilience.agree;
  let above =
    measure ~setup ~protocol ~adversary:Core.Resilience.bracha_flip ~dist
      [ Plan.crash ~party:3 ~round:0 ]
  in
  check_point "1 corruption + 1 crash > n/3: exact disagreement" 0.0
    above.Core.Resilience.agree

let test_eig_flip_at_boundary () =
  let setup = Core.Setup.with_n ~n:4 ~thresh:1 Core.Setup.quick in
  let protocol = Sb_broadcast.Parallel.concurrent Sb_broadcast.Eig.scheme in
  let dist = Sb_dist.Dist.product 1.0 4 in
  let below = measure ~setup ~protocol ~adversary:Core.Resilience.eig_flip ~dist [] in
  check_point "1 corruption <= t: exact agreement" 1.0 below.Core.Resilience.agree;
  let above =
    measure ~setup ~protocol ~adversary:Core.Resilience.eig_flip ~dist
      [ Plan.crash ~party:2 ~round:1 ]
  in
  check_point "1 corruption + 1 crash > n/3: exact disagreement" 0.0
    above.Core.Resilience.agree

(* --- counters ------------------------------------------------------- *)

(* Same discipline as test_obs: the metrics registry is process-global,
   so enablement is scoped and reset around each assertion. *)
let with_obs f =
  Sb_obs.Metrics.reset ();
  Sb_obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Sb_obs.Metrics.set_enabled false;
      Sb_obs.Metrics.reset ())
    f

let counter name = Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter name)

let test_fault_counters () =
  let setup = Core.Setup.with_n ~n:4 ~thresh:1 Core.Setup.quick in
  let protocol = Sb_broadcast.Parallel.concurrent Sb_broadcast.Send_echo.scheme in
  let samples = 25 in
  with_obs (fun () ->
      let _ =
        measure ~samples ~setup ~protocol ~adversary:Core.Adversaries.passive
          ~dist:(uniform 4)
          [ Plan.crash ~party:3 ~round:1; Plan.crash ~party:2 ~round:2 ]
      in
      Alcotest.(check int) "one crash tally per crashed party per run" (2 * samples)
        (counter "fault.crashes"));
  with_obs (fun () ->
      let _ =
        measure ~samples ~setup ~protocol ~adversary:Core.Adversaries.passive
          ~dist:(uniform 4) [ Plan.drop 0.5 ]
      in
      Alcotest.(check bool) "omissions are counted" true (counter "fault.drops" > 0);
      Alcotest.(check int) "no delays in a drop plan" 0 (counter "fault.delayed"));
  with_obs (fun () ->
      let _ =
        measure ~samples ~setup ~protocol ~adversary:Core.Adversaries.passive
          ~dist:(uniform 4) [ Plan.delay 1 ]
      in
      Alcotest.(check bool) "delays are counted" true (counter "fault.delayed" > 0);
      Alcotest.(check int) "no drops in a delay plan" 0 (counter "fault.drops"))

(* --- jobs invariance ------------------------------------------------ *)

let with_jobs j f =
  Sb_par.Pool.set_default_domains j;
  Fun.protect ~finally:(fun () -> Sb_par.Pool.set_default_domains 1) f

let test_cells_jobs_invariant () =
  (* The acceptance bar for the fault RNG discipline: a faulty cell is
     byte-identical at --jobs 1 and --jobs 4 for the same seed. *)
  let setup = Core.Setup.with_n ~n:5 ~thresh:1 Core.Setup.quick in
  let protocol = Sb_broadcast.Parallel.concurrent Sb_broadcast.Bracha.scheme in
  let plan = [ Plan.drop 0.2; Plan.delay 1; Plan.crash ~party:4 ~round:1 ] in
  let cell () =
    measure ~samples:200 ~setup ~protocol ~adversary:Core.Adversaries.passive
      ~dist:(uniform 5) plan
  in
  let base = with_jobs 1 cell in
  List.iter
    (fun j ->
      let c = with_jobs j cell in
      Alcotest.(check bool)
        (Printf.sprintf "cell at jobs=%d identical to jobs=1" j)
        true (c = base))
    [ 2; 4 ]

let () =
  Alcotest.run "sb_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "round scopes" `Quick test_plan_round_scopes;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "validate errors" `Quick test_plan_validate_errors;
        ] );
      ( "interceptor",
        [
          Alcotest.test_case "crash silences everything" `Quick test_crash_silences_everything;
          Alcotest.test_case "drop spares model channels" `Quick test_drop_spares_model_channels;
          Alcotest.test_case "drop link restriction" `Quick test_drop_link_restriction;
          Alcotest.test_case "delay holds and releases" `Quick test_delay_holds_and_releases;
          Alcotest.test_case "round-scoped drop and delay" `Quick
            test_round_scoped_drop_and_delay;
          Alcotest.test_case "partition window" `Quick test_partition_window;
          Alcotest.test_case "first matching rule wins" `Quick test_first_matching_rule_wins;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "empty plan is inert" `Quick test_empty_plan_is_inert;
          Alcotest.test_case "dolev-strong under any crash subset" `Quick
            test_dolev_strong_any_crash_subset;
          Alcotest.test_case "bracha flips at n/3" `Quick test_bracha_flip_at_boundary;
          Alcotest.test_case "eig flips at n/3" `Quick test_eig_flip_at_boundary;
        ] );
      ( "observability",
        [
          Alcotest.test_case "fault counters" `Quick test_fault_counters;
          Alcotest.test_case "cells invariant across jobs" `Quick test_cells_jobs_invariant;
        ] );
    ]
