(* Tests for sb_protocols: the parallel-broadcast contract of every
   protocol under honest runs and the adversary battery, VSS-session
   behaviour under malicious dealers, the Theta function, Multi-bit
   wrapping, round formulas, and commit-open's deliberate weakness. *)

open Sb_sim

let seed = ref 100

let fresh_rng () =
  incr seed;
  Sb_util.Rng.create (90000 + !seed)

let make_ctx ?(backend = Sb_crypto.Commit.Hash) ?(n = 5) ?(thresh = 2) () =
  Ctx.make ~backend ~rng:(fresh_rng ()) ~n ~thresh ~k:16 ()

let all_protocols =
  [
    ("ideal-fsb", Sb_protocols.Ideal_sb.protocol);
    ("cgma-vss", Sb_protocols.Cgma.protocol);
    ("chor-rabin-log", Sb_protocols.Chor_rabin.protocol);
    ("gennaro-constant", Sb_protocols.Gennaro.protocol);
    ("pi-g", Sb_protocols.Pi_g.protocol);
    ("naive-sequential", Sb_protocols.Naive.sequential);
    ("naive-concurrent", Sb_protocols.Naive.concurrent);
    ("commit-open", Sb_protocols.Commit_open.protocol);
  ]

let announced (r : Network.result) =
  match r.Network.outputs with
  | (_, m) :: _ -> Msg.to_bitvec_exn m
  | [] -> Alcotest.fail "no honest outputs"

let check_consistent (r : Network.result) =
  match r.Network.outputs with
  | [] -> Alcotest.fail "no honest outputs"
  | (_, first) :: rest ->
      List.iter
        (fun (_, m) -> Alcotest.(check bool) "consistency" true (Msg.equal m first))
        rest

(* --- honest-run contract ------------------------------------------- *)

let test_honest_contract (p : Protocol.t) () =
  List.iter
    (fun v ->
      let ctx = make_ctx () in
      let x = Sb_util.Bitvec.of_int 5 v in
      let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs in
      check_consistent r;
      Alcotest.(check string)
        (Printf.sprintf "correctness on %s" (Sb_util.Bitvec.to_string x))
        (Sb_util.Bitvec.to_string x)
        (Sb_util.Bitvec.to_string (announced r)))
    [ 0; 1; 21; 30; 31 ]

let test_honest_contract_varied_sizes (p : Protocol.t) () =
  List.iter
    (fun (n, thresh) ->
      let ctx = make_ctx ~n ~thresh () in
      let x = Sb_util.Bitvec.init n (fun i -> i mod 3 = 0) in
      let inputs = Array.init n (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs in
      check_consistent r;
      Alcotest.(check string)
        (Printf.sprintf "n=%d" n)
        (Sb_util.Bitvec.to_string x)
        (Sb_util.Bitvec.to_string (announced r)))
    [ (2, 0); (3, 1); (4, 1); (7, 3); (9, 4) ]

let test_ideal_backend_matches_hash (p : Protocol.t) () =
  (* The two commitment backends must induce identical announced
     values on honest runs. *)
  let x = Sb_util.Bitvec.of_string "01101" in
  let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
  let run backend =
    let ctx = Ctx.make ~backend ~rng:(Sb_util.Rng.create 4321) ~n:5 ~thresh:2 ~k:16 () in
    announced (Network.honest_run ctx ~rng:(Sb_util.Rng.create 1234) ~protocol:p ~inputs)
  in
  Alcotest.(check string) "same announced vector"
    (Sb_util.Bitvec.to_string (run Sb_crypto.Commit.Hash))
    (Sb_util.Bitvec.to_string (run Sb_crypto.Commit.Ideal))

(* --- semi-honest corruption keeps the contract ---------------------- *)

let test_semi_honest_contract (p : Protocol.t) () =
  let ctx = make_ctx () in
  let x = Sb_util.Bitvec.of_string "11010" in
  let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
  let adv = Adversary.semi_honest p ~corrupt:[ 1; 3 ] in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
  check_consistent r;
  Alcotest.(check string) "announced = inputs" (Sb_util.Bitvec.to_string x)
    (Sb_util.Bitvec.to_string (announced r))

(* --- silent corrupted parties announce the default ------------------ *)

let test_silent_defaults (p : Protocol.t) () =
  let ctx = make_ctx () in
  let x = Sb_util.Bitvec.of_string "11111" in
  let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
  let adv = Core.Adversaries.silent ~corrupt:[ 4 ] in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
  check_consistent r;
  let w = announced r in
  Alcotest.(check bool) "silent party announces 0" false (Sb_util.Bitvec.get w 4);
  (* Honest coordinates are untouched. *)
  List.iter
    (fun i -> Alcotest.(check bool) "honest coordinate" true (Sb_util.Bitvec.get w i))
    [ 0; 1; 2; 3 ]

(* --- round formulas -------------------------------------------------- *)

let test_round_formulas () =
  let rounds p n = p.Protocol.rounds (make_ctx ~n ~thresh:((n - 1) / 2) ()) in
  (* Gennaro constant. *)
  Alcotest.(check int) "gennaro n=4" 4 (rounds Sb_protocols.Gennaro.protocol 4);
  Alcotest.(check int) "gennaro n=32" 4 (rounds Sb_protocols.Gennaro.protocol 32);
  (* CGMA linear: 3n + 1. *)
  Alcotest.(check int) "cgma n=4" 13 (rounds Sb_protocols.Cgma.protocol 4);
  Alcotest.(check int) "cgma n=8" 25 (rounds Sb_protocols.Cgma.protocol 8);
  (* Chor-Rabin logarithmic: floor(log2 n) + 6. *)
  Alcotest.(check int) "chor-rabin n=4" 8 (rounds Sb_protocols.Chor_rabin.protocol 4);
  Alcotest.(check int) "chor-rabin n=8" 9 (rounds Sb_protocols.Chor_rabin.protocol 8);
  Alcotest.(check int) "chor-rabin n=32" 11 (rounds Sb_protocols.Chor_rabin.protocol 32);
  (* Naive: n and 1. *)
  Alcotest.(check int) "naive-seq" 16 (rounds Sb_protocols.Naive.sequential 16);
  Alcotest.(check int) "naive-conc" 1 (rounds Sb_protocols.Naive.concurrent 16)

(* --- Theta / Pi_G ----------------------------------------------------- *)

let test_theta_g_no_flags () =
  let v = [| (true, false); (false, false); (true, false) |] in
  Alcotest.(check (array bool)) "identity" [| true; false; true |]
    (Sb_protocols.Theta.g ~r:true v)

let test_theta_g_two_flags () =
  (* l1 = 1, l2 = 3; y = x0 xor x2 xor x4. *)
  let v = [| (true, false); (false, true); (true, false); (false, true); (false, false) |] in
  let w_r b = Sb_protocols.Theta.g ~r:b v in
  List.iter
    (fun r ->
      let w = w_r r in
      Alcotest.(check bool) "w_l1 = r" r w.(1);
      Alcotest.(check bool) "w_l2 = r xor y" (r <> (true <> true <> false)) w.(3);
      (* Unflagged coordinates pass through. *)
      Alcotest.(check bool) "w0" true w.(0);
      Alcotest.(check bool) "w2" true w.(2);
      Alcotest.(check bool) "w4" false w.(4);
      (* The invariant of Claim 6.6: XOR of all outputs is 0. *)
      let parity = Array.fold_left (fun acc b -> if b then not acc else acc) false w in
      Alcotest.(check bool) "global parity zero" false parity)
    [ true; false ]

let test_theta_g_wrong_flag_count () =
  (* 1 or 3 flags: no leaking branch. *)
  let v1 = [| (true, true); (false, false); (true, false) |] in
  Alcotest.(check (array bool)) "one flag" [| true; false; true |]
    (Sb_protocols.Theta.g ~r:false v1);
  let v3 = [| (true, true); (false, true); (true, true) |] in
  Alcotest.(check (array bool)) "three flags" [| true; false; true |]
    (Sb_protocols.Theta.g ~r:false v3)

let test_pi_g_astar_forces_parity () =
  (* Claim 6.6 end-to-end: under A* the announced XOR is always 0. *)
  let astar = Core.Adversaries.a_star ~corrupt:(3, 4) in
  for trial = 1 to 20 do
    let ctx = make_ctx () in
    let rng = Sb_util.Rng.create (7000 + trial) in
    let inputs = Array.init 5 (fun _ -> Msg.Bit (Sb_util.Rng.bool rng)) in
    let r =
      Network.run ctx ~rng ~protocol:Sb_protocols.Pi_g.protocol ~adversary:astar ~inputs ()
    in
    Alcotest.(check bool) "xor = 0" false (Sb_util.Bitvec.parity (announced r))
  done

(* --- VSS session under a malicious dealer --------------------------- *)

(* Adversary: corrupted dealer 0 deals inconsistent shares (a wrong
   share to party 1) in Gennaro; party 1 complains; the dealer answers
   with a VALID share; sharing must succeed. Variant: dealer stays
   silent on complaints -> disqualified -> announced 0. *)
let bad_dealer ~answer_complaints =
  {
    Adversary.name = "bad-dealer";
    choose_corrupt = (fun _ ~rng:_ -> [ 0 ]);
    init =
      (fun ctx ~rng ~corrupted:_ ~inputs:_ ~aux:_ ->
        let n = ctx.Ctx.n in
        let dealt =
          Sb_crypto.Pedersen.deal rng ~threshold:ctx.Ctx.thresh ~parties:n
            ~secret:Sb_crypto.Field.one
        in
        let share_msg j =
          let s = dealt.Sb_crypto.Pedersen.shares.(j) in
          Msg.List [ Msg.Fe s.Sb_crypto.Pedersen.value; Msg.Fe s.Sb_crypto.Pedersen.blind ]
        in
        let act (view : Adversary.view) =
          match view.Adversary.round with
          | 0 ->
              (* Broadcast the true commitment, but hand party 1 a
                 corrupted share value. *)
              let comm =
                Msg.List
                  (Array.to_list
                     (Array.map (fun g -> Msg.Ge g) dealt.Sb_crypto.Pedersen.commitment))
              in
              Envelope.broadcast ~src:0 (Msg.Tag ("vss:0:comm", comm))
              :: List.filter_map
                   (fun j ->
                     if j = 0 then None
                     else
                       let body =
                         if j = 1 then
                           Msg.List [ Msg.Fe Sb_crypto.Field.zero; Msg.Fe Sb_crypto.Field.zero ]
                         else share_msg j
                       in
                       Some (Envelope.make ~src:0 ~dst:j (Msg.Tag ("vss:0:share", body))))
                   (List.init n Fun.id)
          | 2 when answer_complaints ->
              (* Answer party 1's complaint with its true share. *)
              [
                Envelope.broadcast ~src:0
                  (Msg.Tag
                     ( "vss:0:resp",
                       Msg.List
                         [
                           Msg.List
                             [
                               Msg.Int 1;
                               Msg.Fe dealt.Sb_crypto.Pedersen.shares.(1).Sb_crypto.Pedersen.value;
                               Msg.Fe dealt.Sb_crypto.Pedersen.shares.(1).Sb_crypto.Pedersen.blind;
                             ];
                         ] ));
              ]
          | _ -> []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let run_gennaro_with_dealer adv =
  let ctx = make_ctx () in
  let inputs = Array.make 5 (Msg.Bit true) in
  let r =
    Network.run ctx ~rng:(fresh_rng ()) ~protocol:Sb_protocols.Gennaro.protocol ~adversary:adv
      ~inputs ()
  in
  check_consistent r;
  announced r

let test_bad_dealer_recovers_with_response () =
  let w = run_gennaro_with_dealer (bad_dealer ~answer_complaints:true) in
  Alcotest.(check bool) "dealer 0 value recovered" true (Sb_util.Bitvec.get w 0)

let test_bad_dealer_disqualified_without_response () =
  let w = run_gennaro_with_dealer (bad_dealer ~answer_complaints:false) in
  Alcotest.(check bool) "dealer 0 disqualified -> 0" false (Sb_util.Bitvec.get w 0);
  List.iter
    (fun i -> Alcotest.(check bool) "honest values intact" true (Sb_util.Bitvec.get w i))
    [ 1; 2; 3; 4 ]

let test_copycat_disqualified () =
  (* Copying an honest dealer's commitment without knowing the shares
     gets the copycat disqualified, in every VSS-based protocol. *)
  List.iter
    (fun p ->
      let ctx = make_ctx () in
      let inputs = Array.make 5 (Msg.Bit true) in
      let adv = Core.Adversaries.copycat_dealer ~copier:4 ~target:0 in
      let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
      check_consistent r;
      let w = announced r in
      Alcotest.(check bool) "copycat announces 0" false (Sb_util.Bitvec.get w 4);
      Alcotest.(check bool) "target unaffected" true (Sb_util.Bitvec.get w 0))
    [ Sb_protocols.Gennaro.protocol; Sb_protocols.Chor_rabin.protocol ]

let test_reveal_withhold_ineffective_on_vss () =
  (* Withholding reveals cannot change a VSS-shared announced value. *)
  let p = Sb_protocols.Gennaro.protocol in
  let adv =
    Core.Adversaries.reveal_withhold p ~corrupt:[ 4 ]
      ~reveal_round:(fun _ -> Sb_protocols.Gennaro.reveal_round)
      ~reveal_tag_prefix:"vss:"
      ~honest_probe:(fun _ _ -> true) (* always withhold *)
  in
  let ctx = make_ctx () in
  let inputs = Array.make 5 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
  let w = announced r in
  Alcotest.(check string) "all values recovered" "11111" (Sb_util.Bitvec.to_string w)

let test_reveal_withhold_effective_on_commit_open () =
  (* The same attack works against bare commit-open: the corrupted
     party's value is silently defaulted. *)
  let p = Sb_protocols.Commit_open.protocol in
  let adv =
    Core.Adversaries.reveal_withhold p ~corrupt:[ 4 ]
      ~reveal_round:(fun _ -> 1)
      ~reveal_tag_prefix:"co-open"
      ~honest_probe:(fun _ _ -> true)
  in
  let ctx = make_ctx () in
  let inputs = Array.make 5 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
  let w = announced r in
  Alcotest.(check bool) "withheld value defaults to 0" false (Sb_util.Bitvec.get w 4)

let test_chor_rabin_bad_knowledge_tag () =
  (* A corrupted dealer that runs the whole protocol honestly EXCEPT
     for broadcasting a wrong knowledge tag is assigned 0 — the
     proof-of-knowledge step is load-bearing. *)
  let p = Sb_protocols.Chor_rabin.protocol in
  let base = Adversary.semi_honest p ~corrupt:[ 4 ] in
  let adv =
    {
      base with
      Adversary.init =
        (fun ctx ~rng ~corrupted ~inputs ~aux ->
          let s = base.Adversary.init ctx ~rng ~corrupted ~inputs ~aux in
          {
            s with
            Adversary.act =
              (fun view ->
                List.map
                  (fun (e : Envelope.t) ->
                    match e.Envelope.body with
                    | Msg.Tag ("cr-conf", Msg.Str _) ->
                        { e with Envelope.body = Msg.Tag ("cr-conf", Msg.Str "garbage") }
                    | _ -> e)
                  (s.Adversary.act view));
          });
    }
  in
  let ctx = make_ctx () in
  let inputs = Array.make 5 (Msg.Bit true) in
  let r = Network.run ctx ~rng:(fresh_rng ()) ~protocol:p ~adversary:adv ~inputs () in
  check_consistent r;
  let w = announced r in
  Alcotest.(check bool) "bad tag -> 0" false (Sb_util.Bitvec.get w 4);
  List.iter
    (fun i -> Alcotest.(check bool) "others intact" true (Sb_util.Bitvec.get w i))
    [ 0; 1; 2; 3 ]

(* --- Multi wrapper ---------------------------------------------------- *)

let test_multi_roundtrip () =
  let p = Sb_protocols.Multi.wrap ~bits:4 Sb_protocols.Gennaro.protocol in
  let ctx = make_ctx () in
  let values = [| 9; 4; 12; 7; 3 |] in
  let inputs = Array.map (fun v -> Msg.Int v) values in
  let r = Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs in
  check_consistent r;
  match r.Network.outputs with
  | (_, Msg.List vals) :: _ ->
      List.iteri
        (fun i m -> Alcotest.(check int) (Printf.sprintf "value %d" i) values.(i) (Msg.to_int_exn m))
        vals
  | _ -> Alcotest.fail "bad output shape"

let test_multi_rejects_out_of_range () =
  let p = Sb_protocols.Multi.wrap ~bits:3 Sb_protocols.Naive.concurrent in
  let ctx = make_ctx () in
  let inputs = Array.make 5 (Msg.Int 9) in
  Alcotest.check_raises "out of range" (Invalid_argument "Multi.wrap: input out of range")
    (fun () -> ignore (Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs))

let test_multi_rejects_functionality () =
  Alcotest.check_raises "functionality"
    (Invalid_argument "Multi.wrap: base protocol uses a functionality") (fun () ->
      ignore (Sb_protocols.Multi.wrap ~bits:2 Sb_protocols.Pi_g.protocol))

let test_multi_same_rounds () =
  let base = Sb_protocols.Gennaro.protocol in
  let p = Sb_protocols.Multi.wrap ~bits:8 base in
  let ctx = make_ctx () in
  Alcotest.(check int) "concurrent instances, same rounds" (base.Protocol.rounds ctx)
    (p.Protocol.rounds ctx)

(* --- property tests: the contract under random inputs and seeds ------ *)

let qcheck_honest_contract (name, (p : Protocol.t)) =
  QCheck.Test.make
    ~name:(name ^ ": honest contract on random inputs/seeds")
    ~count:40
    QCheck.(pair (int_bound 31) (int_bound 1_000_000))
    (fun (v, seed) ->
      let ctx = Ctx.make ~rng:(Sb_util.Rng.create (seed + 1)) ~n:5 ~thresh:2 ~k:16 () in
      let x = Sb_util.Bitvec.of_int 5 v in
      let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r = Network.honest_run ctx ~rng:(Sb_util.Rng.create (seed + 2)) ~protocol:p ~inputs in
      match r.Network.outputs with
      | [] -> false
      | (_, first) :: rest ->
          List.for_all (fun (_, m) -> Msg.equal m first) rest
          && Sb_util.Bitvec.equal x (Msg.to_bitvec_exn first))

let qcheck_semi_honest_contract (name, (p : Protocol.t)) =
  QCheck.Test.make
    ~name:(name ^ ": semi-honest contract on random corruption")
    ~count:25
    QCheck.(triple (int_bound 31) (int_bound 1_000_000) (int_bound 9))
    (fun (v, seed, cpick) ->
      let corrupt = Sb_util.Subset.of_list [ cpick mod 5; (cpick / 2) mod 5 ] in
      let ctx = Ctx.make ~rng:(Sb_util.Rng.create (seed + 3)) ~n:5 ~thresh:2 ~k:16 () in
      let x = Sb_util.Bitvec.of_int 5 v in
      let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let adv = Adversary.semi_honest p ~corrupt in
      let r = Network.run ctx ~rng:(Sb_util.Rng.create (seed + 4)) ~protocol:p ~adversary:adv ~inputs () in
      match r.Network.outputs with
      | [] -> false
      | (_, first) :: rest ->
          List.for_all (fun (_, m) -> Msg.equal m first) rest
          && Sb_util.Bitvec.equal x (Msg.to_bitvec_exn first))

(* A* on Pi_G forces zero parity for EVERY input and seed (Claim 6.6). *)
let qcheck_astar_parity =
  QCheck.Test.make ~name:"pi-g + A*: xor of announced always 0" ~count:60
    QCheck.(pair (int_bound 31) (int_bound 1_000_000))
    (fun (v, seed) ->
      let ctx = Ctx.make ~rng:(Sb_util.Rng.create (seed + 5)) ~n:5 ~thresh:2 ~k:16 () in
      let x = Sb_util.Bitvec.of_int 5 v in
      let inputs = Array.init 5 (fun i -> Msg.Bit (Sb_util.Bitvec.get x i)) in
      let r =
        Network.run ctx
          ~rng:(Sb_util.Rng.create (seed + 6))
          ~protocol:Sb_protocols.Pi_g.protocol
          ~adversary:(Core.Adversaries.a_star ~corrupt:(3, 4))
          ~inputs ()
      in
      match r.Network.outputs with
      | (_, m) :: _ -> not (Sb_util.Bitvec.parity (Msg.to_bitvec_exn m))
      | [] -> false)

(* Multi-bit wrapping commutes with the bit decomposition. *)
let qcheck_multi_roundtrip =
  QCheck.Test.make ~name:"multi wrapper roundtrip" ~count:20
    QCheck.(pair (list_of_size (QCheck.Gen.return 5) (int_bound 15)) (int_bound 1_000_000))
    (fun (vals, seed) ->
      let p = Sb_protocols.Multi.wrap ~bits:4 Sb_protocols.Naive.concurrent in
      let ctx = Ctx.make ~rng:(Sb_util.Rng.create (seed + 7)) ~n:5 ~thresh:2 ~k:16 () in
      let inputs = Array.of_list (List.map (fun v -> Msg.Int v) vals) in
      let r = Network.honest_run ctx ~rng:(Sb_util.Rng.create (seed + 8)) ~protocol:p ~inputs in
      match r.Network.outputs with
      | (_, Msg.List out) :: _ ->
          List.for_all2 (fun v m -> Msg.to_int_exn m = v) vals out
      | _ -> false)

(* --- the CGMA compiler -------------------------------------------------- *)

let run_compiled base ~epochs ~inputs ~seed =
  let program = Sb_protocols.Compiler.xor_coin_program ~rounds:epochs in
  let p = Sb_protocols.Compiler.compile program ~using:base in
  let ctx = Ctx.make ~rng:(Sb_util.Rng.create seed) ~n:5 ~thresh:2 ~k:16 () in
  let r = Network.honest_run ctx ~rng:(Sb_util.Rng.create (seed + 1)) ~protocol:p ~inputs in
  check_consistent r;
  match r.Network.outputs with (_, m) :: _ -> m | [] -> Alcotest.fail "no outputs"

let test_compiler_hybrid_equivalence () =
  (* The compiler theorem, on honest runs: the program's outputs are
     identical whether the epochs run over the ideal SB functionality
     or over a real simultaneous broadcast protocol. *)
  let inputs = Array.init 5 (fun i -> Msg.Bit (i mod 2 = 0)) in
  let hybrid = run_compiled Sb_protocols.Ideal_sb.protocol ~epochs:3 ~inputs ~seed:50 in
  List.iter
    (fun base ->
      let compiled = run_compiled base ~epochs:3 ~inputs ~seed:60 in
      Alcotest.(check bool)
        ("hybrid = compiled over " ^ base.Protocol.name)
        true (Msg.equal hybrid compiled))
    [ Sb_protocols.Gennaro.protocol; Sb_protocols.Naive.sequential ]

let test_compiler_epoch_count () =
  let program = Sb_protocols.Compiler.xor_coin_program ~rounds:4 in
  let p = Sb_protocols.Compiler.compile program ~using:Sb_protocols.Gennaro.protocol in
  let ctx = make_ctx () in
  (* 4 epochs of (4 base rounds + 1 window step) - 1. *)
  Alcotest.(check int) "rounds" 19 (p.Protocol.rounds ctx);
  let inputs = Array.make 5 (Msg.Bit true) in
  match
    (Network.honest_run ctx ~rng:(fresh_rng ()) ~protocol:p ~inputs).Network.outputs
  with
  | (_, Msg.List coins) :: _ -> Alcotest.(check int) "4 coins" 4 (List.length coins)
  | _ -> Alcotest.fail "bad output"

let test_compiler_window () =
  Alcotest.(check (pair int int)) "epoch 2 over 4-round base" (10, 14)
    (Sb_protocols.Compiler.epoch_window ~base_rounds:4 ~epoch:2)

let test_compiler_semi_honest_matches () =
  (* Semi-honest corruption must not change the coins either. *)
  let program = Sb_protocols.Compiler.xor_coin_program ~rounds:2 in
  let p = Sb_protocols.Compiler.compile program ~using:Sb_protocols.Gennaro.protocol in
  let ctx = make_ctx () in
  let inputs = Array.init 5 (fun i -> Msg.Bit (i < 2)) in
  let honest = Network.honest_run ctx ~rng:(Sb_util.Rng.create 70) ~protocol:p ~inputs in
  let ctx2 = make_ctx () in
  let semi =
    Network.run ctx2 ~rng:(Sb_util.Rng.create 70) ~protocol:p
      ~adversary:(Adversary.semi_honest p ~corrupt:[ 4 ])
      ~inputs ()
  in
  match (honest.Network.outputs, semi.Network.outputs) with
  | (_, a) :: _, (_, b) :: _ -> Alcotest.(check bool) "same coins" true (Msg.equal a b)
  | _ -> Alcotest.fail "missing outputs"

(* --- registry --------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "7 registered" 7 (List.length Sb_protocols.Registry.all);
  Alcotest.(check bool) "find gennaro" true
    (Option.is_some (Sb_protocols.Registry.find "gennaro-constant"));
  Alcotest.(check bool) "find nonsense" true
    (Option.is_none (Sb_protocols.Registry.find "nonsense"));
  Alcotest.(check int) "simultaneous subset" 4 (List.length Sb_protocols.Registry.simultaneous)

(* --- driver ----------------------------------------------------------- *)

let () =
  let per_protocol (name, p) =
    ( name,
      [
        Alcotest.test_case "honest contract" `Quick (test_honest_contract p);
        Alcotest.test_case "varied sizes" `Quick (test_honest_contract_varied_sizes p);
        Alcotest.test_case "semi-honest contract" `Quick (test_semi_honest_contract p);
        Alcotest.test_case "silent defaults" `Quick (test_silent_defaults p);
        Alcotest.test_case "backend equivalence" `Quick (test_ideal_backend_matches_hash p);
      ] )
  in
  Alcotest.run "sb_protocols"
    (List.map per_protocol all_protocols
    @ [
        ("rounds", [ Alcotest.test_case "formulas" `Quick test_round_formulas ]);
        ( "theta",
          [
            Alcotest.test_case "g identity" `Quick test_theta_g_no_flags;
            Alcotest.test_case "g leaking branch" `Quick test_theta_g_two_flags;
            Alcotest.test_case "g wrong flag counts" `Quick test_theta_g_wrong_flag_count;
            Alcotest.test_case "A* forces parity 0" `Quick test_pi_g_astar_forces_parity;
          ] );
        ( "vss-robustness",
          [
            Alcotest.test_case "bad dealer, valid response" `Quick
              test_bad_dealer_recovers_with_response;
            Alcotest.test_case "bad dealer, no response" `Quick
              test_bad_dealer_disqualified_without_response;
            Alcotest.test_case "copycat disqualified" `Quick test_copycat_disqualified;
            Alcotest.test_case "withhold vs VSS" `Quick test_reveal_withhold_ineffective_on_vss;
            Alcotest.test_case "withhold vs commit-open" `Quick
              test_reveal_withhold_effective_on_commit_open;
            Alcotest.test_case "chor-rabin bad knowledge tag" `Quick
              test_chor_rabin_bad_knowledge_tag;
          ] );
        ( "multi",
          [
            Alcotest.test_case "roundtrip" `Quick test_multi_roundtrip;
            Alcotest.test_case "out of range" `Quick test_multi_rejects_out_of_range;
            Alcotest.test_case "no functionality" `Quick test_multi_rejects_functionality;
            Alcotest.test_case "same rounds" `Quick test_multi_same_rounds;
          ] );
        ( "compiler",
          [
            Alcotest.test_case "hybrid equivalence" `Quick test_compiler_hybrid_equivalence;
            Alcotest.test_case "epoch count" `Quick test_compiler_epoch_count;
            Alcotest.test_case "window" `Quick test_compiler_window;
            Alcotest.test_case "semi-honest equivalence" `Quick test_compiler_semi_honest_matches;
          ] );
        ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
        ( "properties",
          List.map QCheck_alcotest.to_alcotest
            (List.map qcheck_honest_contract all_protocols
            @ List.map qcheck_semi_honest_contract
                (List.filter (fun (n, _) -> n <> "ideal-fsb") all_protocols)
            @ [ qcheck_astar_parity; qcheck_multi_roundtrip ]) );
      ])
