(* Tests for sb_par: partitioner coverage, pool exception/shutdown
   semantics, and the determinism contract of the parallel sampling
   engine (identical results at every --jobs setting, equal to the
   sequential path). *)

open Sb_util

(* --- Partition ----------------------------------------------------- *)

let check_cover ~total ~jobs =
  let chunks = Sb_par.Partition.chunks ~total ~jobs in
  let hit = Array.make total 0 in
  Array.iter
    (fun { Sb_par.Partition.lo; len } ->
      Alcotest.(check bool) "chunk non-empty" true (len > 0);
      for i = lo to lo + len - 1 do
        hit.(i) <- hit.(i) + 1
      done)
    chunks;
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "index %d covered once (total=%d, jobs=%d)" i total jobs)
        1 c)
    hit

let test_partition_cover () =
  List.iter
    (fun total -> List.iter (fun jobs -> check_cover ~total ~jobs) [ 1; 2; 3; 4; 7; 32 ])
    [ 0; 1; 2; 7; 13; 31; 97; 1000 ]

let test_partition_empty () =
  Alcotest.(check int) "total=0 gives no chunks" 0
    (Array.length (Sb_par.Partition.chunks ~total:0 ~jobs:4))

(* --- Pool ----------------------------------------------------------- *)

exception Boom of int

let test_pool_exception_propagates () =
  let pool = Sb_par.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Sb_par.Pool.shutdown pool)
    (fun () ->
      (match
         Sb_par.Pool.map_chunks pool
           ~f:(fun i -> if i mod 2 = 1 then raise (Boom i) else i)
           (Array.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest-index failure re-raised" 1 i);
      (* The pool must survive a failed barrier. *)
      let r = Sb_par.Pool.map_chunks pool ~f:(fun i -> i * i) (Array.init 5 Fun.id) in
      Alcotest.(check (array int)) "pool reusable after failure" [| 0; 1; 4; 9; 16 |] r)

let test_pool_shutdown () =
  let pool = Sb_par.Pool.create ~domains:2 () in
  Sb_par.Pool.shutdown pool;
  Sb_par.Pool.shutdown pool (* idempotent *);
  match Sb_par.Pool.map_chunks pool ~f:Fun.id [| 1 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pool_reduce_order () =
  let pool = Sb_par.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Sb_par.Pool.shutdown pool)
    (fun () ->
      (* A non-commutative merge exposes any scheduling dependence. *)
      let s =
        Sb_par.Pool.reduce pool ~f:string_of_int ~merge:( ^ ) ~init:""
          (Array.init 10 Fun.id)
      in
      Alcotest.(check string) "merge folds in chunk order" "0123456789" s)

(* --- psample determinism ------------------------------------------- *)

let protocol = Sb_protocols.Gennaro.protocol
let setup = Core.Setup.with_samples 400 Core.Setup.default
let adversary = Core.Adversaries.semi_honest protocol ~corrupt:[ 3; 4 ]

let with_jobs j f =
  Sb_par.Pool.set_default_domains j;
  Fun.protect ~finally:(fun () -> Sb_par.Pool.set_default_domains 1) f

let ones_sequential ~dist =
  let n = setup.Core.Setup.n in
  let counts = Array.make n 0 in
  let rng = Rng.create setup.Core.Setup.seed in
  Core.Announced.sample setup ~protocol ~adversary ~dist rng (fun r ->
      for i = 0 to n - 1 do
        if Bitvec.get r.Core.Announced.w i then counts.(i) <- counts.(i) + 1
      done);
  counts

let ones_parallel ~dist =
  let n = setup.Core.Setup.n in
  let rng = Rng.create setup.Core.Setup.seed in
  Core.Announced.psample setup ~protocol ~adversary ~dist
    ~init:(fun () -> Array.make n 0)
    ~f:(fun acc _ r ->
      for i = 0 to n - 1 do
        if Bitvec.get r.Core.Announced.w i then acc.(i) <- acc.(i) + 1
      done)
    ~merge:(fun ~into src -> Array.iteri (fun i c -> into.(i) <- into.(i) + c) src)
    rng

let test_psample_matches_sequential () =
  let dist = Sb_dist.Dist.uniform setup.Core.Setup.n in
  let seq = ones_sequential ~dist in
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals the sequential loop" j)
            seq (ones_parallel ~dist)))
    [ 1; 2; 4 ]

let test_pedersen_jobs_invariant () =
  (* The crypto hot path — fixed-base commitments, share verification,
     cached-Lagrange reconstruction — run across a worker pool: the
     Lagrange cache is domain-local, so every pool size must produce
     byte-identical results (and equal to the inline jobs=1 path). *)
  let task seed =
    let rng = Rng.create seed in
    let secret = Sb_crypto.Field.random rng in
    let d = Sb_crypto.Pedersen.deal rng ~threshold:2 ~parties:5 ~secret in
    let ok = Array.for_all (Sb_crypto.Pedersen.verify_share d.Sb_crypto.Pedersen.commitment)
        d.Sb_crypto.Pedersen.shares in
    (* Vary the reveal subset with the seed so several distinct
       abscissa sets hit each domain's cache. *)
    let subset =
      List.map
        (fun i -> d.Sb_crypto.Pedersen.shares.((i + seed) mod 5))
        [ 0; 1; 2; (seed * 3) mod 5 ]
      |> List.sort_uniq (fun a b ->
             Int.compare a.Sb_crypto.Pedersen.index b.Sb_crypto.Pedersen.index)
    in
    ( ok,
      Sb_crypto.Field.to_int (Sb_crypto.Pedersen.reconstruct subset),
      Sb_crypto.Field.to_int (Sb_crypto.Pedersen.reconstruct_blind subset),
      Sb_crypto.Field.to_int secret )
  in
  let run_with ~domains =
    let pool = Sb_par.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Sb_par.Pool.shutdown pool)
      (fun () -> Sb_par.Pool.map_chunks pool ~f:task (Array.init 64 (fun i -> 1000 + i)))
  in
  let base = run_with ~domains:1 in
  Array.iter
    (fun (ok, v, _, s) ->
      Alcotest.(check bool) "honest shares verify" true ok;
      Alcotest.(check int) "reconstructs the secret" s v)
    base;
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "pedersen path at jobs=%d identical to jobs=1" domains)
        true
        (run_with ~domains = base))
    [ 2; 4 ]

let test_testers_jobs_invariant () =
  let dist = Sb_dist.Dist.uniform setup.Core.Setup.n in
  let run_all () =
    let cr = Core.Cr_test.run setup ~protocol ~adversary ~dist () in
    let g = Core.G_test.run setup ~protocol ~adversary ~dist () in
    let gss = Core.Gss_test.run setup ~protocol ~adversary ~runs_per_point:200 () in
    (cr.Core.Cr_test.findings, cr.Core.Cr_test.verdict, g.Core.G_test.findings,
     g.Core.G_test.verdict, gss.Core.Gss_test.findings, gss.Core.Gss_test.verdict)
  in
  let base = with_jobs 1 run_all in
  List.iter
    (fun j ->
      let r = with_jobs j run_all in
      Alcotest.(check bool)
        (Printf.sprintf "tester outputs at jobs=%d identical to jobs=1" j)
        true (r = base))
    [ 2; 4 ]

let () =
  Alcotest.run "sb_par"
    [
      ( "partition",
        [
          Alcotest.test_case "exact cover (0, 1, primes, large)" `Quick test_partition_cover;
          Alcotest.test_case "empty total" `Quick test_partition_empty;
        ] );
      ( "pool",
        [
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "shutdown idempotent, then rejects work" `Quick test_pool_shutdown;
          Alcotest.test_case "reduce merges in chunk order" `Quick test_pool_reduce_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pedersen path invariant in pool size" `Quick
            test_pedersen_jobs_invariant;
          Alcotest.test_case "psample = sequential sample" `Slow test_psample_matches_sequential;
          Alcotest.test_case "tester results invariant in --jobs" `Slow
            test_testers_jobs_invariant;
        ] );
    ]
