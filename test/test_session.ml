(* Tests for sb_session: the work-stealing whole-session scheduler.

   The load-bearing property is the determinism contract: per-session
   reports and every deterministic aggregate field are byte-identical
   at every pool size (the shard layout and the RNG streams are pure
   functions of the spec counts, the schedule mode and the master
   seed). The scheduler only decides which worker drives which shard —
   under Steal via a shared atomic claim counter, under Static via the
   historical one-task-per-coarse-shard queue. *)

open Sb_session

let substrate name = List.assoc name (Core.Resilience.substrates ())

let setup = Core.Setup.{ default with n = 5; thresh = 2; seed = 33 }
let dist = Sb_dist.Dist.uniform 5

let mixed_specs =
  [
    Engine.spec (substrate "concurrent-bracha") 17;
    Engine.spec (substrate "concurrent-dolev-strong") 11;
    Engine.spec Sb_protocols.Commit_open.protocol 7;
  ]

(* A heavy-tailed mix in the E18 sense: a few expensive large-n
   Dolev-Strong sessions among many cheap n=5 Bracha votes, plus a
   faulted spec exercising the per-spec fault-plan path. *)
let heavy_specs =
  [
    Engine.spec ~parties:9
      ~dist:(Sb_dist.Dist.uniform 9)
      (substrate "concurrent-dolev-strong")
      3;
    Engine.spec (substrate "concurrent-bracha") 40;
    Engine.spec
      ~faults:[ Sb_fault.Plan.crash ~party:4 ~round:1 ]
      (substrate "concurrent-bracha") 8;
  ]

let run_with_jobs ?sched specs jobs =
  let pool = Sb_par.Pool.create ~domains:jobs () in
  Fun.protect
    ~finally:(fun () -> Sb_par.Pool.shutdown pool)
    (fun () -> Engine.run ~pool ?sched ~setup ~dist specs (Sb_util.Rng.create 33))

let report_lines reports =
  Array.to_list
    (Array.map (fun r -> Sb_obs.Json.to_string (Engine.session_report_to_json r)) reports)

(* The jobs-invariant slice of the aggregate: everything except the
   wall clocks, the rates derived from them, and the scheduling-race
   fields (steals, worker stats). *)
let deterministic_slice (a : Engine.aggregate) =
  ( (a.Engine.sessions, a.Engine.consistent, a.Engine.shards),
    Array.to_list a.Engine.per_shard,
    ((a.Engine.broadcasts, a.Engine.p2p), (a.Engine.broadcast_bytes, a.Engine.p2p_bytes)) )

let agg_t =
  Alcotest.(
    triple (triple int int int) (list int) (pair (pair int int) (pair int int)))

let check_jobs_invariant name specs =
  let agg1, reports1 = run_with_jobs specs 1 in
  let lines1 = report_lines reports1 in
  List.iter
    (fun jobs ->
      let agg, reports = run_with_jobs specs jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "%s session reports at jobs=%d" name jobs)
        lines1 (report_lines reports);
      Alcotest.check agg_t
        (Printf.sprintf "%s aggregate at jobs=%d" name jobs)
        (deterministic_slice agg1) (deterministic_slice agg))
    [ 2; 4 ]

let test_reports_jobs_invariant () = check_jobs_invariant "uniform" mixed_specs

let test_heavy_tail_jobs_invariant () =
  (* Mixed party counts, per-spec dist and a per-spec fault plan stay
     byte-identical across pool sizes. *)
  check_jobs_invariant "heavy-tailed" heavy_specs

let test_static_jobs_invariant () =
  let agg1, reports1 = run_with_jobs ~sched:Engine.Static mixed_specs 1 in
  let agg4, reports4 = run_with_jobs ~sched:Engine.Static mixed_specs 4 in
  Alcotest.(check (list string))
    "static reports at jobs=4" (report_lines reports1) (report_lines reports4);
  Alcotest.check agg_t "static aggregate at jobs=4" (deterministic_slice agg1)
    (deterministic_slice agg4)

(* Steal vs Static differ only in shard layout (hence context-stream
   assignment and the report's shard field): every session-level
   outcome is pinned to the static engine's output on the same seed. *)
let outcome_slice reports =
  Array.to_list
    (Array.map
       (fun (r : Engine.session_report) ->
         ( (r.Engine.index, r.Engine.protocol, r.Engine.n),
           ( Sb_util.Bitvec.to_string r.Engine.x,
             Sb_util.Bitvec.to_string r.Engine.w,
             (r.Engine.consistent, r.Engine.rounds, r.Engine.p2p) ) ))
       reports)

let outcome_t =
  Alcotest.(
    list
      (pair
         (triple int string int)
         (triple string string (triple bool int int))))

let test_steal_vs_static_differential () =
  List.iter
    (fun specs ->
      let agg_steal, steal = run_with_jobs ~sched:Engine.Steal specs 2 in
      let agg_static, static = run_with_jobs ~sched:Engine.Static specs 2 in
      Alcotest.check outcome_t "session outcomes pinned to static engine"
        (outcome_slice static) (outcome_slice steal);
      Alcotest.(check int)
        "consistent totals agree" agg_static.Engine.consistent
        agg_steal.Engine.consistent;
      Alcotest.(check (pair int int))
        "comm totals agree"
        (agg_static.Engine.broadcasts, agg_static.Engine.p2p)
        (agg_steal.Engine.broadcasts, agg_steal.Engine.p2p))
    [ mixed_specs; heavy_specs ]

let test_steal_counters_sane () =
  (* One worker: everything is a home claim. *)
  let agg1, _ = run_with_jobs mixed_specs 1 in
  Alcotest.(check int) "no steals at jobs=1" 0 agg1.Engine.steals;
  Alcotest.(check int) "one worker stat" 1 (Array.length agg1.Engine.worker_stats);
  let ws = agg1.Engine.worker_stats.(0) in
  Alcotest.(check int) "sole worker claims all shards" agg1.Engine.shards
    ws.Engine.shards_run;
  Alcotest.(check int) "sole worker runs all sessions" agg1.Engine.sessions
    ws.Engine.sessions_run;
  Alcotest.(check int) "sole worker steals nothing" 0 ws.Engine.stolen;
  (* Any pool: claims partition the shards, sessions partition the
     batch, and the steal total matches the per-worker tallies. *)
  let agg4, _ = run_with_jobs mixed_specs 4 in
  Alcotest.(check int) "worker stats per slot" 4 (Array.length agg4.Engine.worker_stats);
  let sum f = Array.fold_left (fun acc ws -> acc + f ws) 0 agg4.Engine.worker_stats in
  Alcotest.(check int) "claims cover the shards" agg4.Engine.shards
    (sum (fun ws -> ws.Engine.shards_run));
  Alcotest.(check int) "sessions cover the batch" agg4.Engine.sessions
    (sum (fun ws -> ws.Engine.sessions_run));
  Alcotest.(check int) "steal total matches tallies" agg4.Engine.steals
    (sum (fun ws -> ws.Engine.stolen));
  (* Static mode reports no stealing surface at all. *)
  let aggs, _ = run_with_jobs ~sched:Engine.Static mixed_specs 4 in
  Alcotest.(check int) "static: no steals" 0 aggs.Engine.steals;
  Alcotest.(check int) "static: no worker stats" 0
    (Array.length aggs.Engine.worker_stats)

let test_spec_order_and_protocols () =
  let _, reports = run_with_jobs mixed_specs 2 in
  Alcotest.(check int) "total sessions" 35 (Array.length reports);
  (* Sessions are laid out in spec order, and the report index is the
     global session index. *)
  Array.iteri
    (fun i (r : Engine.session_report) ->
      Alcotest.(check int) "index = position" i r.Engine.index;
      let expected =
        if i < 17 then "concurrent-bracha"
        else if i < 28 then "concurrent-dolev-strong"
        else "commit-open"
      in
      Alcotest.(check string) "protocol by spec bounds" expected r.Engine.protocol)
    reports

let test_spec_at_binary_search () =
  let b = Engine.bounds mixed_specs in
  Alcotest.(check (list int)) "cumulative bounds" [ 0; 17; 28; 35 ] (Array.to_list b);
  List.iter
    (fun (i, expect) ->
      Alcotest.(check int) (Printf.sprintf "spec_at %d" i) expect (Engine.spec_at b i))
    [ (0, 0); (16, 0); (17, 1); (27, 1); (28, 2); (34, 2) ];
  Alcotest.check_raises "out of range"
    (Invalid_argument "Engine.spec_at: session 35 out of range") (fun () ->
      ignore (Engine.spec_at b 35))

let test_shard_layout_static () =
  (* Static, single spec: the historical layout — at most Shard.width
     contiguous shards, sizes differing by at most one. *)
  let shards =
    Shard.layout ~mode:Shard.Static ~counts:[| 100 |] ~rng:(Sb_util.Rng.create 1)
  in
  Alcotest.(check int) "shard count" Shard.width (Array.length shards);
  let covered = ref 0 in
  Array.iteri
    (fun k (s : Shard.t) ->
      Alcotest.(check int) "contiguous" !covered s.Shard.lo;
      Alcotest.(check int) "indexed" k s.Shard.index;
      Alcotest.(check int) "spec 0" 0 s.Shard.spec;
      Alcotest.(check bool) "balanced" true (s.Shard.len >= 3 && s.Shard.len <= 4);
      covered := !covered + s.Shard.len)
    shards;
  Alcotest.(check int) "covers batch" 100 !covered;
  (* Small batches degenerate to one session per shard. *)
  Alcotest.(check int) "small batch" 7
    (Array.length
       (Shard.layout ~mode:Shard.Static ~counts:[| 7 |] ~rng:(Sb_util.Rng.create 1)))

let test_shard_layout_steal () =
  (* Steal cuts each spec into at least Shard.width shards (capped at
     one session per shard) and never straddles a spec boundary. *)
  let counts = [| 40; 40; 40 |] in
  let shards = Shard.layout ~mode:Shard.Steal ~counts ~rng:(Sb_util.Rng.create 1) in
  Alcotest.(check int) "three specs x 32 shards" 96 (Array.length shards);
  let covered = ref 0 in
  Array.iteri
    (fun k (s : Shard.t) ->
      Alcotest.(check int) "contiguous" !covered s.Shard.lo;
      Alcotest.(check int) "indexed" k s.Shard.index;
      Alcotest.(check int) "spec by thirds" (k / 32) s.Shard.spec;
      Alcotest.(check bool) "within spec range" true
        (s.Shard.lo >= s.Shard.spec * 40 && s.Shard.lo + s.Shard.len <= (s.Shard.spec + 1) * 40);
      covered := !covered + s.Shard.len)
    shards;
  Alcotest.(check int) "covers batch" 120 !covered;
  (* A large spec lands near the steal_target granularity. *)
  let big = Shard.layout ~mode:Shard.Steal ~counts:[| 2048 |] ~rng:(Sb_util.Rng.create 1) in
  Alcotest.(check int) "2048 sessions -> 256 shards" 256 (Array.length big)

let test_parties_and_inputs_override () =
  (* Per-spec party counts and explicit inputs: a 7-party spec fed
     fixed vectors announces exactly those vectors under the passive
     adversary. *)
  let specs =
    [
      Engine.spec ~parties:7
        ~inputs:(fun j -> Sb_util.Bitvec.of_int 7 (j * 11 mod 128))
        (substrate "concurrent-bracha") 9;
      Engine.spec (substrate "concurrent-bracha") 5;
    ]
  in
  let agg, reports = run_with_jobs specs 2 in
  Alcotest.(check int) "all consistent" agg.Engine.sessions agg.Engine.consistent;
  Array.iteri
    (fun i (r : Engine.session_report) ->
      if i < 9 then begin
        Alcotest.(check int) "override n" 7 r.Engine.n;
        Alcotest.(check string) "explicit input"
          (Sb_util.Bitvec.to_string (Sb_util.Bitvec.of_int 7 (i * 11 mod 128)))
          (Sb_util.Bitvec.to_string r.Engine.x)
      end
      else Alcotest.(check int) "batch n" 5 r.Engine.n;
      Alcotest.(check string) "announced = input"
        (Sb_util.Bitvec.to_string r.Engine.x)
        (Sb_util.Bitvec.to_string r.Engine.w))
    reports

let test_passive_batches_consistent () =
  (* Under the passive adversary every session announces its input
     vector and all honest parties agree. *)
  let agg, reports = run_with_jobs mixed_specs 2 in
  Alcotest.(check int) "all consistent" agg.Engine.sessions agg.Engine.consistent;
  Array.iter
    (fun (r : Engine.session_report) ->
      Alcotest.(check bool) "consistent" true r.Engine.consistent;
      Alcotest.(check string) "announced = input"
        (Sb_util.Bitvec.to_string r.Engine.x)
        (Sb_util.Bitvec.to_string r.Engine.w))
    reports

let test_rejects_bad_specs () =
  let rng = Sb_util.Rng.create 1 in
  let bracha = substrate "concurrent-bracha" in
  Alcotest.check_raises "empty spec list"
    (Invalid_argument "Engine.run: empty spec list") (fun () ->
      ignore (Engine.run ~setup ~dist [] rng));
  Alcotest.check_raises "non-positive count"
    (Invalid_argument "Engine.run: spec 0 count must be positive") (fun () ->
      ignore (Engine.run ~setup ~dist [ Engine.spec bracha 0 ] rng));
  (* The dist-dimension mismatch is caught up front with a clear
     message instead of a downstream Bitvec failure. *)
  Alcotest.check_raises "batch dist dimension mismatch"
    (Invalid_argument
       "Engine.run: spec 0 (concurrent-bracha) draws inputs over 6 bits but the \
        session has n = 5 parties") (fun () ->
      ignore
        (Engine.run ~setup ~dist:(Sb_dist.Dist.uniform 6) [ Engine.spec bracha 4 ] rng));
  Alcotest.check_raises "per-spec dist dimension mismatch"
    (Invalid_argument
       "Engine.run: spec 1 (concurrent-bracha) draws inputs over 5 bits but the \
        session has n = 8 parties") (fun () ->
      ignore
        (Engine.run ~setup ~dist
           [
             Engine.spec bracha 4;
             Engine.spec ~parties:8 ~dist:(Sb_dist.Dist.uniform 5) bracha 2;
           ]
           rng));
  Alcotest.check_raises "parties below 2"
    (Invalid_argument "Engine.run: spec 0 parties must be >= 2 (got 1)") (fun () ->
      ignore (Engine.run ~setup ~dist [ Engine.spec ~parties:1 bracha 2 ] rng))

let () =
  Alcotest.run "sb_session"
    [
      ( "determinism",
        [
          Alcotest.test_case "reports and aggregate jobs-invariant" `Quick
            test_reports_jobs_invariant;
          Alcotest.test_case "heavy-tailed mix jobs-invariant" `Quick
            test_heavy_tail_jobs_invariant;
          Alcotest.test_case "static schedule jobs-invariant" `Quick
            test_static_jobs_invariant;
          Alcotest.test_case "steal pinned to static outcomes" `Quick
            test_steal_vs_static_differential;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "steal counters sane" `Quick test_steal_counters_sane;
          Alcotest.test_case "spec_at binary search" `Quick test_spec_at_binary_search;
          Alcotest.test_case "static shard layout" `Quick test_shard_layout_static;
          Alcotest.test_case "steal shard layout" `Quick test_shard_layout_steal;
        ] );
      ( "engine",
        [
          Alcotest.test_case "spec order and protocol bounds" `Quick
            test_spec_order_and_protocols;
          Alcotest.test_case "parties and inputs overrides" `Quick
            test_parties_and_inputs_override;
          Alcotest.test_case "passive batches consistent" `Quick
            test_passive_batches_consistent;
          Alcotest.test_case "rejects bad specs" `Quick test_rejects_bad_specs;
        ] );
    ]
