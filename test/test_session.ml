(* Tests for sb_session: the sharded whole-session scheduler.

   The load-bearing property is the determinism contract: per-session
   reports and every deterministic aggregate field are byte-identical
   at every pool size (the shard layout and the RNG streams are pure
   functions of the session count and the master seed). The pool only
   decides which domain drives which shard. *)

open Sb_session

let substrate name = List.assoc name (Core.Resilience.substrates ())

let setup = Core.Setup.{ default with n = 5; thresh = 2; seed = 33 }
let dist = Sb_dist.Dist.uniform 5

let mixed_specs =
  [
    { Engine.protocol = substrate "concurrent-bracha"; count = 17 };
    { Engine.protocol = substrate "concurrent-dolev-strong"; count = 11 };
    { Engine.protocol = Sb_protocols.Commit_open.protocol; count = 7 };
  ]

let run_with_jobs specs jobs =
  let pool = Sb_par.Pool.create ~domains:jobs () in
  Fun.protect
    ~finally:(fun () -> Sb_par.Pool.shutdown pool)
    (fun () -> Engine.run ~pool ~setup ~dist specs (Sb_util.Rng.create 33))

let report_lines reports =
  Array.to_list
    (Array.map (fun r -> Sb_obs.Json.to_string (Engine.session_report_to_json r)) reports)

(* The jobs-invariant slice of the aggregate: everything except the
   wall clock and the rates derived from it. *)
let deterministic_slice (a : Engine.aggregate) =
  ( (a.Engine.sessions, a.Engine.consistent, a.Engine.shards),
    Array.to_list a.Engine.per_shard,
    ((a.Engine.broadcasts, a.Engine.p2p), (a.Engine.broadcast_bytes, a.Engine.p2p_bytes)) )

let agg_t =
  Alcotest.(
    triple (triple int int int) (list int) (pair (pair int int) (pair int int)))

let test_reports_jobs_invariant () =
  let agg1, reports1 = run_with_jobs mixed_specs 1 in
  let lines1 = report_lines reports1 in
  List.iter
    (fun jobs ->
      let agg, reports = run_with_jobs mixed_specs jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "session reports at jobs=%d" jobs)
        lines1 (report_lines reports);
      Alcotest.check agg_t
        (Printf.sprintf "aggregate at jobs=%d" jobs)
        (deterministic_slice agg1) (deterministic_slice agg))
    [ 2; 4 ]

let test_spec_order_and_protocols () =
  let _, reports = run_with_jobs mixed_specs 2 in
  Alcotest.(check int) "total sessions" 35 (Array.length reports);
  (* Sessions are laid out in spec order, and the report index is the
     global session index. *)
  Array.iteri
    (fun i (r : Engine.session_report) ->
      Alcotest.(check int) "index = position" i r.Engine.index;
      let expected =
        if i < 17 then "concurrent-bracha"
        else if i < 28 then "concurrent-dolev-strong"
        else "commit-open"
      in
      Alcotest.(check string) "protocol by spec bounds" expected r.Engine.protocol)
    reports

let test_shard_layout_fixed () =
  (* At most Shard.width shards, contiguous, sizes differing by at
     most one — independent of any pool. *)
  let shards = Shard.layout ~total:100 ~rng:(Sb_util.Rng.create 1) in
  Alcotest.(check int) "shard count" Shard.width (Array.length shards);
  let covered = ref 0 in
  Array.iteri
    (fun k (s : Shard.t) ->
      Alcotest.(check int) "contiguous" !covered s.Shard.lo;
      Alcotest.(check int) "indexed" k s.Shard.index;
      Alcotest.(check bool) "balanced" true (s.Shard.len >= 3 && s.Shard.len <= 4);
      covered := !covered + s.Shard.len)
    shards;
  Alcotest.(check int) "covers batch" 100 !covered;
  (* Small batches degenerate to one session per shard. *)
  Alcotest.(check int) "small batch" 7
    (Array.length (Shard.layout ~total:7 ~rng:(Sb_util.Rng.create 1)))

let test_passive_batches_consistent () =
  (* Under the passive adversary every session announces its input
     vector and all honest parties agree. *)
  let agg, reports = run_with_jobs mixed_specs 2 in
  Alcotest.(check int) "all consistent" agg.Engine.sessions agg.Engine.consistent;
  Array.iter
    (fun (r : Engine.session_report) ->
      Alcotest.(check bool) "consistent" true r.Engine.consistent;
      Alcotest.(check string) "announced = input"
        (Sb_util.Bitvec.to_string r.Engine.x)
        (Sb_util.Bitvec.to_string r.Engine.w))
    reports

let test_rejects_bad_specs () =
  let rng = Sb_util.Rng.create 1 in
  Alcotest.check_raises "empty spec list"
    (Invalid_argument "Engine.run: empty spec list") (fun () ->
      ignore (Engine.run ~setup ~dist [] rng));
  Alcotest.check_raises "non-positive count"
    (Invalid_argument "Engine.run: spec count must be positive") (fun () ->
      ignore
        (Engine.run ~setup ~dist
           [ { Engine.protocol = substrate "concurrent-bracha"; count = 0 } ]
           rng))

let () =
  Alcotest.run "sb_session"
    [
      ( "determinism",
        [
          Alcotest.test_case "reports and aggregate jobs-invariant" `Quick
            test_reports_jobs_invariant;
        ] );
      ( "engine",
        [
          Alcotest.test_case "spec order and protocol bounds" `Quick
            test_spec_order_and_protocols;
          Alcotest.test_case "shard layout fixed" `Quick test_shard_layout_fixed;
          Alcotest.test_case "passive batches consistent" `Quick
            test_passive_batches_consistent;
          Alcotest.test_case "rejects bad specs" `Quick test_rejects_bad_specs;
        ] );
    ]
