(* Tests for sb_stats: Wilson intervals, interval arithmetic, verdicts,
   counting tables and the event-pair gap estimator. *)

open Sb_stats

let test_wilson_contains_point () =
  let i = Estimate.wilson ~successes:30 100 in
  Alcotest.(check bool) "point inside" true (i.Estimate.lo <= 0.3 && 0.3 <= i.Estimate.hi);
  Alcotest.(check (float 1e-9)) "point" 0.3 i.Estimate.point

let test_wilson_extremes () =
  let z = Estimate.wilson ~successes:0 50 in
  Alcotest.(check (float 1e-9)) "zero point" 0.0 z.Estimate.point;
  Alcotest.(check bool) "lo clamped" true (z.Estimate.lo >= 0.0);
  Alcotest.(check bool) "hi above zero" true (z.Estimate.hi > 0.0);
  let o = Estimate.wilson ~successes:50 50 in
  Alcotest.(check bool) "hi clamped" true (o.Estimate.hi <= 1.0);
  Alcotest.(check bool) "lo below one" true (o.Estimate.lo < 1.0)

let test_wilson_shrinks_with_n () =
  let width i = i.Estimate.hi -. i.Estimate.lo in
  let small = Estimate.wilson ~successes:50 100 in
  let large = Estimate.wilson ~successes:5000 10000 in
  Alcotest.(check bool) "narrower at larger n" true (width large < width small)

let test_wilson_z_monotone () =
  let width i = i.Estimate.hi -. i.Estimate.lo in
  let narrow = Estimate.wilson ~z:1.0 ~successes:40 100 in
  let wide = Estimate.wilson ~z:3.0 ~successes:40 100 in
  Alcotest.(check bool) "wider at larger z" true (width wide > width narrow)

let test_wilson_rejects_bad () =
  Alcotest.check_raises "no trials" (Invalid_argument "Estimate.wilson: no trials") (fun () ->
      ignore (Estimate.wilson ~successes:0 0));
  Alcotest.check_raises "bad successes" (Invalid_argument "Estimate.wilson: bad successes")
    (fun () -> ignore (Estimate.wilson ~successes:5 3))

let test_interval_abs_diff () =
  let a = Estimate.wilson ~successes:500 1000 in
  let b = Estimate.wilson ~successes:500 1000 in
  let d = Estimate.interval_abs_diff a b in
  Alcotest.(check (float 1e-9)) "same estimate point" 0.0 d.Estimate.point;
  Alcotest.(check (float 1e-9)) "straddles zero -> lo 0" 0.0 d.Estimate.lo;
  let c = Estimate.wilson ~successes:900 1000 in
  let d2 = Estimate.interval_abs_diff a c in
  Alcotest.(check bool) "separated -> lo positive" true (d2.Estimate.lo > 0.0);
  Alcotest.(check (float 1e-9)) "point is difference" 0.4 d2.Estimate.point

let test_correlation_gap_independent () =
  (* joint = left * right exactly: gap point 0, interval straddling 0. *)
  let joint = Estimate.wilson ~successes:2500 10000 in
  let half = Estimate.wilson ~successes:5000 10000 in
  let g = Estimate.correlation_gap ~joint ~left:half ~right:half in
  Alcotest.(check (float 1e-9)) "gap point" 0.0 g.Estimate.point;
  Alcotest.(check (float 1e-9)) "gap lo" 0.0 g.Estimate.lo;
  Alcotest.(check bool) "gap hi small" true (g.Estimate.hi < 0.05)

let test_correlation_gap_dependent () =
  (* A = B: joint = 1/2, product = 1/4, gap = 1/4. *)
  let joint = Estimate.wilson ~successes:5000 10000 in
  let half = Estimate.wilson ~successes:5000 10000 in
  let g = Estimate.correlation_gap ~joint ~left:half ~right:half in
  Alcotest.(check (float 1e-9)) "gap point" 0.25 g.Estimate.point;
  Alcotest.(check bool) "clearly nonzero" true (g.Estimate.lo > 0.2)

let test_verdict_thresholds () =
  let iv point lo hi = { Estimate.point; lo; hi; trials = 1000 } in
  Alcotest.(check bool) "pass" true (Verdict.of_gap (iv 0.01 0.0 0.03) = Verdict.Pass);
  Alcotest.(check bool) "fail" true (Verdict.of_gap (iv 0.25 0.22 0.28) = Verdict.Fail);
  Alcotest.(check bool) "inconclusive" true
    (Verdict.of_gap (iv 0.1 0.05 0.14) = Verdict.Inconclusive);
  Alcotest.(check bool) "custom thresholds" true
    (Verdict.of_gap ~pass_below:0.2 (iv 0.1 0.05 0.14) = Verdict.Pass)

let test_verdict_combinators () =
  let open Verdict in
  Alcotest.(check bool) "all pass" true (all_pass [ Pass; Pass ] = Pass);
  Alcotest.(check bool) "any fail dominates" true (all_pass [ Pass; Fail; Inconclusive ] = Fail);
  Alcotest.(check bool) "inconclusive" true (all_pass [ Pass; Inconclusive ] = Inconclusive);
  Alcotest.(check bool) "empty all pass" true (all_pass [] = Pass);
  Alcotest.(check string) "to_string" "PASS" (to_string Pass)

let test_counts_table () =
  let t = Counts.create 2 in
  let v = Sb_util.Bitvec.of_string "10" in
  Counts.add t v;
  Counts.add t v;
  Counts.add t (Sb_util.Bitvec.of_string "01");
  Alcotest.(check int) "total" 3 (Counts.total t);
  Alcotest.(check int) "count" 2 (Counts.count t v)

let test_empirical_tvd () =
  let a = Counts.create 1 and b = Counts.create 1 in
  let zero = Sb_util.Bitvec.of_string "0" and one = Sb_util.Bitvec.of_string "1" in
  for _ = 1 to 50 do
    Counts.add a zero;
    Counts.add b one
  done;
  Alcotest.(check (float 1e-9)) "disjoint" 1.0 (Counts.empirical_tvd a b);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Counts.empirical_tvd a a)

let test_event_pair_gap () =
  let e = Counts.event_pair () in
  (* Perfectly correlated events. *)
  for i = 1 to 1000 do
    let b = i mod 2 = 0 in
    Counts.record e ~a:b ~b
  done;
  let g = Counts.gap e in
  Alcotest.(check (float 1e-6)) "correlated gap" 0.25 g.Estimate.point;
  Alcotest.(check int) "bookkeeping" 500 (Counts.count_ab e);
  Alcotest.(check int) "trials" 1000 (Counts.trials e)

(* --- chi-square ------------------------------------------------------ *)

let test_chi2_survival_reference () =
  (* Reference quantiles: P(X^2_1 >= 3.841) = 0.05, P(X^2_5 >= 11.07) = 0.05,
     P(X^2_2 >= 9.21) = 0.01. *)
  Alcotest.(check (float 2e-3)) "k=1 5%" 0.05 (Chi2.survival 3.841 1);
  Alcotest.(check (float 2e-3)) "k=5 5%" 0.05 (Chi2.survival 11.07 5);
  Alcotest.(check (float 2e-3)) "k=2 1%" 0.01 (Chi2.survival 9.21 2);
  Alcotest.(check (float 1e-9)) "x=0" 1.0 (Chi2.survival 0.0 3)

let test_chi2_homogeneous_groups () =
  (* Identical proportions: tiny statistic, large p. *)
  let r = Chi2.homogeneity [ (50, 100); (51, 100); (49, 100); (50, 100) ] in
  Alcotest.(check int) "dof" 3 r.Chi2.dof;
  Alcotest.(check bool) "small statistic" true (r.Chi2.statistic < 1.0);
  Alcotest.(check bool) "large p" true (r.Chi2.p_value > 0.5)

let test_chi2_heterogeneous_groups () =
  (* Wildly different proportions: enormous statistic, p ~ 0. *)
  let r = Chi2.homogeneity [ (90, 100); (10, 100) ] in
  Alcotest.(check bool) "large statistic" true (r.Chi2.statistic > 100.0);
  Alcotest.(check bool) "p ~ 0" true (r.Chi2.p_value < 1e-10)

let test_chi2_rejects_bad_input () =
  Alcotest.check_raises "one group" (Invalid_argument "Chi2.homogeneity: need at least 2 groups")
    (fun () -> ignore (Chi2.homogeneity [ (1, 2) ]));
  Alcotest.check_raises "bad group" (Invalid_argument "Chi2.homogeneity: bad group") (fun () ->
      ignore (Chi2.homogeneity [ (3, 2); (1, 2) ]))

let qcheck_chi2_survival_monotone =
  QCheck.Test.make ~name:"chi2 survival decreasing in x" ~count:100
    QCheck.(pair (float_range 0.1 20.0) (int_range 1 8))
    (fun (x, k) -> Chi2.survival (x +. 1.0) k <= Chi2.survival x k +. 1e-9)

let qcheck_wilson_monotone_in_successes =
  QCheck.Test.make ~name:"wilson point monotone in successes" ~count:100
    QCheck.(pair (int_range 0 99) (int_range 100 1000))
    (fun (s, n) ->
      let a = Estimate.wilson ~successes:s n in
      let b = Estimate.wilson ~successes:(s + 1) n in
      b.Estimate.point > a.Estimate.point)

let qcheck_wilson_interval_ordering =
  QCheck.Test.make ~name:"wilson lo <= point <= hi" ~count:200
    QCheck.(pair (int_range 0 100) (int_range 1 1000))
    (fun (s, n) ->
      let s = min s n in
      let i = Estimate.wilson ~successes:s n in
      i.Estimate.lo <= i.Estimate.point +. 1e-9 && i.Estimate.point <= i.Estimate.hi +. 1e-9)

let qcheck_gap_interval_sound =
  QCheck.Test.make ~name:"abs diff interval contains true diff" ~count:200
    QCheck.(pair (pair (int_range 0 50) (int_range 0 50)) (int_range 60 200))
    (fun ((sa, sb), n) ->
      let a = Estimate.wilson ~successes:sa n and b = Estimate.wilson ~successes:sb n in
      let d = Estimate.interval_abs_diff a b in
      let truth = Float.abs (a.Estimate.point -. b.Estimate.point) in
      d.Estimate.lo <= truth +. 1e-9 && truth <= d.Estimate.hi +. 1e-9)

let () =
  Alcotest.run "sb_stats"
    [
      ( "wilson",
        [
          Alcotest.test_case "contains point" `Quick test_wilson_contains_point;
          Alcotest.test_case "extremes clamped" `Quick test_wilson_extremes;
          Alcotest.test_case "shrinks with n" `Quick test_wilson_shrinks_with_n;
          Alcotest.test_case "z monotone" `Quick test_wilson_z_monotone;
          Alcotest.test_case "rejects bad input" `Quick test_wilson_rejects_bad;
          QCheck_alcotest.to_alcotest qcheck_wilson_monotone_in_successes;
          QCheck_alcotest.to_alcotest qcheck_wilson_interval_ordering;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "abs diff" `Quick test_interval_abs_diff;
          Alcotest.test_case "correlation gap independent" `Quick test_correlation_gap_independent;
          Alcotest.test_case "correlation gap dependent" `Quick test_correlation_gap_dependent;
          QCheck_alcotest.to_alcotest qcheck_gap_interval_sound;
        ] );
      ( "verdict",
        [
          Alcotest.test_case "thresholds" `Quick test_verdict_thresholds;
          Alcotest.test_case "combinators" `Quick test_verdict_combinators;
        ] );
      ( "counts",
        [
          Alcotest.test_case "table" `Quick test_counts_table;
          Alcotest.test_case "empirical tvd" `Quick test_empirical_tvd;
          Alcotest.test_case "event pair gap" `Quick test_event_pair_gap;
        ] );
      ( "chi2",
        [
          Alcotest.test_case "survival reference values" `Quick test_chi2_survival_reference;
          Alcotest.test_case "homogeneous groups" `Quick test_chi2_homogeneous_groups;
          Alcotest.test_case "heterogeneous groups" `Quick test_chi2_heterogeneous_groups;
          Alcotest.test_case "bad input" `Quick test_chi2_rejects_bad_input;
          QCheck_alcotest.to_alcotest qcheck_chi2_survival_monotone;
        ] );
    ]
