(* Tests for sb_util: Rng determinism and uniformity, Bitvec algebra,
   Subset enumeration, Tabular rendering. *)

open Sb_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true (Rng.int64 child1 <> Rng.int64 child2)

let test_rng_split_n_disjoint_prefixes () =
  (* Overlapping child streams would show up as repeated 64-bit values
     across prefixes; distinct healthy streams collide with probability
     ~2^-57 here. *)
  let parent = Rng.create 13 in
  let children = Rng.split_n parent 8 in
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun c ->
      for _ = 1 to 16 do
        let v = Rng.int64 c in
        Alcotest.(check bool) "value not seen in another child's prefix" false
          (Hashtbl.mem seen v);
        Hashtbl.replace seen v ()
      done)
    children;
  Alcotest.(check int) "all prefix values distinct" (8 * 16) (Hashtbl.length seen)

let test_rng_split_n_matches_repeated_split () =
  (* split_n is defined as n repeated splits: child k of one call must
     equal the (k+1)-th plain split from an equal-state master, so
     consumers may batch or stream splits interchangeably. *)
  let a = Rng.create 21 in
  let b = Rng.copy a in
  let batched = Rng.split_n a 5 in
  let streamed = Array.init 5 (fun _ -> Rng.split b) in
  for k = 0 to 4 do
    for _ = 1 to 8 do
      Alcotest.(check int64)
        (Printf.sprintf "child %d streams agree" k)
        (Rng.int64 batched.(k)) (Rng.int64 streamed.(k))
    done
  done;
  Alcotest.(check int) "split_n 0 is empty" 0 (Array.length (Rng.split_n (Rng.create 1) 0))

let test_rng_copy_replays () =
  let a = Rng.create 9 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_uniform () =
  (* Chi-square-ish sanity: each of 8 buckets gets a fair share. *)
  let rng = Rng.create 5 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / 8 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (c - expected) < expected / 20))
    counts

let test_rng_bool_balanced () =
  let rng = Rng.create 11 in
  let ones = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr ones
  done;
  Alcotest.(check bool) "roughly half ones" true (abs (!ones - 5000) < 300)

let test_rng_perm_is_permutation () =
  let rng = Rng.create 13 in
  let p = Rng.perm rng 20 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutes 0..19" (Array.init 20 Fun.id) sorted

let test_rng_bytes_length () =
  let rng = Rng.create 17 in
  Alcotest.(check int) "length" 33 (String.length (Rng.bytes rng 33))

let test_bitvec_roundtrip () =
  for v = 0 to 31 do
    let bv = Bitvec.of_int 5 v in
    Alcotest.(check int) "of_int/to_int" v (Bitvec.to_int bv);
    Alcotest.(check string) "of_string/to_string" (Bitvec.to_string bv)
      (Bitvec.to_string (Bitvec.of_string (Bitvec.to_string bv)))
  done

let test_bitvec_parity () =
  let v = Bitvec.of_string "1101" in
  Alcotest.(check bool) "parity of 1101" true (Bitvec.parity v);
  Alcotest.(check bool) "parity except 0" false (Bitvec.parity_except v 0);
  Alcotest.(check bool) "parity except 2" true (Bitvec.parity_except v 2)

let test_bitvec_proj_combine () =
  let v = Bitvec.of_string "10110" in
  let s = [ 1; 3 ] in
  Alcotest.(check (array bool)) "projection" [| false; true |] (Bitvec.proj v s);
  let w = Bitvec.combine v s [| true; false |] in
  Alcotest.(check string) "combine" "11100" (Bitvec.to_string w);
  Alcotest.(check string) "original untouched" "10110" (Bitvec.to_string v)

let test_bitvec_set_functional () =
  let v = Bitvec.zero 3 in
  let w = Bitvec.set v 1 true in
  Alcotest.(check string) "updated" "010" (Bitvec.to_string w);
  Alcotest.(check string) "original" "000" (Bitvec.to_string v)

let test_bitvec_all () =
  let l = Bitvec.all 3 in
  Alcotest.(check int) "count" 8 (List.length l);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq Bitvec.compare l))

let test_bitvec_xor () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Alcotest.(check string) "xor" "0110" (Bitvec.to_string (Bitvec.xor a b))

let test_subset_complement () =
  Alcotest.(check (list int)) "complement" [ 0; 2; 4 ] (Subset.complement 5 [ 1; 3 ])

let test_subset_all_of_size () =
  Alcotest.(check int) "C(5,2)" 10 (List.length (Subset.all_of_size 5 2));
  Alcotest.(check int) "C(6,3)" 20 (List.length (Subset.all_of_size 6 3));
  List.iter
    (fun s -> Alcotest.(check bool) "valid" true (Subset.is_valid 5 s))
    (Subset.all_of_size 5 2)

let test_subset_nonempty_proper () =
  Alcotest.(check int) "2^4 - 2" 14 (List.length (Subset.all_nonempty_proper 4))

(* The checker's counterexample enumeration order is part of its
   determinism contract: lexicographic, smallest leading index first. *)
let test_subset_enumeration_order () =
  Alcotest.(check (list (list int)))
    "C(4,2) lexicographic"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    (Subset.all_of_size 4 2);
  Alcotest.(check (list (list int)))
    "all_up_to sizes ascending, empty first"
    [ []; [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]
    (Subset.all_up_to 3 2)

let test_subset_edge_cases () =
  Alcotest.(check (list (list int))) "k = 0 is the empty set" [ [] ] (Subset.all_of_size 5 0);
  Alcotest.(check (list (list int))) "k = n is the full set" [ [ 0; 1; 2 ] ]
    (Subset.all_of_size 3 3);
  Alcotest.(check (list (list int))) "k > n is empty" [] (Subset.all_of_size 3 4);
  Alcotest.(check (list (list int))) "k < 0 is empty" [] (Subset.all_of_size 3 (-1));
  Alcotest.(check (list (list int))) "n = 0, k = 0" [ [] ] (Subset.all_of_size 0 0);
  (* A corruption budget beyond n-1 (the checker asks for sizes up to
     t, which may exceed what n supports) just tops out at n. *)
  Alcotest.(check int) "all_up_to caps at 2^n" 8 (List.length (Subset.all_up_to 3 7));
  Alcotest.(check (list (list int))) "all_up_to 2 0" [ [] ] (Subset.all_up_to 2 0)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_tabular_contents () =
  let t = Tabular.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Tabular.add_row t [ "x"; "y" ];
  Tabular.add_row t [ "long-cell" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "title" true (contains s "== demo ==");
  Alcotest.(check bool) "row cell" true (contains s "long-cell");
  Alcotest.(check bool) "padded short row" true (contains s "x")

let test_tabular_csv () =
  let t = Tabular.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Tabular.add_row t [ "plain"; "with,comma" ];
  Tabular.add_rule t;
  Tabular.add_row t [ "has\"quote"; "" ];
  Alcotest.(check string) "csv"
    "a,b\nplain,\"with,comma\"\n\"has\"\"quote\",\n" (Tabular.to_csv t);
  Alcotest.(check string) "title accessor" "demo" (Tabular.title t)

let qcheck_bitvec_int_roundtrip =
  QCheck.Test.make ~name:"bitvec of_int/to_int roundtrip" ~count:500
    QCheck.(pair (int_bound 15) (int_bound 100000))
    (fun (extra, v) ->
      let n = 17 + extra in
      let v = v land ((1 lsl n) - 1) in
      Bitvec.to_int (Bitvec.of_int n v) = v)

let qcheck_bitvec_xor_involution =
  QCheck.Test.make ~name:"xor involution" ~count:500
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let va = Sb_util.Bitvec.of_int 8 a and vb = Sb_util.Bitvec.of_int 8 b in
      Bitvec.equal va (Bitvec.xor (Bitvec.xor va vb) vb))

let qcheck_subset_count_is_binomial =
  QCheck.Test.make ~name:"|all_of_size n k| = C(n,k)" ~count:200
    QCheck.(pair (int_bound 9) (int_bound 11))
    (fun (n, k) ->
      let subsets = Subset.all_of_size n k in
      List.length subsets = binomial n k
      && List.for_all (Subset.is_valid (max n 1)) subsets
      && List.for_all (fun s -> List.length s = k) subsets)

let qcheck_subset_complement_partition =
  QCheck.Test.make ~name:"subset complement partitions [n]" ~count:200
    QCheck.(list_of_size Gen.(0 -- 8) (int_bound 9))
    (fun l ->
      let s = Subset.of_list l in
      let c = Subset.complement 10 s in
      List.length s + List.length c = 10
      && List.for_all (fun i -> not (List.mem i c)) s)

let () =
  Alcotest.run "sb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split_n disjoint prefixes" `Quick test_rng_split_n_disjoint_prefixes;
          Alcotest.test_case "split_n = repeated split" `Quick test_rng_split_n_matches_repeated_split;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_rng_int_uniform;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "perm is permutation" `Quick test_rng_perm_is_permutation;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bitvec_roundtrip;
          Alcotest.test_case "parity" `Quick test_bitvec_parity;
          Alcotest.test_case "proj/combine" `Quick test_bitvec_proj_combine;
          Alcotest.test_case "functional set" `Quick test_bitvec_set_functional;
          Alcotest.test_case "all vectors" `Quick test_bitvec_all;
          Alcotest.test_case "xor" `Quick test_bitvec_xor;
          QCheck_alcotest.to_alcotest qcheck_bitvec_int_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_bitvec_xor_involution;
        ] );
      ( "subset",
        [
          Alcotest.test_case "complement" `Quick test_subset_complement;
          Alcotest.test_case "all_of_size" `Quick test_subset_all_of_size;
          Alcotest.test_case "nonempty proper" `Quick test_subset_nonempty_proper;
          Alcotest.test_case "enumeration order pinned" `Quick test_subset_enumeration_order;
          Alcotest.test_case "edge cases" `Quick test_subset_edge_cases;
          QCheck_alcotest.to_alcotest qcheck_subset_count_is_binomial;
          QCheck_alcotest.to_alcotest qcheck_subset_complement_partition;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "contents" `Quick test_tabular_contents;
          Alcotest.test_case "csv export" `Quick test_tabular_csv;
        ] );
    ]
