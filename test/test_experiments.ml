(* Integration tests: every experiment driver must reproduce the
   paper-predicted verdict pattern, at a reduced (but still decisive)
   sample budget. These are the executable counterparts of the paper's
   claims; the benchmark harness prints the same tables at full
   budget. *)

let setup = Core.Setup.{ default with samples = 2500 }

let check_outcome name f () =
  let (o : Core.Experiments.outcome) = f () in
  if not o.Core.Experiments.ok then
    Alcotest.failf "%s mismatched the paper's prediction:\n%s" name
      (Sb_util.Tabular.render o.Core.Experiments.table);
  Alcotest.(check bool) (name ^ " rows checked") true (o.Core.Experiments.rows_checked > 0)

let test_headline_at_n7 () =
  (* Lemma 6.4's separation is not an artifact of n = 5: at n = 7 with
     t = 3, Pi_G + A* still passes G** and fails CR with the same 1/4
     parity gap. (G** rather than the bucketed G tester: at 5 honest
     parties the 32 buckets would need a very large budget.) *)
  let setup7 = Core.Setup.{ default with n = 7; thresh = 3; samples = 3000 } in
  let astar = Core.Adversaries.a_star ~corrupt:(5, 6) in
  let p = Sb_protocols.Pi_g.protocol in
  let cr = Core.Cr_test.run setup7 ~protocol:p ~adversary:astar ~dist:(Sb_dist.Dist.uniform 7) () in
  Alcotest.(check string) "CR fails" "FAIL" (Sb_stats.Verdict.to_string cr.Core.Cr_test.verdict);
  (match cr.Core.Cr_test.worst with
  | Some w ->
      Alcotest.(check bool) "gap ~ 1/4" true
        (Float.abs (w.Core.Cr_test.gap.Sb_stats.Estimate.point -. 0.25) < 0.04)
  | None -> Alcotest.fail "expected CR findings");
  let gss = Core.Gss_test.run setup7 ~protocol:p ~adversary:astar () in
  Alcotest.(check string) "G** passes" "PASS"
    (Sb_stats.Verdict.to_string gss.Core.Gss_test.verdict);
  (* And the exact computation agrees at n = 7. *)
  let w_dist =
    Core.Exact.push_coin (Sb_dist.Dist.uniform 7) (Core.Exact.pi_g_astar_map ~l1:5 ~l2:6)
  in
  Alcotest.(check (float 1e-12)) "exact CR gap 1/4" 0.25
    (Core.Exact.cr_gap_battery w_dist ~honest:[ 0; 1; 2; 3; 4 ]);
  Alcotest.(check (float 1e-12)) "exact G gap 0" 0.0
    (Core.Exact.g_gap w_dist ~corrupted:[ 5; 6 ])

let test_seed_stability () =
  (* Verdicts are statistical; they must not flip across seeds. The
     headline CR failure (gap 1/4) and a feasibility pass, at 5
     different seeds each. *)
  let uniform = Sb_dist.Dist.uniform 5 in
  List.iter
    (fun seed ->
      let s = Core.Setup.{ default with samples = 1500; seed } in
      let astar = Core.Adversaries.a_star ~corrupt:(3, 4) in
      let cr =
        Core.Cr_test.run s ~protocol:Sb_protocols.Pi_g.protocol ~adversary:astar ~dist:uniform ()
      in
      Alcotest.(check string)
        (Printf.sprintf "pi-g CR fails (seed %d)" seed)
        "FAIL"
        (Sb_stats.Verdict.to_string cr.Core.Cr_test.verdict);
      let p = Sb_protocols.Gennaro.protocol in
      let semi = Core.Adversaries.semi_honest p ~corrupt:[ 3; 4 ] in
      let cr' = Core.Cr_test.run s ~protocol:p ~adversary:semi ~dist:uniform () in
      Alcotest.(check bool)
        (Printf.sprintf "gennaro CR never fails (seed %d)" seed)
        true
        (cr'.Core.Cr_test.verdict <> Sb_stats.Verdict.Fail))
    [ 2; 3; 5; 8; 13 ]

let test_e8_monotone_details () =
  (* Beyond the built-in shape checks: message complexity of the p2p
     instantiation grows superlinearly while the broadcast-channel
     protocols stay linear in broadcasts. *)
  let o = Core.Experiments.e8_complexity ~ns:[ 4; 16 ] () in
  Alcotest.(check bool) "shape checks hold" true o.Core.Experiments.ok

let () =
  Alcotest.run "experiments"
    [
      ( "paper-claims",
        [
          Alcotest.test_case "E1 distribution classes" `Quick
            (check_outcome "E1" (fun () -> Core.Experiments.e1_distribution_classes ~n:5 ()));
          Alcotest.test_case "E2 CR unachievable" `Slow
            (check_outcome "E2" (fun () -> Core.Experiments.e2_cr_unachievable setup));
          Alcotest.test_case "E3 G unachievable" `Slow
            (check_outcome "E3" (fun () -> Core.Experiments.e3_g_unachievable setup));
          Alcotest.test_case "E4 feasibility" `Slow
            (check_outcome "E4" (fun () -> Core.Experiments.e4_feasibility setup));
          Alcotest.test_case "E5 Pi_G separation" `Slow
            (check_outcome "E5" (fun () -> Core.Experiments.e5_pi_g_separation setup));
          Alcotest.test_case "E6 singleton trivial for CR" `Slow
            (check_outcome "E6" (fun () -> Core.Experiments.e6_singleton_trivial setup));
          Alcotest.test_case "E7 implications" `Slow
            (check_outcome "E7" (fun () -> Core.Experiments.e7_implications setup));
          Alcotest.test_case "E8 complexity" `Quick
            (check_outcome "E8" (fun () -> Core.Experiments.e8_complexity ()));
          Alcotest.test_case "E10 G** agreement" `Slow
            (check_outcome "E10" (fun () -> Core.Experiments.e10_gss_agreement setup));
          Alcotest.test_case "E11 echo attack" `Slow
            (check_outcome "E11" (fun () -> Core.Experiments.e11_echo_attack setup));
          Alcotest.test_case "E12 reveal ablation" `Slow
            (check_outcome "E12" (fun () -> Core.Experiments.e12_reveal_ablation setup));
          Alcotest.test_case "E13 sandbox simulation" `Slow
            (check_outcome "E13" (fun () -> Core.Experiments.e13_simulation setup));
          Alcotest.test_case "E14 figure 1" `Slow
            (check_outcome "E14" (fun () -> Core.Experiments.e14_figure1 setup));
          Alcotest.test_case "E15 fault resilience" `Slow
            (check_outcome "E15" (fun () -> Core.Experiments.e15_fault_resilience setup));
          Alcotest.test_case "E16 wire complexity" `Quick
            (check_outcome "E16" (fun () ->
                 Core.Experiments.e16_wire_complexity ~ns:[ 4; 16 ] ()));
        ] );
      ("e8-details", [ Alcotest.test_case "message growth" `Quick test_e8_monotone_details ]);
      ( "robustness",
        [
          Alcotest.test_case "headline separation at n=7" `Slow test_headline_at_n7;
          Alcotest.test_case "verdict stability across seeds" `Slow test_seed_stability;
        ] );
    ]
