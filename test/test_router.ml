(* The route-indexed delivery engine vs the seed's flat-list filter
   semantics.

   The Router's contract is that every read is byte-identical to what
   the original engine computed by re-filtering the whole round queue
   per party. The unit tests pin that on synthetic queues; the
   differential tests pin it end-to-end: they run the five Byzantine
   broadcast substrates through the real network — with and without a
   fault plan exercising crash silencing, Bernoulli omission, and
   delayed re-injection — while a spy interceptor captures each round's
   flattened post-fault queue, and then check that every party's inbox
   of round r+1 equals [List.filter (delivered_to id)] of that queue.
   A jobs-invariance check closes the loop at the sampling layer:
   Resilience cells from 1-domain and 2-domain pools must be equal. *)

open Sb_sim

let env_equal (a : Envelope.t) (b : Envelope.t) =
  a.Envelope.src = b.Envelope.src && a.Envelope.dst = b.Envelope.dst
  && Msg.equal a.Envelope.body b.Envelope.body

let env_list_equal xs ys =
  List.length xs = List.length ys && List.for_all2 env_equal xs ys

let pp_envs fmt envs =
  Format.fprintf fmt "[%a]" (Format.pp_print_list ~pp_sep:Format.pp_print_space Envelope.pp)
    envs

let envs_testable = Alcotest.testable pp_envs env_list_equal

(* --- Router unit tests -------------------------------------------- *)

(* A mixed queue touching every addressing mode the router accepts:
   direct, broadcast, self-sends, functionality replies. *)
let mixed_queue n =
  List.concat
    [
      [ Envelope.make ~src:0 ~dst:1 (Msg.Str "a") ];
      [ Envelope.broadcast ~src:1 (Msg.Int 1) ];
      Envelope.to_all ~n ~src:2 (Msg.Str "fan");
      [ Envelope.make ~src:3 ~dst:3 (Msg.Bit true) ];
      [ Envelope.from_func ~dst:0 (Msg.Str "reply") ];
      [ Envelope.broadcast ~src:0 (Msg.Int 2) ];
      Envelope.to_others ~n ~src:1 (Msg.Str "rest");
    ]

let test_router_inbox_matches_filter () =
  let n = 4 in
  let queue = mixed_queue n in
  let r = Router.create n in
  List.iter (Router.route r) queue;
  for i = 0 to n - 1 do
    Alcotest.check envs_testable
      (Printf.sprintf "inbox %d" i)
      (List.filter (fun e -> Envelope.delivered_to e i) queue)
      (Router.inbox r i)
  done;
  Alcotest.check envs_testable "to_list is the queue" queue (Router.to_list r);
  Alcotest.(check int) "length" (List.length queue) (Router.length r)

let test_router_delivered_to_any () =
  let n = 4 in
  let queue = mixed_queue n in
  let r = Router.create n in
  List.iter (Router.route r) queue;
  let expect ids =
    List.filter (fun e -> List.exists (fun i -> Envelope.delivered_to e i) ids) queue
  in
  List.iter
    (fun ids ->
      Alcotest.check envs_testable
        ("ids " ^ String.concat "," (List.map string_of_int ids))
        (expect ids)
        (Router.delivered_to_any r ids))
    [ []; [ 2 ]; [ 0; 3 ]; [ 3; 1 ]; [ 0; 1; 2; 3 ] ]

let test_router_rejects_func_bound () =
  let r = Router.create 3 in
  Alcotest.check_raises "func-bound"
    (Invalid_argument "Router.route: functionality-bound envelope") (fun () ->
      Router.route r (Envelope.to_func ~src:0 Msg.Unit))

let test_router_clear_and_reuse () =
  let n = 3 in
  let r = Router.create n in
  List.iter (Router.route r) (Envelope.to_all ~n ~src:0 Msg.Unit);
  Router.clear r;
  Alcotest.(check int) "empty after clear" 0 (Router.length r);
  let queue = [ Envelope.broadcast ~src:2 (Msg.Str "x"); Envelope.make ~src:1 ~dst:0 Msg.Unit ] in
  Router.route_all r queue;
  Alcotest.check envs_testable "reused inbox 0"
    (List.filter (fun e -> Envelope.delivered_to e 0) queue)
    (Router.inbox r 0)

let test_router_total () =
  (* [total] counts deliveries — broadcasts once per party — so it must
     equal the sum of all inbox lengths, without materializing them. *)
  let n = 4 in
  let queue = mixed_queue n in
  let r = Router.create n in
  List.iter (Router.route r) queue;
  let by_inbox = ref 0 in
  for i = 0 to n - 1 do
    by_inbox := !by_inbox + List.length (Router.inbox r i)
  done;
  Alcotest.(check int) "total" !by_inbox (Router.total r);
  Router.clear r;
  Alcotest.(check int) "total after clear" 0 (Router.total r)

(* --- Differential: engine vs flat-filter semantics ---------------- *)

(* Wrap a protocol so every honest party records the inbox the engine
   handed it, keyed by (round, id). *)
let recording tbl (p : Protocol.t) =
  {
    p with
    Protocol.make_party =
      (fun ctx ~rng ~id ~input ->
        let inner = p.Protocol.make_party ctx ~rng ~id ~input in
        {
          Party.step =
            (fun ~round ~inbox ->
              Hashtbl.replace tbl (round, id) inbox;
              inner.Party.step ~round ~inbox);
          output = inner.Party.output;
        });
  }

(* A fault hook that compiles [plan] and records each round's
   post-fault flattened queue — the ground truth the next round's
   inboxes must be a filter of. *)
let spy_faults ~n ~plan qtbl ~rng =
  let inner = Sb_fault.Inject.compile ~n plan ~rng in
  fun ~round envs ->
    let envs = inner ~round envs in
    Hashtbl.replace qtbl round envs;
    envs

let check_differential ~name ~plan (protocol : Protocol.t) =
  let n = 5 and thresh = 1 in
  let rng = Sb_util.Rng.create 4242 in
  let ctx = Ctx.make ~rng ~n ~thresh ~k:8 () in
  let inputs = Array.init n (fun i -> Msg.Bit (i mod 2 = 0)) in
  let inboxes = Hashtbl.create 64 in
  let queues = Hashtbl.create 16 in
  let r =
    Network.run ctx ~rng
      ~protocol:(recording inboxes protocol)
      ~adversary:(Adversary.passive protocol) ~inputs
      ~faults:(spy_faults ~n ~plan queues)
      ()
  in
  let total_rounds = r.Network.rounds_used in
  for round = 0 to total_rounds do
    let expected id =
      if round = 0 then []
      else
        match Hashtbl.find_opt queues (round - 1) with
        | None -> []
        | Some q ->
            List.filter
              (fun e -> (not (Envelope.is_func_bound e)) && Envelope.delivered_to e id)
              q
    in
    for id = 0 to n - 1 do
      match Hashtbl.find_opt inboxes (round, id) with
      | None -> Alcotest.failf "%s: party %d never stepped in round %d" name id round
      | Some got ->
          Alcotest.check envs_testable
            (Printf.sprintf "%s: inbox of party %d, round %d" name id round)
            (expected id) got
    done
  done

(* Crash one party mid-run, drop a fifth of party 1's outgoing links,
   and hold everything party 0 sends back one round: together these
   exercise silencing, omission, and the held/release reordering the
   router must reproduce verbatim. *)
let faulty_plan =
  Sb_fault.Plan.crash ~party:4 ~round:1
  :: Sb_fault.Plan.drop ~src:1 0.2
  :: [ Sb_fault.Plan.delay ~src:0 1 ]

let differential_cases =
  List.concat_map
    (fun (name, protocol) ->
      [
        Alcotest.test_case (name ^ " (fault-free)") `Quick (fun () ->
            check_differential ~name ~plan:[] protocol);
        Alcotest.test_case (name ^ " (crash+drop+delay)") `Quick (fun () ->
            check_differential ~name ~plan:faulty_plan protocol);
      ])
    (Core.Resilience.substrates ())

(* --- Jobs invariance at the sampling layer ------------------------ *)

let test_jobs_invariance () =
  let setup =
    Core.Setup.with_samples 200 (Core.Setup.with_n ~n:5 ~thresh:1 Core.Setup.default)
  in
  let _, protocol = List.hd (Core.Resilience.substrates ()) in
  let plan = Core.Resilience.crash_plan ~n:5 ~count:1 in
  let cell domains =
    let pool = Sb_par.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Sb_par.Pool.shutdown pool)
      (fun () ->
        Core.Resilience.measure ~pool setup ~protocol ~adversary:Core.Adversaries.passive
          ~dist:(Sb_dist.Dist.uniform 5) ~plan (Sb_util.Rng.create 42))
  in
  let c1 = cell 1 in
  List.iter
    (fun domains ->
      let c = cell domains in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "agreement identical at %d domains" domains)
        c1.Core.Resilience.agree.Sb_stats.Estimate.point
        c.Core.Resilience.agree.Sb_stats.Estimate.point;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "validity identical at %d domains" domains)
        c1.Core.Resilience.valid.Sb_stats.Estimate.point
        c.Core.Resilience.valid.Sb_stats.Estimate.point)
    [ 2; 4 ]

let () =
  Alcotest.run "sb_router"
    [
      ( "router",
        [
          Alcotest.test_case "inbox = filtered queue" `Quick test_router_inbox_matches_filter;
          Alcotest.test_case "delivered_to_any" `Quick test_router_delivered_to_any;
          Alcotest.test_case "rejects func-bound" `Quick test_router_rejects_func_bound;
          Alcotest.test_case "clear and reuse" `Quick test_router_clear_and_reuse;
          Alcotest.test_case "total = sum of inboxes" `Quick test_router_total;
        ] );
      ("differential", differential_cases);
      ("parallel", [ Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance ]);
    ]
