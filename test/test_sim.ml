(* Tests for sb_sim: message algebra, envelopes, and — most importantly
   — the network's rushing/visibility/authentication semantics. *)

open Sb_sim

let rng () = Sb_util.Rng.create 777

let make_ctx ?(n = 4) ?(thresh = 1) ?(k = 8) () =
  Ctx.make ~rng:(rng ()) ~n ~thresh ~k ()

(* --- Msg ---------------------------------------------------------- *)

let test_msg_roundtrips () =
  let v = Sb_util.Bitvec.of_string "1011" in
  Alcotest.(check bool) "bitvec roundtrip" true
    (Sb_util.Bitvec.equal v (Msg.to_bitvec_exn (Msg.of_bitvec v)));
  Alcotest.(check bool) "bit" true (Msg.to_bit_exn (Msg.Bit true));
  Alcotest.(check int) "int" 42 (Msg.to_int_exn (Msg.Int 42));
  Alcotest.(check string) "str" "x" (Msg.to_str_exn (Msg.Str "x"))

let test_msg_untag () =
  let m = Msg.Tag ("commit", Msg.Int 3) in
  Alcotest.(check int) "untag" 3 (Msg.to_int_exn (Msg.untag_exn "commit" m));
  Alcotest.check_raises "wrong tag"
    (Invalid_argument "Msg.untag_exn open: commit(3)") (fun () ->
      ignore (Msg.untag_exn "open" m))

let test_msg_serialize_injective_samples () =
  (* A few adversarially close pairs. *)
  let pairs =
    [
      (Msg.Str "ab", Msg.List [ Msg.Str "a"; Msg.Str "b" ]);
      (Msg.Int 12, Msg.Str "12");
      (Msg.List [ Msg.Bit true ], Msg.Bit true);
      (Msg.Tag ("a", Msg.Str "b"), Msg.Str "ab");
      (Msg.List [ Msg.Str "a"; Msg.Str "" ], Msg.List [ Msg.Str ""; Msg.Str "a" ]);
    ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Msg.to_string a ^ " vs " ^ Msg.to_string b)
        false
        (String.equal (Msg.serialize a) (Msg.serialize b)))
    pairs

let qcheck_msg_equal_refl =
  let gen_msg =
    QCheck.Gen.(
      sized @@ fix (fun self size ->
          if size <= 1 then
            oneof
              [
                return Msg.Unit;
                map (fun b -> Msg.Bit b) bool;
                map (fun i -> Msg.Int i) small_int;
                map (fun s -> Msg.Str s) small_string;
              ]
          else
            oneof
              [
                map (fun l -> Msg.List l) (list_size (0 -- 3) (self (size / 2)));
                map2 (fun t m -> Msg.Tag (t, m)) small_string (self (size / 2));
              ]))
  in
  QCheck.Test.make ~name:"msg serialize consistent with equal" ~count:300
    (QCheck.make gen_msg) (fun m ->
      Msg.equal m m && String.equal (Msg.serialize m) (Msg.serialize m))

(* A generator that reaches every constructor, including the crypto
   ones (Fe in [0, p); Ge as powers of the generator, so membership
   holds by construction). *)
let gen_msg_full =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Msg.Unit;
              map (fun b -> Msg.Bit b) bool;
              map (fun i -> Msg.Int i) small_signed_int;
              map (fun s -> Msg.Str s) small_string;
              map (fun i -> Msg.Fe (Sb_crypto.Field.of_int i)) (0 -- (Sb_crypto.Field.p - 1));
              map (fun k -> Msg.Ge (Sb_crypto.Modgroup.pow_int Sb_crypto.Modgroup.g k))
                (0 -- 200);
            ]
        else
          oneof
            [
              map (fun l -> Msg.List l) (list_size (0 -- 3) (self (size / 2)));
              map2 (fun t m -> Msg.Tag (t, m)) small_string (self (size / 2));
            ]))

let test_msg_compare_pinned_order () =
  (* The constructor rank is part of the interface: mixed-constructor
     comparisons order by Unit < Bit < Int < Fe < Ge < Str < List < Tag. *)
  let ladder =
    [
      Msg.Unit;
      Msg.Bit false;
      Msg.Bit true;
      Msg.Int (-3);
      Msg.Int 7;
      Msg.Fe (Sb_crypto.Field.of_int 2);
      Msg.Ge Sb_crypto.Modgroup.g;
      Msg.Str "a";
      Msg.Str "b";
      Msg.List [];
      Msg.List [ Msg.Unit ];
      Msg.Tag ("a", Msg.Unit);
      Msg.Tag ("a", Msg.Bit true);
      Msg.Tag ("b", Msg.Unit);
    ]
  in
  let rec strictly_ascending = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Msg.to_string a ^ " < " ^ Msg.to_string b)
          true
          (Msg.compare a b < 0 && Msg.compare b a > 0);
        strictly_ascending rest
    | _ -> ()
  in
  strictly_ascending ladder;
  (* Structural, not physical: equal values compare 0 regardless of
     sharing (Stdlib.compare gave this too, but pin it explicitly). *)
  Alcotest.(check int) "equal lists" 0
    (Msg.compare (Msg.List [ Msg.Str "xy" ]) (Msg.List [ Msg.Str ("x" ^ "y") ]))

let qcheck_msg_compare_total_order =
  QCheck.Test.make ~name:"msg compare: antisymmetric and consistent with equal" ~count:500
    QCheck.(make Gen.(pair gen_msg_full gen_msg_full))
    (fun (a, b) ->
      let c = Msg.compare a b in
      c = -Msg.compare b a && (c = 0) = Msg.equal a b)

let qcheck_msg_deserialize_roundtrip =
  QCheck.Test.make ~name:"msg deserialize inverts serialize" ~count:500
    (QCheck.make gen_msg_full) (fun m ->
      match Msg.deserialize (Msg.serialize m) with
      | Some m' -> Msg.equal m m'
      | None -> false)

let test_msg_deserialize_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ String.escaped s) true
        (Msg.deserialize s = None))
    [
      "";
      "z";
      "u trailing";
      "b2";
      "i2:+1" (* non-canonical int *);
      "i02:12" (* non-canonical frame length *);
      Printf.sprintf "f%d:%d" (String.length (string_of_int Sb_crypto.Field.p))
        Sb_crypto.Field.p (* out of field range *);
      "l2:u" (* list elements must be 'e'-framed *);
      "t1:x" (* truncated tag *);
      Msg.serialize (Msg.Str "x") ^ "u" (* trailing bytes *);
    ]

let qcheck_msg_size_bytes =
  QCheck.Test.make ~name:"msg size_bytes = |serialize|" ~count:500
    (QCheck.make gen_msg_full) (fun m ->
      Msg.size_bytes m = String.length (Msg.serialize m))

(* --- Envelope ----------------------------------------------------- *)

let test_envelope_addressing () =
  let e = Envelope.make ~src:1 ~dst:2 (Msg.Bit true) in
  Alcotest.(check (option int)) "src" (Some 1) (Envelope.src_party e);
  Alcotest.(check (option int)) "dst" (Some 2) (Envelope.dst_party e);
  Alcotest.(check bool) "not func" false (Envelope.is_func_bound e);
  let f = Envelope.to_func ~src:0 Msg.Unit in
  Alcotest.(check bool) "func bound" true (Envelope.is_func_bound f);
  Alcotest.(check int) "to_all count" 4 (List.length (Envelope.to_all ~n:4 ~src:0 Msg.Unit));
  Alcotest.(check int) "to_others count" 3
    (List.length (Envelope.to_others ~n:4 ~src:0 Msg.Unit))

let test_envelope_wire_size () =
  (* Header: "P<id>" per party endpoint, one char for F/All; body:
     Msg.size_bytes. *)
  let body = Msg.Str "hey" in
  let body_b = String.length (Msg.serialize body) in
  Alcotest.(check int) "p2p" (2 + 2 + body_b)
    (Envelope.wire_size (Envelope.make ~src:3 ~dst:7 body));
  Alcotest.(check int) "two-digit id" (3 + 2 + body_b)
    (Envelope.wire_size (Envelope.make ~src:12 ~dst:0 body));
  Alcotest.(check int) "broadcast counted once" (2 + 1 + body_b)
    (Envelope.wire_size (Envelope.broadcast ~src:4 body));
  Alcotest.(check int) "func" (2 + 1 + body_b)
    (Envelope.wire_size (Envelope.to_func ~src:9 body))

let test_arena_generations () =
  (* The two-sided pool's safety contract: a record handed out at flip
     f is never re-handed while it can still sit in a live mailbox
     (flip f+1); from flip f+2 on the same records come back, fields
     rewritten. *)
  let a = Envelope.Arena.create () in
  Alcotest.(check int) "fresh arena" 0 (Envelope.Arena.flips a);
  let batch0 = Envelope.Arena.to_all a ~n:4 ~src:0 (Msg.Str "g0") in
  Envelope.Arena.flip a;
  let batch1 = Envelope.Arena.to_all a ~n:4 ~src:1 (Msg.Str "g1") in
  List.iter
    (fun e1 ->
      Alcotest.(check bool) "one flip apart: no aliasing with live batch" false
        (List.memq e1 batch0))
    batch1;
  Envelope.Arena.flip a;
  Alcotest.(check int) "two flips" 2 (Envelope.Arena.flips a);
  let batch2 = Envelope.Arena.to_all a ~n:4 ~src:2 (Msg.Str "g2") in
  List.iteri
    (fun i e2 ->
      Alcotest.(check bool) "two flips apart: same records recycled in order" true
        (e2 == List.nth batch0 i);
      Alcotest.(check bool) "still distinct from the previous generation" false
        (List.memq e2 batch1);
      Alcotest.(check bool) "recycled fields are rewritten" true
        (Msg.equal e2.Envelope.body (Msg.Str "g2") && Envelope.src_party e2 = Some 2))
    batch2

(* --- Network: basic delivery ------------------------------------- *)

(* A protocol where party 0 sends its input to everyone in round 0 and
   everyone outputs what they got from party 0. *)
let relay_protocol =
  {
    Protocol.name = "relay";
    rounds = (fun _ -> 1);
    make_functionality = None;
    make_party =
      (fun ctx ~rng:_ ~id ~input ->
        let got = ref Msg.Unit in
        let step ~round ~inbox =
          (match
             List.find_opt (fun (e : Envelope.t) -> Envelope.src_party e = Some 0) inbox
           with
          | Some e -> got := e.Envelope.body
          | None -> ());
          if round = 0 && id = 0 then Envelope.to_all ~n:ctx.Ctx.n ~src:0 input else []
        in
        { Party.step; output = (fun () -> !got) });
  }

let test_network_delivers_next_round () =
  let ctx = make_ctx () in
  let inputs = [| Msg.Int 9; Msg.Unit; Msg.Unit; Msg.Unit |] in
  let r = Network.honest_run ctx ~rng:(rng ()) ~protocol:relay_protocol ~inputs in
  List.iter
    (fun (_, out) -> Alcotest.(check bool) "got input" true (Msg.equal out (Msg.Int 9)))
    r.Network.outputs;
  Alcotest.(check int) "4 parties" 4 (List.length r.Network.outputs);
  Alcotest.(check int) "message count" 4 r.Network.p2p_messages

let test_network_rushing_visibility () =
  (* The adversary must see honest round-r messages inside round r. *)
  let ctx = make_ctx () in
  let seen = ref [] in
  let adv =
    {
      Adversary.name = "observer";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round = 0 then seen := view.Adversary.rushed;
                []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let inputs = [| Msg.Int 5; Msg.Unit; Msg.Unit; Msg.Unit |] in
  let _ =
    Network.run ctx ~rng:(rng ()) ~protocol:relay_protocol ~adversary:adv ~inputs ()
  in
  Alcotest.(check int) "saw all 4 same-round sends" 4 (List.length !seen);
  Alcotest.(check bool) "payload visible" true
    (List.for_all (fun (e : Envelope.t) -> Msg.equal e.Envelope.body (Msg.Int 5)) !seen)

let test_network_drops_spoofed () =
  (* An adversary that tries to send as an honest party is silenced. *)
  let ctx = make_ctx () in
  let adv =
    {
      Adversary.name = "spoofer";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round = 0 then
                  (* Claim to be party 0 and inject a fake value. *)
                  Envelope.to_all ~n:4 ~src:0 (Msg.Int 666)
                else []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let inputs = [| Msg.Int 1; Msg.Unit; Msg.Unit; Msg.Unit |] in
  let r = Network.run ctx ~rng:(rng ()) ~protocol:relay_protocol ~adversary:adv ~inputs () in
  List.iter
    (fun (_, out) -> Alcotest.(check bool) "real value survives" true (Msg.equal out (Msg.Int 1)))
    r.Network.outputs

let test_network_adversary_can_speak_as_corrupted () =
  let ctx = make_ctx () in
  let adv =
    {
      Adversary.name = "talker";
      choose_corrupt = (fun _ ~rng:_ -> [ 0 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round = 0 then Envelope.to_all ~n:4 ~src:0 (Msg.Int 8)
                else []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let inputs = [| Msg.Int 1; Msg.Unit; Msg.Unit; Msg.Unit |] in
  let r = Network.run ctx ~rng:(rng ()) ~protocol:relay_protocol ~adversary:adv ~inputs () in
  Alcotest.(check int) "3 honest outputs" 3 (List.length r.Network.outputs);
  List.iter
    (fun (_, out) -> Alcotest.(check bool) "adversarial value" true (Msg.equal out (Msg.Int 8)))
    r.Network.outputs

(* --- Network: functionality semantics ----------------------------- *)

(* Protocol: every party sends its input to the functionality in round
   0; the functionality XORs all bits and returns the result to
   everyone in round 1. *)
let xor_func_protocol =
  {
    Protocol.name = "xor-func";
    rounds = (fun _ -> 1);
    make_functionality =
      Some
        (fun ctx ~rng:_ ->
          Functionality.one_shot ~at_round:0 (fun inbox ->
              let value =
                List.fold_left
                  (fun acc (e : Envelope.t) ->
                    match e.Envelope.body with Msg.Bit b -> acc <> b | _ -> acc)
                  false inbox
              in
              List.init ctx.Ctx.n (fun i -> Envelope.from_func ~dst:i (Msg.Bit value))));
    make_party =
      (fun _ ~rng:_ ~id ~input ->
        let got = ref Msg.Unit in
        let step ~round ~inbox =
          List.iter
            (fun (e : Envelope.t) -> if Envelope.is_from_func e then got := e.Envelope.body)
            inbox;
          if round = 0 then [ Envelope.to_func ~src:id input ] else []
        in
        { Party.step; output = (fun () -> !got) });
  }

let test_functionality_computes () =
  let ctx = make_ctx () in
  let inputs = [| Msg.Bit true; Msg.Bit true; Msg.Bit false; Msg.Bit true |] in
  let r = Network.honest_run ctx ~rng:(rng ()) ~protocol:xor_func_protocol ~inputs in
  List.iter
    (fun (_, out) -> Alcotest.(check bool) "xor = 1" true (Msg.equal out (Msg.Bit true)))
    r.Network.outputs

let test_functionality_hidden_from_adversary () =
  (* Func-bound honest messages must NOT appear in the rushed view. *)
  let ctx = make_ctx () in
  let leak = ref false in
  let adv =
    {
      Adversary.name = "peeker";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if List.exists Envelope.is_func_bound view.Adversary.rushed then leak := true;
                []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let inputs = [| Msg.Bit true; Msg.Bit false; Msg.Bit false; Msg.Bit true |] in
  let _ = Network.run ctx ~rng:(rng ()) ~protocol:xor_func_protocol ~adversary:adv ~inputs () in
  Alcotest.(check bool) "no ideal-channel leak" false !leak

let test_network_deterministic_under_seed () =
  let run () =
    let ctx = Ctx.make ~rng:(Sb_util.Rng.create 31337) ~n:4 ~thresh:1 ~k:8 () in
    let inputs = [| Msg.Bit true; Msg.Bit false; Msg.Bit true; Msg.Bit false |] in
    Network.honest_run ctx ~rng:(Sb_util.Rng.create 999) ~protocol:xor_func_protocol ~inputs
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same outputs" true
    (List.for_all2
       (fun (i, x) (j, y) -> i = j && Msg.equal x y)
       a.Network.outputs b.Network.outputs)

let test_network_rejects_wrong_input_count () =
  let ctx = make_ctx () in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Network.run: wrong number of inputs")
    (fun () ->
      ignore (Network.honest_run ctx ~rng:(rng ()) ~protocol:relay_protocol ~inputs:[| Msg.Unit |]))

let test_broadcast_channel_semantics () =
  (* One broadcast envelope reaches every party identically, and a
     corrupted party cannot broadcast under an honest source id. *)
  let ctx = make_ctx () in
  let bcast_protocol =
    {
      Protocol.name = "bcast-once";
      rounds = (fun _ -> 1);
      make_functionality = None;
      make_party =
        (fun _ ~rng:_ ~id ~input ->
          let got = ref [] in
          let step ~round ~inbox =
            List.iter
              (fun (e : Envelope.t) ->
                if Envelope.is_broadcast e then got := e.Envelope.body :: !got)
              inbox;
            if round = 0 && id = 1 then [ Envelope.broadcast ~src:1 input ] else []
          in
          { Party.step; output = (fun () -> Msg.List !got) });
    }
  in
  let spoofer =
    {
      Adversary.name = "bcast-spoofer";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
          {
            Adversary.act =
              (fun view ->
                if view.Adversary.round = 0 then
                  [ Envelope.broadcast ~src:0 (Msg.Int 666) ] (* spoofed source *)
                else []);
            adv_output = (fun () -> Msg.Unit);
          });
    }
  in
  let inputs = [| Msg.Unit; Msg.Int 7; Msg.Unit; Msg.Unit |] in
  let r = Network.run ctx ~rng:(rng ()) ~protocol:bcast_protocol ~adversary:spoofer ~inputs () in
  List.iter
    (fun (_, out) ->
      Alcotest.(check bool) "only the honest broadcast arrives" true
        (Msg.equal out (Msg.List [ Msg.Int 7 ])))
    r.Network.outputs

let test_aux_input_reaches_adversary () =
  let ctx = make_ctx () in
  let captured = ref Msg.Unit in
  let adv =
    {
      Adversary.name = "aux-reader";
      choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
      init =
        (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux ->
          captured := aux;
          { Adversary.act = (fun _ -> []); adv_output = (fun () -> aux) });
    }
  in
  let inputs = Array.make 4 Msg.Unit in
  let r =
    Network.run ctx ~rng:(rng ()) ~protocol:relay_protocol ~adversary:adv ~inputs
      ~aux:(Msg.Str "z-input") ()
  in
  Alcotest.(check bool) "aux captured" true (Msg.equal !captured (Msg.Str "z-input"));
  Alcotest.(check bool) "aux in output" true (Msg.equal r.Network.adv_output (Msg.Str "z-input"))

(* --- Adversary combinators ---------------------------------------- *)

let test_semi_honest_matches_honest () =
  (* A semi-honest adversary corrupting one party must produce the same
     announced values as the all-honest run. *)
  let ctx = make_ctx () in
  let inputs = [| Msg.Int 4; Msg.Unit; Msg.Unit; Msg.Unit |] in
  let honest = Network.honest_run ctx ~rng:(Sb_util.Rng.create 5) ~protocol:relay_protocol ~inputs in
  let semi =
    Network.run ctx ~rng:(Sb_util.Rng.create 5) ~protocol:relay_protocol
      ~adversary:(Adversary.semi_honest relay_protocol ~corrupt:[ 2 ])
      ~inputs ()
  in
  let honest_out = List.filter (fun (i, _) -> i <> 2) honest.Network.outputs in
  Alcotest.(check int) "honest count" 3 (List.length semi.Network.outputs);
  List.iter2
    (fun (i, x) (j, y) ->
      Alcotest.(check int) "ids align" i j;
      Alcotest.(check bool) "same output" true (Msg.equal x y))
    honest_out semi.Network.outputs

let () =
  Alcotest.run "sb_sim"
    [
      ( "msg",
        [
          Alcotest.test_case "roundtrips" `Quick test_msg_roundtrips;
          Alcotest.test_case "untag" `Quick test_msg_untag;
          Alcotest.test_case "serialize injective samples" `Quick
            test_msg_serialize_injective_samples;
          QCheck_alcotest.to_alcotest qcheck_msg_equal_refl;
          Alcotest.test_case "compare pinned order" `Quick test_msg_compare_pinned_order;
          Alcotest.test_case "deserialize rejects malformed" `Quick
            test_msg_deserialize_rejects;
          QCheck_alcotest.to_alcotest qcheck_msg_compare_total_order;
          QCheck_alcotest.to_alcotest qcheck_msg_deserialize_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_msg_size_bytes;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "addressing" `Quick test_envelope_addressing;
          Alcotest.test_case "wire size" `Quick test_envelope_wire_size;
          Alcotest.test_case "arena generations" `Quick test_arena_generations;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivers next round" `Quick test_network_delivers_next_round;
          Alcotest.test_case "rushing visibility" `Quick test_network_rushing_visibility;
          Alcotest.test_case "drops spoofed" `Quick test_network_drops_spoofed;
          Alcotest.test_case "corrupted may speak" `Quick
            test_network_adversary_can_speak_as_corrupted;
          Alcotest.test_case "deterministic under seed" `Quick
            test_network_deterministic_under_seed;
          Alcotest.test_case "wrong input count" `Quick test_network_rejects_wrong_input_count;
          Alcotest.test_case "broadcast channel semantics" `Quick
            test_broadcast_channel_semantics;
          Alcotest.test_case "aux input plumbing" `Quick test_aux_input_reaches_adversary;
        ] );
      ( "functionality",
        [
          Alcotest.test_case "computes" `Quick test_functionality_computes;
          Alcotest.test_case "ideal channel hidden" `Quick
            test_functionality_hidden_from_adversary;
        ] );
      ( "adversary",
        [ Alcotest.test_case "semi-honest = honest" `Quick test_semi_honest_matches_honest ] );
    ]
