(* Distributed coin flipping — the application that motivated the
   original definitions ([8] and [12] both implicitly assume uniform
   inputs because of it).

   The collective coin is the XOR of all announced bits. If broadcast
   is merely parallel, the last (rushing) sender fixes the coin: it
   announces the XOR of everything it heard, forcing the total to 0.
   Under a simultaneous broadcast protocol the same adversary has no
   leverage and the coin stays fair.

   This is also a nice view of Lemma 6.4: Π_G under the adversary A*
   produces a coin that is ALWAYS 0 even though the protocol is
   G-independent — per-party uniformity of announced bits is simply
   too weak a guarantee for coin flipping.

   Run with:  dune exec examples/coin_flipping.exe *)

open Sb_sim

let n = 5
let trials = 4000

(* The coin-fixing adversary for the naive sequential protocol: the
   last sender announces the XOR of the n-1 values it heard, making
   the global XOR 0. *)
let coin_fixer =
  {
    Adversary.name = "coin-fixer";
    choose_corrupt = (fun _ ~rng:_ -> [ n - 1 ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let acc = ref false in
        (* Rushing shows each broadcast twice (same-round and on
           delivery); XOR each sender's value exactly once. *)
        let seen = Hashtbl.create 8 in
        let act (view : Adversary.view) =
          List.iter
            (fun (e : Envelope.t) ->
              match (e.Envelope.src, e.Envelope.body) with
              | Envelope.Party p, Msg.Tag ("naive-value", Msg.Bit b)
                when p <> n - 1 && not (Hashtbl.mem seen p) ->
                  Hashtbl.replace seen p ();
                  if b then acc := not !acc
              | _ -> ())
            (view.Adversary.delivered @ view.Adversary.rushed);
          if view.Adversary.round = n - 1 then
            [ Envelope.broadcast ~src:(n - 1) (Msg.Tag ("naive-value", Msg.Bit !acc)) ]
          else []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let coin_stats protocol adversary =
  let setup = Core.Setup.{ default with samples = trials; n; thresh = 2 } in
  let zeros = ref 0 and total = ref 0 in
  let rng = Sb_util.Rng.create 99 in
  Core.Announced.sample setup ~protocol ~adversary ~dist:(Sb_dist.Dist.uniform n) rng (fun r ->
      incr total;
      if not (Sb_util.Bitvec.parity r.Core.Announced.w) then incr zeros);
  float_of_int !zeros /. float_of_int !total

let () =
  let table =
    Sb_util.Tabular.create ~title:"coin flipping: Pr[coin = 0] over uniform inputs"
      ~columns:[ "protocol"; "adversary"; "Pr[coin = 0]"; "fair?" ]
  in
  let row name p adv =
    let p0 = coin_stats p adv in
    Sb_util.Tabular.add_row table
      [
        name;
        adv.Adversary.name;
        Printf.sprintf "%.3f" p0;
        (if Float.abs (p0 -. 0.5) < 0.05 then "fair" else "BIASED");
      ]
  in
  row "naive-sequential" Sb_protocols.Naive.sequential (Adversary.passive Sb_protocols.Naive.sequential);
  row "naive-sequential" Sb_protocols.Naive.sequential coin_fixer;
  row "pi-g (Lemma 6.4)" Sb_protocols.Pi_g.protocol (Core.Adversaries.a_star ~corrupt:(n - 2, n - 1));
  row "gennaro-constant" Sb_protocols.Gennaro.protocol
    (Core.Adversaries.semi_honest Sb_protocols.Gennaro.protocol ~corrupt:[ n - 2; n - 1 ]);
  row "cgma-vss" Sb_protocols.Cgma.protocol
    (Core.Adversaries.semi_honest Sb_protocols.Cgma.protocol ~corrupt:[ n - 2; n - 1 ]);
  Sb_util.Tabular.print table;
  print_endline
    "The pi-g row is Lemma 6.4 in action: a protocol deemed secure by the\n\
     G definition yields a coin an adversary fixes with certainty.";
  print_endline
    "(A fair coin from simultaneous broadcast needs honest inputs to be\n\
     uniform; the VSS-based rows keep it fair against rushing corruption.)"
