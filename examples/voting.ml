(* Electronic voting with partially known preferences — the paper's
   Section 1 argument for studying ARBITRARY input distributions.

   Two of five voters are known to always vote identically (a
   household, say): the input distribution is copy-pair, which lies
   outside psi_C and psi_L. The run below shows what that means
   operationally:

   - the protocols still work perfectly (consistency, correctness,
     no adversary can adapt its vote to the honest ones);
   - yet the CR and G testers FAIL — not because the protocol leaks,
     but because those definitions demand independence the correct
     tally cannot have. Only the simulation-based Sb definition
     remains meaningful, which is exactly the paper's conclusion about
     the limited applicability of [8] and [12].

   Run with:  dune exec examples/voting.exe *)

let n = 5

let () =
  let dist = Sb_dist.Dist.copy_pair n in
  let entry = Sb_dist.Family.copy_pair n in
  let verdict = Sb_dist.Classes.classify entry.Sb_dist.Family.ensemble in
  Format.printf "electorate: P0 and P1 always vote the same way (copy-pair distribution)@.";
  Format.printf "class membership: %a@.@." Sb_dist.Classes.pp verdict;

  let setup = Core.Setup.{ default with samples = 3000; n } in
  let protocol = Sb_protocols.Gennaro.protocol in
  let adversary = Core.Adversaries.semi_honest protocol ~corrupt:[ n - 1 ] in

  (* The protocol itself is fine: tally is correct in every run. *)
  let correct = ref 0 and total = ref 0 in
  let rng = Sb_util.Rng.create 11 in
  Core.Announced.sample setup ~protocol ~adversary ~dist rng (fun r ->
      incr total;
      if Sb_util.Bitvec.equal r.Core.Announced.w r.Core.Announced.x && r.Core.Announced.consistent
      then incr correct);
  Format.printf "gennaro under corruption of P%d: %d/%d runs with exact, consistent tally@."
    (n - 1) !correct !total;

  (* The statistical definitions reject the situation anyway. *)
  let cr = Core.Cr_test.run setup ~protocol ~adversary ~dist () in
  let g =
    Core.G_test.run (Core.Setup.with_samples 12000 setup) ~protocol
      ~adversary:(Core.Adversaries.semi_honest protocol ~corrupt:[ 1 ])
      ~dist ()
  in
  Format.printf "@.CR tester on the voting distribution: %s@."
    (Sb_stats.Verdict.to_string cr.Core.Cr_test.verdict);
  (match cr.Core.Cr_test.worst with
  | Some w ->
      Format.printf "  witness: honest P%d against predicate %s, gap %.3f@."
        w.Core.Cr_test.honest_party w.Core.Cr_test.predicate
        w.Core.Cr_test.gap.Sb_stats.Estimate.point
  | None -> ());
  Format.printf "G tester (corrupting one of the twin voters): %s@."
    (Sb_stats.Verdict.to_string g.Core.G_test.verdict);

  (* Sb remains achievable: the Sb tester's universal falsifiers find
     nothing against the honest-majority VSS protocol, and the truthful
     simulator reproduces the joint distribution. *)
  let sb =
    Core.Sb_test.run setup ~protocol ~adversary ~dist ~simulator:Core.Sb_test.truthful ()
  in
  Format.printf "Sb tester (universal falsifiers + truthful simulator): %s@."
    (Sb_stats.Verdict.to_string sb.Core.Sb_test.verdict);
  (match (sb.Core.Sb_test.sim_tvd, sb.Core.Sb_test.baseline_tvd) with
  | Some t, Some b -> Format.printf "  joint TVD vs simulator %.3f (sampling baseline %.3f)@." t b
  | _ -> ());
  Format.printf
    "@.Takeaway (Section 5): under correlated electorates the CR/G notions are@.\
     unachievable BY DEFINITION; only the simulation-based notion of [7]@.\
     still distinguishes good protocols from bad ones.@."
