(* Sealed-bid (contract bidding) auction — one of the paper's stock
   applications of simultaneous broadcast.

   Five bidders submit 4-bit bids. With a naive parallel broadcast the
   last bidder snipes: rushing shows it everyone else's bid before it
   has to speak, so it bids (max + 1). With the Gennaro protocol lifted
   to 4-bit values ({!Sb_protocols.Multi}), all bids are committed —
   every bit of every bid — before anything is revealed, and the snipe
   collapses to an input-independent guess.

   Run with:  dune exec examples/sealed_auction.exe *)

open Sb_sim

let n = 5
let bits = 4
let sniper = n - 1

(* The sniper for the multi-bit naive sequential protocol: collect
   everyone's bits from the instance-tagged traffic, then broadcast
   max+1, bit by bit, in its own round. *)
let snipe_adversary =
  {
    Adversary.name = "sniper";
    choose_corrupt = (fun _ ~rng:_ -> [ sniper ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let bids = Array.make n 0 in
        let act (view : Adversary.view) =
          List.iter
            (fun (e : Envelope.t) ->
              match (e.Envelope.src, e.Envelope.body) with
              | Envelope.Party p, Msg.Tag (inst, Msg.Tag ("naive-value", Msg.Bit b)) when b -> (
                  match String.split_on_char ':' inst with
                  | [ "inst"; j ] -> (
                      match int_of_string_opt j with
                      | Some j -> bids.(p) <- bids.(p) lor (1 lsl j)
                      | None -> ())
                  | _ -> ())
              | _ -> ())
            (view.Adversary.delivered @ view.Adversary.rushed);
          if view.Adversary.round = sniper then begin
            let best = Array.fold_left max 0 (Array.sub bids 0 sniper) in
            let my_bid = min ((1 lsl bits) - 1) (best + 1) in
            List.init bits (fun j ->
                Envelope.broadcast ~src:sniper
                  (Msg.Tag
                     ( Sb_protocols.Multi.instance_tag j,
                       Msg.Tag ("naive-value", Msg.Bit ((my_bid lsr j) land 1 = 1)) )))
          end
          else []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let run_auction protocol adversary honest_bids =
  let rng = Sb_util.Rng.create 4242 in
  let ctx = Ctx.make ~rng ~n ~thresh:2 ~k:16 () in
  let inputs = Array.map (fun b -> Msg.Int b) honest_bids in
  let r = Network.run ctx ~rng ~protocol ~adversary ~inputs () in
  match r.Network.outputs with
  | (_, Msg.List vals) :: _ ->
      Array.of_list (List.map (function Msg.Int v -> v | _ -> 0) vals)
  | _ -> Array.make n 0

let winner bids =
  let best = ref 0 in
  Array.iteri (fun i b -> if b > bids.(!best) then best := i) bids;
  !best

let () =
  let honest_bids = [| 9; 4; 12; 7; 3 |] in
  Format.printf "sealed bids: %s  (P%d holds the honest maximum)@."
    (String.concat " " (Array.to_list (Array.map string_of_int honest_bids)))
    2;

  let naive = Sb_protocols.Multi.wrap ~bits Sb_protocols.Naive.sequential in
  let announced = run_auction naive snipe_adversary honest_bids in
  Format.printf "@.naive sequential broadcast + sniper:@.";
  Format.printf "  announced bids: %s -> winner P%d (the sniper, bidding max+1)@."
    (String.concat " " (Array.to_list (Array.map string_of_int announced)))
    (winner announced);

  let gennaro = Sb_protocols.Multi.wrap ~bits Sb_protocols.Gennaro.protocol in
  (* The same sniping idea against Gennaro: all the rushing exposes is
     hiding commitments, so the best a corrupted bidder can do is an
     input-independent bid; here it runs the protocol honestly on its
     own (losing) bid. *)
  let semi = Core.Adversaries.semi_honest gennaro ~corrupt:[ sniper ] in
  let announced' = run_auction gennaro semi honest_bids in
  Format.printf "@.gennaro (4-bit, all bits committed before any reveal):@.";
  Format.printf "  announced bids: %s -> winner P%d (the honest maximum)@."
    (String.concat " " (Array.to_list (Array.map string_of_int announced')))
    (winner announced');

  (* Aggregate: how often does the last bidder win? *)
  let trials = 300 in
  let wins protocol adversary =
    let rng = Sb_util.Rng.create 5 in
    let w = ref 0 in
    for _ = 1 to trials do
      let bids = Array.init n (fun _ -> Sb_util.Rng.int rng ((1 lsl bits) - 1)) in
      let announced = run_auction protocol adversary bids in
      ignore (Sb_util.Rng.int rng 2);
      if winner announced = sniper then incr w
    done;
    float_of_int !w /. float_of_int trials
  in
  Format.printf "@.Pr[last bidder wins] over %d random auctions:@." trials;
  Format.printf "  naive + sniper   : %.2f@." (wins naive snipe_adversary);
  Format.printf "  gennaro + sniper code (commitments only to copy): %.2f (fair share is %.2f)@."
    (wins gennaro semi)
    (1.0 /. float_of_int n)
