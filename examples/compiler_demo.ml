(* The CGMA compiler, demonstrated — the original framing of [7]:
   protocols are WRITTEN against a simultaneous-broadcast network and
   COMPILED onto a network with only regular broadcast.

   The program below is a 3-epoch collective coin protocol in the
   SB-hybrid model. We run it three ways:

   1. in the hybrid model itself (epochs = calls to Ideal(f_SB));
   2. compiled with Gennaro's simultaneous broadcast;
   3. compiled with the NAIVE sequential broadcast.

   On honest runs all three agree bit-for-bit (the compiler preserves
   functionality). Under a rushing adversary, the naive compilation
   lets the last party fix every epoch coin, while the Gennaro
   compilation behaves like the hybrid — the compiler preserves
   SECURITY only when the epoch substrate is simultaneous, which is
   the whole point of the paper's lineage.

   Run with:  dune exec examples/compiler_demo.exe *)

open Sb_sim

let n = 5
let epochs = 3
let program = Sb_protocols.Compiler.xor_coin_program ~rounds:epochs

let coins_of m =
  match m with
  | Msg.List l -> List.map (function Msg.Bit b -> b | _ -> false) l
  | _ -> []

let show coins = String.concat "" (List.map (fun b -> if b then "1" else "0") coins)

let run_once ?inputs base adversary seed =
  let p = Sb_protocols.Compiler.compile program ~using:base in
  let ctx = Ctx.make ~rng:(Sb_util.Rng.create seed) ~n ~thresh:2 ~k:16 () in
  let inputs =
    match inputs with Some i -> i | None -> Array.init n (fun i -> Msg.Bit (i mod 2 = 0))
  in
  let r =
    Network.run ctx ~rng:(Sb_util.Rng.create (seed + 1)) ~protocol:p ~adversary:(adversary p)
      ~inputs ()
  in
  match r.Network.outputs with
  | (_, m) :: _ -> coins_of m
  | [] -> []

let passive p = Sb_sim.Adversary.passive p

(* An epoch-coin fixer for the naive compilation: in each epoch's
   window, party 4 watches the naive broadcasts of the others (rushing)
   and broadcasts the XOR of what it heard, pinning the epoch coin to
   0. The SAME adversary pointed at the Gennaro compilation only ever
   sees hiding commitments. *)
let fixer (compiled : Protocol.t) =
  ignore compiled;
  {
    Adversary.name = "epoch-coin-fixer";
    choose_corrupt = (fun _ ~rng:_ -> [ n - 1 ]);
    init =
      (fun ctx ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let base_rounds = ctx.Ctx.n (* naive-sequential: n rounds *) in
        let acc = ref false in
        let seen = Hashtbl.create 8 in
        let act (view : Adversary.view) =
          let span = base_rounds + 1 in
          let epoch = view.Adversary.round / span in
          let local = view.Adversary.round - (epoch * span) in
          if local = 0 then begin
            acc := false;
            Hashtbl.reset seen
          end;
          List.iter
            (fun (e : Envelope.t) ->
              match (e.Envelope.src, e.Envelope.body) with
              | ( Envelope.Party p,
                  Msg.Tag (etag, Msg.Tag ("naive-value", Msg.Bit b)) )
                when p <> n - 1
                     && String.equal etag ("epoch:" ^ string_of_int epoch)
                     && not (Hashtbl.mem seen p) ->
                  Hashtbl.replace seen p ();
                  if b then acc := not !acc
              | _ -> ())
            (view.Adversary.delivered @ view.Adversary.rushed);
          if local = n - 1 then
            [
              Envelope.broadcast ~src:(n - 1)
                (Msg.Tag
                   ( "epoch:" ^ string_of_int epoch,
                     Msg.Tag ("naive-value", Msg.Bit !acc) ));
            ]
          else []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let () =
  Format.printf "3-epoch coin program, one source text, three executions:@.@.";
  let hybrid = run_once Sb_protocols.Ideal_sb.protocol passive 100 in
  let gennaro = run_once Sb_protocols.Gennaro.protocol passive 200 in
  let naive = run_once Sb_protocols.Naive.sequential passive 300 in
  Format.printf "  hybrid (Ideal(f_SB) epochs)   : coins = %s@." (show hybrid);
  Format.printf "  compiled over gennaro         : coins = %s@." (show gennaro);
  Format.printf "  compiled over naive broadcast : coins = %s@." (show naive);
  Format.printf "  -> identical on honest runs: %b@.@."
    (hybrid = gennaro && gennaro = naive);

  (* Now under attack: many random executions, count zero coins. *)
  let trials = 300 in
  let zero_rate base =
    (* Random inputs per trial: the coin program is deterministic given
       inputs, so fairness must come from input entropy — exactly the
       coin-flipping setting of [8, 12]. *)
    let input_rng = Sb_util.Rng.create 31415 in
    let zeros = ref 0 and total = ref 0 in
    for s = 1 to trials do
      let inputs = Array.init n (fun _ -> Msg.Bit (Sb_util.Rng.bool input_rng)) in
      List.iter
        (fun c ->
          incr total;
          if not c then incr zeros)
        (run_once ~inputs base fixer (1000 + (7 * s)))
    done;
    float_of_int !zeros /. float_of_int !total
  in
  Format.printf "under the epoch-coin-fixer adversary (Pr[epoch coin = 0]):@.";
  Format.printf "  compiled over naive broadcast : %.3f  <- every coin forced@."
    (zero_rate Sb_protocols.Naive.sequential);
  Format.printf "  compiled over gennaro         : %.3f  <- still fair@."
    (zero_rate Sb_protocols.Gennaro.protocol);
  Format.printf
    "@.The compiler preserves functionality over any parallel broadcast, but@.\
     preserves INDEPENDENCE only over a simultaneous one -- [7]'s theorem,@.\
     exercised.@."
