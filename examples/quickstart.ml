(* Quickstart: five parties simultaneously broadcast one bit each.

   Shows the three-line happy path (context, inputs, run), then the
   point of the whole library: the same inputs through a NAIVE parallel
   broadcast with a rushing echo adversary produce correlated announced
   values, while Gennaro's protocol under the same adversary class does
   not.

   Run with:  dune exec examples/quickstart.exe *)

open Sb_sim

let () =
  (* --- 1. Simultaneous broadcast in three lines. ------------------- *)
  let rng = Sb_util.Rng.create 2024 in
  let ctx = Ctx.make ~rng ~n:5 ~thresh:2 ~k:16 () in
  let inputs = [| Msg.Bit true; Msg.Bit false; Msg.Bit true; Msg.Bit true; Msg.Bit false |] in
  let result = Network.honest_run ctx ~rng ~protocol:Sb_protocols.Gennaro.protocol ~inputs in
  (match result.Network.outputs with
  | (_, announced) :: _ ->
      Format.printf "announced vector (gennaro, honest run): %a@." Msg.pp announced
  | [] -> assert false);
  Format.printf "rounds: %d, broadcasts used: %d@."
    result.Network.rounds_used
    (Trace.broadcast_count result.Network.trace);
  let bcast_bytes, p2p_bytes = Trace.wire_bytes result.Network.trace in
  Format.printf "wire cost: %d broadcast bytes, %d p2p bytes@." bcast_bytes p2p_bytes;

  (* --- 2. Why "parallel" is not "simultaneous" (Section 3.2). ------ *)
  let setup = Core.Setup.{ default with samples = 2000 } in
  let uniform = Sb_dist.Dist.uniform 5 in
  let echo = Core.Adversaries.echo ~mode:`Sequential ~copier:4 ~target:0 () in
  let correlation protocol adversary =
    let agree = ref 0 and total = ref 0 in
    let rng = Sb_util.Rng.create 7 in
    Core.Announced.sample setup ~protocol ~adversary ~dist:uniform rng (fun r ->
        incr total;
        if
          Sb_util.Bitvec.get r.Core.Announced.w 4 = Sb_util.Bitvec.get r.Core.Announced.w 0
        then incr agree);
    float_of_int !agree /. float_of_int !total
  in
  Format.printf "@.Pr[W4 = W0] under a rushing echo adversary:@.";
  Format.printf "  naive sequential broadcast : %.3f   (P4 just replays P0)@."
    (correlation Sb_protocols.Naive.sequential echo);
  let echo_conc = Core.Adversaries.echo ~mode:`Concurrent ~copier:4 ~target:0 () in
  Format.printf "  gennaro (commit via VSS)   : %.3f   (copying a hiding commitment is useless)@."
    (correlation Sb_protocols.Gennaro.protocol echo_conc);

  (* --- 3. The formal testers, one call each. ------------------------ *)
  let cr =
    Core.Cr_test.run setup ~protocol:Sb_protocols.Naive.sequential ~adversary:echo ~dist:uniform
      ()
  in
  Format.printf "@.CR-independence of naive sequential under echo: %s@."
    (Sb_stats.Verdict.to_string cr.Core.Cr_test.verdict);
  let semi = Core.Adversaries.semi_honest Sb_protocols.Gennaro.protocol ~corrupt:[ 3; 4 ] in
  let cr' =
    Core.Cr_test.run setup ~protocol:Sb_protocols.Gennaro.protocol ~adversary:semi ~dist:uniform
      ()
  in
  Format.printf "CR-independence of gennaro under semi-honest corruption: %s@."
    (Sb_stats.Verdict.to_string cr'.Core.Cr_test.verdict)
