type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand seeds into full xoshiro states. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.(logor (logor s0 s1) (logor s2 s3)) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let child_seed = int64 t in
  of_seed64 child_seed

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n";
  Array.init n (fun _ -> split t)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits t w =
  assert (w >= 0 && w <= 62);
  if w = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - w))

let int t bound =
  assert (bound > 0);
  if bound = 1 then 0
  else begin
    (* Smallest power-of-two mask covering [bound], then reject. *)
    let rec width w = if 1 lsl w >= bound then w else width (w + 1) in
    let w = width 1 in
    let rec draw () =
      let v = bits t w in
      if v < bound then v else draw ()
    in
    draw ()
  end

let bool t = bits t 1 = 1
let float t = Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1p-53
let bernoulli t p = float t < p

let bytes t len =
  String.init len (fun _ -> Char.chr (bits t 8))

let perm t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
