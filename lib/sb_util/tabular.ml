type row = Cells of string list | Rule

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns = { title; columns; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_rule t = t.rows <- Rule :: t.rows

let pad_to n cells =
  let len = List.length cells in
  if len >= n then cells else cells @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.columns in
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.columns :: List.filter_map (function Cells c -> Some (pad_to ncols c) | Rule -> None) rows
  in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter measure all_cell_rows;
  let buf = Buffer.create 256 in
  let line cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line t.columns;
  rule ();
  List.iter (function Cells c -> line (pad_to ncols c) | Rule -> rule ()) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let ncols = List.length t.columns in
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell (pad_to ncols cells)));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter (function Cells c -> line c | Rule -> ()) (List.rev t.rows);
  Buffer.contents buf

let title t = t.title

let cell_bool b = if b then "yes" else "no"

let cell_verdict = function
  | `Pass -> "PASS"
  | `Fail -> "FAIL"
  | `Inconclusive -> "INCONCLUSIVE"

let cell_float ?(digits = 4) x = Printf.sprintf "%.*f" digits x
