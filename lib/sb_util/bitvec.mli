(** Fixed-length bit vectors over {0,1}^n.

    The paper works throughout with n-dimensional bit vectors: party
    inputs [x], announced values [W], and the index-set projections
    [x_S], [w_G ⊔ z_B] of its Section 2. This module is that notation,
    executable. Vectors are immutable. *)

type t

val length : t -> int

val of_bools : bool array -> t
(** Copies the array. *)

val to_bools : t -> bool array
(** Fresh array. *)

val of_int : int -> int -> t
(** [of_int n v] is the n-bit vector whose i-th coordinate is bit i of
    [v] (little-endian: coordinate 0 = least significant bit).
    Requires [0 <= n <= 62]. *)

val to_int : t -> int
(** Inverse of [of_int]; requires [length <= 62]. *)

val zero : int -> t
(** All-zeros vector of the given length. *)

val get : t -> int -> bool
val set : t -> int -> bool -> t
(** Functional update. *)

val init : int -> (int -> bool) -> t
val random : Rng.t -> int -> t

val proj : t -> int list -> bool array
(** [proj x s] is x_S: the coordinates of [x] whose indices lie in [s],
    in the order given by [s]. *)

val combine : t -> int list -> bool array -> t
(** [combine x s z] is [x] with the coordinates listed in [s] replaced
    by the entries of [z] (the paper's w_G ⊔ z_B, with [x] supplying the
    complement of [s]). [z] must have the same length as [s]. *)

val parity : t -> bool
(** XOR of all coordinates. *)

val parity_except : t -> int -> bool
(** XOR of all coordinates other than the given index. *)

val popcount : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
(** E.g. "01101"; coordinate 0 printed first. *)

val of_string : string -> t
val pp : Format.formatter -> t -> unit
val all : int -> t list
(** All 2^n vectors of length [n], in [to_int] order. Requires n <= 20. *)

val map2 : (bool -> bool -> bool) -> t -> t -> t
val xor : t -> t -> t

(** Mutable membership vectors for hot loops.

    [set] on the immutable {!t} copies the whole vector, which turns a
    substrate's per-delivery receive-set update into O(n) — O(n^3) per
    single-sender session. Sessions that record one bit per incoming
    message (Bracha/send-echo echo sets, Dolev-Strong signer masks,
    EIG path distinctness) keep one [Mut.mut] per session instead and
    update it in place; scratch users clear just the bits they set, so
    reuse stays O(len) per check. *)
module Mut : sig
  type mut

  val create : int -> mut
  (** All-false vector of the given length. *)

  val length : mut -> int
  val get : mut -> int -> bool

  val set : mut -> int -> bool -> unit
  (** In-place update. *)

  val popcount : mut -> int

  val snapshot : mut -> t
  (** Immutable copy of the current state. *)
end
