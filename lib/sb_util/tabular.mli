(** Plain-text table rendering for experiment output.

    Every experiment driver prints its result as an aligned table with a
    title and column headers, so that the benchmark harness output can be
    compared line-by-line against EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows (rules are skipped);
    cells containing commas, quotes or newlines are quoted. For feeding
    experiment tables to external plotting. *)

val title : t -> string

val cell_bool : bool -> string
(** "yes" / "no". *)

val cell_verdict : [< `Pass | `Fail | `Inconclusive ] -> string
val cell_float : ?digits:int -> float -> string
