(** Deterministic, splittable pseudo-random generator.

    Every stochastic component of the simulator (parties, adversaries,
    functionalities, samplers, testers) draws from an explicit [Rng.t] so
    that whole experiments are reproducible from a single integer seed.

    The core generator is xoshiro256**; seeding and splitting use
    splitmix64, following the recommendation of the xoshiro authors. This
    is not a cryptographic PRG, and does not need to be: it models the
    parties' random tapes in a simulation whose adversaries are code we
    control, not computational attackers on the generator itself. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a fresh generator whose future output is
    statistically uncorrelated with [t]'s. Both generators advance
    independently afterwards; [t] itself is perturbed so repeated splits
    yield distinct children. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] fresh generators in one pass, advancing
    [t] by exactly [n] raw outputs. Child [k] is a pure function of
    [t]'s [k]-th output, so the array is a prefix-stable stream of
    streams: [(split_n t n).(k)] equals the [k]-th child produced by
    [k + 1] repeated [split]s from the same starting state, independent
    of how many further children are drawn. This is what lets a work
    partitioner hand chunk \[lo, hi) of a sample loop the exact child
    generators the sequential loop would have used, regardless of how
    many chunks the work is cut into. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays exactly the
    same stream as [t] would from this point. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t w] returns [w] uniform bits as a non-negative int,
    [0 <= w <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the distribution is exactly uniform. *)

val bool : t -> bool
(** One uniform bit. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val bytes : t -> int -> string
(** [bytes t len] returns [len] uniform bytes. *)

val perm : t -> int -> int array
(** [perm t n] is a uniform permutation of [0 .. n-1] (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
