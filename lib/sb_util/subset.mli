(** Index sets over [n] = {0, …, n−1}.

    The paper constantly splits [n] into a corrupted set B and its honest
    complement; definitions then quantify over subsets. These helpers keep
    that bookkeeping in one place. Sets are sorted int lists without
    duplicates. *)

type t = int list

val complement : int -> t -> t
(** [complement n s] is [n] \ s, sorted. *)

val mem : int -> t -> bool
val is_valid : int -> t -> bool
(** Sorted, duplicate-free, all members in [0, n). *)

val of_list : int list -> t
(** Sorts and deduplicates. *)

val all_of_size : int -> int -> t list
(** [all_of_size n k] enumerates all k-element subsets of [n] in
    lexicographic order (smallest leading index first); [[[]]] for
    [k = 0] and [[]] when [k < 0] or [k > n]. *)

val all_up_to : int -> int -> t list
(** [all_up_to n k] enumerates every subset of size 0..k, sizes in
    ascending order, each size in {!all_of_size} order — the
    corruption-budget enumeration [∅, {0}, …, {n−1}, {0,1}, …]. *)

val all_nonempty_proper : int -> t list
(** All B with ∅ ⊂ B ⊂ [n]. Requires n <= 20. *)

val pp : Format.formatter -> t -> unit
