type t = int list

let complement n s = List.filter (fun i -> not (List.mem i s)) (List.init n Fun.id)
let mem = List.mem

let is_valid n s =
  let rec check prev = function
    | [] -> true
    | i :: rest -> i > prev && i < n && check i rest
  in
  check (-1) s

let of_list l = List.sort_uniq Int.compare l

let all_of_size n k =
  (* Standard k-combination enumeration, smallest index first. An
     impossible size (k < 0 or k > n) has no combinations, not an
     error: the model checker asks for every size up to its fault
     budget t, which may exceed n - 1. *)
  if k < 0 || k > n then []
  else
    let rec go start k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun i -> List.map (fun rest -> i :: rest) (go (i + 1) (k - 1)))
          (List.init (n - start - k + 1) (fun d -> start + d))
    in
    go 0 k

let all_up_to n k =
  List.concat_map (fun s -> all_of_size n s) (List.init (max 0 (k + 1)) Fun.id)

let all_nonempty_proper n =
  assert (n <= 20);
  List.concat_map (fun k -> all_of_size n k) (List.init (n - 1) (fun i -> i + 1))

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    s
