type t = bool array
(* Invariant: never mutated after construction; every constructor copies. *)

let length = Array.length
let of_bools a = Array.copy a
let to_bools v = Array.copy v

let of_int n v =
  assert (n >= 0 && n <= 62);
  Array.init n (fun i -> (v lsr i) land 1 = 1)

let to_int v =
  assert (Array.length v <= 62);
  let r = ref 0 in
  for i = Array.length v - 1 downto 0 do
    r := (!r lsl 1) lor (if v.(i) then 1 else 0)
  done;
  !r

let zero n = Array.make n false
let get v i = v.(i)

let set v i b =
  let w = Array.copy v in
  w.(i) <- b;
  w

let init = Array.init
let random rng n = Array.init n (fun _ -> Rng.bool rng)
let proj v s = Array.of_list (List.map (fun i -> v.(i)) s)

let combine v s z =
  assert (List.length s = Array.length z);
  let w = Array.copy v in
  List.iteri (fun pos i -> w.(i) <- z.(pos)) s;
  w

let parity v = Array.fold_left (fun acc b -> if b then not acc else acc) false v

let parity_except v idx =
  let acc = ref false in
  for i = 0 to Array.length v - 1 do
    if i <> idx && v.(i) then acc := not !acc
  done;
  !acc

let popcount v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v
let equal = ( = )
let compare = Stdlib.compare
let to_string v = String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c))

let pp fmt v = Format.pp_print_string fmt (to_string v)

let all n =
  assert (n <= 20);
  List.init (1 lsl n) (fun v -> of_int n v)

let map2 f a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let xor = map2 ( <> )

(* In-place membership vectors for the substrates' receive/echo sets.
   The immutable [t] above copies the whole vector on [set] — O(n) per
   recorded message, O(n^3) per session once n^2 messages flow — so the
   hot loops keep one of these per session and mutate it instead. *)
module Mut = struct
  type mut = bool array

  let create n = Array.make n false
  let length = Array.length
  let get (v : mut) i = v.(i)
  let set (v : mut) i b = v.(i) <- b
  let popcount (v : mut) = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v
  let snapshot : mut -> t = Array.copy
end
