open Sb_sim
open Sb_util

let default = Msg.Bit false

(* Per-round bookkeeping is Bitvec-backed: one "already heard an echo /
   ready from this party" membership vector per message kind (the seed
   kept a per-source hashtable and re-counted it for every candidate
   value, an O(parties) scan per quorum check per round), plus one
   tally record per distinct value in first-seen order. Quorum checks
   are then integer compares. Distinct values stay unique in practice:
   echoes and readies are recorded at most once per source, so two
   values can never both reach the echo quorum ceil((n+t+1)/2), and a
   ready candidate needs an honest ready, which itself roots in an
   echo quorum — test_broadcast.ml checks the refactor differentially
   against a pinned copy of the seed implementation. *)
type tally = { v : Msg.t; mutable echoes : int; mutable readies : int }

let scheme =
  {
    Session.scheme_name = "bracha";
    rounds = (fun _ -> 4);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let echo_quorum = (n + t + 2) / 2 (* ceil((n+t+1)/2) *) in
        (* Receive sets: which parties' echo/ready has been counted.
           First message per source wins, as in the seed. Mutable so a
           recorded message costs O(1), not an O(n) vector copy. *)
        let echo_seen = Bitvec.Mut.create n in
        let ready_seen = Bitvec.Mut.create n in
        (* Distinct values with their tallies, oldest first. *)
        let tallies : tally list ref = ref [] in
        let echoed = ref false in
        let ready_sent = ref false in
        let wrap m = Session.wrap ~sid m in
        (* Wrap once, share the body across all n envelopes; drawn from
           the ctx arena when one is installed. *)
        let send_all m = Ctx.to_all ctx ~src:me (wrap m) in
        let tally_for v =
          match List.find_opt (fun s -> Msg.equal s.v v) !tallies with
          | Some s -> s
          | None ->
              let s = { v; echoes = 0; readies = 0 } in
              tallies := !tallies @ [ s ];
              s
        in
        let record inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
              | Some src, Some (Msg.Tag ("br-echo", v)) ->
                  if not (Bitvec.Mut.get echo_seen src) then begin
                    Bitvec.Mut.set echo_seen src true;
                    let s = tally_for v in
                    s.echoes <- s.echoes + 1
                  end
              | Some src, Some (Msg.Tag ("br-ready", v)) ->
                  if not (Bitvec.Mut.get ready_seen src) then begin
                    Bitvec.Mut.set ready_seen src true;
                    let s = tally_for v in
                    s.readies <- s.readies + 1
                  end
              | _ -> ())
            inbox
        in
        let maybe_ready () =
          if !ready_sent then []
          else
            match
              List.find_opt
                (fun s -> s.echoes >= echo_quorum || s.readies >= t + 1)
                !tallies
            with
            | Some s ->
                ready_sent := true;
                send_all (Msg.Tag ("br-ready", s.v))
            | None -> []
        in
        let step ~round ~inbox =
          record inbox;
          match round with
          | 0 -> (
              match value with
              | Some v -> send_all (Msg.Tag ("br-init", v))
              | None -> [])
          | 1 ->
              if not !echoed then begin
                let init =
                  List.find_map
                    (fun (e : Envelope.t) ->
                      match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
                      | Some src, Some (Msg.Tag ("br-init", v)) when src = sender -> Some v
                      | _ -> None)
                    inbox
                in
                match init with
                | Some v ->
                    echoed := true;
                    send_all (Msg.Tag ("br-echo", v))
                | None -> []
              end
              else []
          | 2 | 3 -> maybe_ready ()
          | _ -> []
        in
        let result () =
          match List.find_opt (fun s -> s.readies >= (2 * t) + 1) !tallies with
          | Some s -> s.v
          | None -> default
        in
        { Session.step; result });
  }
