open Sb_sim

let default = Msg.Bit false

let scheme =
  {
    Session.scheme_name = "bracha";
    rounds = (fun _ -> 4);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let echo_quorum = (n + t + 2) / 2 (* ceil((n+t+1)/2) *) in
        let echoes : (int, Msg.t) Hashtbl.t = Hashtbl.create 8 in
        let readies : (int, Msg.t) Hashtbl.t = Hashtbl.create 8 in
        let echoed = ref false in
        let ready_sent = ref false in
        let wrap m = Session.wrap ~sid m in
        let send_all m =
          List.map
            (fun (e : Envelope.t) -> { e with Envelope.body = wrap e.Envelope.body })
            (Envelope.to_all ~n ~src:me m)
        in
        let count table v =
          Hashtbl.fold (fun _ m acc -> if Msg.equal m v then acc + 1 else acc) table 0
        in
        let values table =
          let seen = Hashtbl.create 4 in
          Hashtbl.iter (fun _ m -> Hashtbl.replace seen (Msg.serialize m) m) table;
          Hashtbl.fold (fun _ m acc -> m :: acc) seen []
        in
        let record inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
              | Some src, Some (Msg.Tag ("br-echo", v)) ->
                  if not (Hashtbl.mem echoes src) then Hashtbl.replace echoes src v
              | Some src, Some (Msg.Tag ("br-ready", v)) ->
                  if not (Hashtbl.mem readies src) then Hashtbl.replace readies src v
              | _ -> ())
            inbox
        in
        let maybe_ready () =
          if !ready_sent then []
          else
            let candidates =
              List.filter
                (fun v -> count echoes v >= echo_quorum || count readies v >= t + 1)
                (values echoes @ values readies)
            in
            match candidates with
            | v :: _ ->
                ready_sent := true;
                send_all (Msg.Tag ("br-ready", v))
            | [] -> []
        in
        let step ~round ~inbox =
          record inbox;
          match round with
          | 0 -> (
              match value with
              | Some v -> send_all (Msg.Tag ("br-init", v))
              | None -> [])
          | 1 ->
              if not !echoed then begin
                let init =
                  List.find_map
                    (fun (e : Envelope.t) ->
                      match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
                      | Some src, Some (Msg.Tag ("br-init", v)) when src = sender -> Some v
                      | _ -> None)
                    inbox
                in
                match init with
                | Some v ->
                    echoed := true;
                    send_all (Msg.Tag ("br-echo", v))
                | None -> []
              end
              else []
          | 2 | 3 -> maybe_ready ()
          | _ -> []
        in
        let result () =
          match List.find_opt (fun v -> count readies v >= (2 * t) + 1) (values readies) with
          | Some v -> v
          | None -> default
        in
        { Session.step; result });
  }
