type t = {
  step : round:int -> inbox:Sb_sim.Envelope.t list -> Sb_sim.Envelope.t list;
  result : unit -> Sb_sim.Msg.t;
}

type scheme = {
  scheme_name : string;
  rounds : Sb_sim.Ctx.t -> int;
  create :
    Sb_sim.Ctx.t ->
    rng:Sb_util.Rng.t ->
    sid:string ->
    sender:int ->
    me:int ->
    value:Sb_sim.Msg.t option ->
    t;
}

let tag sid = "bc:" ^ sid
let wrap ~sid m = Sb_sim.Msg.Tag (tag sid, m)

let unwrap ~sid = function
  | Sb_sim.Msg.Tag (t, m) when String.equal t (tag sid) -> Some m
  | _ -> None

let inbox_for ~sid envs =
  List.filter
    (fun (e : Sb_sim.Envelope.t) ->
      match e.body with Sb_sim.Msg.Tag (t, _) -> String.equal t (tag sid) | _ -> false)
    envs
