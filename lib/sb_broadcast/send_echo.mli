(** Two-round send-and-echo broadcast (crusader-style).

    Local round 0: the sender sends its value to everyone. Local round
    1: every party echoes the value it received to everyone. At local
    round 2 each party outputs the majority of the echoes (missing or
    malformed echoes count as the default value 0, per the paper's
    footnote 2).

    With an honest sender this is consistent and correct against any
    adversary (the direct copy from the sender outweighs lies as long
    as a majority is honest and echoes faithfully). With a corrupted
    sender, honest parties still agree whenever a clear majority echoes
    the same value; the parallel-broadcast protocols built on top only
    need the honest-sender guarantee plus graceful degradation, which
    tests pin down. It is the cheapest substrate and the default for
    the naive sequential protocol of §3.2. *)

val scheme : Session.scheme
