(** Exponential Information Gathering broadcast (Byzantine Generals),
    tolerating t < n/3 corruptions without signatures — the classic
    protocol of Pease, Shostak and Lamport, whose "interactive
    consistency" is the paper's historical source for parallel
    broadcast (§3.2).

    Parties build a tree of relayed reports: the node labelled by the
    path (sender, i₁, …, i_r) of distinct party ids holds "what i_r
    said that … i₁ said that the sender said". After t+1 relay rounds
    the tree is resolved bottom-up by strict majority (default 0), and
    the root is the broadcast value.

    Message volume grows as n^t — faithful to the original, and fine
    for the small t exercised here. *)

val scheme : Session.scheme
