(** Common shape of a single-sender broadcast sub-protocol instance.

    A session is one sender broadcasting one value to everybody. Its
    messages are wrapped in [Msg.Tag ("bc:" ^ sid, …)] so that many
    sessions — possibly of different broadcast protocols — can share
    the network simultaneously; [inbox_for] recovers the envelopes that
    belong to a given session.

    Local rounds start at 0 when the session starts; a session that
    begins at network round r0 maps network round r to local round
    r − r0. The driver (usually [Parallel]) is responsible for feeding
    every local round from 0 to [rounds] inclusive; [result] may be read
    afterwards. *)

type t = {
  step : round:int -> inbox:Sb_sim.Envelope.t list -> Sb_sim.Envelope.t list;
      (** [round] is the LOCAL round. [inbox] must already be filtered
          to this session's envelopes. *)
  result : unit -> Sb_sim.Msg.t;
}

type scheme = {
  scheme_name : string;
  rounds : Sb_sim.Ctx.t -> int;
      (** Local send rounds; the session expects [step] calls for local
          rounds 0 … rounds (the last call is delivery-only). *)
  create :
    Sb_sim.Ctx.t ->
    rng:Sb_util.Rng.t ->
    sid:string ->
    sender:int ->
    me:int ->
    value:Sb_sim.Msg.t option ->
    t;
      (** [value] must be [Some v] iff [me = sender]. *)
}

val tag : string -> string
(** [tag sid] is the message tag used by session [sid]. *)

val wrap : sid:string -> Sb_sim.Msg.t -> Sb_sim.Msg.t
val unwrap : sid:string -> Sb_sim.Msg.t -> Sb_sim.Msg.t option

val inbox_for : sid:string -> Sb_sim.Envelope.t list -> Sb_sim.Envelope.t list
(** Envelopes whose body carries this session's tag. *)
