(** Bracha's reliable broadcast (echo / ready amplification), t < n/3.

    Designed for asynchronous networks; run here over synchronous
    rounds, where its quorum pattern completes in four: send, echo,
    ready, ready-amplification. A party accepts a value once it holds
    2t+1 READY messages for it; it sends READY either after
    ⌈(n+t+1)/2⌉ matching ECHOes or after t+1 matching READYs (the
    amplification that makes acceptance all-or-nothing). An execution
    with a corrupted sender may terminate with no accepted value — in
    that case the session reports the default 0, which all honest
    parties share.

    Included alongside {!Send_echo}, {!Dolev_strong}, {!Eig} and
    {!Phase_king} to cover the quorum-based corner of the substrate
    design space (the paper's reference [3] lineage). *)

val scheme : Session.scheme
