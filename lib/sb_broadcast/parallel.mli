(** Parallel broadcast from n single-sender sessions (§3.2).

    Two compositions of a single-sender {!Session.scheme}:

    - [sequential]: session i (sender P_i) occupies its own window of
      rounds, one sender after another — the "simplest instantiation"
      the paper uses to show that parallel broadcast alone does NOT
      give independence (a rushing last sender echoes an earlier
      value);
    - [concurrent]: all n sessions share the same rounds — fewer
      rounds, but still not independent, since rushing lets corrupted
      senders pick their round-0 value after seeing honest senders'.

    Honest parties output [Msg.List] of n values, coerced to bits with
    default 0 for malformed results (footnote 2 of the paper). *)

val session_id : int -> string
(** The session id used for sender i, shared with adversaries that need
    to speak the same wire format. *)

val sequential : Session.scheme -> Sb_sim.Protocol.t
val concurrent : Session.scheme -> Sb_sim.Protocol.t

val single : Session.scheme -> Sb_sim.Protocol.t
(** One session only ("single-<scheme>"): P_0 is the sender, every
    party outputs that session's result directly (no bit coercion, no
    [Msg.List]). The Θ(n²)-message unit the scaling sweep measures —
    the full n-session compositions above cost a factor n more and
    would conflate composition cost with substrate cost. *)

val window : mode:[ `Sequential | `Concurrent ] -> scheme_rounds:int -> sender:int -> int * int
(** [window ~mode ~scheme_rounds ~sender] is the inclusive network-round
    interval during which the sender's session is active; exposed so
    adversaries can align their own session handling. *)
