open Sb_sim

let default = Msg.Bit false

let encode_pair (path, v) =
  Msg.List [ Msg.List (List.map (fun i -> Msg.Int i) path); v ]

let decode_pair = function
  | Msg.List [ Msg.List path; v ] ->
      let ints =
        List.filter_map (function Msg.Int i -> Some i | _ -> None) path
      in
      if List.length ints = List.length path then Some (ints, v) else None
  | _ -> None

let distinct_slow l = List.length (List.sort_uniq Int.compare l) = List.length l

(* Distinctness of a path's party indices, via the session's scratch
   membership vector (marked bits are cleared again before returning,
   so a check costs O(path), not O(n)). Any out-of-range index
   (adversary-supplied paths are unconstrained) falls back to the
   seed's sort_uniq check over the whole list, so acceptance decisions
   are bit-for-bit those of the seed (pinned differentially in
   test_broadcast.ml). *)
let distinct scratch ~n l =
  let rec go = function
    | [] -> Some true
    | i :: rest ->
        if i < 0 || i >= n then None
        else if Sb_util.Bitvec.Mut.get scratch i then Some false
        else begin
          Sb_util.Bitvec.Mut.set scratch i true;
          go rest
        end
  in
  let r = go l in
  List.iter (fun i -> if i >= 0 && i < n then Sb_util.Bitvec.Mut.set scratch i false) l;
  match r with Some b -> b | None -> distinct_slow l

let scheme =
  {
    Session.scheme_name = "eig";
    rounds = (fun ctx -> ctx.Ctx.thresh + 1);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let tree : (int list, Msg.t) Hashtbl.t = Hashtbl.create 64 in
        let last_level : (int list * Msg.t) list ref = ref [] in
        let scratch = Sb_util.Bitvec.Mut.create n in
        let store ~round inbox =
          List.iter
            (fun (e : Envelope.t) ->
              let src = Envelope.src_party e in
              match Option.map Msg.to_list_exn (Session.unwrap ~sid e.Envelope.body) with
              | Some pairs ->
                  List.iter
                    (fun pair ->
                      match decode_pair pair with
                      | Some (path, v)
                        when List.length path = round
                             && distinct scratch ~n path
                             && (match path with p0 :: _ -> p0 = sender | [] -> false)
                             && (match List.rev path with last :: _ -> Some last = src | [] -> false)
                             && not (Hashtbl.mem tree path) ->
                          Hashtbl.replace tree path v;
                          last_level := (path, v) :: !last_level
                      | _ -> ())
                    pairs
              | None -> ()
              | exception Invalid_argument _ -> ())
            inbox
        in
        let broadcast_pairs pairs =
          if pairs = [] then []
          else
            Ctx.to_all ctx ~src:me
              (Session.wrap ~sid (Msg.List (List.map encode_pair pairs)))
        in
        let step ~round ~inbox =
          last_level := [];
          store ~round inbox;
          if round = 0 then (
            match value with
            | Some v ->
                Hashtbl.replace tree [ sender ] v;
                broadcast_pairs [ ([ sender ], v) ]
            | None -> [])
          else if round <= t then
            (* Relay every level-[round] report not already mentioning me. *)
            broadcast_pairs
              (List.filter_map
                 (fun (path, v) ->
                   if List.mem me path then None else Some (path @ [ me ], v))
                 !last_level)
          else []
        in
        let result () =
          let rec resolve path =
            if List.length path = t + 1 then
              Option.value (Hashtbl.find_opt tree path) ~default
            else begin
              let children =
                List.filter_map
                  (fun j -> if List.mem j path then None else Some (resolve (path @ [ j ])))
                  (List.init n Fun.id)
              in
              (* Strict majority of children, else default. *)
              let counts = Hashtbl.create 8 in
              List.iter
                (fun v ->
                  let key = Msg.serialize v in
                  let c = match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0 in
                  Hashtbl.replace counts key (c + 1, v))
                children;
              let best = ref (0, default) in
              Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
              if 2 * fst !best > List.length children then snd !best else default
            end
          in
          if t = 0 then Option.value (Hashtbl.find_opt tree [ sender ]) ~default
          else resolve [ sender ]
        in
        { Session.step; result });
  }
