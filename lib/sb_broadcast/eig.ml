open Sb_sim

let default = Msg.Bit false

let encode_pair (path, v) =
  Msg.List [ Msg.List (List.map (fun i -> Msg.Int i) path); v ]

let decode_pair = function
  | Msg.List [ Msg.List path; v ] ->
      let ints =
        List.filter_map (function Msg.Int i -> Some i | _ -> None) path
      in
      if List.length ints = List.length path then Some (ints, v) else None
  | _ -> None

let distinct l = List.length (List.sort_uniq Int.compare l) = List.length l

let scheme =
  {
    Session.scheme_name = "eig";
    rounds = (fun ctx -> ctx.Ctx.thresh + 1);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let tree : (int list, Msg.t) Hashtbl.t = Hashtbl.create 64 in
        let last_level : (int list * Msg.t) list ref = ref [] in
        let store ~round inbox =
          List.iter
            (fun (e : Envelope.t) ->
              let src = Envelope.src_party e in
              match Option.map Msg.to_list_exn (Session.unwrap ~sid e.Envelope.body) with
              | Some pairs ->
                  List.iter
                    (fun pair ->
                      match decode_pair pair with
                      | Some (path, v)
                        when List.length path = round
                             && distinct path
                             && (match path with p0 :: _ -> p0 = sender | [] -> false)
                             && (match List.rev path with last :: _ -> Some last = src | [] -> false)
                             && not (Hashtbl.mem tree path) ->
                          Hashtbl.replace tree path v;
                          last_level := (path, v) :: !last_level
                      | _ -> ())
                    pairs
              | None -> ()
              | exception Invalid_argument _ -> ())
            inbox
        in
        let broadcast_pairs pairs =
          if pairs = [] then []
          else
            List.map
              (fun (e : Envelope.t) ->
                { e with Envelope.body = Session.wrap ~sid e.Envelope.body })
              (Envelope.to_all ~n ~src:me (Msg.List (List.map encode_pair pairs)))
        in
        let step ~round ~inbox =
          last_level := [];
          store ~round inbox;
          if round = 0 then (
            match value with
            | Some v ->
                Hashtbl.replace tree [ sender ] v;
                broadcast_pairs [ ([ sender ], v) ]
            | None -> [])
          else if round <= t then
            (* Relay every level-[round] report not already mentioning me. *)
            broadcast_pairs
              (List.filter_map
                 (fun (path, v) ->
                   if List.mem me path then None else Some (path @ [ me ], v))
                 !last_level)
          else []
        in
        let result () =
          let rec resolve path =
            if List.length path = t + 1 then
              Option.value (Hashtbl.find_opt tree path) ~default
            else begin
              let children =
                List.filter_map
                  (fun j -> if List.mem j path then None else Some (resolve (path @ [ j ])))
                  (List.init n Fun.id)
              in
              (* Strict majority of children, else default. *)
              let counts = Hashtbl.create 8 in
              List.iter
                (fun v ->
                  let key = Msg.serialize v in
                  let c = match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0 in
                  Hashtbl.replace counts key (c + 1, v))
                children;
              let best = ref (0, default) in
              Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
              if 2 * fst !best > List.length children then snd !best else default
            end
          in
          if t = 0 then Option.value (Hashtbl.find_opt tree [ sender ]) ~default
          else resolve [ sender ]
        in
        { Session.step; result });
  }
