open Sb_sim

let default = Msg.Bit false

let scheme =
  {
    Session.scheme_name = "send-echo";
    rounds = (fun _ -> 2);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let received = ref None in
        (* Echo slots, array-backed: the seed kept a per-source
           hashtable with Hashtbl.replace last-write-wins semantics;
           a membership Bitvec plus a value array preserves exactly
           that (last write to a slot wins, absentees fall back to the
           default in [result]) without per-lookup hashing.
           test_broadcast.ml pins this differentially against the
           seed. *)
        let echo_seen = Sb_util.Bitvec.Mut.create n in
        let echo_val = Array.make n default in
        let send_all m = Ctx.to_all ctx ~src:me (Session.wrap ~sid m) in
        let step ~round ~inbox =
          let payloads =
            List.filter_map
              (fun (e : Envelope.t) ->
                match (Envelope.src_party e, Session.unwrap ~sid e.body) with
                | Some src, Some m -> Some (src, m)
                | _ -> None)
              inbox
          in
          match round with
          | 0 -> (
              match value with
              | Some v ->
                  received := Some v;
                  send_all v
              | None -> [])
          | 1 ->
              (* Echo what the sender said (or the default if silent). *)
              if me <> sender then
                received :=
                  Some
                    (match List.assoc_opt sender payloads with Some m -> m | None -> default);
              let v = Option.value !received ~default in
              send_all (Msg.Tag ("echo", v))
          | 2 ->
              List.iter
                (fun (src, m) ->
                  match m with
                  | Msg.Tag ("echo", v) ->
                      Sb_util.Bitvec.Mut.set echo_seen src true;
                      echo_val.(src) <- v
                  | _ -> ())
                payloads;
              []
          | _ -> []
        in
        let result () =
          (* Majority over all n echo slots, absentees counted as default. *)
          let counts = Hashtbl.create 8 in
          for src = 0 to n - 1 do
            let v = if Sb_util.Bitvec.Mut.get echo_seen src then echo_val.(src) else default in
            let key = Msg.serialize v in
            let c = match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0 in
            Hashtbl.replace counts key (c + 1, v)
          done;
          let best = ref (0, default) in
          Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
          snd !best
        in
        { Session.step; result });
  }
