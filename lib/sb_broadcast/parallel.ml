open Sb_sim

let session_id i = "s" ^ string_of_int i

let window ~mode ~scheme_rounds ~sender =
  match mode with
  | `Sequential ->
      let r0 = sender * (scheme_rounds + 1) in
      (r0, r0 + scheme_rounds)
  | `Concurrent -> (0, scheme_rounds)

let to_bit m = match m with Msg.Bit b -> b | _ -> false

let make mode (scheme : Session.scheme) name =
  let rounds ctx =
    let r = scheme.rounds ctx in
    match mode with
    | `Sequential -> (ctx.Ctx.n * (r + 1)) - 1
    | `Concurrent -> r
  in
  let make_party ctx ~rng ~id ~input =
    let n = ctx.Ctx.n in
    let sessions =
      Array.init n (fun sender ->
          let value = if sender = id then Some input else None in
          scheme.create ctx ~rng:(Sb_util.Rng.split rng) ~sid:(session_id sender) ~sender
            ~me:id ~value)
    in
    let scheme_rounds = scheme.rounds ctx in
    let step ~round ~inbox =
      List.concat
        (List.init n (fun sender ->
             let lo, hi = window ~mode ~scheme_rounds ~sender in
             if round < lo || round > hi then []
             else
               let local = round - lo in
               let sid = session_id sender in
               sessions.(sender).Session.step ~round:local
                 ~inbox:(Session.inbox_for ~sid inbox)))
    in
    let output () =
      Msg.bits (List.init n (fun sender -> to_bit (sessions.(sender).Session.result ())))
    in
    { Party.step; output }
  in
  { Protocol.name; rounds; make_functionality = None; make_party }

let sequential scheme = make `Sequential scheme ("sequential-" ^ scheme.Session.scheme_name)
let concurrent scheme = make `Concurrent scheme ("concurrent-" ^ scheme.Session.scheme_name)
