open Sb_sim

let session_id i = "s" ^ string_of_int i

let window ~mode ~scheme_rounds ~sender =
  match mode with
  | `Sequential ->
      let r0 = sender * (scheme_rounds + 1) in
      (r0, r0 + scheme_rounds)
  | `Concurrent -> (0, scheme_rounds)

let to_bit m = match m with Msg.Bit b -> b | _ -> false

(* One-pass sid bucketing. The per-party step used to re-filter its
   whole inbox once per session ([Session.inbox_for], n scans per
   step — the extra factor of n that dominated concurrent-mode runs at
   large n); instead, parse the sender index k out of each envelope's
   "bc:s<k>" tag and dispatch it once. The parse is strict — every
   tag character after "bc:s" a digit, no leading zeros, k < n — so an
   envelope lands in bucket k exactly when its tag equals
   [Session.tag (session_id k)] for some k < n, i.e. exactly when the
   seed's per-sid filter would have kept it; everything else is
   dropped, as before. Buckets preserve inbox order, so each session
   sees byte-identical input. *)
let bucket_by_sid ~n envs =
  let buckets = Array.make n [] in
  let pre = "bc:s" in
  let lp = String.length pre in
  List.iter
    (fun (e : Envelope.t) ->
      match e.Envelope.body with
      | Msg.Tag (t, _) ->
          let lt = String.length t in
          (* <= 9 digits also guards the accumulator against overflow
             on adversarial tags; any real k has far fewer. *)
          if
            lt > lp
            && lt <= lp + 9
            && String.sub t 0 lp = pre
            && not (t.[lp] = '0' && lt > lp + 1)
          then begin
            let ok = ref true and k = ref 0 in
            for i = lp to lt - 1 do
              let c = t.[i] in
              if c < '0' || c > '9' then ok := false
              else k := (!k * 10) + (Char.code c - Char.code '0')
            done;
            if !ok && !k < n then buckets.(!k) <- e :: buckets.(!k)
          end
      | _ -> ())
    envs;
  Array.iteri (fun i l -> buckets.(i) <- List.rev l) buckets;
  buckets

let make mode (scheme : Session.scheme) name =
  let rounds ctx =
    let r = scheme.rounds ctx in
    match mode with
    | `Sequential -> (ctx.Ctx.n * (r + 1)) - 1
    | `Concurrent -> r
  in
  let make_party ctx ~rng ~id ~input =
    let n = ctx.Ctx.n in
    let sessions =
      Array.init n (fun sender ->
          let value = if sender = id then Some input else None in
          scheme.create ctx ~rng:(Sb_util.Rng.split rng) ~sid:(session_id sender) ~sender
            ~me:id ~value)
    in
    let scheme_rounds = scheme.rounds ctx in
    let step ~round ~inbox =
      let buckets = bucket_by_sid ~n inbox in
      List.concat
        (List.init n (fun sender ->
             let lo, hi = window ~mode ~scheme_rounds ~sender in
             if round < lo || round > hi then []
             else
               sessions.(sender).Session.step ~round:(round - lo)
                 ~inbox:buckets.(sender)))
    in
    let output () =
      Msg.bits (List.init n (fun sender -> to_bit (sessions.(sender).Session.result ())))
    in
    { Party.step; output }
  in
  { Protocol.name; rounds; make_functionality = None; make_party }

let sequential scheme = make `Sequential scheme ("sequential-" ^ scheme.Session.scheme_name)
let concurrent scheme = make `Concurrent scheme ("concurrent-" ^ scheme.Session.scheme_name)

(* One session only: sender P_0 broadcasts, everybody else listens.
   This is the Θ(n^2)-message unit the scaling sweep (E17) measures —
   a whole n-session parallel composition is a factor n more work and
   would conflate composition cost with substrate cost. *)
let single (scheme : Session.scheme) =
  let sid = session_id 0 in
  let make_party ctx ~rng ~id ~input =
    let value = if id = 0 then Some input else None in
    let session =
      scheme.create ctx ~rng:(Sb_util.Rng.split rng) ~sid ~sender:0 ~me:id ~value
    in
    let step ~round ~inbox =
      session.Session.step ~round ~inbox:(Session.inbox_for ~sid inbox)
    in
    let output () = session.Session.result () in
    { Party.step; output }
  in
  {
    Protocol.name = "single-" ^ scheme.Session.scheme_name;
    rounds = scheme.rounds;
    make_functionality = None;
    make_party;
  }
