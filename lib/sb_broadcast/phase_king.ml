open Sb_sim

let default = Msg.Bit false

(* Local schedule: round 0 the sender sends; round 1+2p all-to-all
   exchange of phase p; round 2+2p the king (party p) speaks; the
   king's value is processed on receipt, i.e. in the next step. Total
   send rounds: 2t + 2; the session is read after round 2t + 3. *)
let scheme =
  {
    Session.scheme_name = "phase-king";
    rounds = (fun ctx -> (2 * ctx.Ctx.thresh) + 3);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let current = ref (Option.value value ~default) in
        let strong = ref false in
        let wrap m = Session.wrap ~sid m in
        let send_all m = Ctx.to_all ctx ~src:me (wrap m) in
        let payloads inbox =
          List.filter_map
            (fun (e : Envelope.t) ->
              match (Envelope.src_party e, Session.unwrap ~sid e.Envelope.body) with
              | Some src, Some m -> Some (src, m)
              | _ -> None)
            inbox
        in
        let step ~round ~inbox =
          let msgs = payloads inbox in
          (* 1. Process whatever this round delivered. *)
          if round = 1 && me <> sender then begin
            match List.assoc_opt sender msgs with
            | Some (Msg.Tag ("pk-send", v)) -> current := v
            | _ -> current := default
          end;
          if round >= 2 && round mod 2 = 0 then begin
            (* Deliveries of an all-to-all exchange: adopt majority. *)
            let counts = Hashtbl.create 8 in
            List.iter
              (fun (_, m) ->
                match m with
                | Msg.Tag ("pk-val", v) ->
                    let key = Msg.serialize v in
                    let c = match Hashtbl.find_opt counts key with Some (c, _) -> c | None -> 0 in
                    Hashtbl.replace counts key (c + 1, v)
                | _ -> ())
              msgs;
            let best = ref (0, default) in
            Hashtbl.iter (fun _ (c, v) -> if c > fst !best then best := (c, v)) counts;
            current := snd !best;
            strong := 2 * fst !best > n + (2 * t)
          end;
          if round >= 3 && round mod 2 = 1 then begin
            (* Delivery of phase ((round-3)/2)'s king value. *)
            let king = (round - 3) / 2 in
            match List.assoc_opt king msgs with
            | Some (Msg.Tag ("pk-king", v)) -> if not !strong then current := v
            | _ -> if not !strong then current := default
          end;
          (* 2. Send this round's traffic. *)
          if round = 0 then (
            match value with
            | Some v -> send_all (Msg.Tag ("pk-send", v))
            | None -> [])
          else if round >= 1 && round <= (2 * t) + 1 && round mod 2 = 1 then
            (* Phase (round-1)/2 all-to-all exchange. *)
            send_all (Msg.Tag ("pk-val", !current))
          else if round >= 2 && round <= (2 * t) + 2 && round mod 2 = 0 && me = (round - 2) / 2
          then
            (* I am this phase's king. *)
            send_all (Msg.Tag ("pk-king", !current))
          else []
        in
        let result () = !current in
        { Session.step; result });
  }
