(** Dolev–Strong authenticated broadcast: t+1 rounds, tolerates any
    number of corruptions t < n.

    The sender signs its value and sends it to everyone. A party that
    by local round r holds a value carrying r valid signatures from r
    distinct parties (the first being the sender) accepts it; if it is
    the first or second value accepted and r ≤ t, it appends its own
    signature and relays to everyone next round. After round t+1 a
    party outputs the unique accepted value, or the default 0 if it
    accepted zero or more than one value.

    Signatures come from the ideal registry in the execution context
    ({!Sb_crypto.Sig}), i.e. the classic trusted-PKI setting. The
    flat (multi-signature set) variant is used rather than nested
    chains; with ideal signatures the two are equivalent and the flat
    one is simpler to check. *)

val scheme : Session.scheme
