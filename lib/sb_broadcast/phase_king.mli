(** Phase-King broadcast (Berman–Garay–Perry), tolerating t < n/4
    corruptions without signatures in 2t + 3 rounds.

    The sender distributes its value, then the parties run t+1 phases
    of the phase-king consensus on what they received: each phase is
    one all-to-all exchange (adopt the majority value, remember how
    strong it was) followed by the phase's king broadcasting its own
    value, which a party adopts unless its majority was overwhelming
    (count > n/2 + t). With t+1 phases some king is honest, which
    locks agreement; an honest sender's value survives every phase
    because its support n − t exceeds the override threshold when
    t < n/4.

    Included as the constant-round-per-instance alternative to
    {!Dolev_strong} (which needs signatures) and {!Eig} (which needs
    exponential messages): three genuinely different points in the
    substrate design space for the E8 comparison. *)

val scheme : Session.scheme
