open Sb_sim
open Sb_util

let default = Msg.Bit false

(* The string every signature in session [sid] covers for value [v]. *)
let base ~sid v = "ds:" ^ sid ^ ":" ^ Msg.serialize v

(* Wire format: List [value; List [List [Int signer; Str sig]; ...]] *)
let encode v sigs =
  Msg.List [ v; Msg.List (List.map (fun (i, s) -> Msg.List [ Msg.Int i; Msg.Str s ]) sigs) ]

let decode m =
  match m with
  | Msg.List [ v; Msg.List sigs ] ->
      let decode_sig = function
        | Msg.List [ Msg.Int i; Msg.Str s ] -> Some (i, s)
        | _ -> None
      in
      let decoded = List.filter_map decode_sig sigs in
      if List.length decoded = List.length sigs then Some (v, decoded) else None
  | _ -> None

(* Marks the chain's signer set in the session's scratch vector and
   reads off sender/own membership, clearing the marked bits again
   before returning so the scratch costs O(chain) per call. Returns
   [None] if any signer index is duplicated or out of range: one pass
   replaces the seed's sort_uniq-based distinctness check plus two
   list scans (sender membership, own-signature lookup); an
   out-of-range signer made the seed's signature verification fail, so
   collapsing it into [None] keeps chain validity decisions
   identical. *)
let signer_mask scratch ~n ~sender ~me chain =
  let rec mark = function
    | [] -> true
    | (i, _) :: rest ->
        if i < 0 || i >= n || Bitvec.Mut.get scratch i then false
        else begin
          Bitvec.Mut.set scratch i true;
          mark rest
        end
  in
  let ok = mark chain in
  let res =
    if ok then Some (Bitvec.Mut.get scratch sender, Bitvec.Mut.get scratch me)
    else None
  in
  (* Clear exactly the in-range bits this chain touched; on the failure
     path the unmarked suffix is already false, so re-clearing it is a
     no-op. *)
  List.iter (fun (i, _) -> if i >= 0 && i < n then Bitvec.Mut.set scratch i false) chain;
  res

let scheme =
  {
    Session.scheme_name = "dolev-strong";
    rounds = (fun ctx -> ctx.Ctx.thresh + 1);
    create =
      (fun ctx ~rng:_ ~sid ~sender ~me ~value ->
        assert ((me = sender) = Option.is_some value);
        let n = ctx.Ctx.n in
        let t = ctx.Ctx.thresh in
        let sigs = ctx.Ctx.sigs in
        let accepted : Msg.t list ref = ref [] in
        (* Values to relay next round, with their signature sets. *)
        let outbox : (Msg.t * (int * string) list) list ref = ref [] in
        let scratch = Bitvec.Mut.create n in
        let send_all m = Ctx.to_all ctx ~src:me (Session.wrap ~sid m) in
        let valid_sigs v chain =
          List.for_all
            (fun (i, s) -> Sb_crypto.Sig.verify sigs ~signer:i (base ~sid v) s)
            chain
        in
        let process ~round inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match Option.bind (Session.unwrap ~sid e.Envelope.body) decode with
              | Some (v, chain) -> (
                  (* Signatures are prepended as the value travels, so
                     the sender's signature sits at the tail. *)
                  match signer_mask scratch ~n ~sender ~me chain with
                  | Some (signed_by_sender, signed_by_me)
                    when List.length chain >= round
                         && signed_by_sender
                         && valid_sigs v chain
                         && (not (List.exists (Msg.equal v) !accepted))
                         && List.length !accepted < 2 ->
                      accepted := v :: !accepted;
                      if round <= t && not signed_by_me then
                        outbox :=
                          (v, (me, Sb_crypto.Sig.sign sigs ~signer:me (base ~sid v)) :: chain)
                          :: !outbox
                  | _ -> ())
              | None -> ())
            inbox
        in
        let step ~round ~inbox =
          process ~round inbox;
          if round = 0 then begin
            match value with
            | Some v ->
                accepted := [ v ];
                let chain = [ (me, Sb_crypto.Sig.sign sigs ~signer:me (base ~sid v)) ] in
                send_all (encode v chain)
            | None -> []
          end
          else begin
            let out =
              List.concat_map (fun (v, chain) -> send_all (encode v chain)) !outbox
            in
            outbox := [];
            out
          end
        in
        let result () = match !accepted with [ v ] -> v | _ -> default in
        { Session.step; result });
  }
