(** Semi-honest BGW evaluation of an arithmetic circuit on the
    simulated network (Ben-Or–Goldwasser–Wigderson, STOC 1988 — the
    [2] of the paper's Claim 6.5).

    Honest-majority (2t < n) Shamir-based evaluation:

    - round 0: every party deals degree-t Shamir shares of each of its
      input wires;
    - one communication round per multiplication layer: parties
      multiply their shares locally (degree 2t), redistribute degree-t
      shares of the product point, and recombine with the public
      Lagrange coefficients (GRR degree reduction);
    - one final round of output-share exchange and interpolation.

    Addition, subtraction and scaling are local. Security is
    semi-honest: corrupted parties may choose arbitrary INPUTS (which
    is all the Lemma 6.4 adversary A* needs — it only flips its
    auxiliary input bits) but follow the protocol; t < n/2 shares
    reveal nothing about honest inputs, and the tests check the
    end-to-end functionality against {!Circuit.eval_plain}. *)

val protocol :
  name:string ->
  circuit:Circuit.t ->
  encode:(rng:Sb_util.Rng.t -> id:int -> Sb_sim.Msg.t -> Sb_crypto.Field.t list) ->
  decode:(Sb_crypto.Field.t list -> Sb_sim.Msg.t) ->
  Sb_sim.Protocol.t
(** [encode] maps a party's protocol input to its circuit input wires
    (count must equal the circuit's declared inputs for that party;
    the rng serves auxiliary random inputs); [decode] maps the public
    output-wire values to the party's protocol output. Requires
    [circuit]'s party count = ctx.n and 2·ctx.thresh < ctx.n at run
    time. *)

val rounds : Circuit.t -> int
(** 2 + multiplication layers. *)
