open Sb_sim
open Sb_crypto

let rounds circuit = 2 + Circuit.layers circuit

(* Lagrange coefficients at 0 for the point set {1, …, n}: the public
   recombination vector of GRR degree reduction (valid for any shared
   polynomial of degree < n, in particular the degree-2t products).
   Served by the shared coefficient cache — one O(n²) computation per
   domain instead of one per party per run. *)
let lambdas n = Lagrange.at_zero n

let encode_pairs tag pairs =
  Msg.Tag (tag, Msg.List (List.map (fun (w, v) -> Msg.List [ Msg.Int w; Msg.Fe v ]) pairs))

let decode_pairs tag inbox =
  List.concat_map
    (fun (e : Envelope.t) ->
      match (Envelope.src_party e, e.Envelope.body) with
      | Some src, Msg.Tag (t, Msg.List l) when String.equal t tag ->
          List.filter_map
            (function Msg.List [ Msg.Int w; Msg.Fe v ] -> Some (src, w, v) | _ -> None)
            l
      | _ -> [])
    inbox

let protocol ~name ~circuit ~encode ~decode =
  let total_rounds = rounds circuit in
  (* The circuit is immutable once the protocol is built, so every
     derived view is computed here rather than per party step: the
     gates array ([Circuit.gates] reverses a list per call), the mult
     depth, the per-wire reshare layer, the output wires, and the
     per-layer wire tags (identical strings to the old per-envelope
     sprintf, so wire bytes are unchanged). The samplers run one
     [make_party] per party per Monte-Carlo run; these views used to
     be recomputed twice per step. *)
  let n_layers = Circuit.layers circuit in
  let gates = Circuit.gates circuit in
  let nwires = Array.length gates in
  let output_wires = Circuit.outputs circuit in
  let mul_layer_of = Array.init nwires (fun w -> Circuit.mul_layer circuit w) in
  let mul_tag = Array.init (max 1 n_layers) (fun l -> "bgw:mul:" ^ string_of_int l) in
  let make_party (ctx : Ctx.t) ~rng ~id ~input =
    assert (Circuit.n_parties circuit = ctx.Ctx.n);
    assert (2 * ctx.Ctx.thresh < ctx.Ctx.n);
    let n = ctx.Ctx.n in
    let t = ctx.Ctx.thresh in
    let lam = lambdas n in
    (* My circuit inputs, in declaration order. *)
    let my_inputs = encode ~rng ~id input in
    if List.length my_inputs <> Circuit.input_count circuit ~party:id then
      invalid_arg "Bgw.protocol: encode arity mismatch";
    let my_inputs = Array.of_list my_inputs in
    (* Shares I hold: input-wire shares arrive in round 1; mult wires
       resolve as their layer's reshares arrive. *)
    let input_share : Field.t option array = Array.make nwires None in
    let mul_share : Field.t option array = Array.make nwires None in
    (* Collected degree-reduction subshares per mult wire. *)
    let pending : (int, (int * Field.t) list ref) Hashtbl.t = Hashtbl.create 16 in
    (* Output shares received per output wire, per source party. *)
    let out_shares : (int, (int * Field.t) list ref) Hashtbl.t = Hashtbl.create 8 in
    let result = ref Msg.Unit in
    let bucket table w =
      match Hashtbl.find_opt table w with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace table w r;
          r
    in
    (* Evaluate every wire whose dependencies are available; returns my
       current share per wire (None where blocked on a mult). *)
    let evaluate () =
      let values : Field.t option array = Array.make nwires None in
      Array.iteri
        (fun w g ->
          let v =
            match g with
            | Circuit.Input _ -> input_share.(w)
            | Circuit.Const v -> Some v (* shared as the constant polynomial *)
            | Circuit.Add (a, b) -> (
                match (values.((a :> int)), values.((b :> int))) with
                | Some x, Some y -> Some (Field.add x y)
                | _ -> None)
            | Circuit.Sub (a, b) -> (
                match (values.((a :> int)), values.((b :> int))) with
                | Some x, Some y -> Some (Field.sub x y)
                | _ -> None)
            | Circuit.Scale (k, a) -> Option.map (Field.mul k) values.((a :> int))
            | Circuit.Mul _ -> mul_share.(w)
          in
          values.(w) <- v)
        gates;
      values
    in
    (* Emit degree-reduction subshares for every layer-[layer] mult
       whose operands are ready. *)
    let reshare_layer layer values =
      let payload_for = Array.make n [] in
      Array.iteri
        (fun w g ->
          match g with
          | Circuit.Mul (a, b) when mul_layer_of.(w) = layer -> (
              match (values.((a :> int)), values.((b :> int))) with
              | Some x, Some y ->
                  let d = Field.mul x y in
                  let shares, _ = Shamir.share rng ~threshold:t ~parties:n ~secret:d in
                  Array.iteri
                    (fun j s ->
                      payload_for.(j) <- (w, s.Shamir.value) :: payload_for.(j))
                    shares
              | _ -> ())
          | _ -> ())
        gates;
      List.concat
        (List.init n (fun j ->
             if payload_for.(j) = [] then []
             else
               [ Envelope.make ~src:id ~dst:j (encode_pairs mul_tag.(layer) payload_for.(j)) ]))
    in
    let step ~round ~inbox =
      (* 1. Absorb whatever arrived. *)
      if round = 1 then
        List.iter
          (fun (_, w, v) -> if w < nwires then input_share.(w) <- Some v)
          (decode_pairs "bgw:in" inbox);
      if round >= 2 && round <= n_layers + 1 then begin
        let layer = round - 2 in
        List.iter
          (fun (src, w, v) ->
            let b = bucket pending w in
            if not (List.mem_assoc src !b) then b := (src, v) :: !b)
          (decode_pairs mul_tag.(layer) inbox);
        (* Resolve this layer's mult wires: c = Σ λ_i · subshare_i. *)
        Hashtbl.iter
          (fun w b ->
            if mul_share.(w) = None && List.length !b = n then
              mul_share.(w) <-
                Some
                  (List.fold_left
                     (fun acc (src, v) -> Field.add acc (Field.mul lam.(src) v))
                     Field.zero !b))
          pending
      end;
      if round = total_rounds then begin
        List.iter
          (fun (src, w, v) ->
            let b = bucket out_shares w in
            if not (List.mem_assoc src !b) then b := (src, v) :: !b)
          (decode_pairs "bgw:out" inbox);
        (* Interpolate every output wire. *)
        let outs =
          List.map
            (fun w ->
              let b = bucket out_shares (Circuit.wire_index w) in
              let points =
                List.map (fun (src, v) -> { Shamir.index = src; value = v }) !b
              in
              if List.length points >= t + 1 then Shamir.reconstruct points else Field.zero)
            output_wires
        in
        result := decode outs
      end;
      (* 2. Send this round's traffic. *)
      if round = 0 then begin
        (* Deal shares of my inputs. *)
        let payload_for = Array.make n [] in
        let input_idx = ref 0 in
        Array.iteri
          (fun w g ->
            match g with
            | Circuit.Input (p, _) when p = id ->
                let v = my_inputs.(!input_idx) in
                incr input_idx;
                let shares, _ = Shamir.share rng ~threshold:t ~parties:n ~secret:v in
                Array.iteri
                  (fun j s -> payload_for.(j) <- (w, s.Shamir.value) :: payload_for.(j))
                  shares
            | _ -> ())
          gates;
        List.concat
          (List.init n (fun j ->
               if payload_for.(j) = [] then []
               else [ Envelope.make ~src:id ~dst:j (encode_pairs "bgw:in" payload_for.(j)) ]))
      end
      else if round >= 1 && round <= n_layers then reshare_layer (round - 1) (evaluate ())
      else if round = total_rounds - 1 then begin
        (* Broadcast my output shares. *)
        let values = evaluate () in
        let pairs =
          List.filter_map
            (fun w ->
              match values.(Circuit.wire_index w) with
              | Some v -> Some (Circuit.wire_index w, v)
              | None -> None)
            output_wires
        in
        if pairs = [] then [] else [ Envelope.broadcast ~src:id (encode_pairs "bgw:out" pairs) ]
      end
      else []
    in
    { Party.step; output = (fun () -> !result) }
  in
  {
    Protocol.name;
    rounds = (fun _ -> total_rounds);
    make_functionality = None;
    make_party;
  }
