open Sb_crypto

type wire = int

type gate =
  | Input of int * int
  | Const of Field.t
  | Add of wire * wire
  | Sub of wire * wire
  | Scale of Field.t * wire
  | Mul of wire * wire

type t = {
  n_parties : int;
  mutable gates : gate list; (* reversed *)
  mutable count : int;
  mutable input_counts : int array;
  mutable outs : wire list; (* reversed *)
  mutable depth : int array; (* multiplication depth per wire *)
}

let create ~n_parties =
  assert (n_parties >= 1);
  {
    n_parties;
    gates = [];
    count = 0;
    input_counts = Array.make n_parties 0;
    outs = [];
    depth = Array.make 16 0;
  }

let push c gate depth =
  let w = c.count in
  c.gates <- gate :: c.gates;
  c.count <- c.count + 1;
  if w >= Array.length c.depth then begin
    let bigger = Array.make (2 * Array.length c.depth) 0 in
    Array.blit c.depth 0 bigger 0 (Array.length c.depth);
    c.depth <- bigger
  end;
  c.depth.(w) <- depth;
  w

let depth_of c w = c.depth.(w)

let input c ~party =
  if party < 0 || party >= c.n_parties then invalid_arg "Circuit.input: bad party";
  let idx = c.input_counts.(party) in
  c.input_counts.(party) <- idx + 1;
  push c (Input (party, idx)) 0

let const c v = push c (Const v) 0
let add c a b = push c (Add (a, b)) (max (depth_of c a) (depth_of c b))
let sub c a b = push c (Sub (a, b)) (max (depth_of c a) (depth_of c b))
let scale c k a = push c (Scale (k, a)) (depth_of c a)
let mul c a b = push c (Mul (a, b)) (1 + max (depth_of c a) (depth_of c b))
let output c w = c.outs <- w :: c.outs

let bit_xor c a b =
  (* a + b - 2ab *)
  let ab = mul c a b in
  sub c (add c a b) (scale c (Field.of_int 2) ab)

let bit_not c a = sub c (const c Field.one) a
let bit_and c a b = mul c a b

let xor_fold c = function
  | [] -> invalid_arg "Circuit.xor_fold: empty"
  | w :: rest -> List.fold_left (fun acc v -> bit_xor c acc v) w rest

let n_parties c = c.n_parties
let input_count c ~party = c.input_counts.(party)
let output_count c = List.length c.outs
let gates c = Array.of_list (List.rev c.gates)
let wire_index w = w
let outputs c = List.rev c.outs

let mul_count c =
  List.fold_left (fun acc g -> match g with Mul _ -> acc + 1 | _ -> acc) 0 c.gates

let layers c =
  let m = ref 0 in
  Array.iteri
    (fun w g -> match g with Mul _ -> m := max !m c.depth.(w) | _ -> ())
    (gates c);
  !m

let mul_layer c w = c.depth.(w) - 1

let eval_plain c ~inputs =
  if Array.length inputs <> c.n_parties then invalid_arg "Circuit.eval_plain: arity";
  Array.iteri
    (fun p l ->
      if List.length l <> c.input_counts.(p) then
        invalid_arg "Circuit.eval_plain: wrong input count")
    inputs;
  let values = Array.make c.count Field.zero in
  Array.iteri
    (fun w g ->
      values.(w) <-
        (match g with
        | Input (p, i) -> List.nth inputs.(p) i
        | Const v -> v
        | Add (a, b) -> Field.add values.(a) values.(b)
        | Sub (a, b) -> Field.sub values.(a) values.(b)
        | Scale (k, a) -> Field.mul k values.(a)
        | Mul (a, b) -> Field.mul values.(a) values.(b)))
    (gates c);
  List.map (fun w -> values.(w)) (outputs c)
