(** Arithmetic circuits over {!Sb_crypto.Field}, the language of the
    BGW engine.

    A circuit is built imperatively: declare each party's inputs (in a
    fixed order), combine wires with gates, mark outputs. Addition,
    subtraction and scaling are free (local on shares); every
    multiplication costs one BGW communication round unless it shares
    a layer with independent multiplications — [layers] computes that
    schedule.

    [eval_plain] evaluates the circuit in the clear and is the
    correctness reference the protocol (and the tests) compare
    against. *)

type wire = private int
(** Wires are gate indices; [wire_index] gives the raw index. *)

type t

val create : n_parties:int -> t

val input : t -> party:int -> wire
(** Declare the next input wire of [party]; inputs are consumed in
    declaration order when the protocol runs. *)

val const : t -> Sb_crypto.Field.t -> wire
val add : t -> wire -> wire -> wire
val sub : t -> wire -> wire -> wire
val scale : t -> Sb_crypto.Field.t -> wire -> wire
val mul : t -> wire -> wire -> wire
val output : t -> wire -> unit

(* Convenience bit algebra (operands assumed 0/1-valued). *)

val bit_xor : t -> wire -> wire -> wire
(** x + y − 2xy: one multiplication. *)

val bit_not : t -> wire -> wire
val bit_and : t -> wire -> wire -> wire

val xor_fold : t -> wire list -> wire
(** XOR of a non-empty list, |list|−1 multiplications. *)

val n_parties : t -> int
val input_count : t -> party:int -> int
val output_count : t -> int
val mul_count : t -> int

val layers : t -> int
(** Number of multiplication layers (communication rounds the protocol
    needs beyond input sharing and output reconstruction). *)

val eval_plain : t -> inputs:Sb_crypto.Field.t list array -> Sb_crypto.Field.t list
(** [inputs.(i)] lists party i's input values in declaration order.
    Raises [Invalid_argument] on arity mismatch. *)

(* Protocol-facing introspection (used by {!Bgw}). *)

type gate =
  | Input of int * int  (** party, index within that party's inputs *)
  | Const of Sb_crypto.Field.t
  | Add of wire * wire
  | Sub of wire * wire
  | Scale of Sb_crypto.Field.t * wire
  | Mul of wire * wire

val gates : t -> gate array
(** Topologically ordered: a gate only references earlier wires. *)

val wire_index : wire -> int
val outputs : t -> wire list
val mul_layer : t -> int -> int
(** Layer number of a multiplication gate's output wire, by raw wire
    index (0-based). *)
