open Sb_util
open Sb_sim

type spec = { protocol : Protocol.t; count : int }

type session_report = {
  index : int;
  shard : int;
  protocol : string;
  x : Bitvec.t;
  w : Bitvec.t;
  consistent : bool;
  rounds : int;
  p2p : int;
}

type aggregate = {
  sessions : int;
  consistent : int;
  shards : int;
  per_shard : int array;
  broadcasts : int;
  p2p : int;
  broadcast_bytes : int;
  p2p_bytes : int;
  wall_s : float;
  sessions_per_sec : float;
  msgs_per_sec : float;
  bytes_per_sec : float;
}

(* Deterministic batch counters; the per-shard counters are keyed by
   shard index (fixed layout), not by pool domain, so they are part of
   the jobs-invariant surface alongside exp.* and sim.*. *)
let m_sessions = Sb_obs.Metrics.counter "session.sessions"
let m_consistent = Sb_obs.Metrics.counter "session.consistent"

(* Wall-clock-derived rates: visibility only, never diffed. *)
let g_wall = Sb_obs.Metrics.gauge "session.batch_wall_s"
let g_sessions_ps = Sb_obs.Metrics.gauge "session.sessions_per_sec"
let g_msgs_ps = Sb_obs.Metrics.gauge "session.msgs_per_sec"
let g_bytes_ps = Sb_obs.Metrics.gauge "session.bytes_per_sec"

let shard_counter k = Sb_obs.Metrics.counter (Printf.sprintf "session.shard%d.sessions" k)

let comm_snapshot () =
  let c name = Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter name) in
  (c "sim.broadcasts", c "sim.p2p", c "sim.bytes.broadcast", c "sim.bytes.p2p")

(* Global session index -> protocol, via the cumulative spec bounds. *)
let protocol_at specs =
  let specs = Array.of_list specs in
  let bounds = Array.make (Array.length specs + 1) 0 in
  Array.iteri (fun k s -> bounds.(k + 1) <- bounds.(k) + s.count) specs;
  let rec find k i = if i < bounds.(k + 1) then specs.(k).protocol else find (k + 1) i in
  (find 0, bounds.(Array.length specs))

let consistent_w ~n outputs =
  let vectors = List.map (fun (_, m) -> Core.Announced.to_vector n m) outputs in
  match vectors with
  | [] -> (Bitvec.zero n, false)
  | Some first :: rest ->
      (first, List.for_all (function Some v -> Bitvec.equal v first | None -> false) rest)
  | None :: _ -> (Bitvec.zero n, false)

let run ?pool ?(adversary = Core.Adversaries.passive) ~setup ~dist specs rng =
  if specs = [] then invalid_arg "Engine.run: empty spec list";
  List.iter
    (fun s -> if s.count <= 0 then invalid_arg "Engine.run: spec count must be positive")
    specs;
  let pool = match pool with Some p -> p | None -> Sb_par.Pool.default () in
  let n = setup.Core.Setup.n in
  let protocol_of, total = protocol_at specs in
  (* Master-stream discipline: two pre-split children per session
     (input draw, execution) first, then one stream per shard for the
     shared context — all pure functions of the session count, so any
     pool size replays the same bytes. *)
  let streams = Sb_par.Partition.streams rng ~total ~draws_per_item:2 in
  let shards = Shard.layout ~total ~rng in
  let comm0 = comm_snapshot () in
  let t0 = Unix.gettimeofday () in
  let per_shard_reports =
    Sb_par.Pool.map_chunks pool shards ~f:(fun (shard : Shard.t) ->
        (* Built once per shard, shared by every session in it: the
           signature registry, commitment scheme and CRS of the
           context (the expensive per-run setup the samplers pay on
           every execution). *)
        let ctx = Shard.context setup shard in
        let reports =
          Array.init shard.Shard.len (fun j ->
              let i = shard.Shard.lo + j in
              let protocol = protocol_of i in
              let x = Sb_dist.Dist.sample dist streams.(2 * i) in
              let inputs = Array.init n (fun p -> Msg.Bit (Bitvec.get x p)) in
              let r =
                Network.run ctx ~rng:streams.((2 * i) + 1) ~protocol ~adversary ~inputs
                  ~record_trace:false ()
              in
              let w, consistent = consistent_w ~n r.Network.outputs in
              {
                index = i;
                shard = shard.Shard.index;
                protocol = protocol.Protocol.name;
                x;
                w;
                consistent;
                rounds = r.Network.rounds_used;
                p2p = r.Network.p2p_messages;
              })
        in
        if Sb_obs.Metrics.enabled () then begin
          Sb_obs.Metrics.incr ~by:shard.Shard.len (shard_counter shard.Shard.index);
          Core.Announced.note_domain_samples shard.Shard.len
        end;
        reports)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let bc0, p2p0, bcb0, p2pb0 = comm0 in
  let bc1, p2p1, bcb1, p2pb1 = comm_snapshot () in
  let reports = Array.concat (Array.to_list per_shard_reports) in
  let consistent =
    Array.fold_left
      (fun acc (r : session_report) -> if r.consistent then acc + 1 else acc)
      0 reports
  in
  let broadcasts = bc1 - bc0
  and p2p = p2p1 - p2p0
  and broadcast_bytes = bcb1 - bcb0
  and p2p_bytes = p2pb1 - p2pb0 in
  let rate v = if wall_s > 0.0 then float_of_int v /. wall_s else 0.0 in
  let aggregate =
    {
      sessions = total;
      consistent;
      shards = Array.length shards;
      per_shard = Array.map (fun (s : Shard.t) -> s.Shard.len) shards;
      broadcasts;
      p2p;
      broadcast_bytes;
      p2p_bytes;
      wall_s;
      sessions_per_sec = rate total;
      msgs_per_sec = rate (broadcasts + p2p);
      bytes_per_sec = rate (broadcast_bytes + p2p_bytes);
    }
  in
  if Sb_obs.Metrics.enabled () then begin
    Sb_obs.Metrics.incr ~by:total m_sessions;
    Sb_obs.Metrics.incr ~by:consistent m_consistent;
    Sb_obs.Metrics.set g_wall (Sb_obs.Metrics.gauge_value g_wall +. wall_s);
    Sb_obs.Metrics.set g_sessions_ps aggregate.sessions_per_sec;
    Sb_obs.Metrics.set g_msgs_ps aggregate.msgs_per_sec;
    Sb_obs.Metrics.set g_bytes_ps aggregate.bytes_per_sec
  end;
  (aggregate, reports)

let session_report_to_json r =
  Sb_obs.Json.Obj
    [
      ("session", Sb_obs.Json.Int r.index);
      ("shard", Sb_obs.Json.Int r.shard);
      ("protocol", Sb_obs.Json.Str r.protocol);
      ("x", Sb_obs.Json.Str (Bitvec.to_string r.x));
      ("w", Sb_obs.Json.Str (Bitvec.to_string r.w));
      ("consistent", Sb_obs.Json.Bool r.consistent);
      ("rounds", Sb_obs.Json.Int r.rounds);
      ("p2p", Sb_obs.Json.Int r.p2p);
    ]

let aggregate_to_json a =
  Sb_obs.Json.Obj
    [
      ("sessions", Sb_obs.Json.Int a.sessions);
      ("consistent", Sb_obs.Json.Int a.consistent);
      ("shards", Sb_obs.Json.Int a.shards);
      ("broadcasts", Sb_obs.Json.Int a.broadcasts);
      ("p2p_messages", Sb_obs.Json.Int a.p2p);
      ("broadcast_bytes", Sb_obs.Json.Int a.broadcast_bytes);
      ("p2p_bytes", Sb_obs.Json.Int a.p2p_bytes);
      ("wall_s", Sb_obs.Json.Float a.wall_s);
      ("sessions_per_sec", Sb_obs.Json.Float a.sessions_per_sec);
      ("msgs_per_sec", Sb_obs.Json.Float a.msgs_per_sec);
      ("bytes_per_sec", Sb_obs.Json.Float a.bytes_per_sec);
    ]
