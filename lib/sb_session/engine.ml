open Sb_util
open Sb_sim

type sched = Shard.mode = Static | Steal

type spec = {
  protocol : Protocol.t;
  count : int;
  parties : int option;
  dist : Sb_dist.Dist.t option;
  faults : Sb_fault.Plan.t option;
  inputs : (int -> Bitvec.t) option;
}

let spec ?parties ?dist ?faults ?inputs protocol count =
  { protocol; count; parties; dist; faults; inputs }

type session_report = {
  index : int;
  shard : int;
  protocol : string;
  n : int;
  x : Bitvec.t;
  w : Bitvec.t;
  consistent : bool;
  rounds : int;
  p2p : int;
}

type worker_stat = {
  worker : int;
  shards_run : int;
  stolen : int;
  sessions_run : int;
  busy_s : float;
}

type aggregate = {
  sessions : int;
  consistent : int;
  shards : int;
  per_shard : int array;
  broadcasts : int;
  p2p : int;
  broadcast_bytes : int;
  p2p_bytes : int;
  wall_s : float;
  sessions_per_sec : float;
  msgs_per_sec : float;
  bytes_per_sec : float;
  sched : sched;
  workers : int;
  steals : int;
  shard_wall_s : float array;
  session_wall_s : float array;
  worker_stats : worker_stat array;
}

(* Deterministic batch counters; the per-shard counters are keyed by
   shard index (fixed layout), not by pool domain, so they are part of
   the jobs-invariant surface alongside exp.* and sim.*. *)
let m_sessions = Sb_obs.Metrics.counter "session.sessions"
let m_consistent = Sb_obs.Metrics.counter "session.consistent"

(* Wall-clock-derived rates: visibility only, never diffed. *)
let g_wall = Sb_obs.Metrics.gauge "session.batch_wall_s"
let g_sessions_ps = Sb_obs.Metrics.gauge "session.sessions_per_sec"
let g_msgs_ps = Sb_obs.Metrics.gauge "session.msgs_per_sec"
let g_bytes_ps = Sb_obs.Metrics.gauge "session.bytes_per_sec"

(* Scheduler observability. Everything under sched.* depends on how
   the claiming race unfolds (except sched.claims, which always sums
   to the shard count), so the prefix is deliberately OUTSIDE the
   jobs-invariant surface the CI smoke steps compare (exp./sim./
   fault./session.). *)
let m_claims = Sb_obs.Metrics.counter "sched.claims"
let m_steals = Sb_obs.Metrics.counter "sched.steals"

(* Metric handles are interned per index instead of re-running
   Printf.sprintf + registry lookup on every batch. The tables are
   touched only from the submitting thread: shard counters are
   pre-resolved into an array before the parallel section, worker
   stats are recorded after the join. *)
let interned tbl make k =
  match Hashtbl.find_opt tbl k with
  | Some h -> h
  | None ->
      let h = make k in
      Hashtbl.add tbl k h;
      h

let shard_counter =
  let tbl = Hashtbl.create 64 in
  fun k ->
    interned tbl
      (fun k -> Sb_obs.Metrics.counter (Printf.sprintf "session.shard%d.sessions" k))
      k

let worker_shards_counter =
  let tbl = Hashtbl.create 16 in
  fun w ->
    interned tbl
      (fun w -> Sb_obs.Metrics.counter (Printf.sprintf "sched.worker%d.shards" w))
      w

let worker_sessions_counter =
  let tbl = Hashtbl.create 16 in
  fun w ->
    interned tbl
      (fun w -> Sb_obs.Metrics.counter (Printf.sprintf "sched.worker%d.sessions" w))
      w

let worker_busy_gauge =
  let tbl = Hashtbl.create 16 in
  fun w ->
    interned tbl
      (fun w -> Sb_obs.Metrics.gauge (Printf.sprintf "sched.worker%d.busy_s" w))
      w

let comm_snapshot () =
  let c name = Sb_obs.Metrics.counter_value (Sb_obs.Metrics.counter name) in
  (c "sim.broadcasts", c "sim.p2p", c "sim.bytes.broadcast", c "sim.bytes.p2p")

(* Cumulative spec bounds: bounds.(k) is the global index of spec k's
   first session, bounds.(len specs) the batch total. *)
let bounds specs =
  let specs = Array.of_list specs in
  let b = Array.make (Array.length specs + 1) 0 in
  Array.iteri (fun k s -> b.(k + 1) <- b.(k) + s.count) specs;
  b

(* Global session index -> spec index, by binary search over the
   cumulative bounds (the historical linear scan went quadratic on
   many-spec batches): the largest k with bounds.(k) <= i. *)
let spec_at b i =
  if i < 0 || i >= b.(Array.length b - 1) then
    invalid_arg (Printf.sprintf "Engine.spec_at: session %d out of range" i);
  let lo = ref 0 and hi = ref (Array.length b - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if b.(mid) <= i then lo := mid else hi := mid
  done;
  !lo

let consistent_w ~n outputs =
  let vectors = List.map (fun (_, m) -> Core.Announced.to_vector n m) outputs in
  match vectors with
  | [] -> (Bitvec.zero n, false)
  | Some first :: rest ->
      (first, List.for_all (function Some v -> Bitvec.equal v first | None -> false) rest)
  | None :: _ -> (Bitvec.zero n, false)

let run ?pool ?(sched = Steal) ?(adversary = Core.Adversaries.passive) ~setup ~dist
    specs rng =
  if specs = [] then invalid_arg "Engine.run: empty spec list";
  let specs_a = Array.of_list specs in
  Array.iteri
    (fun k s ->
      if s.count <= 0 then
        invalid_arg (Printf.sprintf "Engine.run: spec %d count must be positive" k))
    specs_a;
  let setups =
    Array.mapi
      (fun k s ->
        match s.parties with
        | None -> setup
        | Some n when n >= 2 -> { setup with Core.Setup.n; thresh = (n - 1) / 2 }
        | Some n ->
            invalid_arg
              (Printf.sprintf "Engine.run: spec %d parties must be >= 2 (got %d)" k n))
      specs_a
  in
  (* Up-front input validation: a dist whose dimension disagrees with
     the session's party count used to surface as an opaque Bitvec
     failure deep inside a worker. *)
  let dists =
    Array.mapi
      (fun k s ->
        let d = match s.dist with Some d -> d | None -> dist in
        let n = setups.(k).Core.Setup.n in
        if s.inputs = None && Sb_dist.Dist.n d <> n then
          invalid_arg
            (Printf.sprintf
               "Engine.run: spec %d (%s) draws inputs over %d bits but the session \
                has n = %d parties"
               k s.protocol.Protocol.name (Sb_dist.Dist.n d) n);
        d)
      specs_a
  in
  let fault_makers =
    Array.mapi
      (fun k s ->
        match s.faults with
        | None -> None
        | Some plan ->
            let n = setups.(k).Core.Setup.n in
            (match Sb_fault.Plan.validate ~n plan with
            | Ok () -> ()
            | Error e ->
                invalid_arg (Printf.sprintf "Engine.run: spec %d fault plan: %s" k e));
            Some (Sb_fault.Inject.compile ~n plan))
      specs_a
  in
  let counts = Array.map (fun s -> s.count) specs_a in
  let b = bounds specs in
  let total = b.(Array.length counts) in
  let pool = match pool with Some p -> p | None -> Sb_par.Pool.default () in
  (* Master-stream discipline: two pre-split children per session
     (input draw, execution) first, then one stream per shard for the
     shared context — all pure functions of the spec counts and the
     scheduling mode, so any pool size replays the same bytes. *)
  let streams = Sb_par.Partition.streams rng ~total ~draws_per_item:2 in
  let shards = Shard.layout ~mode:sched ~counts ~rng in
  let nshards = Array.length shards in
  let counters = Array.map (fun (sh : Shard.t) -> shard_counter sh.Shard.index) shards in
  let results : session_report array array = Array.make nshards [||] in
  let shard_wall = Array.make nshards 0.0 in
  let session_wall = Array.make total 0.0 in
  let run_shard (sh : Shard.t) =
    let t0 = Unix.gettimeofday () in
    let s = specs_a.(sh.Shard.spec) in
    let n = setups.(sh.Shard.spec).Core.Setup.n in
    let d = dists.(sh.Shard.spec) in
    let faults = fault_makers.(sh.Shard.spec) in
    (* Built once per shard, shared by every session in it: the
       signature registry, commitment scheme and CRS of the context
       (the expensive per-run setup the samplers pay on every
       execution). *)
    let ctx = Shard.context setups.(sh.Shard.spec) sh in
    let reports =
      Array.init sh.Shard.len (fun j ->
          let i = sh.Shard.lo + j in
          let t1 = Unix.gettimeofday () in
          let x =
            match s.inputs with
            | None -> Sb_dist.Dist.sample d streams.(2 * i)
            | Some f ->
                let x = f (i - b.(sh.Shard.spec)) in
                if Bitvec.length x <> n then
                  invalid_arg
                    (Printf.sprintf
                       "Engine.run: spec %d inputs returned a %d-bit vector for an \
                        n = %d session"
                       sh.Shard.spec (Bitvec.length x) n);
                x
          in
          let inputs = Array.init n (fun p -> Msg.Bit (Bitvec.get x p)) in
          let r =
            Network.run ctx ~rng:streams.((2 * i) + 1) ~protocol:s.protocol ~adversary
              ~inputs ?faults ~record_trace:false ()
          in
          let w, consistent = consistent_w ~n r.Network.outputs in
          session_wall.(i) <- Unix.gettimeofday () -. t1;
          {
            index = i;
            shard = sh.Shard.index;
            protocol = s.protocol.Protocol.name;
            n;
            x;
            w;
            consistent;
            rounds = r.Network.rounds_used;
            p2p = r.Network.p2p_messages;
          })
    in
    if Sb_obs.Metrics.enabled () then begin
      Sb_obs.Metrics.incr ~by:sh.Shard.len counters.(sh.Shard.index);
      Core.Announced.note_domain_samples sh.Shard.len
    end;
    shard_wall.(sh.Shard.index) <- Unix.gettimeofday () -. t0;
    reports
  in
  let comm0 = comm_snapshot () in
  let t0 = Unix.gettimeofday () in
  let worker_stats =
    match sched with
    | Static ->
        (* Historical path: one queue task per (coarse) shard. *)
        let per = Sb_par.Pool.map_chunks pool shards ~f:run_shard in
        Array.iteri (fun k r -> results.(k) <- r) per;
        [||]
    | Steal ->
        (* One long-lived task per worker slot; each loops claiming
           shard indices from a shared atomic counter. Results land in
           distinct slots of [results] and are merged by shard index,
           so the outcome is independent of who claimed what. A claim
           outside the worker's contiguous home range (the static
           even split of shards over workers) counts as a steal. *)
        let workers = Sb_par.Pool.size pool in
        let next = Atomic.make 0 in
        let home_of = Array.make nshards 0 in
        Array.iteri
          (fun w (c : Sb_par.Partition.chunk) ->
            for k = c.Sb_par.Partition.lo to c.Sb_par.Partition.lo + c.Sb_par.Partition.len - 1
            do
              home_of.(k) <- w
            done)
          (Sb_par.Partition.chunks ~total:nshards ~jobs:workers);
        let ids = Array.init workers (fun w -> w) in
        Sb_par.Pool.map_chunks pool ids ~f:(fun w ->
            let t0 = Unix.gettimeofday () in
            let claimed = ref 0 and stolen = ref 0 and sess = ref 0 in
            let rec loop () =
              let k = Atomic.fetch_and_add next 1 in
              if k < nshards then begin
                results.(k) <- run_shard shards.(k);
                incr claimed;
                if home_of.(k) <> w then incr stolen;
                sess := !sess + shards.(k).Shard.len;
                loop ()
              end
            in
            loop ();
            {
              worker = w;
              shards_run = !claimed;
              stolen = !stolen;
              sessions_run = !sess;
              busy_s = Unix.gettimeofday () -. t0;
            })
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let bc0, p2p0, bcb0, p2pb0 = comm0 in
  let bc1, p2p1, bcb1, p2pb1 = comm_snapshot () in
  let reports = Array.concat (Array.to_list results) in
  let consistent =
    Array.fold_left
      (fun acc (r : session_report) -> if r.consistent then acc + 1 else acc)
      0 reports
  in
  let steals = Array.fold_left (fun acc ws -> acc + ws.stolen) 0 worker_stats in
  let broadcasts = bc1 - bc0
  and p2p = p2p1 - p2p0
  and broadcast_bytes = bcb1 - bcb0
  and p2p_bytes = p2pb1 - p2pb0 in
  let rate v = if wall_s > 0.0 then float_of_int v /. wall_s else 0.0 in
  let aggregate =
    {
      sessions = total;
      consistent;
      shards = nshards;
      per_shard = Array.map (fun (s : Shard.t) -> s.Shard.len) shards;
      broadcasts;
      p2p;
      broadcast_bytes;
      p2p_bytes;
      wall_s;
      sessions_per_sec = rate total;
      msgs_per_sec = rate (broadcasts + p2p);
      bytes_per_sec = rate (broadcast_bytes + p2p_bytes);
      sched;
      workers = Sb_par.Pool.size pool;
      steals;
      shard_wall_s = shard_wall;
      session_wall_s = session_wall;
      worker_stats;
    }
  in
  if Sb_obs.Metrics.enabled () then begin
    Sb_obs.Metrics.incr ~by:total m_sessions;
    Sb_obs.Metrics.incr ~by:consistent m_consistent;
    Sb_obs.Metrics.set g_wall (Sb_obs.Metrics.gauge_value g_wall +. wall_s);
    Sb_obs.Metrics.set g_sessions_ps aggregate.sessions_per_sec;
    Sb_obs.Metrics.set g_msgs_ps aggregate.msgs_per_sec;
    Sb_obs.Metrics.set g_bytes_ps aggregate.bytes_per_sec;
    if sched = Steal then begin
      Sb_obs.Metrics.incr ~by:nshards m_claims;
      Sb_obs.Metrics.incr ~by:steals m_steals;
      Array.iter
        (fun ws ->
          Sb_obs.Metrics.incr ~by:ws.shards_run (worker_shards_counter ws.worker);
          Sb_obs.Metrics.incr ~by:ws.sessions_run (worker_sessions_counter ws.worker);
          let g = worker_busy_gauge ws.worker in
          Sb_obs.Metrics.set g (Sb_obs.Metrics.gauge_value g +. ws.busy_s))
        worker_stats
    end
  end;
  (aggregate, reports)

let session_report_to_json r =
  Sb_obs.Json.Obj
    [
      ("session", Sb_obs.Json.Int r.index);
      ("shard", Sb_obs.Json.Int r.shard);
      ("protocol", Sb_obs.Json.Str r.protocol);
      ("n", Sb_obs.Json.Int r.n);
      ("x", Sb_obs.Json.Str (Bitvec.to_string r.x));
      ("w", Sb_obs.Json.Str (Bitvec.to_string r.w));
      ("consistent", Sb_obs.Json.Bool r.consistent);
      ("rounds", Sb_obs.Json.Int r.rounds);
      ("p2p", Sb_obs.Json.Int r.p2p);
    ]

let aggregate_to_json a =
  Sb_obs.Json.Obj
    [
      ("sessions", Sb_obs.Json.Int a.sessions);
      ("consistent", Sb_obs.Json.Int a.consistent);
      ("shards", Sb_obs.Json.Int a.shards);
      ("broadcasts", Sb_obs.Json.Int a.broadcasts);
      ("p2p_messages", Sb_obs.Json.Int a.p2p);
      ("broadcast_bytes", Sb_obs.Json.Int a.broadcast_bytes);
      ("p2p_bytes", Sb_obs.Json.Int a.p2p_bytes);
      ("wall_s", Sb_obs.Json.Float a.wall_s);
      ("sessions_per_sec", Sb_obs.Json.Float a.sessions_per_sec);
      ("msgs_per_sec", Sb_obs.Json.Float a.msgs_per_sec);
      ("bytes_per_sec", Sb_obs.Json.Float a.bytes_per_sec);
    ]
