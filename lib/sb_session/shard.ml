let width = 32
let steal_target = 8

type mode = Static | Steal

type t = {
  index : int;
  spec : int;
  lo : int;
  len : int;
  rng : Sb_util.Rng.t;
}

(* Shards per spec. Both modes are pure functions of the per-spec
   session counts, never of the pool size, so the layout (and with it
   every shard-local RNG stream) is jobs-invariant. Static reproduces
   the historical fan-out: a total budget of [width] shards spread
   proportionally, at least one per spec, which for a single spec is
   exactly the old [min count width]. Steal cuts much finer — about
   [steal_target] sessions per shard, but never fewer than [width]
   shards per spec — so a straggler spec decomposes into many small
   units the claiming loop can spread across workers. *)
let per_spec mode counts =
  let total = Array.fold_left ( + ) 0 counts in
  match mode with
  | Static ->
      Array.map (fun c -> max 1 (min c (width * c / total))) counts
  | Steal ->
      Array.map
        (fun c -> min c (max width ((c + steal_target - 1) / steal_target)))
        counts

let layout ~mode ~counts ~rng =
  let shards_of = per_spec mode counts in
  let nshards = Array.fold_left ( + ) 0 shards_of in
  let streams = Sb_util.Rng.split_n rng nshards in
  let out = Array.make nshards { index = 0; spec = 0; lo = 0; len = 0; rng } in
  let k = ref 0 and base = ref 0 in
  Array.iteri
    (fun s count ->
      let chunks = Sb_par.Partition.chunks ~total:count ~jobs:shards_of.(s) in
      Array.iter
        (fun (c : Sb_par.Partition.chunk) ->
          out.(!k) <-
            {
              index = !k;
              spec = s;
              lo = !base + c.Sb_par.Partition.lo;
              len = c.Sb_par.Partition.len;
              rng = streams.(!k);
            };
          incr k)
        chunks;
      base := !base + count)
    counts;
  out

let context setup shard = Core.Setup.fresh_ctx setup (Sb_util.Rng.split shard.rng)
