let width = 32

type t = {
  index : int;
  lo : int;
  len : int;
  rng : Sb_util.Rng.t;
}

let layout ~total ~rng =
  let chunks = Sb_par.Partition.chunks ~total ~jobs:width in
  let streams = Sb_util.Rng.split_n rng (Array.length chunks) in
  Array.mapi
    (fun k (c : Sb_par.Partition.chunk) ->
      { index = k; lo = c.Sb_par.Partition.lo; len = c.Sb_par.Partition.len; rng = streams.(k) })
    chunks

let context setup shard = Core.Setup.fresh_ctx setup (Sb_util.Rng.split shard.rng)
