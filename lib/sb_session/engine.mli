(** Work-stealing multi-session throughput engine.

    Everything else in the repository executes one protocol session
    per [Network.run] and parallelises only per-sample inside a
    tester. This engine schedules *whole sessions* — thousands of
    independent protocol executions, possibly of different protocols,
    party counts, input distributions and fault plans — across a fixed
    {!Sb_par.Pool} of domains.

    The batch is cut into contiguous shards ({!Shard.layout}); each
    shard builds its execution context (signature registry, commitment
    scheme, CRS) once and reuses it for every session it owns. Under
    the default {!Steal} schedule the batch is cut into many more
    fine-grained shards than workers and each worker loops claiming
    shard indices from a shared atomic counter, so a heavy-tailed mix
    (a few large-n Dolev-Strong sessions among thousands of cheap
    Bracha votes) no longer leaves workers idle behind a straggler
    shard; {!Static} keeps the historical coarse ≤{!Shard.width}-shard
    layout with one queue task per shard, as the comparison baseline.

    Determinism: each session draws its input and its execution
    randomness from pre-split per-session RNG streams
    ({!Sb_util.Rng.split_n} via {!Sb_par.Partition.streams}), the
    shard layout is a pure function of the spec counts and schedule
    mode, and results are merged by shard index — so the per-session
    reports and every deterministic {!aggregate} field are
    byte-identical at every pool size, including 1, under either
    schedule. (The two schedules differ in shard layout, hence in
    which context stream a session shares — session outcomes are
    context-independent, but the [shard] field of the reports
    differs.)

    Observability is wired through [sb_obs]: the deterministic
    counters [session.sessions], [session.consistent] and the
    per-shard [session.shard<k>.sessions]; the scheduler-race surface
    under [sched.*] ([sched.claims], [sched.steals], per-worker
    [sched.worker<w>.shards] / [.sessions] counters and
    [.busy_s] gauges) which is deliberately OUTSIDE the jobs-invariant
    prefix set CI compares; and the wall-clock-derived gauges
    [session.sessions_per_sec], [session.msgs_per_sec],
    [session.bytes_per_sec], [session.batch_wall_s]. Message/byte
    totals are read as deltas of the network's [sim.*] counters and
    therefore require metrics to be enabled; with metrics off they
    report 0. *)

type sched = Shard.mode = Static | Steal

type spec = {
  protocol : Sb_sim.Protocol.t;
  count : int;  (** sessions of this spec; must be positive *)
  parties : int option;
      (** per-spec party count override (>= 2); [None] uses the batch
          setup's [n]. An override re-derives the threshold as
          [(n - 1) / 2]. *)
  dist : Sb_dist.Dist.t option;
      (** per-spec input distribution; [None] uses the batch dist.
          Must be over exactly the spec's party count. *)
  faults : Sb_fault.Plan.t option;
      (** per-spec fault plan, compiled once and injected into every
          session of the spec ([Network.run ~faults] splits a
          dedicated per-run fault stream internally, so faultless
          specs are byte-identical to a run without the feature). *)
  inputs : (int -> Sb_util.Bitvec.t) option;
      (** explicit inputs: [f j] is the input vector of the spec's
          [j]-th session (0-based within the spec), instead of drawing
          from the dist (which is then ignored and not validated).
          Must return vectors of the spec's party count. Used by the
          workload suite to feed application data (precinct tallies,
          bids) into sessions. *)
}

val spec :
  ?parties:int ->
  ?dist:Sb_dist.Dist.t ->
  ?faults:Sb_fault.Plan.t ->
  ?inputs:(int -> Sb_util.Bitvec.t) ->
  Sb_sim.Protocol.t ->
  int ->
  spec
(** [spec protocol count] with all overrides defaulted to [None]. *)

type session_report = {
  index : int;  (** global session index, [0 .. total-1] *)
  shard : int;  (** shard that owned this session (schedule-dependent
                    layout, but jobs-invariant) *)
  protocol : string;
  n : int;  (** party count of this session *)
  x : Sb_util.Bitvec.t;  (** input vector (drawn or explicit) *)
  w : Sb_util.Bitvec.t;  (** announced vector (any honest party) *)
  consistent : bool;  (** all honest output vectors equal *)
  rounds : int;
  p2p : int;  (** point-to-point envelopes sent in this session *)
}

type worker_stat = {
  worker : int;  (** worker slot, [0 .. pool size - 1] *)
  shards_run : int;  (** shards this worker claimed *)
  stolen : int;  (** claims outside the worker's contiguous home range *)
  sessions_run : int;
  busy_s : float;  (** wall-clock inside the claiming loop *)
}

type aggregate = {
  sessions : int;
  consistent : int;
  shards : int;
  per_shard : int array;  (** sessions per shard, deterministic *)
  broadcasts : int;  (** [sim.*] counter deltas; 0 when metrics are off *)
  p2p : int;
  broadcast_bytes : int;
  p2p_bytes : int;
  wall_s : float;  (** wall-clock of the pooled section; not deterministic *)
  sessions_per_sec : float;
  msgs_per_sec : float;
  bytes_per_sec : float;
  sched : sched;  (** schedule this batch ran under *)
  workers : int;  (** pool size *)
  steals : int;  (** total stolen claims; 0 under [Static] or 1 worker.
                     Scheduling-race-dependent, like every field below —
                     none of them enter {!aggregate_to_json}. *)
  shard_wall_s : float array;  (** per-shard wall clock, by shard index *)
  session_wall_s : float array;  (** per-session wall clock, by index *)
  worker_stats : worker_stat array;  (** empty under [Static] *)
}

val bounds : spec list -> int array
(** Cumulative spec bounds: [bounds.(k)] is the global index of spec
    [k]'s first session; the last element is the batch total. *)

val spec_at : int array -> int -> int
(** [spec_at bounds i] maps a global session index to its spec index
    by binary search over {!bounds}. Raises [Invalid_argument] out of
    range. *)

val run :
  ?pool:Sb_par.Pool.t ->
  ?sched:sched ->
  ?adversary:Sb_sim.Adversary.t ->
  setup:Core.Setup.t ->
  dist:Sb_dist.Dist.t ->
  spec list ->
  Sb_util.Rng.t ->
  aggregate * session_report array
(** [run ~setup ~dist specs rng] executes every session of [specs]
    (in spec order: sessions [0 .. c0-1] run the first spec, and so
    on), scheduled across [pool] (default {!Sb_par.Pool.default})
    under [sched] (default {!Steal}). Sessions run against
    [adversary] (default {!Core.Adversaries.passive}) on inputs drawn
    per-session from the spec's dist (default the batch [dist]) or
    produced by the spec's explicit [inputs]. The report array is
    indexed by global session index.

    Determinism: session [i]'s input and execution generators are
    streams [2i] and [2i+1] of the master, the shard layout is a pure
    function of the spec counts and [sched], and results merge by
    shard index — so the reports and every deterministic [aggregate]
    field are independent of the pool size and of the claiming race.

    Raises [Invalid_argument] up front on an empty spec list, a
    non-positive count, a party override < 2, an input dist whose
    dimension disagrees with the spec's party count, or an invalid
    fault plan; and from a worker if explicit [inputs] return a
    wrongly-sized vector. *)

val session_report_to_json : session_report -> Sb_obs.Json.t
(** One flat object per session — the JSONL row format of
    [simbcast sessions --session-log] and
    [simbcast workload --session-log]: [session], [shard],
    [protocol], [n], [x], [w] (bit strings), [consistent], [rounds],
    [p2p]. Byte-identical across pool sizes. *)

val aggregate_to_json : aggregate -> Sb_obs.Json.t
(** The report's [sessions] block (schema v4): session/shard totals,
    the comm deltas, and the throughput rates. Scheduler-race fields
    ([steals], worker stats, per-shard walls) are deliberately
    excluded so the block stays byte-comparable across [--jobs]
    values (modulo the wall/rate fields CI already strips). *)
