(** Sharded multi-session throughput engine.

    Everything else in the repository executes one protocol session
    per [Network.run] and parallelises only per-sample inside a
    tester. This engine schedules *whole sessions* — thousands of
    independent protocol executions, possibly of different protocols —
    across a fixed {!Sb_par.Pool} of domains, in {!Shard.width}
    contiguous shards. Each shard builds its execution context
    (signature registry, commitment scheme, CRS) once and reuses it
    for every session it owns; each session draws its input and its
    execution randomness from pre-split per-session RNG streams
    ({!Sb_util.Rng.split_n} via {!Sb_par.Partition.streams}), so the
    per-session reports and every deterministic aggregate are
    byte-identical at every pool size, including 1.

    Aggregate throughput is wired through [sb_obs]: the deterministic
    counters [session.sessions], [session.consistent] and the
    per-shard [session.shard<k>.sessions], plus the wall-clock-derived
    gauges [session.sessions_per_sec], [session.msgs_per_sec],
    [session.bytes_per_sec] and [session.batch_wall_s] (gauges are
    not part of the deterministic surface). Message/byte totals are
    read as deltas of the network's [sim.*] counters and therefore
    require metrics to be enabled; with metrics off they report 0. *)

type spec = { protocol : Sb_sim.Protocol.t; count : int }
(** [count] sessions of [protocol]; must be positive. *)

type session_report = {
  index : int;  (** global session index, [0 .. total-1] *)
  shard : int;  (** shard that owned this session *)
  protocol : string;
  x : Sb_util.Bitvec.t;  (** input vector drawn from the batch dist *)
  w : Sb_util.Bitvec.t;  (** announced vector (any honest party) *)
  consistent : bool;  (** all honest output vectors equal *)
  rounds : int;
  p2p : int;  (** point-to-point envelopes sent in this session *)
}

type aggregate = {
  sessions : int;
  consistent : int;
  shards : int;
  per_shard : int array;  (** sessions per shard, deterministic *)
  broadcasts : int;  (** [sim.*] counter deltas; 0 when metrics are off *)
  p2p : int;
  broadcast_bytes : int;
  p2p_bytes : int;
  wall_s : float;  (** wall-clock of the pooled section; not deterministic *)
  sessions_per_sec : float;
  msgs_per_sec : float;
  bytes_per_sec : float;
}

val run :
  ?pool:Sb_par.Pool.t ->
  ?adversary:Sb_sim.Adversary.t ->
  setup:Core.Setup.t ->
  dist:Sb_dist.Dist.t ->
  spec list ->
  Sb_util.Rng.t ->
  aggregate * session_report array
(** [run ~setup ~dist specs rng] executes every session of [specs]
    (in spec order: sessions [0 .. c0-1] run the first protocol, and
    so on), sharded across [pool] (default {!Sb_par.Pool.default}).
    Sessions run against [adversary] (default
    {!Core.Adversaries.passive}) on inputs drawn per-session from
    [dist]. The report array is indexed by global session index.

    Determinism: session [i]'s input and execution generators are
    streams [2i] and [2i+1] of the master, and the shard layout is a
    pure function of the session count, so the reports and every
    deterministic [aggregate] field are independent of the pool size.
    Raises [Invalid_argument] on an empty spec list or a non-positive
    count. *)

val session_report_to_json : session_report -> Sb_obs.Json.t
(** One flat object per session — the JSONL row format of
    [simbcast sessions --session-log]: [session], [shard],
    [protocol], [x], [w] (bit strings), [consistent], [rounds],
    [p2p]. Byte-identical across pool sizes. *)

val aggregate_to_json : aggregate -> Sb_obs.Json.t
(** The report's [sessions] block (schema v4): session/shard totals,
    the comm deltas, and the throughput rates. *)
