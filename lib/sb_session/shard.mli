(** Shard layout for the session engine.

    A batch of sessions — grouped into contiguous per-spec ranges — is
    cut into contiguous shards, each wholly inside one spec's range
    (specs may differ in party count, so the shared execution context
    is only reusable within a spec). The layout depends only on the
    scheduling {!mode} and the per-spec session counts — never on the
    pool size — so shard-local state (the shared {!Sb_sim.Ctx.t},
    per-shard RNG streams, per-shard counters) is identical at every
    [--jobs] value; the scheduler merely decides which worker happens
    to drive which shard.

    Each shard owns one execution context built once from the shard's
    own RNG stream and reused by every session in the shard: the
    signature registry (PKI), the commitment-scheme instance, and the
    CRS are shared across the shard's sessions instead of regenerated
    per [Network.run] (the Pedersen/Feldman group parameters and the
    fixed-base exponentiation tables are module-global already). *)

val width : int
(** Base shard fan-out (32) — the same fixed constant the Monte-Carlo
    samplers use. In {!Static} mode it is the total shard budget; in
    {!Steal} mode it is the per-spec floor. *)

val steal_target : int
(** Target sessions per shard in {!Steal} mode (8). *)

type mode =
  | Static
      (** Historical coarse layout: a total budget of {!width} shards
          spread across specs proportionally to their counts (at least
          one each); for a single spec this is exactly the pre-steal
          [min count width] layout. *)
  | Steal
      (** Fine-grained layout for the work-stealing claimer: each spec
          gets about [count / steal_target] shards, floored at {!width}
          per spec (and capped at one session per shard), so heavy
          specs decompose into many small stealable units. *)

type t = {
  index : int;  (** shard number, [0 .. shards-1], global *)
  spec : int;  (** index of the owning spec *)
  lo : int;  (** first global session index owned by this shard *)
  len : int;  (** number of sessions in this shard *)
  rng : Sb_util.Rng.t;  (** shard-local stream (context build, spares) *)
}

val layout : mode:mode -> counts:int array -> rng:Sb_util.Rng.t -> t array
(** [layout ~mode ~counts ~rng] covers the batch — [counts.(s)]
    sessions for spec [s], laid out contiguously in spec order — with
    shards that never straddle a spec boundary; within a spec, shard
    sizes differ by at most one. Shard [k] holds the [k]-th child
    stream of [rng] ([Rng.split_n]), so its stream is a pure function
    of the layout inputs. Counts must be positive (validated by
    [Engine.run]). *)

val context : Core.Setup.t -> t -> Sb_sim.Ctx.t
(** The shard's shared execution context, drawn from the shard
    stream. Call once per shard, inside the worker. Pass the owning
    spec's setup — party counts may differ across specs. *)
