(** Fixed shard layout for the session engine.

    A batch of [total] protocol sessions is cut into at most {!width}
    contiguous shards. The layout depends only on [total] — never on
    the pool size — so shard-local state (the shared {!Sb_sim.Ctx.t},
    per-shard RNG streams, per-shard counters) is identical at every
    [--jobs] value; the pool merely decides which domain happens to
    drive which shard.

    Each shard owns one execution context built once from the shard's
    own RNG stream and reused by every session in the shard: the
    signature registry (PKI), the commitment-scheme instance, and the
    CRS are shared across the shard's sessions instead of regenerated
    per [Network.run] (the Pedersen/Feldman group parameters and the
    fixed-base exponentiation tables are module-global already). *)

val width : int
(** Maximum number of shards per batch (32) — the same fixed fan-out
    constant the Monte-Carlo samplers use, several shards per worker
    at every realistic pool size. *)

type t = {
  index : int;  (** shard number, [0 .. shards-1] *)
  lo : int;  (** first global session index owned by this shard *)
  len : int;  (** number of sessions in this shard *)
  rng : Sb_util.Rng.t;  (** shard-local stream (context build, spares) *)
}

val layout : total:int -> rng:Sb_util.Rng.t -> t array
(** [layout ~total ~rng] covers sessions [0 .. total-1] with at most
    {!width} contiguous shards whose sizes differ by at most one, each
    holding its own child stream of [rng] ([Rng.split_n], so shard
    [k]'s stream is a pure function of [rng]'s [k]-th output). *)

val context : Core.Setup.t -> t -> Sb_sim.Ctx.t
(** The shard's shared execution context, drawn from the shard
    stream. Call once per shard, inside the worker. *)
