(** Deterministic work partitioning for the domain pool.

    The sampling loops draw a fixed number of [Sb_util.Rng] children
    per item from a master generator. Pre-splitting the master into one
    stream per draw ([streams]) makes every item's randomness a pure
    function of its index, so any contiguous chunking of the index
    space ([chunks]) — one chunk, two, or one per core — replays
    byte-identical per-item streams. *)

type chunk = { lo : int; len : int }

val chunks : total:int -> jobs:int -> chunk array
(** [chunks ~total ~jobs] covers [0 .. total-1] with at most [jobs]
    contiguous, non-empty chunks whose sizes differ by at most one.
    Returns [[||]] when [total = 0]. The layout depends only on
    [(total, min jobs total)]. *)

val streams : Sb_util.Rng.t -> total:int -> draws_per_item:int -> Sb_util.Rng.t array
(** [streams rng ~total ~draws_per_item] pre-splits [rng] into
    [total * draws_per_item] independent child generators. Item [i]'s
    [k]-th draw is stream [draws_per_item * i + k] — exactly the child
    a sequential loop performing [draws_per_item] [Rng.split]s per
    iteration would have obtained. *)

val rng_for : streams:Sb_util.Rng.t array -> draws_per_item:int -> int -> Sb_util.Rng.t array
(** The slice of [streams] belonging to item [i]. *)
