(** Fixed pool of worker domains for deterministic fan-out.

    A pool of size [d] uses [d] domains in total: [d - 1] spawned
    workers plus the submitting domain, which drains the task queue
    during every barrier instead of blocking idle. A pool of size 1
    spawns nothing and runs everything inline on the caller — the
    sequential path and the parallel path are the same code.

    Determinism contract: [map_chunks] returns results positionally, so
    as long as [f] is a pure function of its chunk (the partitioner
    hands each chunk pre-split RNG streams), the output is independent
    of scheduling and of the pool size. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] total domains
    (default {!Domain.recommended_domain_count}). *)

val size : t -> int

val map_chunks : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_chunks t ~f chunks] applies [f] to every chunk, in parallel
    across the pool, and returns the results in chunk order. If one or
    more applications raise, the exception of the lowest-indexed
    failing chunk is re-raised (with its backtrace) after all tasks
    have settled; the pool itself stays usable. *)

val reduce : t -> f:('a -> 'b) -> merge:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc
(** [reduce t ~f ~merge ~init chunks] maps then folds the per-chunk
    results in chunk index order — the merge order never depends on
    scheduling. *)

val shutdown : t -> unit
(** Join all workers. Idempotent; subsequent [map_chunks] calls raise
    [Invalid_argument]. *)

val worker_index : unit -> int
(** Slot of the calling domain within its pool: 0 for the submitting
    domain, [1 .. size - 1] for spawned workers. Useful for per-domain
    accounting (e.g. sample counters in run reports). *)

(** {2 Process-default pool}

    The CLI's [--jobs] flag configures a lazily-created shared pool so
    that library code (the testers) need not thread a pool handle
    through every call. *)

val set_default_domains : int -> unit
(** Set the size of the default pool; tears down a live default pool of
    a different size first. *)

val get_default_domains : unit -> int

val default : unit -> t
(** The shared pool, created on first use (and re-created if it was
    shut down). Joined automatically [at_exit]. *)

val shutdown_default : unit -> unit
