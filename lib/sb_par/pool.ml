type task = unit -> unit

type t = {
  domains : int;
  mutable workers : unit Domain.t array;
  queue : task Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
}

(* Which pool slot the current domain occupies: 0 is the submitting
   domain (which also drains the queue during a barrier), 1 .. domains-1
   are spawned workers. Used by callers to key per-domain accounting. *)
let ix_key = Domain.DLS.new_key (fun () -> 0)
let worker_index () = Domain.DLS.get ix_key

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.has_work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    (* Tasks are wrapped by [map_chunks] and never raise. *)
    task ();
    worker_loop t
  end

let create ?domains () =
  let domains =
    match domains with
    | Some d -> if d <= 0 then invalid_arg "Pool.create: domains must be positive" else d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      domains;
      workers = [||];
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun k ->
        Domain.spawn (fun () ->
            Domain.DLS.set ix_key (k + 1);
            worker_loop t));
  t

let size t = t.domains

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  if not was_closed then Array.iter Domain.join t.workers;
  t.workers <- [||]

let map_chunks t ~f arr =
  let n = Array.length arr in
  if t.closed then invalid_arg "Pool.map_chunks: pool is shut down";
  if n = 0 then [||]
  else if t.domains = 1 || n = 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    let task i () =
      let r =
        try Ok (f arr.(i)) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.has_work;
    (* The submitting domain drains the queue alongside the workers,
       then blocks until the last in-flight task lands. *)
    let rec drain () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          drain ()
      | None -> while !remaining > 0 do Condition.wait all_done t.mutex done
    in
    drain ();
    Mutex.unlock t.mutex;
    (* Re-raise the lowest-index failure so error reporting does not
       depend on scheduling. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let reduce t ~f ~merge ~init arr = Array.fold_left merge init (map_chunks t ~f arr)

(* --- process-default pool ------------------------------------------- *)

let default_domains = ref (max 1 (Domain.recommended_domain_count ()))
let default_pool : t option ref = ref None

let shutdown_default () =
  match !default_pool with
  | Some p ->
      default_pool := None;
      shutdown p
  | None -> ()

let () = at_exit shutdown_default

let set_default_domains d =
  if d <= 0 then invalid_arg "Pool.set_default_domains: must be positive";
  (match !default_pool with
  | Some p when p.domains <> d -> shutdown_default ()
  | _ -> ());
  default_domains := d

let get_default_domains () = !default_domains

let default () =
  match !default_pool with
  | Some p when not p.closed -> p
  | _ ->
      let p = create ~domains:!default_domains () in
      default_pool := Some p;
      p
