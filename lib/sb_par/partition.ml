type chunk = { lo : int; len : int }

let chunks ~total ~jobs =
  if total < 0 then invalid_arg "Partition.chunks: negative total";
  if jobs <= 0 then invalid_arg "Partition.chunks: non-positive jobs";
  let pieces = min jobs total in
  if pieces = 0 then [||]
  else begin
    (* Balanced contiguous ranges: the first [total mod pieces] chunks
       get one extra element, so sizes differ by at most one and the
       layout is a pure function of (total, pieces). *)
    let base = total / pieces and extra = total mod pieces in
    Array.init pieces (fun k ->
        let len = base + if k < extra then 1 else 0 in
        let lo = (k * base) + min k extra in
        { lo; len })
  end

let rng_for ~streams ~draws_per_item i =
  Array.sub streams (draws_per_item * i) draws_per_item

let streams rng ~total ~draws_per_item =
  if draws_per_item <= 0 then invalid_arg "Partition.streams: draws_per_item";
  Sb_util.Rng.split_n rng (total * draws_per_item)
