(** The prime field GF(p) with p = 1073741789, a Sophie Germain prime:
    2p + 1 = 2147483579 is also prime, so {!Modgroup} has a subgroup of
    exactly this order and Shamir share arithmetic (here) matches
    Feldman exponent arithmetic (there).

    A 30-bit modulus keeps every product inside OCaml's 63-bit native
    integers, so no external bignum dependency is needed. Elements are
    represented canonically as ints in [0, p). *)

type t = private int

val p : int
(** The modulus, 1073741789. *)

val zero : t
val one : t

val of_int : int -> t
(** Reduces any int (including negatives) into [0, p). *)

val to_int : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Multiplicative inverse; raises [Division_by_zero] on zero. *)

val div : t -> t -> t
val pow : t -> int -> t
(** [pow x e] with e >= 0, square-and-multiply. *)

val equal : t -> t -> bool
val random : Sb_util.Rng.t -> t
(** Uniform over the whole field. *)

val random_nonzero : Sb_util.Rng.t -> t
val of_bool : bool -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
