(** Feldman verifiable secret sharing.

    The dealer publishes commitments C_j = g^{a_j} to the coefficients
    of its Shamir polynomial f(X) = Σ a_j X^j; party i can then check
    its share s_i against the public commitments:

      g^{s_i} =? Π_j C_j^{(i+1)^j}.

    A dealer that passes every check is bound to a unique degree-≤t
    polynomial, hence a unique secret — this binding is what makes the
    CGMA-style protocol simultaneous: corrupted parties' values are
    fixed before any honest value is revealed.

    Feldman commitments leak g^{secret}; the protocols here share
    one-bit secrets *masked* by a random pad shared alongside, so the
    leak carries no information about the bit (see [sb_protocols.Cgma]). *)

type commitment = Modgroup.elt array
(** One group element per coefficient, constant term first; length
    t + 1. *)

val commit : Poly.t -> threshold:int -> commitment
(** Commit to a dealer polynomial, padding with commitments to zero
    coefficients up to degree [threshold] so the commitment length does
    not leak the effective degree. *)

val verify_share : commitment -> Shamir.share -> bool
(** The party-side consistency check above. *)

val verify_secret : commitment -> Field.t -> bool
(** [verify_secret c s] checks g^s against the constant-term
    commitment; used when the dealer later opens the secret itself. *)

val deal :
  Sb_util.Rng.t ->
  threshold:int ->
  parties:int ->
  secret:Field.t ->
  Shamir.share array * commitment
(** Sharing and committing in one step. *)
