type commitment = Modgroup.elt array

(* Coefficient commitments are fixed-base g-exponentiations, so they
   ride the Modgroup window table via commit_g. *)
let commit f ~threshold =
  let coeffs = Poly.coeffs f in
  assert (Array.length coeffs <= threshold + 1);
  Array.init (threshold + 1) (fun j ->
      if j < Array.length coeffs then Modgroup.commit_g coeffs.(j)
      else Modgroup.commit_g Field.zero)

let expected_share_commitment c index =
  (* Π_j C_j^{x^j} at x = index + 1, Horner-style in the exponent:
     acc = C_t, then acc = acc^x * C_{t-1}, ... — carried in
     Montgomery form across the whole loop, converted back once. *)
  let x = Field.to_int (Shamir.eval_point index) in
  let acc = ref Modgroup.Mont.one in
  for j = Array.length c - 1 downto 0 do
    acc := Modgroup.Mont.(mul (pow !acc x) (of_elt c.(j)))
  done;
  Modgroup.Mont.to_elt !acc

let verify_share c (s : Shamir.share) =
  Modgroup.equal (Modgroup.commit_g s.value) (expected_share_commitment c s.index)

let verify_secret c secret =
  Array.length c > 0 && Modgroup.equal (Modgroup.commit_g secret) c.(0)

let deal rng ~threshold ~parties ~secret =
  let shares, f = Shamir.share rng ~threshold ~parties ~secret in
  (shares, commit f ~threshold)
