type elt = int

let modulus = 2147483579 (* safe prime: 2 * Field.p + 1 *)
let order = Field.p
let () = assert (modulus = (2 * order) + 1)
let one = 1
let mul a b = a * b mod modulus

(* --- Montgomery arithmetic ----------------------------------------- *)

(* Montgomery form over R = 2^31 — not 2^32 or 2^63: REDC multiplies
   two sub-R residues and adds a sub-R tail, and every intermediate
   must fit OCaml's 63-bit native int (m*P <= (R-1)(P) < 2^62). An
   element x is carried as x*R mod P; REDC(t) = t*R^-1 mod P replaces
   the hardware division in [mul] with three multiplications and a
   shift, which is what makes arbitrary-base [pow] competitive with
   the fixed-base tables. *)
module Mont = struct
  type m = int

  let r_bits = 31
  let mask = (1 lsl r_bits) - 1

  (* R = 2^31 = P + 69, so R mod P = 69 and R^2 mod P = 69^2. *)
  let one = (1 lsl r_bits) - modulus
  let r2 = one * one
  let () = assert (r2 < modulus)

  (* -P^-1 mod R by Newton–Hensel lifting: each step doubles the
     number of correct low bits of the inverse, so five steps from the
     exact 1-bit seed cover all 31. *)
  let p_inv =
    let inv = ref 1 in
    for _ = 1 to 5 do
      inv := !inv * (2 - (modulus * !inv)) land mask
    done;
    assert (modulus * !inv land mask = 1);
    ((1 lsl r_bits) - !inv) land mask

  (* REDC for 0 <= t < R*P: with m = t*p_inv mod R, t + m*P is
     divisible by R, and (t + m*P)/R < 2P. The sum is split as
     t_hi + (t_lo + m*P)/R so the largest intermediate stays below
     2^62 - 68*2^31 < max_int. The final subtract-P-if-needed is
     branchless ([v asr 62] is all-ones exactly when v went negative):
     the carry is data-random, so a conditional branch here would
     mispredict half the time and cost more than the three
     multiplications it guards. *)
  let[@inline] reduce t =
    let t_lo = t land mask in
    let m = t_lo * p_inv land mask in
    let u = (t lsr r_bits) + ((t_lo + (m * modulus)) lsr r_bits) in
    let v = u - modulus in
    v + (modulus land (v asr 62))

  let[@inline] of_elt x = reduce (x * r2)
  let[@inline] to_elt m = reduce m
  let[@inline] mul a b = reduce (a * b)

  let pow m e =
    assert (e >= 0);
    let rec go acc base e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (e lsr 1)
    in
    go one m e
end

(* Reference ladder over the division-based [mul]; kept as the qcheck
   oracle the Montgomery and fixed-base paths are tested against. *)
let pow_naive_int h e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go one h e

let pow_naive h e = pow_naive_int h (Field.to_int e)
let g = 4

(* 9 = 3^2 is a quadratic residue mod the safe prime, hence a member of
   the order-q subgroup and (the subgroup having prime order) a
   generator of it. Its discrete log w.r.t. g is unknown; it plays the
   CRS second-generator role in Pedersen commitments. *)
let h = 9

(* --- Fixed-base windowed tables ------------------------------------ *)

(* Exponents are field elements, i.e. < q < 2^30: [window_count] 4-bit
   windows cover them. table.(i).(d) = base^(d * 16^i), so
   base^e = prod_i table.(i).(e_i) over the base-16 digits e_i of e —
   no squarings at all for the two shared generators. The tables are
   built once at module initialisation (main domain, before any
   sb_par worker exists) and are read-only afterwards, so concurrent
   reads under domain parallelism are safe. *)
let window_bits = 4
let window_count = 8
let window_mask = (1 lsl window_bits) - 1
let () = assert (window_bits * window_count >= 30)

let fixed_base_table base =
  let t = Array.make_matrix window_count (window_mask + 1) one in
  let b = ref base in
  for i = 0 to window_count - 1 do
    for d = 1 to window_mask do
      t.(i).(d) <- mul t.(i).(d - 1) !b
    done;
    (* base^(16^(i+1)) = base^(15 * 16^i) * base^(16^i). *)
    b := mul t.(i).(window_mask) !b
  done;
  t

let table_g = fixed_base_table g
let table_h = fixed_base_table h

let pow_fixed table e =
  assert (e >= 0 && e lsr (window_bits * window_count) = 0);
  let acc = ref one in
  let e = ref e in
  for i = 0 to window_count - 1 do
    let d = !e land window_mask in
    if d <> 0 then acc := mul !acc table.(i).(d);
    e := !e lsr window_bits
  done;
  !acc

(* Attribution bucket: when tracing is on, fixed-base exponentiations
   charge their wall time to the innermost open span (no span per call
   — one exponentiation is far below span granularity). Disabled cost
   is the one boolean load. *)
let pow_g e =
  if Sb_obs.Trace_ctx.enabled () then begin
    let t0 = Sb_obs.Trace_ctx.now_us () in
    let r = pow_fixed table_g (Field.to_int e) in
    Sb_obs.Trace_ctx.bucket_add "pow_g" (Sb_obs.Trace_ctx.now_us () -. t0);
    r
  end
  else pow_fixed table_g (Field.to_int e)
let pow_h e = pow_fixed table_h (Field.to_int e)

let pow_gh a b =
  (* Fused double exponentiation g^a * h^b: one interleaved pass over
     both precomputed tables — the fixed-base version of Shamir's
     trick, sharing the single accumulator between both bases. *)
  let acc = ref one in
  let a = ref (Field.to_int a) and b = ref (Field.to_int b) in
  for i = 0 to window_count - 1 do
    let da = !a land window_mask and db = !b land window_mask in
    if da <> 0 then acc := mul !acc table_g.(i).(da);
    if db <> 0 then acc := mul !acc table_h.(i).(db);
    a := !a lsr window_bits;
    b := !b lsr window_bits
  done;
  !acc

(* Arbitrary-base exponentiation. The two shared generators route to
   their fixed-base window tables (value-identical to the ladder,
   property-tested in test_crypto), which is where nearly every pow
   call in the codebase lands; any other base runs the Montgomery
   ladder. Measured on the dev box: pow at base g 207 -> ~35 ns; for
   truly arbitrary bases the REDC ladder is within ~1.3x of the
   division ladder — the hardware divider is pipelined and fast for
   these operand sizes, so REDC's value there is staying in-domain
   across compound loops (see the Pedersen/Feldman Horner), not the
   single exponentiation. *)
let fixed_range e = e lsr (window_bits * window_count) = 0

let pow_int b e =
  assert (e >= 0);
  if b = g && fixed_range e then pow_fixed table_g e
  else if b = h && fixed_range e then pow_fixed table_h e
  else Mont.to_elt (Mont.pow (Mont.of_elt b) e)

let pow b e = pow_int b (Field.to_int e)

(* Extended Euclid modulo the (prime) modulus: every member is a unit
   of Z_P^*, and for h in the order-q subgroup the Z_P^* inverse
   coincides with h^(q-1), the subgroup inverse. Replaces the old
   ~45-multiplication pow round-trip. *)
let inv h =
  assert (h <> 0);
  let rec go r0 r1 s0 s1 = if r1 = 0 then s0 else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
  let s = go modulus h 0 1 mod modulus in
  if s < 0 then s + modulus else s

let equal = Int.equal

let is_member x =
  (* Members of the order-q subgroup are exactly the x with x^q = 1. *)
  x >= 1 && x < modulus && pow_int x order = 1

let of_int_exn x = if is_member x then x else invalid_arg "Modgroup.of_int_exn: not a member"
let to_int x = x
let commit_g e = pow_g e
let pp fmt x = Format.pp_print_int fmt x
