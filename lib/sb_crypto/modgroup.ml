type elt = int

let modulus = 2147483579 (* safe prime: 2 * Field.p + 1 *)
let order = Field.p
let () = assert (modulus = (2 * order) + 1)
let one = 1
let mul a b = a * b mod modulus

let pow_int h e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go one h e

let pow h e = pow_int h (Field.to_int e)
let g = 4
let inv h = pow_int h (order - 1) (* h^(q-1) = h^-1 in an order-q group *)
let equal = Int.equal

let is_member x =
  (* Members of the order-q subgroup are exactly the x with x^q = 1. *)
  x >= 1 && x < modulus && pow_int x order = 1

let of_int_exn x = if is_member x then x else invalid_arg "Modgroup.of_int_exn: not a member"
let to_int x = x
let commit_g e = pow g e
let pp fmt x = Format.pp_print_int fmt x
