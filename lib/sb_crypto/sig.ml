type scheme = { keys : string array }
type signature = string

let create rng ~n = { keys = Array.init n (fun _ -> Sb_util.Rng.bytes rng 32) }

let sign s ~signer msg =
  assert (signer >= 0 && signer < Array.length s.keys);
  Sha256.digest ("simbcast.sig.v1:" ^ s.keys.(signer) ^ "\x00" ^ msg)

let verify s ~signer msg signature =
  signer >= 0
  && signer < Array.length s.keys
  && String.equal signature (sign s ~signer msg)

let n s = Array.length s.keys
