(** Non-interactive string commitments, with two backends.

    - [Hash]: c = SHA-256(tag ‖ value ‖ nonce) with a k-byte uniform
      nonce. Binding by collision resistance, hiding modelled on the
      random oracle. This is the "real" instantiation of the enhanced-
      trapdoor-permutation commitments the paper's feasibility results
      assume.

    - [Ideal]: the commitment string is an opaque fresh handle and a
      process-global registry maps handles to values. Perfectly hiding
      and binding, and additionally *extractable* and *equivocable* —
      the CRS-model commitment the simulation-based (Sb) proofs rely
      on. [extract] and [equivocate] are simulator-only powers: honest
      protocol code never calls them, and the test suite checks that
      protocols behave identically under the two backends.

    A [scheme] value carries the backend plus (for [Ideal] and for
    random-oracle extraction under [Hash]) its registry, so independent
    experiments never share state. *)

type backend = Hash | Ideal

type scheme

type commitment = string
(** Opaque; safe to send over the simulated network and to compare for
    equality. *)

type opening = { value : string; nonce : string }

val create : ?k:int -> backend -> scheme
(** [k] is the nonce length in bytes (default 16). *)

val backend : scheme -> backend
val commit : scheme -> Sb_util.Rng.t -> string -> commitment * opening
val verify : scheme -> commitment -> opening -> bool

val extract : scheme -> commitment -> string option
(** Simulator power: recover the committed value without the opening.
    Total on [Ideal]; on [Hash] it answers from the record of [commit]
    calls made through this scheme (random-oracle extraction), so it
    returns [None] for adversarially crafted strings that never passed
    through the oracle. *)

val commit_placeholder : scheme -> Sb_util.Rng.t -> commitment
(** Simulator power, [Ideal] only: emit a commitment with no value
    bound yet. Raises [Invalid_argument] on [Hash]. *)

val equivocate : scheme -> commitment -> string -> opening
(** Simulator power, [Ideal] only: bind a placeholder to a value and
    return a verifying opening. Raises [Invalid_argument] on [Hash], on
    unknown handles, and on already-bound handles. *)
