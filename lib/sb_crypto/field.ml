type t = int

let p = 1073741789 (* Sophie Germain: 2p + 1 is also prime *)
let zero = 0
let one = 1

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let to_int x = x
let add a b = let s = a + b in if s >= p then s - p else s
let sub a b = let d = a - b in if d < 0 then d + p else d
let neg a = if a = 0 then 0 else p - a
let mul a b = a * b mod p

(* Extended Euclid; p is prime so every nonzero element is invertible. *)
let inv a =
  if a = 0 then raise Division_by_zero;
  let rec go r0 r1 s0 s1 = if r1 = 0 then s0 else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
  of_int (go p a 0 1)

let div a b = mul a (inv b)

let pow x e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
  in
  go one x e

let equal = Int.equal

let random rng =
  (* Draw 30 bits and reject values >= p (acceptance rate ~0.9999). *)
  let rec draw () =
    let v = Sb_util.Rng.bits rng 30 in
    if v >= p then draw () else v
  in
  draw ()

let rec random_nonzero rng =
  let v = random rng in
  if v = 0 then random_nonzero rng else v

let of_bool b = if b then one else zero
let pp fmt x = Format.pp_print_int fmt x
let to_string = string_of_int
