(** Polynomials over {!Field}, for Shamir secret sharing.

    A polynomial is its coefficient vector, lowest degree first. The
    zero polynomial is the empty vector; otherwise the leading
    coefficient is non-zero. *)

type t

val of_coeffs : Field.t array -> t
(** Normalises (strips trailing zeros). Coefficient 0 is the constant
    term. *)

val coeffs : t -> Field.t array
val degree : t -> int
(** Degree of the zero polynomial is -1. *)

val zero : t
val constant : Field.t -> t
val eval : t -> Field.t -> Field.t
(** Horner evaluation. *)

val eval_many : t -> int -> Field.t array
(** [eval_many p n] evaluates [p] at 1, 2, …, n — the share points of
    an n-party dealing — in a single pass over the coefficients.
    Equals [Array.init n (fun i -> eval p (of_int (i + 1)))]. *)

val random : Sb_util.Rng.t -> degree:int -> constant:Field.t -> t
(** Uniform polynomial of degree at most [degree] with the prescribed
    constant term — exactly the dealer polynomial of Shamir sharing. *)

val add : t -> t -> t
val mul : t -> t -> t
val scale : Field.t -> t -> t

val interpolate : (Field.t * Field.t) list -> t
(** Lagrange interpolation through distinct points; the result has
    degree < number of points. Raises [Invalid_argument] on duplicate
    abscissae. *)

val interpolate_at : (Field.t * Field.t) list -> Field.t -> Field.t
(** [interpolate_at pts x0] evaluates the interpolating polynomial at
    [x0] without constructing it (direct Lagrange formula); this is the
    reconstruction step of Shamir sharing with x0 = 0. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
