(** SHA-256, implemented from scratch (FIPS 180-4).

    The repository is sealed, so the hash the commitment scheme and the
    signature registry rest on is implemented here rather than imported.
    Only the plain one-shot interface is needed by the rest of the
    system, but an incremental interface is provided for completeness
    and to make the test suite's chunking properties meaningful. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
(** May be called repeatedly; bytes are processed in 64-byte blocks. *)

val finalize : ctx -> string
(** 32-byte raw digest. The context must not be used afterwards. *)

val digest : string -> string
(** One-shot 32-byte raw digest. *)

val hex : string -> string
(** One-shot lowercase hex digest (64 chars). *)

val to_hex : string -> string
(** Hex-encode an arbitrary string. *)

val xor_strings : string -> string -> string
(** Pointwise XOR of two equal-length strings; used to build masks and
    pads on top of the hash. *)
