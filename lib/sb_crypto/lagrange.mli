(** Cached Lagrange basis coefficients for reconstruction hot paths.

    [interpolate_at] is a drop-in equivalent of {!Poly.interpolate_at}
    (same values — field arithmetic is exact — and the same
    [Invalid_argument] on duplicate abscissae), but the O(n²) basis
    computation is paid once per distinct (x0, abscissa-set) and
    cached. Caches are domain-local, so the module is safe and
    lock-free under sb_par domain parallelism, and deterministic at
    every [--jobs] value. *)

val coeffs : xs:Field.t array -> at:Field.t -> Field.t array
(** [coeffs ~xs ~at] returns the basis vector [l] with
    [l.(j) = prod_{m<>j} (at - xs.(m)) / (xs.(j) - xs.(m))], so the
    interpolating polynomial through [(xs.(j), y_j)] evaluates at [at]
    to [sum_j y_j · l.(j)]. Cached; raises [Invalid_argument] on
    duplicate abscissae. The returned array is shared — do not
    mutate. *)

val interpolate_at : (Field.t * Field.t) list -> Field.t -> Field.t
(** Cached equivalent of {!Poly.interpolate_at}. *)

val at_zero : int -> Field.t array
(** [at_zero n]: coefficients at 0 for the abscissae 1..n — the public
    recombination vector of Shamir reconstruction and BGW degree
    reduction over the full party set. *)
