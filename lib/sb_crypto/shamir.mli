(** Shamir (t, n) threshold secret sharing over {!Field}.

    Party i ∈ {0, …, n−1} holds the share f(i+1) of a uniformly random
    degree-t polynomial f with f(0) = secret. Any t+1 shares reconstruct;
    any t shares are statistically independent of the secret. This is
    the sharing layer underneath the CGMA-style simultaneous broadcast
    protocol ([Cgma] in [sb_protocols]). *)

type share = { index : int; value : Field.t }
(** [index] is the party id (0-based); the evaluation point is
    [index + 1] so that the secret sits at 0. *)

val share :
  Sb_util.Rng.t -> threshold:int -> parties:int -> secret:Field.t -> share array * Poly.t
(** [share rng ~threshold:t ~parties:n ~secret] returns one share per
    party and the dealer polynomial (degree ≤ t; needed by Feldman
    commitments). Requires 0 <= t < n and n < {!Field.p}. *)

val reconstruct : share list -> Field.t
(** Lagrange reconstruction at 0, via the {!Lagrange} coefficient
    cache (the basis vector is computed once per distinct index set).
    Requires at least [threshold + 1] shares from the original sharing
    (not checked here — verifiability is {!Feldman}'s job); duplicate
    indices are rejected. *)

val reconstruct_poly : share list -> Poly.t
(** Full polynomial through the given shares (for consistency checks in
    tests). *)

val eval_point : int -> Field.t
(** The field point assigned to a party index. *)
