type backend = Hash | Ideal
type commitment = string
type opening = { value : string; nonce : string }

type entry = Bound of string | Placeholder

type scheme = {
  backend : backend;
  k : int;
  registry : (commitment, entry) Hashtbl.t;
  (* Hash backend: record of every (value, nonce) committed through this
     scheme, keyed by digest — the random-oracle transcript. *)
}

let create ?(k = 16) backend = { backend; k; registry = Hashtbl.create 64 }
let backend s = s.backend
let domain_tag = "simbcast.commit.v1:"
let hash_of value nonce = Sha256.digest (domain_tag ^ value ^ "\x00" ^ nonce)

let fresh_handle s rng =
  (* 8 extra bytes of per-scheme counter-free entropy keep collisions
     out of reach even across splits of the same seed. *)
  let rec go () =
    let h = "ideal:" ^ Sha256.to_hex (Sb_util.Rng.bytes rng (s.k + 8)) in
    if Hashtbl.mem s.registry h then go () else h
  in
  go ()

let commit s rng value =
  let nonce = Sb_util.Rng.bytes rng s.k in
  match s.backend with
  | Hash ->
      let c = hash_of value nonce in
      Hashtbl.replace s.registry c (Bound value);
      (c, { value; nonce })
  | Ideal ->
      let c = fresh_handle s rng in
      Hashtbl.replace s.registry c (Bound value);
      (c, { value; nonce })

let verify s c (o : opening) =
  match s.backend with
  | Hash -> String.equal c (hash_of o.value o.nonce)
  | Ideal -> (
      match Hashtbl.find_opt s.registry c with
      | Some (Bound v) -> String.equal v o.value
      | Some Placeholder | None -> false)

let extract s c =
  match Hashtbl.find_opt s.registry c with
  | Some (Bound v) -> Some v
  | Some Placeholder | None -> None

let commit_placeholder s rng =
  match s.backend with
  | Hash -> invalid_arg "Commit.commit_placeholder: Hash backend is not equivocable"
  | Ideal ->
      let c = fresh_handle s rng in
      Hashtbl.replace s.registry c Placeholder;
      c

let equivocate s c value =
  match s.backend with
  | Hash -> invalid_arg "Commit.equivocate: Hash backend is not equivocable"
  | Ideal -> (
      match Hashtbl.find_opt s.registry c with
      | Some Placeholder ->
          Hashtbl.replace s.registry c (Bound value);
          { value; nonce = "" }
      | Some (Bound _) -> invalid_arg "Commit.equivocate: handle already bound"
      | None -> invalid_arg "Commit.equivocate: unknown handle")
