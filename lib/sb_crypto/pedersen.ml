type share = { index : int; value : Field.t; blind : Field.t }
type commitment = Modgroup.elt array

let h = Modgroup.h

(* Fused fixed-base double exponentiation g^a * h^b — one table pass
   instead of two full square-and-multiply ladders and a multiply.
   Traced runs charge the time to the "commit_pair" attribution
   bucket of the innermost open span. *)
let commit_pair a b =
  if Sb_obs.Trace_ctx.enabled () then begin
    let t0 = Sb_obs.Trace_ctx.now_us () in
    let r = Modgroup.pow_gh a b in
    Sb_obs.Trace_ctx.bucket_add "commit_pair" (Sb_obs.Trace_ctx.now_us () -. t0);
    r
  end
  else Modgroup.pow_gh a b

type dealt = { shares : share array; commitment : commitment; blind0 : Field.t }

let deal rng ~threshold ~parties ~secret =
  let blind0 = Field.random rng in
  let shares_f, f = Shamir.share rng ~threshold ~parties ~secret in
  let shares_f', f' = Shamir.share rng ~threshold ~parties ~secret:blind0 in
  let coeff p j =
    let c = Poly.coeffs p in
    if j < Array.length c then c.(j) else Field.zero
  in
  let commitment = Array.init (threshold + 1) (fun j -> commit_pair (coeff f j) (coeff f' j)) in
  let shares =
    Array.init parties (fun i ->
        { index = i; value = shares_f.(i).Shamir.value; blind = shares_f'.(i).Shamir.value })
  in
  { shares; commitment; blind0 }

let expected_commitment c index =
  (* Horner in the exponent, carried in Montgomery form across the
     whole polynomial: one of_elt per coefficient, one to_elt at the
     end, and every ladder step inside pow is division-free. *)
  let x = Field.to_int (Shamir.eval_point index) in
  let acc = ref Modgroup.Mont.one in
  for j = Array.length c - 1 downto 0 do
    acc := Modgroup.Mont.(mul (pow !acc x) (of_elt c.(j)))
  done;
  Modgroup.Mont.to_elt !acc

let verify_share c s = Modgroup.equal (commit_pair s.value s.blind) (expected_commitment c s.index)

let verify_opening c ~secret ~blind =
  Array.length c > 0 && Modgroup.equal (commit_pair secret blind) c.(0)

(* Both interpolations charge the "reconstruct" attribution bucket
   under tracing, like Shamir.reconstruct. *)
let reconstruct shares =
  if Sb_obs.Trace_ctx.enabled () then begin
    let t0 = Sb_obs.Trace_ctx.now_us () in
    let r =
      Lagrange.interpolate_at
        (List.map (fun s -> (Shamir.eval_point s.index, s.value)) shares)
        Field.zero
    in
    Sb_obs.Trace_ctx.bucket_add "reconstruct" (Sb_obs.Trace_ctx.now_us () -. t0);
    r
  end
  else
    Lagrange.interpolate_at
      (List.map (fun s -> (Shamir.eval_point s.index, s.value)) shares)
      Field.zero

let reconstruct_blind shares =
  if Sb_obs.Trace_ctx.enabled () then begin
    let t0 = Sb_obs.Trace_ctx.now_us () in
    let r =
      Lagrange.interpolate_at
        (List.map (fun s -> (Shamir.eval_point s.index, s.blind)) shares)
        Field.zero
    in
    Sb_obs.Trace_ctx.bucket_add "reconstruct" (Sb_obs.Trace_ctx.now_us () -. t0);
    r
  end
  else
    Lagrange.interpolate_at
      (List.map (fun s -> (Shamir.eval_point s.index, s.blind)) shares)
      Field.zero
