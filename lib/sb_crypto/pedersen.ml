type share = { index : int; value : Field.t; blind : Field.t }
type commitment = Modgroup.elt array

(* 9 = 3^2 is a quadratic residue mod the safe prime, hence a member of
   the order-q subgroup and (the subgroup having prime order) a
   generator of it. *)
let h = Modgroup.of_int_exn 9

let commit_pair a b = Modgroup.mul (Modgroup.commit_g a) (Modgroup.pow h b)

type dealt = { shares : share array; commitment : commitment; blind0 : Field.t }

let deal rng ~threshold ~parties ~secret =
  let blind0 = Field.random rng in
  let shares_f, f = Shamir.share rng ~threshold ~parties ~secret in
  let shares_f', f' = Shamir.share rng ~threshold ~parties ~secret:blind0 in
  let coeff p j =
    let c = Poly.coeffs p in
    if j < Array.length c then c.(j) else Field.zero
  in
  let commitment = Array.init (threshold + 1) (fun j -> commit_pair (coeff f j) (coeff f' j)) in
  let shares =
    Array.init parties (fun i ->
        { index = i; value = shares_f.(i).Shamir.value; blind = shares_f'.(i).Shamir.value })
  in
  { shares; commitment; blind0 }

let expected_commitment c index =
  let x = Field.to_int (Shamir.eval_point index) in
  let acc = ref Modgroup.one in
  for j = Array.length c - 1 downto 0 do
    acc := Modgroup.mul (Modgroup.pow_int !acc x) c.(j)
  done;
  !acc

let verify_share c s = Modgroup.equal (commit_pair s.value s.blind) (expected_commitment c s.index)

let verify_opening c ~secret ~blind =
  Array.length c > 0 && Modgroup.equal (commit_pair secret blind) c.(0)

let reconstruct shares =
  Poly.interpolate_at
    (List.map (fun s -> (Shamir.eval_point s.index, s.value)) shares)
    Field.zero

let reconstruct_blind shares =
  Poly.interpolate_at
    (List.map (fun s -> (Shamir.eval_point s.index, s.blind)) shares)
    Field.zero
