type share = { index : int; value : Field.t }

let eval_point i = Field.of_int (i + 1)

let share rng ~threshold ~parties ~secret =
  assert (threshold >= 0 && threshold < parties);
  assert (parties < Field.p);
  let f =
    if threshold = 0 then Poly.constant secret
    else Poly.random rng ~degree:threshold ~constant:secret
  in
  let values = Poly.eval_many f parties in
  let shares = Array.init parties (fun i -> { index = i; value = values.(i) }) in
  (shares, f)

let points shares = List.map (fun s -> (eval_point s.index, s.value)) shares
(* Charges the "reconstruct" attribution bucket under tracing. *)
let reconstruct shares =
  if Sb_obs.Trace_ctx.enabled () then begin
    let t0 = Sb_obs.Trace_ctx.now_us () in
    let r = Lagrange.interpolate_at (points shares) Field.zero in
    Sb_obs.Trace_ctx.bucket_add "reconstruct" (Sb_obs.Trace_ctx.now_us () -. t0);
    r
  end
  else Lagrange.interpolate_at (points shares) Field.zero
let reconstruct_poly shares = Poly.interpolate (points shares)
