(* Cached Lagrange basis coefficients.

   The reconstruction hot path (Shamir / Pedersen / BGW degree
   reduction) evaluates the interpolating polynomial of a point set at
   a fixed x0, thousands of times per experiment, and the abscissa set
   is almost always the same handful of party indices. The basis
   coefficients

     l_j = prod_{m <> j} (x0 - x_m) / (x_j - x_m)

   depend only on (x0, abscissae), so we compute them once per point
   set and replay them for every sample. The cache is domain-local
   (Domain.DLS): each sb_par worker fills its own table, so there is
   no locking and no cross-domain interference; coefficients are exact
   field elements, so every domain computes identical values and
   results remain byte-identical at every --jobs. *)

let check_distinct xs =
  let sorted = Array.map Field.to_int xs in
  Array.sort Int.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i - 1) = sorted.(i) then invalid_arg "Poly.interpolate: duplicate abscissae"
  done

let compute xs at =
  check_distinct xs;
  let n = Array.length xs in
  Array.init n (fun j ->
      let xj = xs.(j) in
      let lj = ref Field.one in
      for m = 0 to n - 1 do
        if m <> j then
          lj := Field.mul !lj (Field.div (Field.sub at xs.(m)) (Field.sub xj xs.(m)))
      done;
      !lj)

let cache : (int list, Field.t array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let coeffs ~xs ~at =
  let key = Field.to_int at :: Array.fold_right (fun x k -> Field.to_int x :: k) xs [] in
  let tbl = Domain.DLS.get cache in
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = compute xs at in
      Hashtbl.replace tbl key c;
      c

let interpolate_at pts x0 =
  let xs = Array.of_list (List.map fst pts) in
  let c = coeffs ~xs ~at:x0 in
  let acc = ref Field.zero in
  List.iteri (fun j (_, yj) -> acc := Field.add !acc (Field.mul yj c.(j))) pts;
  !acc

let at_zero n =
  coeffs ~xs:(Array.init n (fun i -> Field.of_int (i + 1))) ~at:Field.zero
