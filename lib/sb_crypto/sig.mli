(** Ideal signature functionality for authenticated broadcast.

    Dolev–Strong broadcast needs digital signatures that every party can
    verify and only the owner can produce. We model them as an ideal
    registry: a [scheme] holds one secret MAC key per party; [sign]
    computes SHA-256(key_i ‖ msg) and the key never leaves the module,
    so unforgeability holds by construction rather than by assumption.
    The simulated adversary signs for corrupted parties through the same
    interface — which is exactly its power in the real model. *)

type scheme
type signature = string

val create : Sb_util.Rng.t -> n:int -> scheme
(** Fresh keys for parties 0 … n−1 (the trusted-setup/PKI step). *)

val sign : scheme -> signer:int -> string -> signature
val verify : scheme -> signer:int -> string -> signature -> bool

val n : scheme -> int
