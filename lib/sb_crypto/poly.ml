type t = Field.t array
(* Invariant: empty, or last coefficient non-zero. *)

let normalise a =
  let n = ref (Array.length a) in
  while !n > 0 && Field.equal a.(!n - 1) Field.zero do
    decr n
  done;
  Array.sub a 0 !n

let of_coeffs a = normalise (Array.copy a)
let coeffs p = Array.copy p
let degree p = Array.length p - 1
let zero = [||]
let constant c = normalise [| c |]

let eval p x =
  let acc = ref Field.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) p.(i)
  done;
  !acc

let eval_many p n =
  (* Evaluations at x = 1..n in one pass over the coefficients: each
     step folds coefficient p.(j) into every accumulator, so acc.(i)
     performs exactly the Horner recurrence of [eval p (i+1)] and the
     results are bit-identical to the per-point loop, with one array
     traversal per coefficient instead of per point. *)
  let acc = Array.make n Field.zero in
  let xs = Array.init n (fun i -> Field.of_int (i + 1)) in
  for j = Array.length p - 1 downto 0 do
    let pj = p.(j) in
    for i = 0 to n - 1 do
      acc.(i) <- Field.add (Field.mul acc.(i) xs.(i)) pj
    done
  done;
  acc

let random rng ~degree ~constant =
  assert (degree >= 0);
  let a = Array.init (degree + 1) (fun i -> if i = 0 then constant else Field.random rng) in
  normalise a

let add p q =
  let n = max (Array.length p) (Array.length q) in
  let coeff a i = if i < Array.length a then a.(i) else Field.zero in
  normalise (Array.init n (fun i -> Field.add (coeff p i) (coeff q i)))

let mul p q =
  if Array.length p = 0 || Array.length q = 0 then zero
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) Field.zero in
    Array.iteri
      (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- Field.add r.(i + j) (Field.mul pi qj)) q)
      p;
    normalise r
  end

let scale c p = normalise (Array.map (Field.mul c) p)

let check_distinct pts =
  let xs = List.map fst pts in
  let sorted = List.sort (fun a b -> Int.compare (Field.to_int a) (Field.to_int b)) xs in
  let rec dup = function
    | a :: (b :: _ as rest) -> Field.equal a b || dup rest
    | _ -> false
  in
  if dup sorted then invalid_arg "Poly.interpolate: duplicate abscissae"

let interpolate pts =
  check_distinct pts;
  (* Sum of y_j * prod_{m<>j} (X - x_m) / (x_j - x_m). *)
  let basis xj others =
    List.fold_left
      (fun acc xm ->
        let denom = Field.inv (Field.sub xj xm) in
        mul acc (of_coeffs [| Field.mul (Field.neg xm) denom; denom |]))
      (constant Field.one) others
  in
  List.fold_left
    (fun acc (xj, yj) ->
      let others = List.filter_map (fun (x, _) -> if Field.equal x xj then None else Some x) pts in
      add acc (scale yj (basis xj others)))
    zero pts

let interpolate_at pts x0 =
  check_distinct pts;
  List.fold_left
    (fun acc (xj, yj) ->
      let lj =
        List.fold_left
          (fun l (xm, _) ->
            if Field.equal xm xj then l
            else Field.mul l (Field.div (Field.sub x0 xm) (Field.sub xj xm)))
          Field.one pts
      in
      Field.add acc (Field.mul yj lj))
    Field.zero pts

let equal p q = Array.length p = Array.length q && Array.for_all2 Field.equal p q

let pp fmt p =
  if Array.length p = 0 then Format.pp_print_string fmt "0"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt " + ";
        Format.fprintf fmt "%a·X^%d" Field.pp c i)
      p
