(** Pedersen verifiable secret sharing.

    Like {!Feldman}, but perfectly hiding: the dealer commits to the
    coefficients of two polynomials — f (carrying the secret) and f'
    (uniform blinding) — as C_j = g^{a_j} · h^{b_j}, where h is a CRS
    group element whose discrete log w.r.t. g nobody knows. Party i
    holds the share pair (f(i+1), f'(i+1)) and checks

      g^{s_i} · h^{s'_i} =? Π_j C_j^{(i+1)^j}.

    Binding is computational (a dealer opening any point two ways
    yields log_g h); hiding is perfect, so commitments to the bit 0
    and the bit 1 are identically distributed — which is what lets the
    CGMA-style protocol publish commitments before any reveal without
    leaking the bits (Feldman would leak g^bit). *)

type share = { index : int; value : Field.t; blind : Field.t }
type commitment = Modgroup.elt array

val h : Modgroup.elt
(** The second generator ({!Modgroup.h}, a fixed quadratic residue;
    its dlog w.r.t. g plays the role of the CRS trapdoor nobody
    holds). Commitments are computed with the fused fixed-base
    {!Modgroup.pow_gh}. *)

type dealt = {
  shares : share array;
  commitment : commitment;
  blind0 : Field.t;  (** f'(0): the dealer's own opening data *)
}

val deal :
  Sb_util.Rng.t -> threshold:int -> parties:int -> secret:Field.t -> dealt

val verify_share : commitment -> share -> bool

val verify_opening : commitment -> secret:Field.t -> blind:Field.t -> bool
(** Check a direct opening of the constant term. *)

val reconstruct : share list -> Field.t
(** Lagrange interpolation of the value components at 0, via the
    {!Lagrange} coefficient cache; callers must supply at least
    threshold+1 shares that verified against the same commitment. *)

val reconstruct_blind : share list -> Field.t
(** Same, for the blinding components: recovers f'(0). *)
