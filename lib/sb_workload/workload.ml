open Sb_util
open Sb_session

type outcome = {
  name : string;
  quick : bool;
  scale : (string * int) list;
  summary : (string * Sb_obs.Json.t) list;
  specs : Engine.spec list;
  aggregate : Engine.aggregate;
  reports : Engine.session_report array;
}

type def = {
  wname : string;
  describe : string;
  build :
    quick:bool ->
    faults:Sb_fault.Plan.t option ->
    rng:Rng.t ->
    Core.Setup.t
    * Sb_dist.Dist.t
    * Engine.spec list
    * (string * int) list
    * (Engine.session_report array -> (string * Sb_obs.Json.t) list);
}

let substrate name = List.assoc name (Core.Resilience.substrates ())
let committee = 5
let base_setup = Core.Setup.{ default with n = committee; thresh = (committee - 1) / 2 }

(* Shared summarization helpers; everything here is a pure function of
   the (jobs-invariant) session reports, so workload summaries are
   byte-identical at every --jobs value. *)

let count_if p reports =
  Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 reports

let certified (r : Engine.session_report) =
  r.Engine.consistent && Bitvec.equal r.Engine.x r.Engine.w

(* Highest-index party whose announced bit is set; -1 when nobody
   bid. Sealed simultaneity is the point: every declaration is
   committed before any is revealed, so "highest bidder wins" cannot
   be sniped (examples/sealed_auction.ml shows the attack). *)
let winner (r : Engine.session_report) =
  let w = r.Engine.w in
  let rec scan i = if i < 0 then -1 else if Bitvec.get w i then i else scan (i - 1) in
  scan (Bitvec.length w - 1)

(* --- election (Broadbent–Tapp-style, arXiv 0806.1931) --------------- *)

(* Millions of simulated voters cast Bernoulli ballots, tallied per
   precinct. Every precinct certifies its tally through one SB
   session: a small sample of audited precincts submit the exact count
   to a large Dolev-Strong trustee committee (the heavy tail), all
   others certify the tally's low bits with their 5-party precinct
   committee. A session certifies iff it is consistent and announces
   exactly the submitted tally bits. *)
let election =
  let build ~quick ~faults ~rng =
    let voters = if quick then 50_000 else 2_000_000 in
    let precinct = if quick then 250 else 1000 in
    let trustees = if quick then 16 else 20 in
    let audited = 8 in
    let precincts = voters / precinct in
    let p_yes = 0.52 in
    let tally = Array.make precincts 0 in
    for v = 0 to voters - 1 do
      if Rng.bernoulli rng p_yes then tally.(v / precinct) <- tally.(v / precinct) + 1
    done;
    let yes = Array.fold_left ( + ) 0 tally in
    let stride = precincts / audited in
    let audit_id j = j * stride in
    let is_audited = Array.make precincts false in
    for j = 0 to audited - 1 do
      is_audited.(audit_id j) <- true
    done;
    let rest =
      Array.of_list
        (List.filter (fun p -> not is_audited.(p)) (List.init precincts Fun.id))
    in
    let mask = (1 lsl committee) - 1 in
    let specs =
      [
        (* Heavy spec first: the claim order follows spec order, so
           stragglers are in flight before the cheap tail. *)
        Engine.spec ~parties:trustees ?faults
          ~inputs:(fun j -> Bitvec.of_int trustees tally.(audit_id j))
          (substrate "concurrent-dolev-strong")
          audited;
        Engine.spec
          ~inputs:(fun j -> Bitvec.of_int committee (tally.(rest.(j)) land mask))
          (substrate "concurrent-bracha")
          (Array.length rest);
      ]
    in
    let scale =
      [
        ("voters", voters);
        ("precincts", precincts);
        ("audited", audited);
        ("trustees", trustees);
      ]
    in
    let summarize reports =
      let ok = count_if certified reports in
      [
        ("yes", Sb_obs.Json.Int yes);
        ("no", Sb_obs.Json.Int (voters - yes));
        ("margin", Sb_obs.Json.Int ((2 * yes) - voters));
        ("certified_sessions", Sb_obs.Json.Int ok);
        ("certified", Sb_obs.Json.Bool (ok = Array.length reports));
      ]
    in
    (base_setup, Sb_dist.Dist.uniform committee, specs, scale, summarize)
  in
  {
    wname = "election";
    describe =
      "precinct-tallied referendum: Bernoulli voters, audited precincts certified by \
       a large Dolev-Strong trustee committee, the rest by 5-party Bracha committees";
    build;
  }

(* --- sealed-bid auction mix ----------------------------------------- *)

(* Each lot is one SB session of single-bit "bid at reserve"
   declarations; the highest-index declarer wins. Premium lots gather
   many bidders under Dolev-Strong (heavy tail), standard lots run the
   Gennaro VSS protocol, micro lots plain commit-open. *)
let auction =
  let build ~quick ~faults ~rng:_ =
    let premium = if quick then 8 else 10 in
    let premium_bidders = if quick then 16 else 20 in
    let standard = if quick then 30 else 100 in
    let micro = if quick then 150 else 2000 in
    let specs =
      [
        Engine.spec ~parties:premium_bidders
          ~dist:(Sb_dist.Dist.product 0.4 premium_bidders)
          ?faults
          (substrate "concurrent-dolev-strong")
          premium;
        Engine.spec Sb_protocols.Gennaro.protocol standard;
        Engine.spec Sb_protocols.Commit_open.protocol micro;
      ]
    in
    let scale =
      [
        ("lots", premium + standard + micro);
        ("premium", premium);
        ("standard", standard);
        ("micro", micro);
        ("premium_bidders", premium_bidders);
      ]
    in
    let summarize reports =
      let sold =
        count_if (fun (r : Engine.session_report) -> r.Engine.consistent && winner r >= 0) reports
      in
      let premium_sold =
        count_if (fun (r : Engine.session_report) -> r.Engine.index < premium && winner r >= 0) reports
      in
      (* Order-sensitive digest of the winner sequence: any scheduler
         that permuted or corrupted a lot's outcome changes it. *)
      let checksum =
        Array.fold_left (fun acc r -> ((acc * 31) + winner r + 2) mod 1_000_003) 0 reports
      in
      [
        ("sold", Sb_obs.Json.Int sold);
        ("no_sale", Sb_obs.Json.Int (Array.length reports - sold));
        ("premium_sold", Sb_obs.Json.Int premium_sold);
        ("winner_checksum", Sb_obs.Json.Int checksum);
      ]
    in
    (base_setup, Sb_dist.Dist.product 0.65 committee, specs, scale, summarize)
  in
  {
    wname = "auction";
    describe =
      "sealed-bid lots: premium lots with many Dolev-Strong bidders, standard lots \
       under Gennaro VSS, micro lots under commit-open";
    build;
  }

(* --- lottery mix ----------------------------------------------------- *)

(* Each draw's coin is the parity of the announced vector (the
   coin-flipping application; examples/coin_flipping.ml shows why
   mere parallel broadcast loses fairness). Jackpot draws use a
   16-party Phase-King committee; a slice of the regular draws runs
   under a 5% envelope-drop fault plan — draws whose session loses
   consistency are voided. *)
let lottery =
  let build ~quick ~faults ~rng:_ =
    let jackpot = if quick then 6 else 8 in
    let jackpot_n = 16 in
    let draws = if quick then 450 else 3000 in
    let faulty = if quick then 150 else 1000 in
    let specs =
      [
        Engine.spec ~parties:jackpot_n
          ~dist:(Sb_dist.Dist.uniform jackpot_n)
          ?faults
          (substrate "concurrent-phase-king")
          jackpot;
        Engine.spec (substrate "concurrent-bracha") draws;
        Engine.spec
          ~faults:[ Sb_fault.Plan.drop 0.05 ]
          (substrate "concurrent-bracha") faulty;
      ]
    in
    let scale =
      [
        ("draws", jackpot + draws + faulty);
        ("jackpot", jackpot);
        ("regular", draws);
        ("faulty_link", faulty);
      ]
    in
    let summarize reports =
      let decided = count_if (fun (r : Engine.session_report) -> r.Engine.consistent) reports in
      let heads =
        count_if (fun (r : Engine.session_report) -> r.Engine.consistent && Bitvec.parity r.Engine.w) reports
      in
      let tails = decided - heads in
      let bias_bp =
        if decided = 0 then 0 else abs (heads - tails) * 10_000 / decided
      in
      [
        ("heads", Sb_obs.Json.Int heads);
        ("tails", Sb_obs.Json.Int tails);
        ("void", Sb_obs.Json.Int (Array.length reports - decided));
        ("bias_bp", Sb_obs.Json.Int bias_bp);
      ]
    in
    (base_setup, Sb_dist.Dist.uniform committee, specs, scale, summarize)
  in
  {
    wname = "lottery";
    describe =
      "XOR-coin draws: Phase-King jackpot committees, Bracha regular draws, one slice \
       under a 5% envelope-drop fault plan (inconsistent draws voided)";
    build;
  }

let catalogue = [ election; auction; lottery ]
let names = List.map (fun d -> d.wname) catalogue
let describe name =
  List.find_map (fun d -> if d.wname = name then Some d.describe else None) catalogue

let run ?pool ?(sched = Engine.Steal) ?faults ?(quick = false) ~seed name =
  match List.find_opt (fun d -> d.wname = name) catalogue with
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (try: %s)" name (String.concat ", " names))
  | Some d -> (
      let rngs = Rng.split_n (Rng.create seed) 2 in
      match d.build ~quick ~faults ~rng:rngs.(0) with
      | exception Invalid_argument msg -> Error msg
      | setup, dist, specs, scale, summarize -> (
          match Engine.run ?pool ~sched ~setup ~dist specs rngs.(1) with
          | exception Invalid_argument msg -> Error msg
          | aggregate, reports ->
              Ok
                {
                  name = d.wname;
                  quick;
                  scale;
                  summary = summarize reports;
                  specs;
                  aggregate;
                  reports;
                }))

let to_json o =
  Sb_obs.Json.Obj
    [
      ("name", Sb_obs.Json.Str o.name);
      ("tier", Sb_obs.Json.Str (if o.quick then "quick" else "full"));
      ("sessions", Sb_obs.Json.Int o.aggregate.Engine.sessions);
      ("consistent", Sb_obs.Json.Int o.aggregate.Engine.consistent);
      ("scale", Sb_obs.Json.Obj (List.map (fun (k, v) -> (k, Sb_obs.Json.Int v)) o.scale));
      ("summary", Sb_obs.Json.Obj o.summary);
    ]

let deterministic_lines o =
  let a = o.aggregate in
  [
    Printf.sprintf "workload   : %s (%s)" o.name (if o.quick then "quick" else "full");
    Printf.sprintf "scale      : %s"
      (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) o.scale));
    Printf.sprintf "specs      : %s"
      (String.concat ", "
         (List.map
            (fun (s : Engine.spec) ->
              Printf.sprintf "%s x%d" s.Engine.protocol.Sb_sim.Protocol.name
                s.Engine.count)
            o.specs));
    Printf.sprintf "sessions   : %d total, %d consistent, %d shards" a.Engine.sessions
      a.Engine.consistent a.Engine.shards;
    Printf.sprintf "summary    : %s"
      (String.concat " "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%s" k (Sb_obs.Json.to_string v))
            o.summary));
    Printf.sprintf "comm       : %d broadcasts (%d B), %d p2p (%d B)" a.Engine.broadcasts
      a.Engine.broadcast_bytes a.Engine.p2p a.Engine.p2p_bytes;
  ]
