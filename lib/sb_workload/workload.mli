(** Benchmarked application workloads over the session engine.

    The paper's Section 1 motivates simultaneous broadcast through
    application traffic — elections, sealed-bid auctions, lotteries.
    This suite promotes the single-run `examples/` demos into
    first-class batched workloads driven by {!Sb_session.Engine}: each
    workload assembles a heavy-tailed mix of specs (a few large-party
    Dolev-Strong/Phase-King sessions among thousands of cheap 5-party
    sessions), feeds application data into the sessions (precinct
    tallies, bid coins), and reduces the per-session reports to an
    application-level summary.

    Determinism: a workload is a pure function of [(name, quick,
    seed, faults)] — ballots and inputs are drawn from one child of
    the master seed, the engine from another — so the summary, the
    JSON block and every report are byte-identical at every [--jobs]
    value and under either scheduler.

    Workloads:
    - ["election"] — Broadbent–Tapp-style referendum (arXiv
      0806.1931): millions of simulated voters tallied per precinct;
      audited precincts certify the exact count through a large
      Dolev-Strong trustee committee, the rest certify the tally's low
      bits with 5-party Bracha committees.
    - ["auction"] — sealed-bid lots: premium lots with many
      Dolev-Strong bidders, standard lots under Gennaro VSS, micro
      lots under commit-open; highest-index declarer wins.
    - ["lottery"] — XOR-coin draws: Phase-King jackpot committees,
      Bracha regular draws, and a slice under a 5% envelope-drop fault
      plan whose inconsistent draws are voided. *)

type outcome = {
  name : string;
  quick : bool;
  scale : (string * int) list;  (** e.g. [("voters", 2000000); ...] *)
  summary : (string * Sb_obs.Json.t) list;
      (** application-level verdicts, deterministic *)
  specs : Sb_session.Engine.spec list;
  aggregate : Sb_session.Engine.aggregate;
  reports : Sb_session.Engine.session_report array;
}

val names : string list
(** The workload catalogue: ["election"; "auction"; "lottery"]. *)

val describe : string -> string option
(** One-line description, for [simbcast list]. *)

val run :
  ?pool:Sb_par.Pool.t ->
  ?sched:Sb_session.Engine.sched ->
  ?faults:Sb_fault.Plan.t ->
  ?quick:bool ->
  seed:int ->
  string ->
  (outcome, string) result
(** [run ~seed name] builds and executes the named workload (full
    scale by default; [~quick:true] for the CI-sized tier). [faults],
    when given, is attached to the workload's first (heavy) spec on
    top of any built-in plans. Returns [Error] for an unknown name or
    an invalid fault plan instead of raising. *)

val to_json : outcome -> Sb_obs.Json.t
(** The report's [workload] block (schema v7): name, tier,
    session/consistency totals, the scale and summary objects. No
    wall-clock-derived fields — the block is byte-identical at every
    [--jobs]. *)

val deterministic_lines : outcome -> string list
(** The jobs-invariant stdout summary (workload, scale, specs,
    sessions, summary, comm) — callers append their own wall-clock /
    scheduler lines, which CI's invariance diffs filter. *)
