open Sb_util
open Sb_session

(* E18: the work-stealing scheduler on a heavy-tailed two-protocol
   mix — a few large-n Dolev-Strong sessions among hundreds of cheap
   Bracha votes, the exact traffic shape that starves the historical
   static ≤32-shard layout (its single heavy shard dominates the
   batch while the other workers drain the cheap tail and go idle).

   The ≥1.5× acceptance gate is evaluated on a *modeled* 4-worker
   makespan: run the batch once, measure every session's wall clock,
   then greedy-list-schedule the per-shard costs of each layout onto 4
   workers. The model is deterministic given the measured costs and
   independent of how many cores the host actually has, so the gate is
   meaningful in single-core CI too. The real pooled walls, steal
   counts and per-worker utilization are reported alongside as notes
   (and as sched.* metrics) but not gated — on an oversubscribed host
   they measure the OS scheduler, not ours. *)

let substrate name = List.assoc name (Core.Resilience.substrates ())

(* Greedy list scheduling in claim (= shard index) order: each shard
   goes to the earliest-free worker. This models both executions — the
   static path's per-shard task queue and the steal path's atomic
   claim loop are exactly this policy at their respective
   granularities. *)
let makespan ~workers costs =
  let load = Array.make workers 0.0 in
  Array.iter
    (fun c ->
      let best = ref 0 in
      for w = 1 to workers - 1 do
        if load.(w) < load.(!best) then best := w
      done;
      load.(!best) <- load.(!best) +. c)
    costs;
  Array.fold_left max 0.0 load

let percentile xs p =
  if Array.length xs = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let k = min (Array.length s - 1) (p * (Array.length s - 1) / 100) in
    s.(k)
  end

let outcome_slice reports =
  Array.map
    (fun (r : Engine.session_report) ->
      ( r.Engine.index,
        r.Engine.protocol,
        Bitvec.to_string r.Engine.x,
        Bitvec.to_string r.Engine.w,
        r.Engine.consistent,
        r.Engine.rounds,
        r.Engine.p2p ))
    reports

let run (setup : Core.Setup.t) =
  let quick = setup.Core.Setup.samples <= 2000 in
  let heavy = if quick then 6 else 8 in
  let heavy_n = if quick then 16 else 20 in
  let cheap = if quick then 600 else 2000 in
  let workers = 4 in
  let seed = 1800 in
  let counts = [| heavy; cheap |] in
  let specs =
    [
      Engine.spec ~parties:heavy_n
        ~dist:(Sb_dist.Dist.uniform heavy_n)
        (substrate "concurrent-dolev-strong")
        heavy;
      Engine.spec (substrate "concurrent-bracha") cheap;
    ]
  in
  let setup5 = Core.Setup.{ setup with n = 5; thresh = 2 } in
  let dist = Sb_dist.Dist.uniform 5 in
  let run_with ~domains ~sched =
    let pool = Sb_par.Pool.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Sb_par.Pool.shutdown pool)
      (fun () -> Engine.run ~pool ~sched ~setup:setup5 ~dist specs (Rng.create seed))
  in
  (* Measurement pass: one worker, so per-session walls are clean of
     claiming noise. *)
  let agg1, reports1 = run_with ~domains:1 ~sched:Engine.Steal in
  let shard_costs mode =
    let shards = Shard.layout ~mode ~counts ~rng:(Rng.create seed) in
    Array.map
      (fun (sh : Shard.t) ->
        let acc = ref 0.0 in
        for i = sh.Shard.lo to sh.Shard.lo + sh.Shard.len - 1 do
          acc := !acc +. agg1.Engine.session_wall_s.(i)
        done;
        !acc)
      shards
  in
  let static_costs = shard_costs Shard.Static in
  let steal_costs = shard_costs Shard.Steal in
  let static_mk = makespan ~workers static_costs in
  let steal_mk = makespan ~workers steal_costs in
  let speedup = if steal_mk > 0.0 then static_mk /. steal_mk else 0.0 in
  (* Real pooled A/B at 4 domains: identical outcomes, live steal and
     utilization counters. *)
  let agg_static, reports_static = run_with ~domains:workers ~sched:Engine.Static in
  let agg_steal, reports_steal = run_with ~domains:workers ~sched:Engine.Steal in
  let table =
    Tabular.create
      ~title:
        (Printf.sprintf
           "E18: work stealing on a heavy-tailed mix (%d x dolev-strong n=%d + %d x \
            bracha n=5, modeled %d workers)"
           heavy heavy_n cheap workers)
      ~columns:
        [ "layout"; "shards"; "max shard ms"; "p95 shard ms"; "makespan ms"; "speedup" ]
  in
  let ms x = Printf.sprintf "%.1f" (x *. 1000.0) in
  let row label costs mk sp =
    Tabular.add_row table
      [
        label;
        string_of_int (Array.length costs);
        ms (Array.fold_left max 0.0 costs);
        ms (percentile costs 95);
        ms mk;
        (match sp with None -> "1.00x (base)" | Some s -> Printf.sprintf "%.2fx" s);
      ]
  in
  row "static" static_costs static_mk None;
  row "steal" steal_costs steal_mk (Some speedup);
  let checks =
    [
      ( "all sessions consistent",
        agg1.Engine.consistent = agg1.Engine.sessions
        && agg_steal.Engine.consistent = agg_steal.Engine.sessions );
      ( "steal outcomes pinned to static engine",
        outcome_slice reports_static = outcome_slice reports_steal
        && outcome_slice reports_static = outcome_slice reports1 );
      ("steal layout strictly finer", Array.length steal_costs > Array.length static_costs);
      (Printf.sprintf "modeled %d-worker speedup >= 1.5x" workers, speedup >= 1.5);
    ]
  in
  let busy =
    Array.map (fun ws -> ws.Engine.busy_s) agg_steal.Engine.worker_stats
  in
  let busy_max = Array.fold_left max 0.0 busy in
  let util =
    if busy_max > 0.0 then
      Array.fold_left ( +. ) 0.0 busy /. (float_of_int (Array.length busy) *. busy_max)
    else 0.0
  in
  let notes =
    List.map (fun (what, ok) -> Printf.sprintf "%s: %s" what (if ok then "ok" else "FAIL")) checks
    @ [
        Printf.sprintf
          "real 4-domain walls: static %.3fs, steal %.3fs (host-dependent, not gated)"
          agg_static.Engine.wall_s agg_steal.Engine.wall_s;
        Printf.sprintf "steal run: %d claims, %d steals, mean worker utilization %.0f%%"
          agg_steal.Engine.shards agg_steal.Engine.steals (util *. 100.0);
        Printf.sprintf
          "tail latency (modeled shard cost): static p50 %sms p95 %sms max %sms -> steal \
           p50 %sms p95 %sms max %sms"
          (ms (percentile static_costs 50))
          (ms (percentile static_costs 95))
          (ms (Array.fold_left max 0.0 static_costs))
          (ms (percentile steal_costs 50))
          (ms (percentile steal_costs 95))
          (ms (Array.fold_left max 0.0 steal_costs));
      ]
  in
  {
    Core.Experiments.id = "E18";
    title = "Work stealing on heavy-tailed session mixes";
    table;
    ok = List.for_all snd checks;
    rows_checked = List.length checks;
    notes;
  }

let entry =
  Core.Experiments.entry "E18" "Work stealing on heavy-tailed session mixes" run

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Core.Experiments.register entry
  end
