(** E18: the work-stealing scheduler on a heavy-tailed session mix.

    Runs a two-protocol batch (a few 16/20-party Dolev-Strong sessions
    among hundreds/thousands of 5-party Bracha votes), measures every
    session's wall clock on one worker, and greedy-list-schedules the
    per-shard costs of the {!Sb_session.Shard.Static} and
    {!Sb_session.Shard.Steal} layouts onto 4 modeled workers. Gates:
    all sessions consistent, steal outcomes byte-pinned to the static
    engine's, the steal layout strictly finer, and the modeled
    4-worker makespan at least 1.5× faster than static. Real pooled
    4-domain walls, steal counts and worker utilization are reported
    as notes and via the [sched.*] metrics, but not gated — on an
    oversubscribed CI host they measure the OS scheduler, not ours.

    Lives here rather than in core because it needs [sb_session];
    front ends call {!register} at startup to add it to
    {!Core.Experiments.catalogue}. *)

val run : Core.Setup.t -> Core.Experiments.outcome
(** Quick tier when [setup.samples <= 2000], like E17. *)

val entry : Core.Experiments.entry

val register : unit -> unit
(** Idempotently add {!entry} to the experiments catalogue. *)
