type record = {
  name : string;
  depth : int;
  parent : string option;
  start_s : float;
  duration_s : float;
  minor_words : float;
  major_words : float;
  attrs : (string * string) list;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* Innermost-first stack of open span names; completed records in
   reverse completion order. Spans are an orchestration-level tool
   (experiments, CLI): the nesting stack is process-wide, so open them
   from the main domain only. The mutex keeps the record lists
   consistent even if a worker domain does open one. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let open_spans : string list ref = ref []
let completed : record list ref = ref []

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let parent, depth =
      locked (fun () ->
          let parent = match !open_spans with [] -> None | p :: _ -> Some p in
          let depth = List.length !open_spans in
          open_spans := name :: !open_spans;
          (parent, depth))
    in
    (* Gc.counters, not quick_stat: the latter only refreshes its
       allocation totals at collection boundaries, so short spans would
       read as zero-allocation. *)
    let min0, _, maj0 = Gc.counters () in
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      let min1, _, maj1 = Gc.counters () in
      locked (fun () ->
          open_spans := (match !open_spans with _ :: rest -> rest | [] -> []);
          completed :=
            {
              name;
              depth;
              parent;
              start_s = t0;
              duration_s = t1 -. t0;
              minor_words = min1 -. min0;
              major_words = maj1 -. maj0;
              attrs;
            }
            :: !completed)
    in
    let r = Fun.protect ~finally:finish f in
    (match !completed with
    | span :: _ ->
        Event.emit "span"
          ~fields:
            ([
               ("name", Json.Str span.name);
               ("depth", Json.Int span.depth);
               ("duration_s", Json.Float span.duration_s);
               ("minor_words", Json.Float span.minor_words);
               ("major_words", Json.Float span.major_words);
             ]
            @ List.map (fun (k, v) -> (k, Json.Str v)) span.attrs)
    | [] -> ());
    r
  end

let records () = locked (fun () -> List.rev !completed)
let find name = locked (fun () -> List.find_opt (fun r -> String.equal r.name name) !completed)

let reset () =
  locked (fun () ->
      open_spans := [];
      completed := [])

let record_to_json r =
  Json.Obj
    ([
       ("name", Json.Str r.name);
       ("depth", Json.Int r.depth);
       ("parent", match r.parent with Some p -> Json.Str p | None -> Json.Null);
       ("start_s", Json.Float r.start_s);
       ("duration_s", Json.Float r.duration_s);
       ("minor_words", Json.Float r.minor_words);
       ("major_words", Json.Float r.major_words);
     ]
    @ match r.attrs with
      | [] -> []
      | attrs -> [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ])

let to_json () = Json.List (List.map record_to_json (records ()))
