(** Causal tracing engine: per-session span trees (session -> round ->
    party -> phase), causal flow edges between spans, and named
    attribution buckets for hot-path work below span granularity.

    Disabled by default. When disabled every entry point is a single
    boolean load — no clock read, no allocation — the same contract as
    {!Metrics}; and nothing here draws randomness, so enabling tracing
    cannot change the protocol outputs of a seeded run.

    A {e session} (one [Sb_sim.Network.run]) owns a tree of spans; the
    open-span stack is domain-local, so Monte-Carlo samplers may trace
    sessions concurrently from worker domains. Completed spans and
    flow edges accumulate process-wide (mutex-guarded). At most
    {!set_max_sessions} sessions are traced per process (default 64);
    later sessions run untraced so profiling a 100k-sample experiment
    cannot exhaust memory.

    Export/aggregation lives in {!Perfetto}. *)

type span = {
  id : int;
  parent : int;  (** span id of the parent, [-1] for a session root *)
  name : string;  (** display name, e.g. ["round 3"], ["P2"] *)
  agg : string;  (** aggregation key for flame paths, e.g. ["round"] *)
  cat : string;  (** ["session"], ["round"], ["party"], ["phase"], ... *)
  track : int;  (** Perfetto thread id: the session ordinal, from 1 *)
  args : (string * string) list;
  start_us : float;  (** [Unix.gettimeofday], microseconds *)
  mutable end_us : float;  (** [nan] while the span is open *)
  mutable minor0 : float;  (** Gc words at open (internal) *)
  mutable major0 : float;
  mutable minor_words : float;  (** allocation deltas over the span *)
  mutable major_words : float;
  mutable buckets : (string * int * float) list;
      (** attribution buckets charged while this span was innermost:
          (name, calls, total microseconds) *)
}

type h = span option
(** A handle: [None] when tracing is disabled, the session cap was hit,
    or there is no ambient session on this domain. Every consumer of a
    handle is a no-op on [None]. *)

val none : h

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all collected spans/flows and restart ids and the session
    budget; clears this domain's open stack. *)

val set_max_sessions : int -> unit
(** Cap on traced sessions per process (clamped to >= 1; default 64). *)

val now_us : unit -> float
(** Wall clock in microseconds — for callers timing bucket work. *)

val begin_session : ?args:(string * string) list -> string -> h
(** Open a session root span on a fresh track and make it this domain's
    current tree (any stale open spans from an aborted session are
    discarded). Returns [None] past the session cap. *)

val begin_span : ?agg:string -> ?args:(string * string) list -> cat:string -> string -> h
(** Open a child of this domain's innermost open span. [agg] is the
    flame-path component (defaults to the display [name]). *)

val end_span : h -> unit
(** Close the span: stamps [end_us] and the Gc deltas, pops it from the
    open stack (tolerating unbalanced inner spans), and records it. *)

val with_span :
  ?agg:string -> ?args:(string * string) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk; closes even on exceptions. *)

val flow : src:h -> dst:h -> unit
(** Record one causal edge (e.g. sender party span -> recipient round
    span for a delivered envelope). No-op if either side is [None]. *)

val bucket_add : string -> float -> unit
(** [bucket_add name dt_us] charges [dt_us] microseconds and one call
    to bucket [name] on this domain's innermost open span. Dropped when
    no span is open. *)

val spans : unit -> span list
(** Completed spans, sorted by (track, start, id) — deterministic given
    a fixed set of spans. *)

val flows : unit -> (int * int) list
(** Recorded (src span id, dst span id) edges, in record order. *)

val session_total : unit -> int
(** Sessions started since the last [reset] (traced or not). *)

val sessions_traced : unit -> int
(** Sessions actually traced (bounded by the cap). *)
