(** Pluggable destinations for JSON-lines event emission.

    A sink consumes complete lines (no trailing newline). Attach any
    number of sinks; {!Event.emit} broadcasts to all of them. With no
    sinks attached, emission is a single list-empty check. *)

type t

val null : t
(** Swallows everything. *)

val memory : unit -> t * (unit -> string list)
(** An in-process buffer and its reader (lines in emission order). *)

val of_channel : out_channel -> t
(** Writes each line + ['\n'] and flushes on [flush_all]. *)

val attach : t -> unit
val detach : t -> unit
val detach_all : unit -> unit
val attached : unit -> int

val write_line : string -> unit
(** Broadcast one line to every attached sink. *)

val flush_all : unit -> unit
