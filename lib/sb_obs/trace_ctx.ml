(* Causal tracing engine: a span-tree context with one tree per
   protocol session (session -> round -> party -> phase), causal flow
   edges between spans, and named attribution buckets for leaf-level
   hot-path work that is too fine-grained for a span of its own (one
   fixed-base exponentiation, one Lagrange reconstruction).

   Concurrency model: the *open*-span stack is domain-local
   (Domain.DLS) because a protocol session executes wholly on one
   domain — Monte-Carlo samplers run whole Network.runs inside worker
   domains. Completed spans and flow edges are appended to process-wide
   lists under a mutex. Nothing here draws randomness or mutates caller
   state, so enabling tracing cannot perturb seeded protocol outputs.

   Overhead contract (same as Metrics): with tracing disabled every
   entry point is a single boolean load; no closure, no DLS access, no
   clock read. *)

type span = {
  id : int;
  parent : int;  (* span id, or -1 for a session root *)
  name : string;
  agg : string;
  cat : string;
  track : int;
  args : (string * string) list;
  start_us : float;
  mutable end_us : float;
  mutable minor0 : float;
  mutable major0 : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable buckets : (string * int * float) list;
}

type h = span option

let none : h = None

let on_flag = ref false
let enabled () = !on_flag

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let completed : span list ref = ref []
let flow_edges : (int * int) list ref = ref []
let next_id = Atomic.make 0
let session_count = Atomic.make 0
let default_max_sessions = 64
let max_sessions = ref default_max_sessions
let set_max_sessions k = max_sessions := max 1 k

(* Innermost-first stack of open spans, one per domain. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let set_enabled b = on_flag := b

let reset () =
  locked (fun () ->
      completed := [];
      flow_edges := []);
  Atomic.set next_id 0;
  Atomic.set session_count 0;
  Domain.DLS.get stack_key := []

let now_us () = Unix.gettimeofday () *. 1e6

let fresh_span ~parent ~track ~agg ~cat ~args name =
  let min0, _, maj0 = Gc.counters () in
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    parent;
    name;
    agg;
    cat;
    track;
    args;
    start_us = now_us ();
    end_us = Float.nan;
    minor0 = min0;
    major0 = maj0;
    minor_words = 0.0;
    major_words = 0.0;
    buckets = [];
  }

let begin_session ?(args = []) name =
  if not !on_flag then None
  else
    let k = Atomic.fetch_and_add session_count 1 in
    if k >= !max_sessions then None
    else begin
      let sp = fresh_span ~parent:(-1) ~track:(k + 1) ~agg:name ~cat:"session" ~args name in
      (* Defensive: a session that died mid-run (exception past its
         end_span calls) may have left open spans on this domain's
         stack; a new session always starts from a clean tree. *)
      Domain.DLS.get stack_key := [ sp ];
      Some sp
    end

let begin_span ?agg ?(args = []) ~cat name =
  if not !on_flag then None
  else
    let stack = Domain.DLS.get stack_key in
    match !stack with
    | [] -> None (* no ambient session on this domain (or session cap hit) *)
    | parent :: _ ->
        let agg = match agg with Some a -> a | None -> name in
        let sp = fresh_span ~parent:parent.id ~track:parent.track ~agg ~cat ~args name in
        stack := sp :: !stack;
        Some sp

let end_span (h : h) =
  match h with
  | None -> ()
  | Some sp ->
      sp.end_us <- now_us ();
      let min1, _, maj1 = Gc.counters () in
      sp.minor_words <- min1 -. sp.minor0;
      sp.major_words <- maj1 -. sp.major0;
      let stack = Domain.DLS.get stack_key in
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | other ->
          (* Unbalanced close (an exception skipped inner end_span
             calls): drop everything above this span. *)
          let rec drop = function
            | top :: rest when top == sp -> rest
            | _ :: rest -> drop rest
            | [] -> other
          in
          stack := drop other);
      locked (fun () -> completed := sp :: !completed)

let with_span ?agg ?args ~cat name f =
  if not !on_flag then f ()
  else begin
    let sp = begin_span ?agg ?args ~cat name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

let flow ~src ~dst =
  match (src, dst) with
  | Some (s : span), Some (d : span) -> locked (fun () -> flow_edges := (s.id, d.id) :: !flow_edges)
  | _ -> ()

let bucket_add name dt_us =
  if !on_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | sp :: _ ->
        let rec upd = function
          | [] -> [ (name, 1, dt_us) ]
          | (n, c, t) :: rest when String.equal n name -> (n, c + 1, t +. dt_us) :: rest
          | kv :: rest -> kv :: upd rest
        in
        sp.buckets <- upd sp.buckets

let spans () =
  locked (fun () -> !completed)
  |> List.sort (fun a b ->
         match Int.compare a.track b.track with
         | 0 -> (
             match Float.compare a.start_us b.start_us with
             | 0 -> Int.compare a.id b.id
             | c -> c)
         | c -> c)

let flows () = locked (fun () -> List.rev !flow_edges)
let session_total () = Atomic.get session_count
let sessions_traced () = min (Atomic.get session_count) !max_sessions
