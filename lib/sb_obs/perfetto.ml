(* Chrome trace-event export of a collected Trace_ctx trace (loadable
   in Perfetto / chrome://tracing), plus the deterministic flame-style
   aggregation behind `simbcast profile`.

   Timestamps are re-based to the earliest span start so the JSON
   carries small microsecond offsets. Each session occupies its own
   thread track (pid 0, tid = session ordinal); spans are "X" complete
   events whose nesting is implied by timestamp containment, and each
   causal edge becomes an "s"/"f" flow-event pair bound to the
   midpoints of its source and destination spans. *)

let dur_of (s : Trace_ctx.span) =
  if Float.is_nan s.Trace_ctx.end_us then 0.0 else Float.max 0.0 (s.Trace_ctx.end_us -. s.Trace_ctx.start_us)

let base_ts spans =
  List.fold_left (fun acc (s : Trace_ctx.span) -> Float.min acc s.Trace_ctx.start_us) Float.infinity spans

let span_event ~t0 (s : Trace_ctx.span) =
  let bucket_args =
    List.concat_map
      (fun (name, calls, total_us) ->
        [
          (name ^ "_calls", Json.Int calls);
          (name ^ "_us", Json.Float total_us);
        ])
      (List.rev s.Trace_ctx.buckets)
  in
  Json.Obj
    [
      ("ph", Json.Str "X");
      ("pid", Json.Int 0);
      ("tid", Json.Int s.Trace_ctx.track);
      ("ts", Json.Float (s.Trace_ctx.start_us -. t0));
      ("dur", Json.Float (dur_of s));
      ("name", Json.Str s.Trace_ctx.name);
      ("cat", Json.Str s.Trace_ctx.cat);
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Str v)) s.Trace_ctx.args
          @ [
              ("minor_words", Json.Float s.Trace_ctx.minor_words);
              ("major_words", Json.Float s.Trace_ctx.major_words);
            ]
          @ bucket_args) );
    ]

let flow_events ~t0 ~by_id i (src_id, dst_id) =
  match (Hashtbl.find_opt by_id src_id, Hashtbl.find_opt by_id dst_id) with
  | Some (src : Trace_ctx.span), Some (dst : Trace_ctx.span) ->
      let mid (s : Trace_ctx.span) = s.Trace_ctx.start_us -. t0 +. (dur_of s /. 2.0) in
      [
        Json.Obj
          [
            ("ph", Json.Str "s");
            ("pid", Json.Int 0);
            ("tid", Json.Int src.Trace_ctx.track);
            ("ts", Json.Float (mid src));
            ("id", Json.Int (i + 1));
            ("name", Json.Str "msg");
            ("cat", Json.Str "flow");
          ];
        Json.Obj
          [
            ("ph", Json.Str "f");
            ("bp", Json.Str "e");
            ("pid", Json.Int 0);
            ("tid", Json.Int dst.Trace_ctx.track);
            ("ts", Json.Float (mid dst));
            ("id", Json.Int (i + 1));
            ("name", Json.Str "msg");
            ("cat", Json.Str "flow");
          ];
      ]
  | _ -> []

let to_json () =
  let spans = Trace_ctx.spans () in
  let flows = Trace_ctx.flows () in
  let t0 = match spans with [] -> 0.0 | _ -> base_ts spans in
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun (s : Trace_ctx.span) -> Hashtbl.replace by_id s.Trace_ctx.id s) spans;
  let meta =
    Json.Obj
      [
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("name", Json.Str "process_name");
        ("args", Json.Obj [ ("name", Json.Str "simbcast") ]);
      ]
    :: List.filter_map
         (fun (s : Trace_ctx.span) ->
           if s.Trace_ctx.parent = -1 then
             Some
               (Json.Obj
                  [
                    ("ph", Json.Str "M");
                    ("pid", Json.Int 0);
                    ("tid", Json.Int s.Trace_ctx.track);
                    ("name", Json.Str "thread_name");
                    ( "args",
                      Json.Obj
                        [
                          ( "name",
                            Json.Str
                              (Printf.sprintf "session %d: %s" s.Trace_ctx.track s.Trace_ctx.name)
                          );
                        ] );
                  ])
           else None)
         spans
  in
  let span_evs = List.map (span_event ~t0) spans in
  let flow_evs = List.concat (List.mapi (flow_events ~t0 ~by_id) flows) in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_evs @ flow_evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ()));
      output_char oc '\n')

(* --- flame-style aggregation --------------------------------------- *)

type frame = { path : string; count : int; total_us : float; self_us : float }

let flame () =
  let spans = Trace_ctx.spans () in
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun (s : Trace_ctx.span) -> Hashtbl.replace by_id s.Trace_ctx.id s) spans;
  (* Aggregation path: agg keys from the session root down. *)
  let path_cache = Hashtbl.create (List.length spans) in
  let rec path_of (s : Trace_ctx.span) =
    match Hashtbl.find_opt path_cache s.Trace_ctx.id with
    | Some p -> p
    | None ->
        let p =
          if s.Trace_ctx.parent = -1 then s.Trace_ctx.agg
          else
            match Hashtbl.find_opt by_id s.Trace_ctx.parent with
            | Some parent -> path_of parent ^ "/" ^ s.Trace_ctx.agg
            | None -> s.Trace_ctx.agg
        in
        Hashtbl.replace path_cache s.Trace_ctx.id p;
        p
  in
  (* Direct-children time per span id, for self-time. *)
  let child_time = Hashtbl.create (List.length spans) in
  List.iter
    (fun (s : Trace_ctx.span) ->
      if s.Trace_ctx.parent <> -1 then
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt child_time s.Trace_ctx.parent) in
        Hashtbl.replace child_time s.Trace_ctx.parent (cur +. dur_of s))
    spans;
  let acc : (string, int * float * float) Hashtbl.t = Hashtbl.create 64 in
  let add path count total self =
    let c, t, sf = Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt acc path) in
    Hashtbl.replace acc path (c + count, t +. total, sf +. self)
  in
  List.iter
    (fun (s : Trace_ctx.span) ->
      let p = path_of s in
      let total = dur_of s in
      let children = Option.value ~default:0.0 (Hashtbl.find_opt child_time s.Trace_ctx.id) in
      let buckets_total =
        List.fold_left (fun a (_, _, t) -> a +. t) 0.0 s.Trace_ctx.buckets
      in
      add p 1 total (Float.max 0.0 (total -. children -. buckets_total));
      (* Buckets surface as pseudo-leaves under their span's path. *)
      List.iter
        (fun (name, calls, t) -> add (p ^ "/[" ^ name ^ "]") calls t t)
        s.Trace_ctx.buckets)
    spans;
  Hashtbl.fold (fun path (count, total_us, self_us) l -> { path; count; total_us; self_us } :: l) acc []
  |> List.sort (fun a b ->
         match Float.compare b.total_us a.total_us with
         | 0 -> String.compare a.path b.path
         | c -> c)

let flame_table ?(top = 30) () =
  let frames = flame () in
  let shown = List.filteri (fun i _ -> i < top) frames in
  let table =
    Sb_util.Tabular.create
      ~title:
        (Printf.sprintf "phase-time attribution (top %d of %d paths, %d/%d sessions traced)"
           (List.length shown) (List.length frames) (Trace_ctx.sessions_traced ())
           (Trace_ctx.session_total ()))
      ~columns:[ "path"; "calls"; "total ms"; "self ms"; "self %" ]
  in
  let grand_self = List.fold_left (fun a f -> a +. f.self_us) 0.0 frames in
  List.iter
    (fun f ->
      Sb_util.Tabular.add_row table
        [
          f.path;
          string_of_int f.count;
          Printf.sprintf "%.3f" (f.total_us /. 1e3);
          Printf.sprintf "%.3f" (f.self_us /. 1e3);
          (if grand_self > 0.0 then Printf.sprintf "%.1f" (100.0 *. f.self_us /. grand_self)
           else "-");
        ])
    shown;
  table

let summary () =
  Json.Obj
    [
      ("sessions_traced", Json.Int (Trace_ctx.sessions_traced ()));
      ("sessions_total", Json.Int (Trace_ctx.session_total ()));
      ("spans", Json.Int (List.length (Trace_ctx.spans ())));
      ("flows", Json.Int (List.length (Trace_ctx.flows ())));
    ]
