(** Versioned machine-readable run reports.

    A report bundles per-experiment outcomes with the current metrics
    snapshot and completed spans into one JSON document. The schema is
    versioned so downstream tooling (perf-trajectory diffing, CI
    smoke checks) can evolve safely; bump {!schema_version} on any
    incompatible change and document it in EXPERIMENTS.md. *)

val schema_version : int

type experiment_entry = {
  id : string;
  title : string;
  ok : bool;
  rows_checked : int;
  wall_clock_s : float;
  notes : string list;
}

type timing_entry = { bench_name : string; ns_per_run : float; r_square : float }

val make :
  ?tool:string ->
  ?tag:string ->
  ?jobs:int ->
  ?experiments:experiment_entry list ->
  ?timings:timing_entry list ->
  ?trace:Json.t ->
  ?sessions:Json.t ->
  ?check:Json.t ->
  ?workload:Json.t ->
  unit ->
  Json.t
(** Assembles the report from the given outcomes plus
    [Metrics.to_json ()] and [Span.to_json ()] as they stand. [jobs],
    when given, is recorded under a ["parallel"] object — the domain
    count the run used; per-domain sample shares appear alongside as
    [par.domain<k>.samples] counters in the metrics snapshot.

    Since schema v2 every report also carries a ["comm"] object —
    [broadcasts], [p2p_messages], [broadcast_bytes], [p2p_bytes] —
    snapshotting the network's [sim.broadcasts], [sim.p2p] and
    [sim.bytes.*] counters, so byte trajectories can be diffed across
    runs without digging into the metrics blob.

    Since schema v3 a traced run ([--trace]) additionally carries an
    optional ["trace"] object — normally {!Perfetto.summary} — with
    integer [sessions_traced], [sessions_total], [spans], [flows].

    Since schema v4 a session-engine run ([simbcast sessions], the
    bench sessions probe) additionally carries an optional
    ["sessions"] object — batch totals plus throughput rates,
    normally [Sb_session.Engine.aggregate_to_json].

    Since schema v5 a model-checker run ([simbcast check --report])
    additionally carries an optional ["check"] object — protocol,
    (n, t), state counts, the capped flag, one verdict string per
    property and the counterexamples array — normally
    [Sb_check.Checker.result_to_json].

    Schema v6 tightens the optional ["timings"] block (bench runs):
    every entry must be a [{name, ns_per_run, r_square}] object —
    [validate] now rejects malformed entries, since the perf-diff
    guards (gtester-smoke, crypto/..., delivery/..., sessions/...)
    key on entry names and a malformed entry would silently drop out
    of the diff.

    Since schema v7 a workload run ([simbcast workload]) additionally
    carries an optional ["workload"] object — workload name, tier
    ("quick"/"full"), integer session totals and the application-level
    scale/summary objects, normally [Sb_workload.Workload.to_json].
    The block carries no wall-clock-derived fields, so CI can diff it
    byte-for-byte across [--jobs] values. *)

val write_file : string -> Json.t -> unit
(** Pretty-printed, trailing newline. *)

val validate : Json.t -> (unit, string) result
(** Structural check: schema_version matches, the experiments array is
    well-formed (id/ok/wall_clock_s present), the [comm] object carries
    all four integer totals, metrics object present, the optional
    [trace] block (v3) carries its four integer counts when present,
    the optional [sessions] block (v4) carries its integer totals
    and numeric rates when present, the optional [check] block
    (v5) carries its integer state counts and three well-formed
    verdict strings when present, the optional [timings] block
    (v6) is a list of well-formed [{name, ns_per_run}] entries when
    present, and the optional [workload] block (v7) carries its name,
    tier, integer session totals and summary object when present.
    Used by tests and the CI smoke step. *)

type perf_delta = {
  name : string;  (** timing entry name, e.g. ["gtester-smoke/20k"] *)
  base_ns : float;
  fresh_ns : float;
  ratio : float;  (** [fresh_ns /. base_ns]; > 1 is a slowdown *)
}

val perf_diff :
  ?prefixes:string list -> base:Json.t -> fresh:Json.t -> unit -> perf_delta list * string list
(** Compare the [timings] arrays of two reports entry-by-entry.
    [prefixes], when non-empty, restricts the comparison to baseline
    entries whose name starts with one of the prefixes. Returns the
    matched deltas (in baseline order) and the names of baseline
    entries missing from the fresh report. Thresholding is the
    caller's policy — see [simbcast perf-diff]. *)

val history_row : ?utc:string -> Json.t -> Json.t
(** Compact one-line summary of a report — tag, schema version, and a
    [{name: ns_per_run}] object — for appending to the append-only
    [BENCH_history.jsonl] perf-trajectory log. *)
