(** Versioned machine-readable run reports.

    A report bundles per-experiment outcomes with the current metrics
    snapshot and completed spans into one JSON document. The schema is
    versioned so downstream tooling (perf-trajectory diffing, CI
    smoke checks) can evolve safely; bump {!schema_version} on any
    incompatible change and document it in EXPERIMENTS.md. *)

val schema_version : int

type experiment_entry = {
  id : string;
  title : string;
  ok : bool;
  rows_checked : int;
  wall_clock_s : float;
  notes : string list;
}

type timing_entry = { bench_name : string; ns_per_run : float; r_square : float }

val make :
  ?tool:string ->
  ?tag:string ->
  ?jobs:int ->
  ?experiments:experiment_entry list ->
  ?timings:timing_entry list ->
  unit ->
  Json.t
(** Assembles the report from the given outcomes plus
    [Metrics.to_json ()] and [Span.to_json ()] as they stand. [jobs],
    when given, is recorded under a ["parallel"] object — the domain
    count the run used; per-domain sample shares appear alongside as
    [par.domain<k>.samples] counters in the metrics snapshot.

    Since schema v2 every report also carries a ["comm"] object —
    [broadcasts], [p2p_messages], [broadcast_bytes], [p2p_bytes] —
    snapshotting the network's [sim.broadcasts], [sim.p2p] and
    [sim.bytes.*] counters, so byte trajectories can be diffed across
    runs without digging into the metrics blob. *)

val write_file : string -> Json.t -> unit
(** Pretty-printed, trailing newline. *)

val validate : Json.t -> (unit, string) result
(** Structural check: schema_version matches, the experiments array is
    well-formed (id/ok/wall_clock_s present), the [comm] object carries
    all four integer totals, metrics object present. Used by tests and
    the CI smoke step. *)
