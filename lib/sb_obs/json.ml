type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string ~indent:true v)

(* --- parsing ------------------------------------------------------- *)

exception Bad of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let wl = String.length word in
    if !pos + wl <= len && String.sub s !pos wl = word then begin
      pos := !pos + wl;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= len then fail "truncated \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   pos := !pos + 4;
                   (* Emit as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numchar s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors ----------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
