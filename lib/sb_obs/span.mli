(** Scoped spans: monotonic-enough wall-clock timing
    ([Unix.gettimeofday]) plus [Gc.counters] allocation deltas, with
    lexical nesting tracked by depth.

    Like {!Metrics}, spans are disabled by default; [with_span] then
    only runs the thunk. Completed spans accumulate in a process-wide
    list (completion order — inner spans close before their parents).
    Each completed span is also emitted as a ["span"] event through
    {!Event.emit}, so attached JSONL sinks see one line per span. *)

type record = {
  name : string;
  depth : int;  (** 0 = top level *)
  parent : string option;  (** enclosing span's name, if any *)
  start_s : float;  (** seconds since the epoch *)
  duration_s : float;
  minor_words : float;  (** allocation delta over the span *)
  major_words : float;
  attrs : (string * string) list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the thunk; when enabled, records a {!record} even if the thunk
    raises (the exception is re-raised). *)

val records : unit -> record list
(** Completed spans, in completion order. *)

val find : string -> record option
(** Most recently completed span with the given name. *)

val reset : unit -> unit

val to_json : unit -> Json.t
(** Array of span objects, completion order. *)
