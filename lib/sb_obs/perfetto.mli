(** Chrome trace-event JSON export of the collected {!Trace_ctx} trace
    (open the file in {{:https://ui.perfetto.dev}Perfetto} or
    chrome://tracing), plus the deterministic flame-style aggregation
    behind [simbcast profile].

    Layout: pid 0, one thread track per traced session; spans are
    ["X"] complete events (nesting implied by timestamp containment),
    causal edges are ["s"]/["f"] flow-event pairs bound to the
    midpoints of their source and destination spans, and per-span Gc
    deltas and attribution buckets ride in the event [args]. *)

val to_json : unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] over everything
    {!Trace_ctx} has collected; timestamps re-based to the earliest
    span start. *)

val write_file : string -> unit
(** Compact [to_json] output plus a trailing newline. *)

type frame = {
  path : string;  (** aggregation path, e.g. ["bracha/round/party"] —
                      bucket pseudo-leaves render as [".../[pow_g]"] *)
  count : int;  (** spans (or bucket calls) folded into this path *)
  total_us : float;
  self_us : float;  (** total minus direct children and buckets *)
}

val flame : unit -> frame list
(** Aggregate spans by agg-key path. Deterministic order: total time
    descending, then path ascending. *)

val flame_table : ?top:int -> unit -> Sb_util.Tabular.t
(** The top-[top] (default 30) frames as a rendered table with a
    self-time percentage column. *)

val summary : unit -> Json.t
(** Compact block for run reports (schema v3 [trace] field):
    sessions traced/total, span and flow counts. *)
