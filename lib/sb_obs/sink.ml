type t = { id : int; write : string -> unit; flush : unit -> unit }

let next_id = Atomic.make 0
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let make write flush = { id = Atomic.fetch_and_add next_id 1 + 1; write; flush }

let null = make (fun _ -> ()) (fun () -> ())

let memory () =
  let buf = ref [] in
  let sink = make (fun line -> buf := line :: !buf) (fun () -> ()) in
  (sink, fun () -> locked (fun () -> List.rev !buf))

let of_channel oc =
  make
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (fun () -> flush oc)

let sinks : t list ref = ref []
let attach s = locked (fun () -> sinks := s :: !sinks)
let detach s = locked (fun () -> sinks := List.filter (fun s' -> s'.id <> s.id) !sinks)
let detach_all () = locked (fun () -> sinks := [])
let attached () = List.length !sinks

(* The mutex both protects the sink list and serialises writes, so
   JSONL lines from different domains never interleave. *)
let write_line line =
  locked (fun () ->
      match !sinks with
      | [] -> ()
      | active -> List.iter (fun s -> s.write line) active)

let flush_all () = locked (fun () -> List.iter (fun s -> s.flush ()) !sinks)
