type t = { id : int; write : string -> unit; flush : unit -> unit }

let next_id = ref 0

let make write flush =
  incr next_id;
  { id = !next_id; write; flush }

let null = make (fun _ -> ()) (fun () -> ())

let memory () =
  let buf = ref [] in
  let sink = make (fun line -> buf := line :: !buf) (fun () -> ()) in
  (sink, fun () -> List.rev !buf)

let of_channel oc =
  make
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (fun () -> flush oc)

let sinks : t list ref = ref []
let attach s = sinks := s :: !sinks
let detach s = sinks := List.filter (fun s' -> s'.id <> s.id) !sinks
let detach_all () = sinks := []
let attached () = List.length !sinks

let write_line line =
  match !sinks with
  | [] -> ()
  | active -> List.iter (fun s -> s.write line) active

let flush_all () = List.iter (fun s -> s.flush ()) !sinks
