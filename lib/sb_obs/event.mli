(** Structured JSON-lines events.

    Each event serializes as one compact JSON object
    [{"ev": name, "seq": n, ...fields}] broadcast to the attached
    {!Sink}s. [seq] is a process-wide monotonically increasing ordinal
    (deterministic, unlike a timestamp). With no sinks attached the
    call is near-free and [seq] does not advance. *)

val emit : ?fields:(string * Json.t) list -> string -> unit

val seq : unit -> int
(** Events emitted so far (to attached sinks). *)

val reset : unit -> unit
(** Reset the ordinal (sinks stay attached). *)
