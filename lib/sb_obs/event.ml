let counter = ref 0

let emit ?(fields = []) name =
  if Sink.attached () > 0 then begin
    incr counter;
    let obj = Json.Obj (("ev", Json.Str name) :: ("seq", Json.Int !counter) :: fields) in
    Sink.write_line (Json.to_string obj)
  end

let seq () = !counter
let reset () = counter := 0
