(* Atomic so worker domains can emit without ever producing duplicate
   sequence numbers; line-level interleaving is prevented in Sink. *)
let counter = Atomic.make 0

let emit ?(fields = []) name =
  if Sink.attached () > 0 then begin
    let seq = Atomic.fetch_and_add counter 1 + 1 in
    let obj = Json.Obj (("ev", Json.Str name) :: ("seq", Json.Int seq) :: fields) in
    Sink.write_line (Json.to_string obj)
  end

let seq () = Atomic.get counter
let reset () = Atomic.set counter 0
