type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; value : float Atomic.t }

type histogram = {
  h_name : string;
  h_lock : Mutex.t;      (* guards every mutable field below *)
  bounds : float array;  (* inclusive upper bounds, strictly increasing *)
  counts : int array;    (* length = Array.length bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Counters and gauges are atomics (workers update them lock-free);
   histograms take their own small mutex per observation; the registry
   itself is guarded by [reg_lock]. Interning from worker domains is
   therefore safe, though call sites normally intern at module init on
   the main domain. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_lock = Mutex.create ()
let on = ref false
let set_enabled b = on := b
let enabled () = !on

let locked f =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) f

let intern name make select =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match select m with
          | Some x -> x
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered with another type" name))
      | None ->
          let x = make () in
          x)

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; count = Atomic.make 0 } in
      Hashtbl.replace registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = if !on then ignore (Atomic.fetch_and_add c.count by)
let counter_value c = Atomic.get c.count

let gauge name =
  intern name
    (fun () ->
      let g = { g_name = name; value = Atomic.make 0.0 } in
      Hashtbl.replace registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let set g v = if !on then Atomic.set g.value v
let gauge_value g = Atomic.get g.value

(* Default ladder: 1-2-5 decades from 1 to 5e8 — a good fit for
   microsecond-scale durations and message counts alike. *)
let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4; 1e5; 2e5; 5e5;
     1e6; 2e6; 5e6; 1e7; 2e7; 5e7; 1e8; 2e8; 5e8 |]

(* Histograms interned a second time with different [~buckets] keep the
   registered bounds (bounds are fixed at creation); warn once per name
   so the silent divergence is at least visible in the event stream. *)
let bucket_warned : (string, unit) Hashtbl.t = Hashtbl.create 8

let histogram ?buckets name =
  let requested = buckets in
  let buckets = Option.value ~default:default_buckets buckets in
  let h =
    intern name
      (fun () ->
        let ok = ref (Array.length buckets > 0) in
        Array.iteri (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false) buckets;
        if not !ok then
          invalid_arg "Metrics.histogram: bounds must be non-empty, strictly increasing";
        let h =
          {
            h_name = name;
            h_lock = Mutex.create ();
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = Float.nan;
            h_max = Float.nan;
          }
        in
        Hashtbl.replace registry name (Histogram h);
        h)
      (function Histogram h -> Some h | _ -> None)
  in
  (match requested with
  | Some b when b <> h.bounds ->
      let first =
        locked (fun () ->
            if Hashtbl.mem bucket_warned name then false
            else begin
              Hashtbl.add bucket_warned name ();
              true
            end)
      in
      (* Emit outside reg_lock: sinks run arbitrary user code. *)
      if first then
        Event.emit "metrics.bucket_mismatch"
          ~fields:
            [
              ("name", Json.Str name);
              ("registered_buckets", Json.Int (Array.length h.bounds));
              ("requested_buckets", Json.Int (Array.length b));
            ]
  | _ -> ());
  h

let bucket_index bounds x =
  (* First bucket whose upper bound admits x; overflow otherwise. *)
  let n = Array.length bounds in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x <= bounds.(mid) then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 n

let observe h x =
  if !on then begin
    let i = bucket_index h.bounds x in
    Mutex.lock h.h_lock;
    h.counts.(i) <- h.counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    if Float.is_nan h.h_min || x < h.h_min then h.h_min <- x;
    if Float.is_nan h.h_max || x > h.h_max then h.h_max <- x;
    Mutex.unlock h.h_lock
  end

let quantile_unlocked h q =
  if h.h_count = 0 then Float.nan
  else begin
    let target = q *. float_of_int h.h_count in
    let nb = Array.length h.bounds in
    let i = ref 0 and cum = ref 0 in
    while !i < nb && float_of_int (!cum + h.counts.(!i)) < target do
      cum := !cum + h.counts.(!i);
      i := !i + 1
    done;
    let i = !i in
    let lower = if i = 0 then 0.0 else h.bounds.(i - 1) in
    let upper = if i = nb then h.h_max else h.bounds.(i) in
    let in_bucket = h.counts.(i) in
    let est =
      if in_bucket = 0 then upper
      else
        let frac = (target -. float_of_int !cum) /. float_of_int in_bucket in
        lower +. ((upper -. lower) *. Float.min 1.0 (Float.max 0.0 frac))
    in
    Float.min h.h_max (Float.max h.h_min est)
  end

let quantile h q =
  Mutex.lock h.h_lock;
  let r = quantile_unlocked h q in
  Mutex.unlock h.h_lock;
  r

type histogram_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let stats h =
  Mutex.lock h.h_lock;
  let s =
    {
      count = h.h_count;
      sum = h.h_sum;
      mean = (if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count);
      min = h.h_min;
      max = h.h_max;
      p50 = quantile_unlocked h 0.5;
      p95 = quantile_unlocked h 0.95;
    }
  in
  Mutex.unlock h.h_lock;
  s

let reset () =
  locked (fun () ->
      Hashtbl.reset bucket_warned;
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.count 0
          | Gauge g -> Atomic.set g.value 0.0
          | Histogram h ->
              Mutex.lock h.h_lock;
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.h_count <- 0;
              h.h_sum <- 0.0;
              h.h_min <- Float.nan;
              h.h_max <- Float.nan;
              Mutex.unlock h.h_lock)
        registry)

let sorted_metrics () =
  locked (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_table () =
  let table =
    Sb_util.Tabular.create ~title:"metrics"
      ~columns:[ "name"; "kind"; "count/value"; "mean"; "p50"; "p95"; "max" ]
  in
  let fl x = if Float.is_nan x then "-" else Sb_util.Tabular.cell_float ~digits:2 x in
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c ->
          Sb_util.Tabular.add_row table
            [ c.c_name; "counter"; string_of_int (Atomic.get c.count); "-"; "-"; "-"; "-" ]
      | Gauge g ->
          Sb_util.Tabular.add_row table
            [ g.g_name; "gauge"; fl (Atomic.get g.value); "-"; "-"; "-"; "-" ]
      | Histogram h ->
          let s = stats h in
          Sb_util.Tabular.add_row table
            [ h.h_name; "histogram"; string_of_int s.count; fl s.mean; fl s.p50; fl s.p95; fl s.max ])
    (sorted_metrics ());
  table

let to_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> counters := (name, Json.Int (Atomic.get c.count)) :: !counters
      | Gauge g -> gauges := (name, Json.Float (Atomic.get g.value)) :: !gauges
      | Histogram h ->
          let s = stats h in
          histograms :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Float s.sum);
                  ("mean", Json.Float s.mean);
                  ("min", Json.Float s.min);
                  ("max", Json.Float s.max);
                  ("p50", Json.Float s.p50);
                  ("p95", Json.Float s.p95);
                ] )
            :: !histograms)
    (sorted_metrics ());
  Json.Obj
    [
      ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]
