(** Minimal JSON values: enough to serialize run reports and parse them
    back in tests. Deliberately dependency-free (the container carries
    no yojson); the emitter is deterministic — object fields keep their
    construction order — so identical runs yield identical bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation. Non-finite floats serialize as [null] (JSON has no
    NaN/infinity). *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Strict recursive-descent parser for the subset we emit (no escapes
    beyond the JSON standard's, numbers via [float_of_string] with
    integer detection). Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — field lookup; [None] on missing field or
    non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_str_opt : t -> string option
val to_list_opt : t -> t list option
