(** Process-wide metrics registry: counters, gauges, and fixed-bucket
    histograms with streaming mean/p50/p95/max.

    Disabled by default. When disabled, [incr]/[set]/[observe] are a
    single boolean load — instrumented hot paths (the network round
    loop) cost nothing measurable. Handles are cheap to create and
    interned by name, so call sites may look metrics up on every use or
    cache the handle; both hit the same underlying cell.

    Nothing here draws randomness or perturbs caller state: enabling
    metrics cannot change the protocol outputs of a seeded run.

    Domain safety: counters and gauges are atomics, histograms take a
    per-histogram mutex per observation, and the name registry is
    mutex-guarded — worker domains of the sampling pool may update any
    metric concurrently and the aggregated totals are exact. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : string -> counter
(** Intern (create or look up) a counter by name. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an
    implicit +inf overflow bucket is appended. The default is a
    geometric ladder suited to microsecond durations
    (1, 2, 5, 10, ... 5e8). Bucket bounds are fixed at first creation;
    a later lookup with different bounds returns the existing
    histogram unchanged — and, once per name (rearmed by {!reset}),
    emits a [metrics.bucket_mismatch] event with the registered and
    requested bucket counts so the divergence is visible to attached
    sinks rather than silent. *)

val observe : histogram -> float -> unit

type histogram_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  p50 : float;  (** bucket-interpolated estimate; [nan] when empty *)
  p95 : float;
}

val stats : histogram -> histogram_stats

val quantile : histogram -> float -> float
(** [quantile h q] for [0 <= q <= 1], linearly interpolated within the
    bucket where the cumulative count crosses [q]; clamped to the
    observed min/max so exact-bound data stays exact. *)

val reset : unit -> unit
(** Zero every registered metric (names and bucket layouts survive). *)

val to_table : unit -> Sb_util.Tabular.t
(** Render every registered metric, sorted by name. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    names sorted, for embedding in run reports. *)
