let schema_version = 7

type experiment_entry = {
  id : string;
  title : string;
  ok : bool;
  rows_checked : int;
  wall_clock_s : float;
  notes : string list;
}

type timing_entry = { bench_name : string; ns_per_run : float; r_square : float }

let experiment_to_json (e : experiment_entry) =
  Json.Obj
    [
      ("id", Json.Str e.id);
      ("title", Json.Str e.title);
      ("ok", Json.Bool e.ok);
      ("rows_checked", Json.Int e.rows_checked);
      ("wall_clock_s", Json.Float e.wall_clock_s);
      ("notes", Json.List (List.map (fun n -> Json.Str n) e.notes));
    ]

let timing_to_json (t : timing_entry) =
  Json.Obj
    [
      ("name", Json.Str t.bench_name);
      ("ns_per_run", Json.Float t.ns_per_run);
      ("r_square", Json.Float t.r_square);
    ]

(* Schema v2: the communication-cost block, read off the sim.* counters
   as they stand. Counters that never fired read as 0, so the block is
   always present and always complete. *)
let comm_to_json () =
  let c name = Json.Int (Metrics.counter_value (Metrics.counter name)) in
  Json.Obj
    [
      ("broadcasts", c "sim.broadcasts");
      ("p2p_messages", c "sim.p2p");
      ("broadcast_bytes", c "sim.bytes.broadcast");
      ("p2p_bytes", c "sim.bytes.p2p");
    ]

let make ?(tool = "simbcast") ?(tag = "run") ?jobs ?(experiments = []) ?(timings = [])
    ?trace ?sessions ?check ?workload () =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("tool", Json.Str tool);
       ("tag", Json.Str tag);
     ]
    @ (match jobs with
      | None -> []
      | Some j -> [ ("parallel", Json.Obj [ ("jobs", Json.Int j) ]) ])
    @ [ ("experiments", Json.List (List.map experiment_to_json experiments)) ]
    @ [ ("comm", comm_to_json ()) ]
    @ (if timings = [] then []
       else [ ("timings", Json.List (List.map timing_to_json timings)) ])
    @ (match trace with None -> [] | Some t -> [ ("trace", t) ])
    @ (match sessions with None -> [] | Some s -> [ ("sessions", s) ])
    @ (match check with None -> [] | Some c -> [ ("check", c) ])
    @ (match workload with None -> [] | Some w -> [ ("workload", w) ])
    @ [ ("metrics", Metrics.to_json ()); ("spans", Span.to_json ()) ])

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:true json);
      output_char oc '\n')

let validate json =
  let ( let* ) r f = Result.bind r f in
  let require msg = function Some x -> Ok x | None -> Error msg in
  let* v = require "missing schema_version" (Json.member "schema_version" json) in
  let* v = require "schema_version not an int" (Json.to_int_opt v) in
  let* () =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "schema_version %d, expected %d" v schema_version)
  in
  let* exps = require "missing experiments" (Json.member "experiments" json) in
  let* exps = require "experiments not a list" (Json.to_list_opt exps) in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* id = require "experiment missing id" (Json.member "id" e) in
        let* id = require "experiment id not a string" (Json.to_str_opt id) in
        let* _ = require (id ^ ": missing ok") (Json.member "ok" e) in
        let* wc = require (id ^ ": missing wall_clock_s") (Json.member "wall_clock_s" e) in
        let* _ = require (id ^ ": wall_clock_s not numeric") (Json.to_float_opt wc) in
        Ok ())
      (Ok ()) exps
  in
  let* comm = require "missing comm" (Json.member "comm" json) in
  let* () =
    List.fold_left
      (fun acc field ->
        let* () = acc in
        let* v = require ("comm missing " ^ field) (Json.member field comm) in
        let* _ = require ("comm " ^ field ^ " not an int") (Json.to_int_opt v) in
        Ok ())
      (Ok ())
      [ "broadcasts"; "p2p_messages"; "broadcast_bytes"; "p2p_bytes" ]
  in
  let* metrics = require "missing metrics" (Json.member "metrics" json) in
  let* _ = require "metrics missing counters" (Json.member "counters" metrics) in
  (* Schema v3: the trace block is optional (only traced runs carry
     it), but when present it must be well-formed. *)
  let* () =
    match Json.member "trace" json with
    | None -> Ok ()
    | Some t ->
        List.fold_left
          (fun acc field ->
            let* () = acc in
            let* v = require ("trace missing " ^ field) (Json.member field t) in
            let* _ = require ("trace " ^ field ^ " not an int") (Json.to_int_opt v) in
            Ok ())
          (Ok ())
          [ "sessions_traced"; "sessions_total"; "spans"; "flows" ]
  in
  (* Schema v4: the sessions block is optional (only session-engine
     runs carry it); when present it must carry the batch totals. *)
  let* () =
    match Json.member "sessions" json with
    | None -> Ok ()
    | Some s ->
        let* () =
          List.fold_left
            (fun acc field ->
              let* () = acc in
              let* v = require ("sessions missing " ^ field) (Json.member field s) in
              let* _ = require ("sessions " ^ field ^ " not an int") (Json.to_int_opt v) in
              Ok ())
            (Ok ())
            [
              "sessions";
              "consistent";
              "shards";
              "broadcasts";
              "p2p_messages";
              "broadcast_bytes";
              "p2p_bytes";
            ]
        in
        List.fold_left
          (fun acc field ->
            let* () = acc in
            let* v = require ("sessions missing " ^ field) (Json.member field s) in
            let* _ = require ("sessions " ^ field ^ " not numeric") (Json.to_float_opt v) in
            Ok ())
          (Ok ())
          [ "sessions_per_sec"; "msgs_per_sec"; "bytes_per_sec" ]
  in
  (* Schema v5: the check block is optional (only model-checker runs
     carry it); when present it must carry the state counts and one
     verdict string per property. *)
  let* () =
    match Json.member "check" json with
    | None -> Ok ()
    | Some c ->
        let* () =
          List.fold_left
            (fun acc field ->
              let* () = acc in
              let* v = require ("check missing " ^ field) (Json.member field c) in
              let* _ = require ("check " ^ field ^ " not an int") (Json.to_int_opt v) in
              Ok ())
            (Ok ())
            [ "n"; "t"; "max_states"; "configs"; "explored"; "memo_hits"; "terminals" ]
        in
        List.fold_left
          (fun acc field ->
            let* () = acc in
            let* v = require ("check missing " ^ field) (Json.member field c) in
            let* s = require ("check " ^ field ^ " not a string") (Json.to_str_opt v) in
            if List.mem s [ "pass"; "violated"; "inconclusive" ] then Ok ()
            else Error (Printf.sprintf "check %s: bad verdict %S" field s))
          (Ok ())
          [ "agreement"; "validity"; "unforgeability" ]
  in
  (* Schema v6: the timings block is optional (only bench runs carry
     it); when present every entry must be a {name, ns_per_run} pair —
     the perf-diff guards key on names like "delivery/..." and
     "crypto/pow", so a malformed entry must fail validation rather
     than silently drop out of the diff. *)
  let* () =
    match Json.member "timings" json with
    | None -> Ok ()
    | Some t ->
        let* entries = require "timings not a list" (Json.to_list_opt t) in
        List.fold_left
          (fun acc e ->
            let* () = acc in
            let* name = require "timing entry missing name" (Json.member "name" e) in
            let* name = require "timing entry name not a string" (Json.to_str_opt name) in
            let* ns = require (name ^ ": missing ns_per_run") (Json.member "ns_per_run" e) in
            let* _ = require (name ^ ": ns_per_run not numeric") (Json.to_float_opt ns) in
            Ok ())
          (Ok ()) entries
  in
  (* Schema v7: the workload block is optional (only [simbcast
     workload] runs carry it); when present it must carry the workload
     name, the tier, and the integer session totals — the CI workload
     smoke diffs this block across --jobs values, so a malformed block
     must fail validation rather than vacuously compare. *)
  let* () =
    match Json.member "workload" json with
    | None -> Ok ()
    | Some w ->
        let* name = require "workload missing name" (Json.member "name" w) in
        let* _ = require "workload name not a string" (Json.to_str_opt name) in
        let* tier = require "workload missing tier" (Json.member "tier" w) in
        let* tier = require "workload tier not a string" (Json.to_str_opt tier) in
        let* () =
          if List.mem tier [ "quick"; "full" ] then Ok ()
          else Error (Printf.sprintf "workload: bad tier %S" tier)
        in
        let* () =
          List.fold_left
            (fun acc field ->
              let* () = acc in
              let* v = require ("workload missing " ^ field) (Json.member field w) in
              let* _ = require ("workload " ^ field ^ " not an int") (Json.to_int_opt v) in
              Ok ())
            (Ok ())
            [ "sessions"; "consistent" ]
        in
        let* _ = require "workload missing summary" (Json.member "summary" w) in
        Ok ()
  in
  Ok ()

(* --- perf trajectory ------------------------------------------------ *)

type perf_delta = {
  name : string;
  base_ns : float;
  fresh_ns : float;
  ratio : float;  (* fresh / base; > 1 is a slowdown *)
}

let timings_of json =
  match Json.member "timings" json with
  | None -> []
  | Some t -> (
      match Json.to_list_opt t with
      | None -> []
      | Some l ->
          List.filter_map
            (fun e ->
              match
                ( Option.bind (Json.member "name" e) Json.to_str_opt,
                  Option.bind (Json.member "ns_per_run" e) Json.to_float_opt )
              with
              | Some name, Some ns -> Some (name, ns)
              | _ -> None)
            l)

let perf_diff ?(prefixes = []) ~base ~fresh () =
  let keep name =
    prefixes = [] || List.exists (fun p -> String.starts_with ~prefix:p name) prefixes
  in
  let b = List.filter (fun (n, _) -> keep n) (timings_of base) in
  let f = timings_of fresh in
  let deltas, missing =
    List.fold_left
      (fun (ds, ms) (name, base_ns) ->
        match List.assoc_opt name f with
        | Some fresh_ns ->
            let ratio = if base_ns > 0.0 then fresh_ns /. base_ns else Float.nan in
            ({ name; base_ns; fresh_ns; ratio } :: ds, ms)
        | None -> (ds, name :: ms))
      ([], []) b
  in
  (List.rev deltas, List.rev missing)

(* One compact line per bench run, for append-only BENCH_history.jsonl:
   enough to plot a perf trajectory without parsing full reports. *)
let history_row ?utc json =
  let str_at path = Option.bind (Json.member path json) Json.to_str_opt in
  Json.Obj
    ((match utc with None -> [] | Some u -> [ ("utc", Json.Str u) ])
    @ [
        ("tag", Json.Str (Option.value ~default:"?" (str_at "tag")));
        ( "schema_version",
          Json.Int
            (Option.value ~default:0
               (Option.bind (Json.member "schema_version" json) Json.to_int_opt)) );
        ( "timings",
          Json.Obj
            (List.map (fun (n, ns) -> (n, Json.Float ns)) (timings_of json)) );
      ])
