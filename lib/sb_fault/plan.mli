(** Deterministic fault plans for the simulated network.

    A plan is a list of fault specifications, compiled by {!Inject}
    into a per-run {!Sb_sim.Network.interceptor}. Four benign-fault
    primitives cover the classic regimes the broadcast substrates were
    designed against:

    - {b crash-stop}: party [p] halts at round [r] — every envelope it
      would emit from round [r] on (point-to-point, broadcast-channel,
      and functionality-bound alike) is suppressed. Round granularity
      makes a crash all-or-nothing within a round, the clean omission
      model; the party object still steps locally, so its (stale)
      output must be excluded by the caller — see
      {!crashed_parties}.
    - {b Bernoulli omission}: each matching point-to-point envelope is
      independently dropped with probability [p], coins drawn from the
      run's dedicated fault stream. An optional round scope [at]
      restricts the rule to envelopes sent in exactly that round —
      with [p = 1.0] this is a deterministic per-round omission, the
      form the model checker's counterexample traces use.
    - {b fixed delay}: each matching point-to-point envelope is held
      back [by] rounds (re-entering the delivery queue as if sent
      [by] rounds later); envelopes still in flight when the protocol
      ends are lost. Also takes an optional sending-round scope
      [at].
    - {b partition}: during network rounds [first..last] (inclusive,
      sending-round), point-to-point envelopes whose endpoints sit in
      different groups are dropped. Parties not listed in any group
      form one implicit extra group.

    Link faults (drop/delay/partition) apply only to party-to-party
    envelopes with distinct endpoints: self-delivery never crosses the
    network, and the regular broadcast channel and the ideal
    functionality channel are model-provided primitives, assumed
    reliable. Crash-stop, being a property of the party rather than a
    link, silences all of its traffic.

    The [--faults] command-line grammar accepted by {!of_string}
    (faults separated by [';'], links as [SRC->DST] with ['*'] for
    "any"):

    {v
    spec  ::= fault (';' fault)*
    fault ::= 'crash:' PARTY '@' ROUND
            | 'drop:'  PROB  [':' link] ['@' ROUND]
            | 'delay:' BY    [':' link] ['@' ROUND]
            | 'part:'  group ('|' group)+ '@' FIRST '-' LAST
    link  ::= endp '->' endp        endp  ::= PARTY | '*'
    group ::= PARTY (',' PARTY)*
    v}

    e.g. ["crash:4@1;drop:0.1;delay:2:0->3;part:0,1|2,3,4@2-5"], or the
    checker-style deterministic ["drop:1:2->0@1;delay:1:2->*@2"]. *)

type link = { l_src : int option; l_dst : int option }
(** [None] matches any party on that side. *)

type spec =
  | Crash of { party : int; round : int }
  | Drop of { link : link; p : float; at : int option }
  | Delay of { link : link; by : int; at : int option }
  | Partition of { groups : int list list; first : int; last : int }

type t = spec list

val any_link : link

val link : ?src:int -> ?dst:int -> unit -> link

val crash : party:int -> round:int -> spec

val drop : ?src:int -> ?dst:int -> ?at:int -> float -> spec
(** [drop p] with an optional link restriction and an optional
    sending-round scope [at] (the rule fires only in that round). *)

val delay : ?src:int -> ?dst:int -> ?at:int -> int -> spec
(** [delay by] with an optional link restriction and an optional
    sending-round scope [at]. *)

val partition : groups:int list list -> first:int -> last:int -> spec

val link_matches : link -> src:int -> dst:int -> bool

val crashed_parties : t -> int list
(** Sorted, de-duplicated ids of parties any [Crash] spec halts.
    Static — callers measuring agreement among survivors exclude
    exactly these. *)

val validate : n:int -> t -> (unit, string) result
(** Party ids in [0, n), probabilities in [0, 1], delays >= 1, crash
    rounds and round scopes >= 0, partition groups disjoint with
    [first <= last]. *)

val to_string : t -> string
(** Round-trips with {!of_string}; [""] for the empty plan. *)

val of_string : string -> (t, string) result
(** Parse the [--faults] grammar above. Does not range-check ids
    against an [n] — combine with {!validate}. *)

val pp : Format.formatter -> t -> unit
