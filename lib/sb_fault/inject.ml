open Sb_sim

let m_crashes = Sb_obs.Metrics.counter "fault.crashes"
let m_drops = Sb_obs.Metrics.counter "fault.drops"
let m_delayed = Sb_obs.Metrics.counter "fault.delayed"

(* Group index of [i] under a partition: listed groups get their list
   position, everyone unlisted shares the implicit group -1. *)
let group_of groups i =
  let rec go k = function
    | [] -> -1
    | g :: rest -> if List.mem i g then k else go (k + 1) rest
  in
  go 0 groups

let compile ~n (plan : Plan.t) =
  (match Plan.validate ~n plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Sb_fault.Inject.compile: " ^ e));
  let crash_round = Array.make n max_int in
  List.iter
    (function
      | Plan.Crash { party; round } ->
          crash_round.(party) <- min crash_round.(party) round
      | _ -> ())
    plan;
  let partitions =
    List.filter_map
      (function Plan.Partition { groups; first; last } -> Some (groups, first, last) | _ -> None)
      plan
  in
  (* Drop/delay rules keep their relative plan order. *)
  let rules =
    List.filter_map
      (function
        | Plan.Drop { link; p; at } -> Some (`Drop (link, p, at))
        | Plan.Delay { link; by; at } -> Some (`Delay (link, by, at))
        | Plan.Crash _ | Plan.Partition _ -> None)
      plan
  in
  fun ~rng ->
    (* Per-run state: which crashes have been tallied, and envelopes in
       flight, keyed by the round they should re-enter the queue as if
       sent in (appended in arrival order, released in that order). *)
    let crash_counted = Array.make n false in
    let held : (int, Envelope.t list ref) Hashtbl.t = Hashtbl.create 8 in
    let hold ~due e =
      match Hashtbl.find_opt held due with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add held due (ref [ e ])
    in
    let partitioned ~round ~src ~dst =
      List.exists
        (fun (groups, first, last) ->
          round >= first && round <= last && group_of groups src <> group_of groups dst)
        partitions
    in
    fun ~round envs ->
      Array.iteri
        (fun i r ->
          if round >= r && not crash_counted.(i) then begin
            crash_counted.(i) <- true;
            Sb_obs.Metrics.incr m_crashes
          end)
        crash_round;
      let released =
        match Hashtbl.find_opt held round with
        | Some l ->
            Hashtbl.remove held round;
            List.rev !l
        | None -> []
      in
      let keep =
        List.filter
          (fun (e : Envelope.t) ->
            match Envelope.src_party e with
            | Some i when round >= crash_round.(i) -> false
            | src -> (
                match (src, Envelope.dst_party e) with
                | Some s, Some d when s <> d ->
                    (* A real point-to-point link: fault rules apply. *)
                    if partitioned ~round ~src:s ~dst:d then begin
                      Sb_obs.Metrics.incr m_drops;
                      false
                    end
                    else
                      (* A rule with a round scope is inert outside its
                         sending round; the Bernoulli coin is drawn only
                         for rules that actually match, so scoped rules
                         never perturb the fault stream elsewhere. *)
                      let in_scope = function None -> true | Some r -> r = round in
                      let rec apply = function
                        | [] -> true
                        | `Drop (l, p, at) :: rest ->
                            if in_scope at && Plan.link_matches l ~src:s ~dst:d then
                              if Sb_util.Rng.bernoulli rng p then begin
                                Sb_obs.Metrics.incr m_drops;
                                false
                              end
                              else apply rest
                            else apply rest
                        | `Delay (l, by, at) :: rest ->
                            if in_scope at && Plan.link_matches l ~src:s ~dst:d then begin
                              Sb_obs.Metrics.incr m_delayed;
                              hold ~due:(round + by) e;
                              false
                            end
                            else apply rest
                      in
                      apply rules
                | _ ->
                    (* Self-delivery, the broadcast channel, and both
                       directions of the ideal functionality channel
                       are reliable; only crash-stop touches them. *)
                    true))
          envs
      in
      released @ keep
