type link = { l_src : int option; l_dst : int option }

type spec =
  | Crash of { party : int; round : int }
  | Drop of { link : link; p : float; at : int option }
  | Delay of { link : link; by : int; at : int option }
  | Partition of { groups : int list list; first : int; last : int }

type t = spec list

let any_link = { l_src = None; l_dst = None }
let link ?src ?dst () = { l_src = src; l_dst = dst }
let crash ~party ~round = Crash { party; round }
let drop ?src ?dst ?at p = Drop { link = link ?src ?dst (); p; at }
let delay ?src ?dst ?at by = Delay { link = link ?src ?dst (); by; at }
let partition ~groups ~first ~last = Partition { groups; first; last }

let link_matches l ~src ~dst =
  (match l.l_src with None -> true | Some i -> i = src)
  && (match l.l_dst with None -> true | Some i -> i = dst)

let crashed_parties plan =
  List.sort_uniq Int.compare
    (List.filter_map (function Crash { party; _ } -> Some party | _ -> None) plan)

let validate ~n plan =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let party_ok i = i >= 0 && i < n in
  let endp_ok = function None -> true | Some i -> party_ok i in
  let rec go = function
    | [] -> Ok ()
    | Crash { party; round } :: rest ->
        if not (party_ok party) then err "crash: party %d out of range [0, %d)" party n
        else if round < 0 then err "crash: negative round %d" round
        else go rest
    | Drop { link; p; at } :: rest ->
        if not (endp_ok link.l_src && endp_ok link.l_dst) then
          err "drop: link endpoint out of range [0, %d)" n
        else if not (p >= 0.0 && p <= 1.0) then err "drop: probability %g outside [0, 1]" p
        else if (match at with Some r -> r < 0 | None -> false) then
          err "drop: negative round scope"
        else go rest
    | Delay { link; by; at } :: rest ->
        if not (endp_ok link.l_src && endp_ok link.l_dst) then
          err "delay: link endpoint out of range [0, %d)" n
        else if by < 1 then err "delay: must hold at least 1 round, got %d" by
        else if (match at with Some r -> r < 0 | None -> false) then
          err "delay: negative round scope"
        else go rest
    | Partition { groups; first; last } :: rest ->
        let members = List.concat groups in
        if List.exists (fun i -> not (party_ok i)) members then
          err "part: party out of range [0, %d)" n
        else if List.length (List.sort_uniq Int.compare members) <> List.length members
        then err "part: groups must be disjoint"
        else if first < 0 || last < first then
          err "part: bad round window %d-%d" first last
        else go rest
  in
  go plan

(* --- printing ------------------------------------------------------- *)

let endp_to_string = function None -> "*" | Some i -> string_of_int i

let link_suffix l =
  if l = any_link then ""
  else Printf.sprintf ":%s->%s" (endp_to_string l.l_src) (endp_to_string l.l_dst)

let at_suffix = function None -> "" | Some r -> Printf.sprintf "@%d" r

let spec_to_string = function
  | Crash { party; round } -> Printf.sprintf "crash:%d@%d" party round
  | Drop { link; p; at } -> Printf.sprintf "drop:%g%s%s" p (link_suffix link) (at_suffix at)
  | Delay { link; by; at } ->
      Printf.sprintf "delay:%d%s%s" by (link_suffix link) (at_suffix at)
  | Partition { groups; first; last } ->
      Printf.sprintf "part:%s@%d-%d"
        (String.concat "|"
           (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
        first last

let to_string plan = String.concat ";" (List.map spec_to_string plan)
let pp fmt plan = Format.pp_print_string fmt (to_string plan)

(* --- parsing -------------------------------------------------------- *)

exception Bad of string

let int_exn what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> raise (Bad (Printf.sprintf "%s: expected an integer, got %S" what s))

let endp_exn s =
  match String.trim s with "*" -> None | s -> Some (int_exn "link endpoint" s)

let link_exn s =
  match String.split_on_char '>' s with
  | [ pre; dst ] when String.length pre > 0 && pre.[String.length pre - 1] = '-' ->
      { l_src = endp_exn (String.sub pre 0 (String.length pre - 1)); l_dst = endp_exn dst }
  | _ -> raise (Bad (Printf.sprintf "bad link %S (want SRC->DST, '*' for any)" s))

let split2 what c s =
  match String.index_opt s c with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> raise (Bad (Printf.sprintf "%s: missing %C in %S" what c s))

(* Optional trailing round scope "@R" on drop/delay specs; crash and
   part use '@' with their own meaning and never reach here. *)
let split_at_suffix rest =
  match String.index_opt rest '@' with
  | None -> (rest, None)
  | Some i ->
      ( String.sub rest 0 i,
        Some (int_exn "round scope" (String.sub rest (i + 1) (String.length rest - i - 1)))
      )

let spec_exn s =
  let kind, rest = split2 "fault" ':' s in
  match String.trim kind with
  | "crash" ->
      let party, round = split2 "crash" '@' rest in
      crash ~party:(int_exn "crash party" party) ~round:(int_exn "crash round" round)
  | "drop" -> (
      let rest, at = split_at_suffix rest in
      match String.index_opt rest ':' with
      | None ->
          let p = try float_of_string (String.trim rest) with _ -> raise (Bad ("bad drop rate " ^ rest)) in
          Drop { link = any_link; p; at }
      | Some i ->
          let p_str = String.sub rest 0 i in
          let p = try float_of_string (String.trim p_str) with _ -> raise (Bad ("bad drop rate " ^ p_str)) in
          Drop { link = link_exn (String.sub rest (i + 1) (String.length rest - i - 1)); p; at })
  | "delay" -> (
      let rest, at = split_at_suffix rest in
      match String.index_opt rest ':' with
      | None -> Delay { link = any_link; by = int_exn "delay" rest; at }
      | Some i ->
          Delay
            {
              link = link_exn (String.sub rest (i + 1) (String.length rest - i - 1));
              by = int_exn "delay" (String.sub rest 0 i);
              at;
            })
  | "part" ->
      let groups_str, window = split2 "part" '@' rest in
      let first, last = split2 "part window" '-' window in
      let groups =
        List.map
          (fun g -> List.map (int_exn "part member") (String.split_on_char ',' g))
          (String.split_on_char '|' groups_str)
      in
      if List.length groups < 2 then raise (Bad "part: need at least two groups");
      partition ~groups ~first:(int_exn "part first" first) ~last:(int_exn "part last" last)
  | other -> raise (Bad (Printf.sprintf "unknown fault kind %S (crash, drop, delay, part)" other))

let of_string s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    try
      Ok (List.map (fun f -> spec_exn (String.trim f)) (String.split_on_char ';' s))
    with Bad msg -> Error msg
