(** Compile a {!Plan.t} into a per-run delivery-queue interceptor.

    [compile ~n plan] validates the plan once (raising
    [Invalid_argument] on a bad one) and returns a maker suitable for
    [Sb_sim.Network.run]'s [?faults] hook: each run calls it with a
    dedicated RNG stream and gets a fresh interceptor whose mutable
    state (crash flags, delay buffers) is private to that run — makers
    are therefore safe to share across the worker domains of a
    sampling pool, and a run's fault coins are a pure function of its
    own seed stream, keeping results byte-identical across [--jobs]
    values.

    Per round, the interceptor applies, in order:

    + crash-stop — envelopes whose source party has crashed at or
      before this round are suppressed, whatever their destination;
    + partitions — cross-group point-to-point envelopes within an
      active window are dropped;
    + drop/delay rules, in plan order; the first rule that drops or
      delays an envelope ends its processing. One Bernoulli coin is
      drawn per matching drop rule, in plan order, so the coin stream
      is reproducible;
    + release — envelopes delayed from earlier rounds re-enter the
      queue in their original relative order once due.

    Injected faults are tallied (when {!Sb_obs.Metrics} is enabled)
    under [fault.crashes] (one per crashed party per run, at the round
    the crash takes effect), [fault.drops] (envelopes lost to omission
    or partition) and [fault.delayed] (envelopes held back). *)

val compile :
  n:int -> Plan.t -> rng:Sb_util.Rng.t -> Sb_sim.Network.interceptor
(** Partially apply as [compile ~n plan] to obtain the maker for
    [Network.run ~faults]. @raise Invalid_argument if
    [Plan.validate ~n plan] fails. *)
