(** Deterministic single-session executor for the model checker.

    One broadcast session — one sender, one value, n parties driven as
    {!Sb_broadcast.Session.t} closures — is replayed from scratch under
    an explicit per-round fault schedule. The round structure mirrors
    {!Sb_sim.Network.run} exactly (deliver → collect → intercept →
    route, with the final round delivery-only) and the fault semantics
    mirror {!Sb_fault.Inject.compile}: a crash silences all of the
    party's traffic from its crash round on, omissions and delays are
    all-or-nothing for the round — the clean benign-fault granularity,
    [drop:1:p->*\@r] / [delay:1:p->*\@r] — acting only on
    distinct-endpoint point-to-point envelopes, and delayed envelopes
    re-enter the queue ahead of that round's fresh traffic.
    A terminal state replayed here therefore agrees with a composed
    [Network.run] execution of the same session under the compiled
    {!Checker.plan_of_witness} fault plan — the counterexample
    round-trip tests pin this down.

    Sessions are mutable closures and cannot be snapshotted, so the
    checker re-executes the decision prefix for every node it expands;
    states are identified across paths by a canonical digest over the
    per-party inbox histories, the crash pattern, and the in-flight
    queue (delivered and held envelopes). *)

type action =
  | Crash  (** halt: all traffic from this round on is suppressed *)
  | Omit  (** drop all of this round's point-to-point sends *)
  | Delay  (** hold all of this round's point-to-point sends one round *)

type decision = (int * action) list
(** One round's adversarial choice: the faulty parties that deviate
    this round, ascending by party id. Absent parties act healthily.
    A decision list shorter than {!total_rounds} stops [Mid], at the
    first undecided round — pad with [[]] (healthy rounds) to drive a
    partial schedule to termination. *)

type config = {
  ctx : Sb_sim.Ctx.t;
  scheme : Sb_broadcast.Session.scheme;
  sender : int;
  value : Sb_sim.Msg.t;
  faulty : Sb_util.Subset.t;  (** the benign-faulty set B; |B| <= ctx.thresh *)
}

type status =
  | Mid of Sb_sim.Envelope.t list
      (** the next undecided round's outgoing queue, as sent — a
          party's omit/delay options exist only when it has
          point-to-point traffic here *)
  | Terminal of Sb_sim.Msg.t array  (** per-party session results *)

type snapshot = { digest : string; status : status }

val total_rounds : config -> int
(** Number of decision slots: the scheme's send rounds. A decision
    list of exactly this length drives the session to [Terminal]. *)

val replay : config -> decision list -> snapshot
(** Re-execute the session from round 0 under the given decisions.
    The digest canonically identifies the reached state (it covers the
    round index, so equal states at different depths never alias); two
    equal digests within one [config] have identical futures. Crash
    flags are digested as booleans, and at the terminal the dead state
    (crash flags, never-deliverable held envelopes) is dropped, so
    schedules that converge — crash early vs. late around silent
    rounds, omit vs. delay of final-round traffic — share digests. *)

val crashed_before : decision list -> int -> bool
(** Whether party [i] has a [Crash] action anywhere in the prefix. *)
