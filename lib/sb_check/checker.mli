(** Exhaustive small-n model checking of simultaneous-broadcast
    session properties under benign faults.

    For n <= {!max_n} the checker enumerates every adversarial choice
    available to the benign-fault model: the faulty set B (all subsets
    of size 0..t, via {!Sb_util.Subset.all_up_to}), the sender and the
    broadcast value, and — round by round — every crash / round
    omission / one-round delay a faulty party can apply to its own
    outgoing traffic (the [sb_fault] plan alphabet made deterministic;
    omission and delay are all-or-nothing within a round, the same
    clean benign granularity {!Sb_fault.Plan} gives crash-stop).
    Each reachable terminal state is evaluated exactly; memoized state
    digests ({!Exec.snapshot}) collapse converging fault paths.

    Sessions in {!Sb_broadcast.Parallel.concurrent} composition are
    independent — sid-tagged messages, per-session inboxes, and a
    benign-fault interceptor that acts per link — so a composed
    protocol satisfies a property iff every single-sender session does.
    Checking sessions standalone is therefore both sound and complete
    for the composed substrates, and keeps the state space tractable.

    The three properties, per terminal state, quantified over the
    honest parties (the complement of B — benign-faulty parties run
    honest code but their deliveries are adversarial, so their own
    outputs are not obligated):

    - {b agreement}: all honest results are equal;
    - {b validity}: if the sender is honest, every honest result is
      the sent value;
    - {b unforgeability}: every honest result is the sent value or the
      substrate's default — no honest party ever accepts a value the
      sender never sent.

    Verdicts are exact ([Holds] means proven over the whole reachable
    space, [Violated] carries a minimal replayable witness); a state
    budget turns unfinished [Holds] into [Inconclusive]. *)

type property = Agreement | Validity | Unforgeability

val property_name : property -> string

type witness = {
  w_property : property;
  w_sender : int;
  w_value : Sb_sim.Msg.t;
  w_faulty : Sb_util.Subset.t;
  w_decisions : Exec.decision list;  (** minimized, one entry per round *)
}

type verdict = Holds | Violated of witness | Inconclusive

val verdict_name : verdict -> string
(** ["pass"], ["violated"], or ["inconclusive"]. *)

type stats = {
  explored : int;  (** distinct states expanded (across all configs) *)
  memo_hits : int;  (** re-derivations answered by the visited set *)
  terminals : int;  (** terminal states evaluated *)
  configs : int;  (** (faulty set, sender, value) combinations *)
}

type result = {
  protocol : string;
  n : int;
  t : int;
  max_states : int;
  capped : bool;  (** the state budget cut exploration short *)
  agreement : verdict;
  validity : verdict;
  unforgeability : verdict;
  stats : stats;
}

val max_n : int
(** Largest supported party count (5): beyond it the per-round
    decision product is out of exhaustive reach. *)

val schemes : (string * Sb_broadcast.Session.scheme) list
(** Checkable substrates by CLI name, in {!Core.Resilience.substrates}
    order: send-echo, dolev-strong, eig, bracha, phase-king. *)

val find_scheme : string -> Sb_broadcast.Session.scheme option
(** Accepts both the bare name and the composed ["concurrent-"] form. *)

val check :
  ?max_states:int ->
  ?default:Sb_sim.Msg.t ->
  scheme:Sb_broadcast.Session.scheme ->
  Sb_sim.Ctx.t ->
  result
(** Exhaustively check one substrate at the context's (n, t). The
    values enumerated are [Bit false] and [Bit true]; [default]
    (default [Bit false]) is the substrate's no-accept fallback used
    by the unforgeability predicate. [max_states] (default
    [200_000]) bounds the total number of expanded states. First
    witnesses are retained per property in deterministic enumeration
    order and greedily minimized. Updates the [check.*] metrics
    counters. @raise Invalid_argument if [n > max_n]. *)

val plan_of_witness : witness -> Sb_fault.Plan.t
(** Compile the witness schedule to the [--faults] grammar:
    round-scoped certain drops ([drop:1:p->d\@r]), one-round delays
    ([delay:1:p->*\@r]) and crashes ([crash:p\@r]) — replaying it
    through {!Sb_fault.Inject} over a composed [Network.run] of the
    same session reproduces the violation. *)

val witness_inputs : n:int -> witness -> string
(** The composed-run input vector realizing the witness config: the
    sender's bit is the witness value, all other coordinates 0. *)

val pp_witness : Format.formatter -> witness -> unit

val result_to_json : result -> Sb_obs.Json.t
(** The report-schema-v5 [check] block: protocol, n, t, state counts,
    capped flag, one verdict string per property, and a
    counterexamples array (property, sender, value, faulty, faults,
    inputs) for the violated ones. *)
