open Sb_sim

type action = Crash | Omit | Delay

type decision = (int * action) list

type config = {
  ctx : Ctx.t;
  scheme : Sb_broadcast.Session.scheme;
  sender : int;
  value : Msg.t;
  faulty : Sb_util.Subset.t;
}

type status = Mid of Envelope.t list | Terminal of Msg.t array

type snapshot = { digest : string; status : status }

let total_rounds config = config.scheme.Sb_broadcast.Session.rounds config.ctx

let crashed_before decisions i =
  List.exists (List.exists (fun (p, a) -> p = i && a = Crash)) decisions

(* All checker sessions share one sid; it only namespaces message tags
   within a run, and the checker drives exactly one session. *)
let sid = "chk"

let endpoint_key = function
  | Envelope.Party i -> "P" ^ string_of_int i
  | Envelope.Func -> "F"
  | Envelope.All -> "*"

let envelope_key (e : Envelope.t) =
  Printf.sprintf "%s>%s:%s" (endpoint_key e.Envelope.src) (endpoint_key e.Envelope.dst)
    (Msg.serialize e.Envelope.body)

let envelopes_key envs = String.concat ";" (List.map envelope_key envs)

(* Mutable replay state. [hist] is a per-party rolling hash chain over
   the inboxes delivered so far: sessions are deterministic functions
   of (config, delivered history), so the chain — not the opaque
   closure state — canonically identifies each party's local state. *)
type state = {
  cfg : config;
  sessions : Sb_broadcast.Session.t array;
  crash_round : int array;
  hist : string array;
  mutable queue : Envelope.t list;  (* next round's deliveries, enqueue order *)
  held : (int, Envelope.t list ref) Hashtbl.t;  (* due round -> held, arrival order *)
}

let create config =
  let n = config.ctx.Ctx.n in
  (* Substrate schemes never consume their rng (they are deterministic
     given the ctx); a fixed stream keeps the signature satisfied. *)
  let rng = Sb_util.Rng.create 0 in
  let sessions =
    Array.init n (fun me ->
        config.scheme.Sb_broadcast.Session.create config.ctx ~rng:(Sb_util.Rng.split rng)
          ~sid ~sender:config.sender ~me
          ~value:(if me = config.sender then Some config.value else None))
  in
  {
    cfg = config;
    sessions;
    crash_round = Array.make n max_int;
    hist = Array.make n "";
    queue = [];
    held = Hashtbl.create 8;
  }

(* Deliver the pending queue and step every party — crashed parties
   still step on their (possibly empty) inboxes, exactly as the real
   network steps honest-but-silenced parties. Returns the round's
   outgoing traffic in party-id order, as sent. *)
let deliver_and_collect st ~round =
  let n = st.cfg.ctx.Ctx.n in
  let out = ref [] in
  for me = n - 1 downto 0 do
    let inbox = List.filter (fun e -> Envelope.delivered_to e me) st.queue in
    st.hist.(me) <- Digest.string (st.hist.(me) ^ "|" ^ envelopes_key inbox);
    let sent = st.sessions.(me).Sb_broadcast.Session.step ~round ~inbox in
    out := sent @ !out
  done;
  !out

(* Apply one round's decision to the as-sent queue, mirroring
   Inject.compile: crashes are tallied first and silence everything
   from the sender (self-delivery and broadcast included); omissions
   and delays are all-or-nothing for the round — the clean benign
   model, matching [drop:1:p->*@r] / [delay:1:p->*@r] — and touch only
   distinct-endpoint point-to-point envelopes; held envelopes due this
   round re-enter ahead of the surviving fresh traffic. *)
let intercept st ~round (decision : decision) out =
  List.iter
    (fun (p, a) ->
      if a = Crash then st.crash_round.(p) <- min st.crash_round.(p) round)
    decision;
  let released =
    match Hashtbl.find_opt st.held round with
    | Some l ->
        Hashtbl.remove st.held round;
        List.rev !l
    | None -> []
  in
  let hold ~due e =
    match Hashtbl.find_opt st.held due with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add st.held due (ref [ e ])
  in
  let keep =
    List.filter
      (fun (e : Envelope.t) ->
        match Envelope.src_party e with
        | Some i when round >= st.crash_round.(i) -> false
        | src -> (
            match (src, Envelope.dst_party e) with
            | Some s, Some d when s <> d -> (
                match List.assoc_opt s decision with
                | Some Omit -> false
                | Some Delay ->
                    hold ~due:(round + 1) e;
                    false
                | Some Crash | None -> true)
            | _ -> true))
      out
  in
  st.queue <- released @ keep

(* Canonical state identity. Crash flags are booleans, not rounds:
   once a party is crashed, every future filter decision is the same
   whatever round it died in, and its delivered history is already in
   [hist] — so crash-at-r and crash-at-r' schedules that produced the
   same deliveries merge. At the terminal (round = total) the crash
   flags and still-held envelopes are dead state — no decision round
   remains that could consult or release them — so they are dropped
   and e.g. omit-all and delay-all of the final round's traffic reach
   the same state. *)
let digest_of st ~round ~terminal =
  let n = st.cfg.ctx.Ctx.n in
  let crashes =
    if terminal then ""
    else
      String.init n (fun i -> if st.crash_round.(i) = max_int then '-' else 'x')
  in
  let held =
    if terminal then ""
    else
      Hashtbl.fold (fun due l acc -> (due, envelopes_key (List.rev !l)) :: acc) st.held []
      |> List.sort compare
      |> List.map (fun (due, k) -> Printf.sprintf "%d=%s" due k)
      |> String.concat "&"
  in
  Digest.string
    (String.concat "#"
       [
         string_of_int round;
         crashes;
         String.concat "!" (Array.to_list st.hist);
         envelopes_key st.queue;
         held;
       ])

let replay config decisions =
  let total = total_rounds config in
  let len = List.length decisions in
  assert (len <= total);
  let st = create config in
  List.iteri
    (fun round decision ->
      let out = deliver_and_collect st ~round in
      intercept st ~round decision out)
    decisions;
  let digest = digest_of st ~round:len ~terminal:(len = total) in
  if len = total then begin
    (* The last round is delivery-only: the real network discards its
       outgoing queue before interception. *)
    let _discarded = deliver_and_collect st ~round:total in
    let results =
      Array.map (fun s -> s.Sb_broadcast.Session.result ()) st.sessions
    in
    { digest; status = Terminal results }
  end
  else
    let out = deliver_and_collect st ~round:len in
    { digest; status = Mid out }
