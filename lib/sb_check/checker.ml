open Sb_sim
open Sb_util

type property = Agreement | Validity | Unforgeability

let property_name = function
  | Agreement -> "agreement"
  | Validity -> "validity"
  | Unforgeability -> "unforgeability"

type witness = {
  w_property : property;
  w_sender : int;
  w_value : Msg.t;
  w_faulty : Subset.t;
  w_decisions : Exec.decision list;
}

type verdict = Holds | Violated of witness | Inconclusive

let verdict_name = function
  | Holds -> "pass"
  | Violated _ -> "violated"
  | Inconclusive -> "inconclusive"

type stats = { explored : int; memo_hits : int; terminals : int; configs : int }

type result = {
  protocol : string;
  n : int;
  t : int;
  max_states : int;
  capped : bool;
  agreement : verdict;
  validity : verdict;
  unforgeability : verdict;
  stats : stats;
}

let max_n = 5

let schemes =
  List.map
    (fun (s : Sb_broadcast.Session.scheme) -> (s.Sb_broadcast.Session.scheme_name, s))
    [
      Sb_broadcast.Send_echo.scheme;
      Sb_broadcast.Dolev_strong.scheme;
      Sb_broadcast.Eig.scheme;
      Sb_broadcast.Bracha.scheme;
      Sb_broadcast.Phase_king.scheme;
    ]

let find_scheme name =
  let bare =
    let prefix = "concurrent-" in
    if String.starts_with ~prefix name then
      String.sub name (String.length prefix) (String.length name - String.length prefix)
    else name
  in
  List.assoc_opt bare schemes

let m_states = Sb_obs.Metrics.counter "check.states"
let m_memo = Sb_obs.Metrics.counter "check.memo_hits"
let m_terminals = Sb_obs.Metrics.counter "check.terminals"
let m_violations = Sb_obs.Metrics.counter "check.violations"

(* --- the per-round decision alphabet -------------------------------- *)

(* Whether party [p] has any distinct-endpoint point-to-point traffic
   in the pending queue — the only envelopes its omission/delay
   choices can touch. *)
let has_p2p out p =
  List.exists
    (fun (e : Envelope.t) ->
      match (Envelope.src_party e, Envelope.dst_party e) with
      | Some s, Some d -> s = p && d <> p
      | _ -> false)
    out

(* Per-party action menu, deterministic order: healthy (None), crash,
   then — only when the party actually has traffic this round — the
   all-or-nothing round omission and the one-round delay. *)
let actions_for out p =
  [ None; Some Exec.Crash ]
  @ (if has_p2p out p then [ Some Exec.Omit; Some Exec.Delay ] else [])

(* Cartesian product over the still-alive faulty parties, ascending by
   party id; each choice vector flattens to one round decision. *)
let decisions_for (config : Exec.config) prefix out =
  let alive =
    List.filter (fun p -> not (Exec.crashed_before prefix p)) config.Exec.faulty
  in
  List.fold_right
    (fun p rest ->
      List.concat_map
        (fun choice ->
          List.map
            (fun d -> match choice with None -> d | Some a -> (p, a) :: d)
            rest)
        (actions_for out p))
    alive [ [] ]

(* --- terminal evaluation -------------------------------------------- *)

let violated_at ~default (config : Exec.config) results property =
  let n = config.Exec.ctx.Ctx.n in
  let honest = Subset.complement n config.Exec.faulty in
  let r i = results.(i) in
  match property with
  | Agreement -> (
      match honest with
      | [] -> false
      | h :: rest -> not (List.for_all (fun i -> Msg.equal (r i) (r h)) rest))
  | Validity ->
      (not (Subset.mem config.Exec.sender config.Exec.faulty))
      && not (List.for_all (fun i -> Msg.equal (r i) config.Exec.value) honest)
  | Unforgeability ->
      not
        (List.for_all
           (fun i -> Msg.equal (r i) config.Exec.value || Msg.equal (r i) default)
           honest)

(* --- counterexample minimization ------------------------------------ *)

let pad_to total decisions =
  decisions @ List.init (max 0 (total - List.length decisions)) (fun _ -> [])

let still_violates ~default (config : Exec.config) property decisions =
  let total = Exec.total_rounds config in
  match (Exec.replay config (pad_to total decisions)).Exec.status with
  | Exec.Terminal results -> violated_at ~default config results property
  | Exec.Mid _ -> assert false

(* Greedy shrink: repeatedly drop whole (party, action) entries,
   round-major, until a fixpoint. Every candidate is re-verified by a
   full replay, so the result is a genuine (locally minimal) violation
   schedule. *)
let minimize ~default config property decisions =
  let drop_entry current =
    let candidates =
      List.concat
        (List.mapi
           (fun r d ->
             List.mapi
               (fun k _ ->
                 List.mapi
                   (fun r' d' ->
                     if r' = r then List.filteri (fun k' _ -> k' <> k) d' else d')
                   current)
               d)
           current)
    in
    List.find_opt (still_violates ~default config property) candidates
    |> Option.value ~default:current
  in
  let rec fix current =
    let next = drop_entry current in
    if next = current then current else fix next
  in
  let minimal = fix decisions in
  (* Trim trailing healthy rounds for a compact printable schedule. *)
  let rec trim = function [] :: rest when rest = [] -> [] | d :: rest -> (
      match trim rest with [] when d = [] -> [] | t -> d :: t)
    | [] -> []
  in
  trim minimal

(* --- the driver ------------------------------------------------------ *)

let check ?(max_states = 200_000) ?(default = Msg.Bit false) ~scheme ctx =
  let n = ctx.Ctx.n and t = ctx.Ctx.thresh in
  if n > max_n then
    invalid_arg (Printf.sprintf "Sb_check.Checker.check: n = %d exceeds max_n = %d" n max_n);
  let explored = ref 0
  and memo_hits = ref 0
  and terminals = ref 0
  and configs = ref 0 in
  let capped = ref false in
  let found : (property * witness option ref) list =
    [ (Agreement, ref None); (Validity, ref None); (Unforgeability, ref None) ]
  in
  let all_violated () = List.for_all (fun (_, w) -> !w <> None) found in
  let explore (config : Exec.config) =
    incr configs;
    let visited = Hashtbl.create 1024 in
    let rec go prefix =
      if !capped || all_violated () then ()
      else
        let snap = Exec.replay config prefix in
        if Hashtbl.mem visited snap.Exec.digest then incr memo_hits
        else begin
          Hashtbl.add visited snap.Exec.digest ();
          incr explored;
          if !explored >= max_states then capped := true;
          match snap.Exec.status with
          | Exec.Terminal results ->
              incr terminals;
              List.iter
                (fun (property, w) ->
                  if !w = None && violated_at ~default config results property then
                    w :=
                      Some
                        {
                          w_property = property;
                          w_sender = config.Exec.sender;
                          w_value = config.Exec.value;
                          w_faulty = config.Exec.faulty;
                          w_decisions = prefix;
                        })
                found
          | Exec.Mid out ->
              List.iter
                (fun d -> go (prefix @ [ d ]))
                (decisions_for config prefix out)
        end
    in
    go []
  in
  List.iter
    (fun faulty ->
      List.iter
        (fun sender ->
          List.iter
            (fun value ->
              if not (!capped || all_violated ()) then
                explore { Exec.ctx; scheme; sender; value; faulty })
            [ Msg.Bit false; Msg.Bit true ])
        (List.init n Fun.id))
    (Subset.all_up_to n t);
  let finish (_, w) =
    match !w with
    | None -> if !capped then Inconclusive else Holds
    | Some witness ->
        let config =
          {
            Exec.ctx;
            scheme;
            sender = witness.w_sender;
            value = witness.w_value;
            faulty = witness.w_faulty;
          }
        in
        Violated
          {
            witness with
            w_decisions = minimize ~default config witness.w_property witness.w_decisions;
          }
  in
  let verdicts = List.map finish found in
  let violations =
    List.length (List.filter (function Violated _ -> true | _ -> false) verdicts)
  in
  Sb_obs.Metrics.incr ~by:!explored m_states;
  Sb_obs.Metrics.incr ~by:!memo_hits m_memo;
  Sb_obs.Metrics.incr ~by:!terminals m_terminals;
  Sb_obs.Metrics.incr ~by:violations m_violations;
  match verdicts with
  | [ agreement; validity; unforgeability ] ->
      {
        protocol = scheme.Sb_broadcast.Session.scheme_name;
        n;
        t;
        max_states;
        capped = !capped;
        agreement;
        validity;
        unforgeability;
        stats =
          {
            explored = !explored;
            memo_hits = !memo_hits;
            terminals = !terminals;
            configs = !configs;
          };
      }
  | _ -> assert false

(* --- witness rendering ----------------------------------------------- *)

let plan_of_witness w =
  List.concat
    (List.mapi
       (fun round decision ->
         List.concat_map
           (fun (p, action) ->
             match action with
             | Exec.Crash -> [ Sb_fault.Plan.crash ~party:p ~round ]
             | Exec.Omit -> [ Sb_fault.Plan.drop ~src:p ~at:round 1.0 ]
             | Exec.Delay -> [ Sb_fault.Plan.delay ~src:p ~at:round 1 ])
           decision)
       w.w_decisions)

let bit_str = function Msg.Bit b -> (if b then "1" else "0") | m -> Msg.serialize m

let witness_inputs ~n w =
  String.init n (fun i -> if i = w.w_sender then (bit_str w.w_value).[0] else '0')

let pp_witness fmt w =
  let faults =
    match Sb_fault.Plan.to_string (plan_of_witness w) with "" -> "<none>" | s -> s
  in
  Format.fprintf fmt "%s violated: sender %d, value %s, faulty %a, faults %s"
    (property_name w.w_property) w.w_sender (bit_str w.w_value) Subset.pp w.w_faulty
    faults

(* --- report block ----------------------------------------------------- *)

let result_to_json r =
  let open Sb_obs in
  let witness_json w =
    Json.Obj
      [
        ("property", Json.Str (property_name w.w_property));
        ("sender", Json.Int w.w_sender);
        ("value", Json.Str (bit_str w.w_value));
        ("faulty", Json.List (List.map (fun i -> Json.Int i) w.w_faulty));
        ("faults", Json.Str (Sb_fault.Plan.to_string (plan_of_witness w)));
        ("inputs", Json.Str (witness_inputs ~n:r.n w));
      ]
  in
  let counterexamples =
    List.filter_map
      (function Violated w -> Some (witness_json w) | Holds | Inconclusive -> None)
      [ r.agreement; r.validity; r.unforgeability ]
  in
  Json.Obj
    [
      ("protocol", Json.Str r.protocol);
      ("n", Json.Int r.n);
      ("t", Json.Int r.t);
      ("max_states", Json.Int r.max_states);
      ("capped", Json.Bool r.capped);
      ("configs", Json.Int r.stats.configs);
      ("explored", Json.Int r.stats.explored);
      ("memo_hits", Json.Int r.stats.memo_hits);
      ("terminals", Json.Int r.stats.terminals);
      ("agreement", Json.Str (verdict_name r.agreement));
      ("validity", Json.Str (verdict_name r.validity));
      ("unforgeability", Json.Str (verdict_name r.unforgeability));
      ("counterexamples", Json.List counterexamples);
    ]
