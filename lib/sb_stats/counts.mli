(** Counting helpers for empirical distributions over {0,1}^n and
    generic event bookkeeping used by the testers. *)

type table
(** Counts indexed by bit-vector value. *)

val create : int -> table
(** [create n] for vectors of length n (n <= 20). *)

val add : table -> Sb_util.Bitvec.t -> unit
val total : table -> int
val count : table -> Sb_util.Bitvec.t -> int
val count_idx : table -> int -> int

val empirical_tvd : table -> table -> float
(** Plug-in total-variation distance between two empirical
    distributions (both normalised by their own totals). Biased
    upwards for small samples — callers compare against a same-size
    self-distance baseline rather than against zero. *)

val iter : table -> (int -> int -> unit) -> unit
(** [iter t f] calls [f idx count] for every index. *)

val merge_into : into:table -> table -> unit
(** Pointwise-add [src] into [into]: the barrier step of chunked
    parallel sampling. Tables must have the same width. *)

type event
(** Streaming joint/marginal counter for a pair of events (A, B):
    feeds the CR correlation-gap estimator. *)

val event_pair : unit -> event
val record : event -> a:bool -> b:bool -> unit

val event_merge_into : into:event -> event -> unit
(** Sum [src]'s trial/marginal/joint counts into [into]. Counts are
    integers, so merging is exact and order-independent. *)

val gap : event -> Estimate.interval
(** Conservative interval for |P(A∧B) − P(A)P(B)|. *)

val count_a : event -> int
val count_b : event -> int
val count_ab : event -> int
val trials : event -> int
