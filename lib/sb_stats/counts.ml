type table = { counts : int array; mutable total : int }

let create n =
  if n < 0 || n > 20 then invalid_arg "Counts.create";
  { counts = Array.make (1 lsl n) 0; total = 0 }

let add t v =
  t.counts.(Sb_util.Bitvec.to_int v) <- t.counts.(Sb_util.Bitvec.to_int v) + 1;
  t.total <- t.total + 1

let total t = t.total
let count t v = t.counts.(Sb_util.Bitvec.to_int v)
let count_idx t i = t.counts.(i)

let merge_into ~into src =
  if Array.length into.counts <> Array.length src.counts then invalid_arg "Counts.merge_into";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total

let empirical_tvd a b =
  if Array.length a.counts <> Array.length b.counts then invalid_arg "Counts.empirical_tvd";
  if a.total = 0 || b.total = 0 then invalid_arg "Counts.empirical_tvd: empty table";
  let na = float_of_int a.total and nb = float_of_int b.total in
  let acc = ref 0.0 in
  Array.iteri
    (fun i ca ->
      acc := !acc +. Float.abs ((float_of_int ca /. na) -. (float_of_int b.counts.(i) /. nb)))
    a.counts;
  !acc /. 2.0

let iter t f = Array.iteri (fun i c -> f i c) t.counts

type event = { mutable n : int; mutable na : int; mutable nb : int; mutable nab : int }

let event_pair () = { n = 0; na = 0; nb = 0; nab = 0 }

let record e ~a ~b =
  e.n <- e.n + 1;
  if a then e.na <- e.na + 1;
  if b then e.nb <- e.nb + 1;
  if a && b then e.nab <- e.nab + 1

let event_merge_into ~into src =
  into.n <- into.n + src.n;
  into.na <- into.na + src.na;
  into.nb <- into.nb + src.nb;
  into.nab <- into.nab + src.nab

let gap e =
  if e.n = 0 then invalid_arg "Counts.gap: no trials";
  let joint = Estimate.wilson ~successes:e.nab e.n in
  let left = Estimate.wilson ~successes:e.na e.n in
  let right = Estimate.wilson ~successes:e.nb e.n in
  Estimate.correlation_gap ~joint ~left ~right

let count_a e = e.na
let count_b e = e.nb
let count_ab e = e.nab
let trials e = e.n
