(** Pearson chi-square homogeneity test for binomial groups.

    Used as a secondary, global statistic by the G tester: are the
    per-bucket conditional one-probabilities consistent with one
    pooled probability? Unlike the per-bucket interval checks this
    aggregates evidence across all buckets into a single statistic
    with a known null distribution. *)

type result = {
  statistic : float;  (** Σ (observed − expected)² / expected *)
  dof : int;  (** groups − 1 *)
  p_value : float;  (** right tail of the chi-square distribution *)
}

val homogeneity : (int * int) list -> result
(** [homogeneity groups] where each group is (successes, trials).
    Requires at least 2 groups, each with trials > 0. Groups whose
    pooled expected count would be < 5 should be merged or dropped by
    the caller (standard validity rule). *)

val survival : float -> int -> float
(** [survival x k]: P(Χ²_k ≥ x), via the regularised upper incomplete
    gamma function (series/continued-fraction evaluation, good to ~1e-10
    for the ranges used here). *)
