type result = { statistic : float; dof : int; p_value : float }

(* Regularised incomplete gamma, after Numerical Recipes: series
   expansion for x < a + 1, continued fraction otherwise. *)
let gammln x =
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091; -1.231739572450155;
       0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. Float.log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. Float.log (2.5066282746310005 *. !ser /. x)

let gser a x =
  (* lower regularised gamma P(a,x) by series *)
  let gln = gammln a in
  if x <= 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    (try
       for _ = 1 to 200 do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. 3e-12 then raise Exit
       done
     with Exit -> ());
    !sum *. Float.exp (-.x +. (a *. Float.log x) -. gln)
  end

let gcf a x =
  (* upper regularised gamma Q(a,x) by continued fraction *)
  let gln = gammln a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 200 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < fpmin then d := fpmin;
       c := !b +. (an /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 3e-12 then raise Exit
     done
   with Exit -> ());
  !h *. Float.exp (-.x +. (a *. Float.log x) -. gln)

let survival x k =
  if x <= 0.0 then 1.0
  else begin
    let a = float_of_int k /. 2.0 and hx = x /. 2.0 in
    if hx < a +. 1.0 then 1.0 -. gser a hx else gcf a hx
  end

let homogeneity groups =
  let g = List.length groups in
  if g < 2 then invalid_arg "Chi2.homogeneity: need at least 2 groups";
  List.iter
    (fun (s, t) -> if t <= 0 || s < 0 || s > t then invalid_arg "Chi2.homogeneity: bad group")
    groups;
  let total_s = List.fold_left (fun acc (s, _) -> acc + s) 0 groups in
  let total_t = List.fold_left (fun acc (_, t) -> acc + t) 0 groups in
  let p = float_of_int total_s /. float_of_int total_t in
  let statistic =
    if p <= 0.0 || p >= 1.0 then 0.0
    else
      List.fold_left
        (fun acc (s, t) ->
          let t = float_of_int t and s = float_of_int s in
          let e1 = t *. p and e0 = t *. (1.0 -. p) in
          acc +. (((s -. e1) ** 2.0) /. e1) +. (((t -. s -. e0) ** 2.0) /. e0))
        0.0 groups
  in
  let dof = g - 1 in
  { statistic; dof; p_value = survival statistic dof }
