type t = Pass | Fail | Inconclusive

let of_gap ?(pass_below = 0.08) ?(fail_above = 0.15) (i : Estimate.interval) =
  if i.Estimate.hi < pass_below then Pass
  else if i.Estimate.lo > fail_above then Fail
  else Inconclusive

let all_pass verdicts =
  if List.exists (fun v -> v = Fail) verdicts then Fail
  else if List.for_all (fun v -> v = Pass) verdicts then Pass
  else Inconclusive

let any_fail = all_pass

let to_string = function Pass -> "PASS" | Fail -> "FAIL" | Inconclusive -> "INCONCLUSIVE"

let to_polar = function
  | Pass -> `Pass
  | Fail -> `Fail
  | Inconclusive -> `Inconclusive

let equal a b = a = b
let pp fmt v = Format.pp_print_string fmt (to_string v)
