(** Proportion estimation with confidence intervals.

    Every independence tester in [core] reduces to comparing estimated
    probabilities of events over repeated protocol executions. The
    intervals here are Wilson score intervals (well-behaved at extreme
    proportions, unlike the normal approximation), at 99% confidence by
    default (z = 2.576). *)

type interval = { point : float; lo : float; hi : float; trials : int }

val wilson : ?z:float -> successes:int -> int -> interval
(** [wilson ~successes trials]. Requires trials > 0 and
    0 <= successes <= trials. *)

val interval_abs_diff : interval -> interval -> interval
(** Conservative interval for |p − q| given intervals for p and q:
    point = |p̂ − q̂|, bounds from interval arithmetic (clamped at 0). *)

val correlation_gap :
  joint:interval -> left:interval -> right:interval -> interval
(** Conservative interval for |P(A∧B) − P(A)·P(B)| — the quantity in
    the CR-independence definition — from intervals for the three
    probabilities. *)

val pp : Format.formatter -> interval -> unit
