(** Three-way statistical verdicts.

    A tester estimates a gap that the definition requires to be
    negligible. With finite samples we distinguish:

    - [Pass] — the whole confidence interval sits below [pass_below]:
      the gap is statistically indistinguishable from negligible;
    - [Fail] — the whole interval sits above [fail_above]: the gap is
      bounded away from zero with high confidence;
    - [Inconclusive] — anything else (typically: not enough samples).

    Keeping Pass and "failed to reject" apart matters because the
    paper's separations predict *constant* gaps (1/4 and up), far above
    any sampling noise at the Ns used. *)

type t = Pass | Fail | Inconclusive

val of_gap : ?pass_below:float -> ?fail_above:float -> Estimate.interval -> t
(** Defaults: [pass_below] = 0.08, [fail_above] = 0.15 — far below the
    constant gaps (1/4 and up) the paper's separations predict, and
    comfortably above the estimator noise at the default sample
    budgets. *)

val all_pass : t list -> t
(** [Pass] iff every element passes; [Fail] if any fails;
    [Inconclusive] otherwise. *)

val any_fail : t list -> t
(** Dual view for falsification experiments: [Fail] if any element
    fails (a witness was found), [Pass] if all pass, else
    [Inconclusive]. Identical to {!all_pass}; provided for readable
    call sites. *)

val to_string : t -> string
val to_polar : t -> [ `Pass | `Fail | `Inconclusive ]
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
