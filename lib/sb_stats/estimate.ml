type interval = { point : float; lo : float; hi : float; trials : int }

let wilson ?(z = 2.576) ~successes trials =
  if trials <= 0 then invalid_arg "Estimate.wilson: no trials";
  if successes < 0 || successes > trials then invalid_arg "Estimate.wilson: bad successes";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z *. Float.sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom in
  { point = p; lo = Float.max 0.0 (centre -. half); hi = Float.min 1.0 (centre +. half); trials }

let interval_abs_diff a b =
  let point = Float.abs (a.point -. b.point) in
  (* p - q ranges over [a.lo - b.hi, a.hi - b.lo]; |p - q| over: *)
  let dlo = a.lo -. b.hi and dhi = a.hi -. b.lo in
  let lo = if dlo <= 0.0 && dhi >= 0.0 then 0.0 else Float.min (Float.abs dlo) (Float.abs dhi) in
  let hi = Float.max (Float.abs dlo) (Float.abs dhi) in
  { point; lo; hi; trials = min a.trials b.trials }

let correlation_gap ~joint ~left ~right =
  (* Product interval for P(A)·P(B): all bounds non-negative, so the
     product of bounds bounds the product. *)
  let prod =
    {
      point = left.point *. right.point;
      lo = left.lo *. right.lo;
      hi = left.hi *. right.hi;
      trials = min left.trials right.trials;
    }
  in
  interval_abs_diff joint prod

let pp fmt i = Format.fprintf fmt "%.4f [%.4f, %.4f] (n=%d)" i.point i.lo i.hi i.trials
