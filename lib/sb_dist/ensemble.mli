(** Probability ensembles: distributions indexed by the security
    parameter k (§2 of the paper).

    The paper's classes Ψ_C and Ψ_L are properties of ensembles — a
    gap that shrinks negligibly in k is fine, a constant gap is not.
    An [Ensemble.t] is therefore a function from k to a concrete
    {!Dist.t}, plus a name for reporting. Most members of the battery
    are constant in k; the interesting strictness witnesses are not. *)

type t = { name : string; n : int; at : int -> Dist.t }

val make : name:string -> n:int -> (int -> Dist.t) -> t

val constant : name:string -> Dist.t -> t
(** The same distribution at every k. *)

val local_gap_at : t -> int -> float
val independence_gap_at : t -> int -> float

type decay = Zero | Vanishing | Persistent
(** Empirical classification of a gap sequence over increasing k:
    exactly zero everywhere, decreasing towards zero (negligible-like),
    or bounded away from zero. *)

val classify_decay : (int -> float) -> ks:int list -> decay
(** Heuristic: [Zero] if every sampled gap is below 1e-9; [Vanishing]
    if the gap at the largest k is below max(1e-3, half the gap at the
    smallest k) and the sequence is non-increasing within 10%;
    [Persistent] otherwise. The battery's gaps are either exactly 0,
    Θ(2^-k), or constants ≥ 0.1, so the heuristic has wide margins. *)

val decay_to_string : decay -> string

val default_ks : int list
(** k ∈ {4, 6, 8, 12, 16}: the grid used by the experiments. *)
