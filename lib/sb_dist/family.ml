open Sb_util

type membership = { independent : bool; psi_l : bool; psi_c : bool }

type entry = { ensemble : Ensemble.t; expected : membership; note : string }

let product_membership = { independent = true; psi_l = true; psi_c = true }
let correlated_membership = { independent = false; psi_l = false; psi_c = false }

let uniform n =
  {
    ensemble = Ensemble.constant ~name:"uniform" (Dist.uniform n);
    expected = product_membership;
    note = "the distribution of [8,12]'s original definitions";
  }

let singleton v =
  {
    ensemble =
      Ensemble.constant ~name:(Printf.sprintf "singleton(%s)" (Bitvec.to_string v))
        (Dist.singleton v);
    expected = product_membership;
    note = "point mass; trivial for CR (Prop. 6.3)";
  }

let biased_product p n =
  {
    ensemble =
      Ensemble.constant ~name:(Printf.sprintf "bernoulli(%.2f)^n" p) (Dist.product p n);
    expected = product_membership;
    note = "independent but non-uniform";
  }

let mixed_bias_product n =
  let p = Array.init n (fun i -> 0.2 +. (0.6 *. float_of_int i /. float_of_int (max 1 (n - 1)))) in
  {
    ensemble = Ensemble.constant ~name:"mixed-bias product" (Dist.bernoulli_product p);
    expected = product_membership;
    note = "independent, per-coordinate biases";
  }

let almost_uniform n =
  let at k =
    let eps = Float.pow 2.0 (-.float_of_int k) in
    Dist.mixture [ (1.0 -. eps, Dist.uniform n); (eps, Dist.xor_parity ~even:true n) ]
  in
  {
    ensemble = Ensemble.make ~name:"almost-uniform (2^-k parity tilt)" ~n at;
    expected = { independent = false; psi_l = true; psi_c = true };
    note = "negligibly far from uniform: in psi_L without being a product";
  }

let rare_leak n =
  (* Coordinates are Bernoulli(2^-k), so the all-ones event is far
     rarer than the 2^-k leak that forces it; conditioning on seeing
     all-ones on any subset then lands almost surely inside the leak,
     where the rest of the vector is deterministically all-ones too:
     the conditional gap of the psi_L definition stays near 1 while
     the TVD to the underlying product stays 2^-k. *)
  let at k =
    let eps = Float.pow 2.0 (-.float_of_int k) in
    Dist.mixture
      [
        (1.0 -. eps, Dist.product eps n);
        (eps, Dist.singleton (Bitvec.init n (fun _ -> true)));
      ]
  in
  {
    ensemble = Ensemble.make ~name:"rare-leak (2^-k all-ones tail)" ~n at;
    expected = { independent = false; psi_l = false; psi_c = true };
    note = "in psi_C, NOT in psi_L: conditional gaps survive on the rare tail";
  }

let xor_parity n =
  {
    ensemble = Ensemble.constant ~name:"xor-parity" (Dist.xor_parity ~even:true n);
    expected = correlated_membership;
    note = "sum of inputs fixed: outside every achievable class but D(Sb)";
  }

let copy_pair n =
  {
    ensemble = Ensemble.constant ~name:"copy-pair" (Dist.copy_pair n);
    expected = correlated_membership;
    note = "x0 = x1 always (two identical voters)";
  }

let noisy_copy n ~flip =
  {
    ensemble =
      Ensemble.constant ~name:(Printf.sprintf "noisy-copy(flip=%.2f)" flip)
        (Dist.noisy_copy n ~flip);
    expected = (if Float.abs (flip -. 0.5) < 1e-9 then product_membership else correlated_membership);
    note = "correlated pair with noise";
  }

let half_singleton n =
  let v = Bitvec.init n (fun i -> i mod 2 = 0) in
  singleton v

let markov n ~flip =
  {
    ensemble =
      Ensemble.constant ~name:(Printf.sprintf "markov(flip=%.2f)" flip) (Dist.markov n ~flip);
    expected =
      (if Float.abs (flip -. 0.5) < 1e-9 then product_membership else correlated_membership);
    note = "neighbourhood-influenced votes";
  }

let one_hot n =
  {
    ensemble = Ensemble.constant ~name:"one-hot" (Dist.one_hot n);
    expected = correlated_membership;
    note = "exactly one 1: maximal negative correlation";
  }

let all_equal n =
  {
    ensemble = Ensemble.constant ~name:"all-equal" (Dist.all_equal n);
    expected = correlated_membership;
    note = "fully polarised electorate (0...0 or 1...1)";
  }

let battery n =
  assert (n >= 3);
  [
    uniform n;
    singleton (Bitvec.zero n);
    half_singleton n;
    biased_product 0.25 n;
    mixed_bias_product n;
    almost_uniform n;
    rare_leak n;
    xor_parity n;
    copy_pair n;
    noisy_copy n ~flip:0.1;
    noisy_copy n ~flip:0.5;
    markov n ~flip:0.2;
    markov n ~flip:0.5;
    one_hot n;
    all_equal n;
  ]

let pp_membership fmt m =
  Format.fprintf fmt "independent=%b psi_L=%b psi_C=%b" m.independent m.psi_l m.psi_c
