type t = { name : string; n : int; at : int -> Dist.t }

let make ~name ~n at =
  assert (n >= 1);
  { name; n; at }

let constant ~name d = { name; n = Dist.n d; at = (fun _ -> d) }
let local_gap_at e k = Dist.local_gap (e.at k)
let independence_gap_at e k = Dist.independence_gap (e.at k)

type decay = Zero | Vanishing | Persistent

let classify_decay gap ~ks =
  let gaps = List.map gap ks in
  if List.for_all (fun g -> g < 1e-9) gaps then Zero
  else
    let first = List.hd gaps in
    let last = List.nth gaps (List.length gaps - 1) in
    let non_increasing =
      let rec go = function
        | a :: (b :: _ as rest) -> b <= (a *. 1.1) +. 1e-12 && go rest
        | _ -> true
      in
      go gaps
    in
    if non_increasing && last < Float.max 1e-3 (first /. 2.0) then Vanishing else Persistent

let decay_to_string = function
  | Zero -> "zero"
  | Vanishing -> "vanishing"
  | Persistent -> "persistent"

let default_ks = [ 4; 6; 8; 12; 16 ]
