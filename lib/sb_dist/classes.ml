type verdict = {
  independent : bool;
  psi_l : bool;
  psi_c : bool;
  local_gaps : (int * float) list;
  indep_gaps : (int * float) list;
}

let classify ?(ks = Ensemble.default_ks) (e : Ensemble.t) =
  let local_gaps = List.map (fun k -> (k, Ensemble.local_gap_at e k)) ks in
  let indep_gaps = List.map (fun k -> (k, Ensemble.independence_gap_at e k)) ks in
  let local_decay = Ensemble.classify_decay (fun k -> Ensemble.local_gap_at e k) ~ks in
  let indep_decay = Ensemble.classify_decay (fun k -> Ensemble.independence_gap_at e k) ~ks in
  let vanishes = function Ensemble.Zero | Ensemble.Vanishing -> true | Ensemble.Persistent -> false in
  {
    independent = indep_decay = Ensemble.Zero;
    psi_l = vanishes local_decay;
    psi_c = vanishes indep_decay;
    local_gaps;
    indep_gaps;
  }

let check_hierarchy v =
  (* independent => psi_l => psi_c *)
  ((not v.independent) || v.psi_l) && ((not v.psi_l) || v.psi_c)

let pp fmt v =
  Format.fprintf fmt "independent=%b psi_L=%b psi_C=%b" v.independent v.psi_l v.psi_c
