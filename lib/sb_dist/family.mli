(** The ensemble battery used throughout the experiments.

    Each entry is an input-distribution ensemble over {0,1}^n together
    with its analytically known class membership, so experiment E1 can
    compare the executable classifier against ground truth, and the
    tester experiments can pick distributions from known classes. *)

type membership = {
  independent : bool;  (** exactly a product distribution at every k *)
  psi_l : bool;  (** locally independent ensemble: D(G) of the paper *)
  psi_c : bool;  (** statistically close to independent: D(CR) *)
}

type entry = { ensemble : Ensemble.t; expected : membership; note : string }

val uniform : int -> entry
val singleton : Sb_util.Bitvec.t -> entry
val biased_product : float -> int -> entry
val mixed_bias_product : int -> entry
(** Independent but with a different bias per coordinate. *)

val almost_uniform : int -> entry
(** Uniform with a 2^-k mass shift towards even parity: not a product
    at any k, but the shift is negligible, so it is in Ψ_L (and Ψ_C) —
    a witness that Ψ_L is strictly larger than exact products. *)

val rare_leak : int -> entry
(** Product of fair coins except that with probability 2^-k the vector
    is forced to all-ones. Statistically within 2^-k of uniform, hence
    in Ψ_C — but conditioned on the (rare) all-ones tail the
    coordinates are maximally dependent, so the conditional gaps of
    the Ψ_L definition stay constant: in Ψ_C, not in Ψ_L. The
    executable witness that D(G) ⊊ D(CR) (Claim 5.6). *)

val xor_parity : int -> entry
val copy_pair : int -> entry
val noisy_copy : int -> flip:float -> entry
val half_singleton : int -> entry
(** A point mass on a non-uniform string; like every singleton it is
    (trivially) independent. *)

val markov : int -> flip:float -> entry
(** Two-state Markov chain along the coordinates; correlated unless
    flip = 0.5. *)

val one_hot : int -> entry
val all_equal : int -> entry

val battery : int -> entry list
(** The full battery at a given n (n >= 3). *)

val pp_membership : Format.formatter -> membership -> unit
