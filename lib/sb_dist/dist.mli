(** Exact probability distributions over {0,1}^n.

    The announced-value spaces in this reproduction are small (n ≤ ~16
    parties), so distributions are stored as full probability mass
    arrays of length 2^n, indexed by {!Sb_util.Bitvec.to_int}. That
    makes every quantity the paper's definitions mention — marginals,
    conditionals, projections, statistical distance — exactly
    computable, with sampling reserved for protocol executions. *)

type t

val n : t -> int
(** Number of coordinates (parties). *)

val of_pmf : int -> float array -> t
(** [of_pmf n pmf] with [Array.length pmf = 2^n]; validates
    non-negativity and normalises to sum 1. Raises [Invalid_argument]
    on bad input. *)

val pmf : t -> float array
(** A copy of the mass array. *)

val prob : t -> Sb_util.Bitvec.t -> float
val prob_idx : t -> int -> float

val sample : t -> Sb_util.Rng.t -> Sb_util.Bitvec.t
(** Inverse-CDF sampling on a precomputed cumulative table. *)

val support : t -> Sb_util.Bitvec.t list
(** Vectors of strictly positive mass. *)

(* Constructors *)

val uniform : int -> t
val singleton : Sb_util.Bitvec.t -> t

val bernoulli_product : float array -> t
(** [bernoulli_product p] has independent coordinates with
    [Pr(x_i = 1) = p.(i)]. *)

val product : float -> int -> t
(** [product p n]: iid Bernoulli(p) coordinates. *)

val mixture : (float * t) list -> t
(** Convex combination; weights are normalised. All components must
    share the same [n]. *)

val xor_parity : ?even:bool -> int -> t
(** Uniform over the 2^(n-1) vectors of even (resp. odd) parity — the
    canonical strongly correlated distribution: announced values drawn
    from it cannot be independent, so no protocol achieves CR or G
    independence under it (Lemmas 5.2 and 5.4). *)

val copy_pair : int -> t
(** Uniform over vectors with x_0 = x_1 (the rest free): models two
    voters known to vote identically. *)

val noisy_copy : int -> flip:float -> t
(** x_0 uniform; x_1 = x_0 flipped with probability [flip]; the rest
    iid uniform. At [flip = 0.5] this is uniform; below, correlated. *)

val markov : int -> flip:float -> t
(** A two-state Markov chain along the coordinates: x_0 uniform and
    x_{i+1} = x_i flipped with probability [flip]. Models votes with
    neighbourhood influence; a product only at [flip = 0.5]. *)

val one_hot : int -> t
(** Uniform over the n weight-one vectors (exactly one party holds 1):
    maximal negative correlation, far outside every achievable class. *)

val all_equal : int -> t
(** Uniform over \{0…0, 1…1\}: a fully polarised electorate. *)

val conditioned : t -> on:(Sb_util.Bitvec.t -> bool) -> t
(** Restriction + renormalisation. Raises [Invalid_argument] if the
    event has zero mass. *)

(* Queries *)

val marginal : t -> int -> float
(** [Pr(x_i = 1)]. *)

val marginals : t -> float array
val product_of_marginals : t -> t

val proj_pmf : t -> int list -> float array
(** Mass function of the projection x_S onto the given (sorted) index
    set; entry j corresponds to assigning bit l of j to the l-th listed
    index. *)

val cond_proj_pmf : t -> of_:int list -> given:int list -> Sb_util.Bitvec.t -> float array option
(** [cond_proj_pmf d ~of_:s ~given:b w] is the conditional pmf of x_S
    given x_B = (w projected onto B), or [None] if the conditioning
    event has zero mass. [w] supplies values on the coordinates in
    [given] (its other coordinates are ignored). *)

val tvd : t -> t -> float
(** Total variation distance (half L1). *)

val local_gap : t -> float
(** The paper's local-independence deficiency (§5.2): the maximum over
    nonempty proper subsets B, strings u, and strings w of positive
    conditional mass, of |Pr(x_B = u | x_B̄ = w) − Pr(x_B = u)|. Zero
    exactly on product distributions. *)

val independence_gap : t -> float
(** TVD to the product of this distribution's own marginals — an upper
    proxy for the distance to the nearest independent distribution
    (within a factor n+1 of it), used for Ψ_C classification. *)

val is_product : ?tol:float -> t -> bool
val equal : ?tol:float -> t -> t -> bool
val entropy_bits : t -> float
val pp : Format.formatter -> t -> unit
