open Sb_util

type t = {
  n : int;
  mass : float array; (* normalised, length 2^n *)
  cdf : float array; (* cumulative, for sampling *)
}

let n d = d.n

let of_pmf n raw =
  if n < 0 || n > 20 then invalid_arg "Dist.of_pmf: n out of range";
  let size = 1 lsl n in
  if Array.length raw <> size then invalid_arg "Dist.of_pmf: wrong pmf length";
  Array.iter (fun p -> if p < 0.0 || Float.is_nan p then invalid_arg "Dist.of_pmf: bad mass") raw;
  let total = Array.fold_left ( +. ) 0.0 raw in
  if total <= 0.0 then invalid_arg "Dist.of_pmf: zero total mass";
  let mass = Array.map (fun p -> p /. total) raw in
  let cdf = Array.make size 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    mass;
  cdf.(size - 1) <- 1.0;
  { n; mass; cdf }

let pmf d = Array.copy d.mass
let prob_idx d i = d.mass.(i)
let prob d v = d.mass.(Bitvec.to_int v)

let sample d rng =
  let u = Rng.float rng in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length d.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  Bitvec.of_int d.n !lo

let support d =
  List.filter_map
    (fun i -> if d.mass.(i) > 0.0 then Some (Bitvec.of_int d.n i) else None)
    (List.init (Array.length d.mass) Fun.id)

let uniform n = of_pmf n (Array.make (1 lsl n) 1.0)

let singleton v =
  let n = Bitvec.length v in
  let raw = Array.make (1 lsl n) 0.0 in
  raw.(Bitvec.to_int v) <- 1.0;
  of_pmf n raw

let bernoulli_product p =
  let n = Array.length p in
  Array.iter (fun pi -> if pi < 0.0 || pi > 1.0 then invalid_arg "Dist.bernoulli_product") p;
  let raw =
    Array.init (1 lsl n) (fun idx ->
        let m = ref 1.0 in
        for i = 0 to n - 1 do
          let bit = (idx lsr i) land 1 = 1 in
          m := !m *. (if bit then p.(i) else 1.0 -. p.(i))
        done;
        !m)
  in
  of_pmf n raw

let product p n = bernoulli_product (Array.make n p)

let mixture components =
  match components with
  | [] -> invalid_arg "Dist.mixture: empty"
  | (_, first) :: _ ->
      let dim = first.n in
      List.iter
        (fun (w, d) ->
          if d.n <> dim then invalid_arg "Dist.mixture: dimension mismatch";
          if w < 0.0 then invalid_arg "Dist.mixture: negative weight")
        components;
      let raw = Array.make (1 lsl dim) 0.0 in
      List.iter
        (fun (w, d) -> Array.iteri (fun i p -> raw.(i) <- raw.(i) +. (w *. p)) d.mass)
        components;
      of_pmf dim raw

let xor_parity ?(even = true) n =
  if n < 1 then invalid_arg "Dist.xor_parity";
  let raw =
    Array.init (1 lsl n) (fun idx ->
        let parity = Bitvec.parity (Bitvec.of_int n idx) in
        if parity <> even then 1.0 else 0.0)
  in
  of_pmf n raw

let copy_pair n =
  if n < 2 then invalid_arg "Dist.copy_pair";
  let raw =
    Array.init (1 lsl n) (fun idx -> if (idx land 1) = (idx lsr 1) land 1 then 1.0 else 0.0)
  in
  of_pmf n raw

let noisy_copy n ~flip =
  if n < 2 then invalid_arg "Dist.noisy_copy";
  if flip < 0.0 || flip > 1.0 then invalid_arg "Dist.noisy_copy: flip";
  let raw =
    Array.init (1 lsl n) (fun idx ->
        let b0 = idx land 1 = 1 and b1 = (idx lsr 1) land 1 = 1 in
        let pair = if b0 = b1 then 1.0 -. flip else flip in
        pair /. 2.0 (* x_0 uniform *) /. float_of_int (1 lsl (n - 2)))
  in
  of_pmf n raw

let markov n ~flip =
  if n < 1 then invalid_arg "Dist.markov";
  if flip < 0.0 || flip > 1.0 then invalid_arg "Dist.markov: flip";
  let raw =
    Array.init (1 lsl n) (fun idx ->
        let p = ref 0.5 in
        for i = 0 to n - 2 do
          let same = (idx lsr i) land 1 = (idx lsr (i + 1)) land 1 in
          p := !p *. (if same then 1.0 -. flip else flip)
        done;
        !p)
  in
  of_pmf n raw

let one_hot n =
  if n < 2 then invalid_arg "Dist.one_hot";
  let raw = Array.make (1 lsl n) 0.0 in
  for i = 0 to n - 1 do
    raw.(1 lsl i) <- 1.0
  done;
  of_pmf n raw

let all_equal n =
  if n < 1 then invalid_arg "Dist.all_equal";
  let raw = Array.make (1 lsl n) 0.0 in
  raw.(0) <- 1.0;
  raw.((1 lsl n) - 1) <- 1.0;
  of_pmf n raw

let conditioned d ~on =
  let raw =
    Array.mapi (fun i p -> if on (Bitvec.of_int d.n i) then p else 0.0) d.mass
  in
  if Array.fold_left ( +. ) 0.0 raw <= 0.0 then
    invalid_arg "Dist.conditioned: zero-mass event";
  of_pmf d.n raw

let marginal d i =
  let acc = ref 0.0 in
  Array.iteri (fun idx p -> if (idx lsr i) land 1 = 1 then acc := !acc +. p) d.mass;
  !acc

let marginals d = Array.init d.n (marginal d)
let product_of_marginals d = bernoulli_product (marginals d)

let proj_pmf d s =
  let m = List.length s in
  let out = Array.make (1 lsl m) 0.0 in
  Array.iteri
    (fun idx p ->
      let key = ref 0 in
      List.iteri (fun pos i -> if (idx lsr i) land 1 = 1 then key := !key lor (1 lsl pos)) s;
      out.(!key) <- out.(!key) +. p)
    d.mass;
  out

let cond_proj_pmf d ~of_ ~given w =
  let matches idx =
    List.for_all (fun i -> ((idx lsr i) land 1 = 1) = Bitvec.get w i) given
  in
  let total = ref 0.0 in
  let m = List.length of_ in
  let out = Array.make (1 lsl m) 0.0 in
  Array.iteri
    (fun idx p ->
      if matches idx then begin
        total := !total +. p;
        let key = ref 0 in
        List.iteri
          (fun pos i -> if (idx lsr i) land 1 = 1 then key := !key lor (1 lsl pos))
          of_;
        out.(!key) <- out.(!key) +. p
      end)
    d.mass;
  if !total <= 0.0 then None else Some (Array.map (fun p -> p /. !total) out)

let tvd a b =
  if a.n <> b.n then invalid_arg "Dist.tvd: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. b.mass.(i))) a.mass;
  !acc /. 2.0

let local_gap d =
  (* max over nonempty proper B, u, and positive-mass w of
     |Pr(x_B = u | x_B̄ = w) - Pr(x_B = u)|. *)
  let worst = ref 0.0 in
  List.iter
    (fun b ->
      let comp = Subset.complement d.n b in
      let uncond = proj_pmf d b in
      List.iter
        (fun w ->
          match cond_proj_pmf d ~of_:b ~given:comp w with
          | None -> ()
          | Some cond ->
              Array.iteri
                (fun u pu ->
                  let gap = Float.abs (pu -. uncond.(u)) in
                  if gap > !worst then worst := gap)
                cond)
        (Bitvec.all d.n))
    (Subset.all_nonempty_proper d.n);
  !worst

let independence_gap d = tvd d (product_of_marginals d)
let is_product ?(tol = 1e-9) d = independence_gap d <= tol

let equal ?(tol = 1e-9) a b = a.n = b.n && tvd a b <= tol

let entropy_bits d =
  let acc = ref 0.0 in
  Array.iter (fun p -> if p > 0.0 then acc := !acc -. (p *. (Float.log p /. Float.log 2.0))) d.mass;
  !acc

let pp fmt d =
  Format.fprintf fmt "dist(n=%d)" d.n;
  Array.iteri
    (fun i p ->
      if p > 1e-12 then
        Format.fprintf fmt "@ %s:%.4f" (Bitvec.to_string (Bitvec.of_int d.n i)) p)
    d.mass
