(** Executable membership tests for the paper's distribution classes
    (Section 5):

    - Φ_n — independent ensembles (exact products at every k);
    - Ψ_C — ensembles computationally (here: statistically, which on a
      constant-size domain coincides with computationally) close to
      some independent ensemble: the achievable class D(CR);
    - Ψ_L — locally independent ensembles: the achievable class D(G).

    A fixed distribution on a constant-size domain is classified by
    evaluating its gaps on a grid of security parameters and testing
    whether they vanish. Distance to the *nearest* product is upper-
    bounded by the distance to the product of the ensemble's own
    marginals (within a factor n+1), which is what
    {!Dist.independence_gap} computes; the battery's gaps are either
    exactly 0, Θ(2^-k) or constants, so the factor is immaterial. *)

type verdict = {
  independent : bool;
  psi_l : bool;
  psi_c : bool;
  local_gaps : (int * float) list;  (** (k, Ψ_L gap) on the grid *)
  indep_gaps : (int * float) list;  (** (k, Ψ_C gap) on the grid *)
}

val classify : ?ks:int list -> Ensemble.t -> verdict

val check_hierarchy : verdict -> bool
(** Φ ⊆ Ψ_L ⊆ Ψ_C must hold for any verdict; sanity guard used by
    tests and by experiment E1. *)

val pp : Format.formatter -> verdict -> unit
