(** An honest party is a stateful step machine.

    The network calls [step] once per round with the envelopes delivered
    this round (sent in the previous round) and sends out whatever the
    party returns. After the final round's [step] (whose return value is
    discarded — there is no round left to deliver it in), [output] is
    read once.

    Parties are ordinary closures over mutable state; constructors live
    with each protocol. *)

type t = {
  step : round:int -> inbox:Envelope.t list -> Envelope.t list;
  output : unit -> Msg.t;
}

val silent : output:Msg.t -> t
(** A party that never sends and outputs a constant; useful in tests. *)
