type t = {
  step : round:int -> inbox:Envelope.t list -> Envelope.t list;
  output : unit -> Msg.t;
}

let silent ~output = { step = (fun ~round:_ ~inbox:_ -> []); output = (fun () -> output) }
