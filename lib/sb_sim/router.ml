(* Growable (seq, envelope) buffer. Two parallel arrays rather than an
   array of records: pushing a direct envelope then costs no
   allocation once capacity is reached, and the merge loops touch only
   the int array until they emit. *)
type buf = {
  mutable seqs : int array;
  mutable envs : Envelope.t array;
  mutable len : int;
}

let dummy = Envelope.make ~src:0 ~dst:0 Msg.Unit

let buf_create () = { seqs = [||]; envs = [||]; len = 0 }

let buf_create_cap cap =
  if cap = 0 then buf_create ()
  else { seqs = Array.make cap 0; envs = Array.make cap dummy; len = 0 }

let buf_push b seq env =
  let cap = Array.length b.seqs in
  if b.len = cap then begin
    let cap' = max 8 (2 * cap) in
    let seqs' = Array.make cap' 0 and envs' = Array.make cap' dummy in
    Array.blit b.seqs 0 seqs' 0 b.len;
    Array.blit b.envs 0 envs' 0 b.len;
    b.seqs <- seqs';
    b.envs <- envs'
  end;
  b.seqs.(b.len) <- seq;
  b.envs.(b.len) <- env;
  b.len <- b.len + 1

let buf_clear b = b.len <- 0

(* [bcast_list] memoizes the broadcast buffer as a list. Broadcast-
   channel protocols leave most direct buffers empty, so every party's
   inbox for a round is the *same* immutable list — build it once and
   share the spine instead of re-materialising it per party. *)
type t = {
  direct : buf array;
  bcast : buf;
  mutable next_seq : int;
  mutable bcast_list : Envelope.t list option;
}

let create ?(cap = 0) n =
  {
    direct = Array.init n (fun _ -> buf_create_cap cap);
    bcast = buf_create_cap cap;
    next_seq = 0;
    bcast_list = None;
  }

let clear t =
  Array.iter buf_clear t.direct;
  buf_clear t.bcast;
  t.next_seq <- 0;
  t.bcast_list <- None

let route t (e : Envelope.t) =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match e.Envelope.dst with
  | Envelope.Party i -> buf_push t.direct.(i) seq e
  | Envelope.All ->
      t.bcast_list <- None;
      buf_push t.bcast seq e
  | Envelope.Func -> invalid_arg "Router.route: functionality-bound envelope"

let route_all t envs = List.iter (route t) envs

let bcast_as_list t =
  match t.bcast_list with
  | Some l -> l
  | None ->
      let b = t.bcast in
      let rec build bi acc = if bi < 0 then acc else build (bi - 1) (b.envs.(bi) :: acc) in
      let l = build (b.len - 1) [] in
      t.bcast_list <- Some l;
      l

(* Backward two-way merge by sequence stamp: build the list largest
   stamp first, so no List.rev. Stamps are globally unique, so strict
   comparison is enough. When the direct buffer is empty the merge
   degenerates to the shared broadcast list. *)
let inbox t i =
  let d = t.direct.(i) and b = t.bcast in
  if d.len = 0 then bcast_as_list t
  else
    let rec go di bi acc =
      if di < 0 then
        let rec rest bi acc = if bi < 0 then acc else rest (bi - 1) (b.envs.(bi) :: acc) in
        rest bi acc
      else if bi < 0 then
        let rec rest di acc = if di < 0 then acc else rest (di - 1) (d.envs.(di) :: acc) in
        rest di acc
      else if d.seqs.(di) > b.seqs.(bi) then go (di - 1) bi (d.envs.(di) :: acc)
      else go di (bi - 1) (b.envs.(bi) :: acc)
    in
    go (d.len - 1) (b.len - 1) []

(* K-way merge over a set of buffers, again largest-stamp-first. Each
   direct envelope lives in exactly one mailbox, so no deduplication is
   needed. The cursor count is small (the corrupted set, or n + 1 for
   [to_list]) and a linear max-scan keeps the code free of a heap. *)
let merge_bufs bufs =
  let k = Array.length bufs in
  let pos = Array.map (fun b -> b.len - 1) bufs in
  let rec next acc =
    let best = ref (-1) in
    for j = 0 to k - 1 do
      if pos.(j) >= 0 && (!best < 0 || bufs.(j).seqs.(pos.(j)) > bufs.(!best).seqs.(pos.(!best)))
      then best := j
    done;
    if !best < 0 then acc
    else begin
      let j = !best in
      let e = bufs.(j).envs.(pos.(j)) in
      pos.(j) <- pos.(j) - 1;
      next (e :: acc)
    end
  in
  next []

let delivered_to_any t ids =
  match ids with
  | [] -> []
  | [ i ] -> inbox t i
  | ids ->
      if List.for_all (fun i -> t.direct.(i).len = 0) ids then bcast_as_list t
      else merge_bufs (Array.of_list (t.bcast :: List.map (fun i -> t.direct.(i)) ids))

let to_list t = merge_bufs (Array.append [| t.bcast |] t.direct)

let length t = Array.fold_left (fun acc b -> acc + b.len) t.bcast.len t.direct

(* Delivery count including broadcast fan-out: what the flat-queue
   reconstruction [to_list]/[inbox] would sum to across all parties —
   without materialising any list. O(n) in the party count. *)
let total t =
  Array.fold_left
    (fun acc b -> acc + b.len)
    (t.bcast.len * Array.length t.direct)
    t.direct
