(** Execution transcript: everything that crossed the network.

    One record per round, split by origin. Experiments use traces for
    message-complexity counts (E8) and tests use them to assert rushing
    and visibility rules. *)

type round_record = {
  round : int;
  honest_sent : Envelope.t list;
  adv_sent : Envelope.t list;  (** after filtering to corrupted sources *)
  func_sent : Envelope.t list;
}

type t = round_record list
(** In round order. *)

val p2p_message_count : t -> int
(** Party-to-party envelopes (functionality and broadcast traffic
    excluded). *)

val broadcast_count : t -> int
(** Envelopes sent on the broadcast channel. *)

val total_transmissions : t -> int
(** p2p + broadcast: the message-complexity figure reported by
    experiment E8 (one broadcast = one channel use, as in the model
    the protocols are written for). *)

val wire_bytes : t -> int * int
(** [(broadcast, p2p)] wire bytes of party-sourced traffic
    ({!Envelope.wire_size} summed; functionality channel excluded,
    broadcasts counted once) — the deterministic trace-side view of the
    network's [sim.bytes.*] counters, used by experiment E16. *)

val messages_from : t -> int -> int

val per_round_counts : t -> (int * int * int) list
(** Per round, [(honest, adversary, functionality)] envelope counts —
    the raw series behind the observability layer's per-round
    counters. *)

val pp : Format.formatter -> t -> unit
