(** Per-execution context: parameters and shared setup.

    One [Ctx.t] is created per protocol execution. It fixes the party
    count [n], the corruption bound [thresh] (the paper's t), the
    security parameter [k], and the trusted setup every protocol may
    assume: a commitment scheme instance, a signature registry (PKI),
    and a common reference string. *)

type t = {
  n : int;
  thresh : int;  (** maximum number of corrupted parties, t < n *)
  k : int;  (** security parameter; commitment nonce length is k bytes *)
  commit : Sb_crypto.Commit.scheme;
  sigs : Sb_crypto.Sig.scheme;
  crs : string;  (** common reference string, k bytes *)
  pool : Envelope.Arena.arena option;
      (** When present, {!to_all} draws envelope records from this
          arena instead of allocating; set by large-n callers that run
          {!Network.run} with [~reuse_envelopes:true]. *)
}

val make :
  ?backend:Sb_crypto.Commit.backend ->
  ?pool:Envelope.Arena.arena ->
  rng:Sb_util.Rng.t ->
  n:int ->
  thresh:int ->
  k:int ->
  unit ->
  t
(** Fresh setup drawn from [rng]. Default backend is [Hash], default
    no envelope pool. Requires 0 <= thresh < n and k >= 1. [?pool]
    does not touch [rng], so pooled and unpooled setups draw
    identical randomness. *)

val to_all : t -> src:int -> Msg.t -> Envelope.t list
(** One copy to every party ({!Envelope.to_all}), drawn from the
    context's arena when one is installed — the substrates' send-all
    path. Byte-identical envelopes either way. *)
