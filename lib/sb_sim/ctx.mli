(** Per-execution context: parameters and shared setup.

    One [Ctx.t] is created per protocol execution. It fixes the party
    count [n], the corruption bound [thresh] (the paper's t), the
    security parameter [k], and the trusted setup every protocol may
    assume: a commitment scheme instance, a signature registry (PKI),
    and a common reference string. *)

type t = {
  n : int;
  thresh : int;  (** maximum number of corrupted parties, t < n *)
  k : int;  (** security parameter; commitment nonce length is k bytes *)
  commit : Sb_crypto.Commit.scheme;
  sigs : Sb_crypto.Sig.scheme;
  crs : string;  (** common reference string, k bytes *)
}

val make :
  ?backend:Sb_crypto.Commit.backend ->
  rng:Sb_util.Rng.t ->
  n:int ->
  thresh:int ->
  k:int ->
  unit ->
  t
(** Fresh setup drawn from [rng]. Default backend is [Hash]. Requires
    0 <= thresh < n and k >= 1. *)
