type comm = {
  broadcasts : int;
  broadcast_bytes : int;
  p2p_bytes : int;
  deliveries : int;
}

type result = {
  outputs : (int * Msg.t) list;
  adv_output : Msg.t;
  corrupted : int list;
  rounds_used : int;
  p2p_messages : int;
  trace : Trace.t;
  comm : comm option;
}

let log_src = Logs.Src.create "sb.network" ~doc:"simulated network round events"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Observability handles. Interned once; every update is guarded by
   [Metrics.enabled] so a disabled run pays one boolean load per round.
   None of this touches the split RNG streams: seeded protocol outputs
   are identical with metrics on or off. *)
let m_runs = Sb_obs.Metrics.counter "sim.runs"
let m_rounds = Sb_obs.Metrics.counter "sim.rounds"
let m_honest = Sb_obs.Metrics.counter "sim.envelopes.honest"
let m_adv = Sb_obs.Metrics.counter "sim.envelopes.adv"
let m_func = Sb_obs.Metrics.counter "sim.envelopes.func"
let m_bcast = Sb_obs.Metrics.counter "sim.broadcasts"
let m_p2p = Sb_obs.Metrics.counter "sim.p2p"
let m_bytes_bcast = Sb_obs.Metrics.counter "sim.bytes.broadcast"
let m_bytes_p2p = Sb_obs.Metrics.counter "sim.bytes.p2p"
let m_forged = Sb_obs.Metrics.counter "sim.forgeries_dropped"
let h_round_us = Sb_obs.Metrics.histogram "sim.round_duration_us"

(* Aggregate throughput gauges, recomputed at every run completion
   from the cumulative counters and the cumulative in-run wall clock
   (itself a gauge, so Metrics.reset rebases the rates too). The
   mutex serialises the read-modify-write of the wall total across
   sampler domains. *)
let g_wall = Sb_obs.Metrics.gauge "sim.run_wall_s_total"
let g_sessions_ps = Sb_obs.Metrics.gauge "sim.sessions_per_sec"
let g_msgs_ps = Sb_obs.Metrics.gauge "sim.msgs_per_sec"
let g_bytes_ps = Sb_obs.Metrics.gauge "sim.bytes_per_sec"
let wall_lock = Mutex.create ()

let count_channels envs =
  (* (broadcast, p2p) among party-sourced traffic; ideal-channel
     envelopes are counted separately under sim.envelopes.func. *)
  List.fold_left
    (fun (b, p) e ->
      if Envelope.is_func_bound e then (b, p)
      else if Envelope.is_broadcast e then (b + 1, p)
      else (b, p + 1))
    (0, 0) envs

let count_bytes envs =
  (* (broadcast, p2p) wire bytes; a broadcast envelope is one channel
     use and counted once, matching sim.broadcasts. *)
  List.fold_left
    (fun (b, p) e ->
      if Envelope.is_func_bound e then (b, p)
      else if Envelope.is_broadcast e then (b + Envelope.wire_size e, p)
      else (b, p + Envelope.wire_size e))
    (0, 0) envs

(* Per-run communication tally for [?record_comm]: like count_channels
   + count_bytes in one pass, with a one-slot physical-equality cache
   for body sizes — a send-all fan-out shares one body across n
   envelopes, so the size walk runs once per distinct body instead of
   once per envelope. Independent of the global metrics registry: the
   large-n experiments need per-run numbers without retaining traces
   and without adding counters to every report's metrics block. *)
let comm_tally cached_body cached_size envs (b, p, bb, pb) =
  List.fold_left
    (fun (b, p, bb, pb) e ->
      if Envelope.is_func_bound e then (b, p, bb, pb)
      else begin
        let body = e.Envelope.body in
        let size =
          if body == !cached_body then !cached_size
          else begin
            let s = Msg.size_bytes body in
            cached_body := body;
            cached_size := s;
            s
          end
        in
        let w =
          Envelope.endpoint_size e.Envelope.src
          + Envelope.endpoint_size e.Envelope.dst
          + size
        in
        if Envelope.is_broadcast e then (b + 1, p, bb + w, pb)
        else (b, p + 1, bb, pb + w)
      end)
    (b, p, bb, pb) envs

type interceptor = round:int -> Envelope.t list -> Envelope.t list

(* The round loop runs five explicit phases over a route-indexed
   delivery queue (see Router):

     deliver    parties and the adversary read this round's mailboxes;
     collect    honest parties step and emit their outgoing envelopes;
     rush       the adversary observes same-round honest traffic and
                answers; spoofed sources are dropped;
     intercept  the fault interceptor filters the flat outgoing queue
                (honest + adversarial + functionality-bound traffic,
                exactly as sent);
     route      the functionality consumes Func-bound envelopes, and
                the surviving queue — party traffic first, then
                functionality replies — is dispatched into the next
                round's router.

   The router preserves enqueue order per recipient (Router's ordering
   invariant), so each phase sees byte-for-byte what the seed
   list-filter engine showed it; only the delivery cost changed, from
   O(parties x envelopes) to O(envelopes) per round. *)
let run (ctx : Ctx.t) ~rng ~(protocol : Protocol.t) ~(adversary : Adversary.t) ~inputs
    ?(aux = Msg.Unit) ?(record_trace = true) ?(record_comm = false)
    ?(reuse_envelopes = false) ?faults () =
  let n = ctx.n in
  if Array.length inputs <> n then invalid_arg "Network.run: wrong number of inputs";
  (* Envelope recycling mutates records two rounds after allocation;
     anything that retains envelopes across rounds — the run trace,
     delay-fault re-injection queues — would see them change under its
     feet. (Adversaries that stash delivered envelopes across rounds
     are equally incompatible; that contract is documented, not
     checkable here.) *)
  if reuse_envelopes && (record_trace || Option.is_some faults) then
    invalid_arg "Network.run: reuse_envelopes requires record_trace:false and no faults";
  (* Independent randomness streams, in a fixed order for reproducibility.
     The fault stream is split last, and only when a fault hook is
     installed, so fault-free runs replay the exact seed streams. *)
  let party_rngs = Array.init n (fun _ -> Sb_util.Rng.split rng) in
  let adv_rng = Sb_util.Rng.split rng in
  let func_rng = Sb_util.Rng.split rng in
  let intercept =
    match faults with
    | None -> None
    | Some make -> Some (make ~rng:(Sb_util.Rng.split rng))
  in
  let corrupted = adversary.choose_corrupt ctx ~rng:adv_rng in
  assert (Sb_util.Subset.is_valid n corrupted);
  assert (List.length corrupted <= ctx.thresh);
  let is_corrupt = Array.make n false in
  List.iter (fun i -> is_corrupt.(i) <- true) corrupted;
  let honest = List.filter (fun i -> not is_corrupt.(i)) (List.init n Fun.id) in
  let parties =
    List.map
      (fun id -> (id, protocol.make_party ctx ~rng:party_rngs.(id) ~id ~input:inputs.(id)))
      honest
  in
  let functionality =
    match protocol.make_functionality with
    | None -> Functionality.none
    | Some make -> make ctx ~rng:func_rng
  in
  let strategy =
    adversary.init ctx ~rng:adv_rng ~corrupted
      ~inputs:(List.map (fun i -> (i, inputs.(i))) corrupted)
      ~aux
  in
  let total_rounds = protocol.rounds ctx in
  (* Two routers ping-pong across rounds: [mailboxes] holds this
     round's deliveries, [staging] is cleared and refilled with the
     next round's queue, then they swap. *)
  (* Preallocating mailbox capacity under reuse avoids the first
     rounds' doubling-growth copies; capacity is retained across the
     run either way. *)
  let router_cap = if reuse_envelopes then n else 0 in
  let mailboxes = ref (Router.create ~cap:router_cap n) in
  let staging = ref (Router.create ~cap:router_cap n) in
  let trace = ref [] in
  (* ?record_comm accumulators (per-run, metrics-independent). *)
  let c_bcast = ref 0 and c_p2p_bytes = ref 0 and c_bcast_bytes = ref 0 in
  let c_deliveries = ref 0 in
  let cached_body = ref Msg.Unit in
  let cached_size = ref (Msg.size_bytes Msg.Unit) in
  (* Monte-Carlo sampling passes [record_trace:false]: the per-round
     envelope lists are then dropped as soon as the round ends instead
     of being retained for the whole run, and the p2p tally below is
     the only thing kept. *)
  let p2p_count = ref 0 in
  Sb_obs.Metrics.incr m_runs;
  let metrics_run = Sb_obs.Metrics.enabled () in
  let run_t0 = if metrics_run then Unix.gettimeofday () else 0.0 in
  (* Causal tracing (Trace_ctx): off by default, one boolean load here.
     When enabled, this run becomes one session span tree — session ->
     round -> {collect/rush/intercept/route} phases -> party — plus a
     flow edge per delivered envelope from the span that sent it into
     the round span that delivers it. Like metrics, none of this
     touches the split RNG streams. *)
  let tracing = Sb_obs.Trace_ctx.enabled () in
  let s_session =
    if tracing then
      Sb_obs.Trace_ctx.begin_session protocol.name
        ~args:
          [
            ("protocol", protocol.name);
            ("n", string_of_int n);
            ("thresh", string_of_int ctx.thresh);
            ("corrupted", string_of_int (List.length corrupted));
          ]
    else Sb_obs.Trace_ctx.none
  in
  let party_span =
    if tracing then Array.make n Sb_obs.Trace_ctx.none else [||]
  in
  (* Sender spans of envelopes routed into the next round; when that
     round's span opens these become its incoming flow edges. *)
  let pending : Sb_obs.Trace_ctx.h list ref = ref [] in
  for round = 0 to total_rounds do
    (* Under reuse, flip the context arena: the side flipped onto last
       held round r-2's allocations, delivered and consumed at r-1 —
       dead by now, so its records are recycled for this round. *)
    if reuse_envelopes then
      (match ctx.pool with Some a -> Envelope.Arena.flip a | None -> ());
    let metrics_on = Sb_obs.Metrics.enabled () in
    let t0 = if metrics_on then Unix.gettimeofday () else 0.0 in
    let inbox_router = !mailboxes in
    let last = round = total_rounds in
    let s_round =
      if tracing then begin
        let s =
          Sb_obs.Trace_ctx.begin_span ~agg:"round" ~cat:"round"
            ~args:[ ("round", string_of_int round) ]
            (Printf.sprintf "round %d" round)
        in
        List.iter (fun src -> Sb_obs.Trace_ctx.flow ~src ~dst:s) !pending;
        pending := [];
        s
      end
      else Sb_obs.Trace_ctx.none
    in
    (* 1. Deliver + collect: honest parties step on their mailboxes. *)
    let honest_out =
      if tracing then begin
        let s_collect =
          Sb_obs.Trace_ctx.begin_span ~agg:"collect" ~cat:"phase" "collect"
        in
        let out =
          List.concat_map
            (fun (id, party) ->
              let sp =
                Sb_obs.Trace_ctx.begin_span ~agg:"party" ~cat:"party"
                  ~args:[ ("id", string_of_int id) ]
                  (Printf.sprintf "P%d" id)
              in
              party_span.(id) <- sp;
              let inbox =
                Sb_obs.Trace_ctx.with_span ~agg:"deliver" ~cat:"phase" "deliver"
                  (fun () -> Router.inbox inbox_router id)
              in
              let out = party.Party.step ~round ~inbox in
              List.iter (fun e -> assert (Envelope.src_is e id)) out;
              Sb_obs.Trace_ctx.end_span sp;
              out)
            parties
        in
        Sb_obs.Trace_ctx.end_span s_collect;
        out
      end
      else
        List.concat_map
          (fun (id, party) ->
            let out = party.Party.step ~round ~inbox:(Router.inbox inbox_router id) in
            (* Authenticated channels: an honest party only speaks as itself. *)
            List.iter (fun e -> assert (Envelope.src_is e id)) out;
            out)
          parties
    in
    (* 2. Rush: the adversary sees same-round honest traffic — minus
       the ideal channel to the functionality — plus everything the
       router delivered to the corrupted set this round. *)
    let s_rush =
      if tracing then Sb_obs.Trace_ctx.begin_span ~agg:"rush" ~cat:"phase" "rush"
      else Sb_obs.Trace_ctx.none
    in
    let rushed = List.filter (fun e -> not (Envelope.is_func_bound e)) honest_out in
    let delivered = Router.delivered_to_any inbox_router corrupted in
    let adv_out_raw = strategy.Adversary.act { round; delivered; rushed } in
    (* Drop spoofed envelopes. *)
    let adv_out =
      List.filter
        (fun e ->
          match Envelope.src_party e with Some i -> is_corrupt.(i) | None -> false)
        adv_out_raw
    in
    Sb_obs.Trace_ctx.end_span s_rush;
    (* 3. Intercept: fault injection at the delivery queue. Crashed
       senders are silenced (even towards the functionality),
       lossy/partitioned links drop, delayed envelopes are re-injected
       in a later round. Everything above this point saw the traffic
       as sent; the interceptor always receives the full flattened
       queue, before any routing. *)
    let s_intercept =
      if tracing then
        Sb_obs.Trace_ctx.begin_span ~agg:"intercept" ~cat:"phase" "intercept"
      else Sb_obs.Trace_ctx.none
    in
    let all_out = if last then [] else honest_out @ adv_out in
    let all_out =
      match intercept with None -> all_out | Some f -> f ~round all_out
    in
    Sb_obs.Trace_ctx.end_span s_intercept;
    (* 4. Route: the functionality consumes Func-bound traffic of this
       round, then the queue — party traffic first, then the
       functionality's replies — is dispatched into the next round's
       mailboxes. *)
    let s_route =
      if tracing then Sb_obs.Trace_ctx.begin_span ~agg:"route" ~cat:"phase" "route"
      else Sb_obs.Trace_ctx.none
    in
    let func_in = List.filter Envelope.is_func_bound all_out in
    let func_out = functionality.Functionality.f_step ~round ~inbox:func_in in
    List.iter (fun e -> assert (Envelope.is_from_func e)) func_out;
    Log.debug (fun m ->
        m "%s round %d: honest=%d adv=%d func_in=%d func_out=%d%s" protocol.name round
          (List.length honest_out) (List.length adv_out) (List.length func_in)
          (List.length func_out)
          (if last then " (final)" else ""));
    (* 5. Record round observations, then queue next-round deliveries.
       count_channels is an allocation-free fold, so tallying p2p
       traffic incrementally costs nothing even with metrics off. *)
    if not last then begin
      let _, hp = count_channels honest_out and _, ap = count_channels adv_out in
      p2p_count := !p2p_count + hp + ap
    end;
    if record_comm && not last then begin
      let b, _, bb, pb =
        comm_tally cached_body cached_size adv_out
          (comm_tally cached_body cached_size honest_out (0, 0, 0, 0))
      in
      c_bcast := !c_bcast + b;
      c_bcast_bytes := !c_bcast_bytes + bb;
      c_p2p_bytes := !c_p2p_bytes + pb
    end;
    if metrics_on then begin
      Sb_obs.Metrics.incr m_rounds;
      Sb_obs.Metrics.incr ~by:(List.length honest_out) m_honest;
      Sb_obs.Metrics.incr ~by:(List.length adv_out) m_adv;
      Sb_obs.Metrics.incr ~by:(List.length func_out) m_func;
      Sb_obs.Metrics.incr ~by:(List.length adv_out_raw - List.length adv_out) m_forged;
      let hb, hp = count_channels honest_out and ab, ap = count_channels adv_out in
      Sb_obs.Metrics.incr ~by:(hb + ab) m_bcast;
      Sb_obs.Metrics.incr ~by:(hp + ap) m_p2p;
      let hbb, hpb = count_bytes honest_out and abb, apb = count_bytes adv_out in
      Sb_obs.Metrics.incr ~by:(hbb + abb) m_bytes_bcast;
      Sb_obs.Metrics.incr ~by:(hpb + apb) m_bytes_p2p;
      Sb_obs.Metrics.observe h_round_us ((Unix.gettimeofday () -. t0) *. 1e6)
    end;
    let next = !staging in
    Router.clear next;
    List.iter
      (fun e -> if not (Envelope.is_func_bound e) then Router.route next e)
      all_out;
    Router.route_all next func_out;
    if record_comm then c_deliveries := !c_deliveries + Router.total next;
    Sb_obs.Trace_ctx.end_span s_route;
    if tracing && not last then begin
      (* One causal edge per delivered envelope: sender span -> next
         round's span. Honest senders resolve to their party span,
         corrupted senders to the rush phase (where the adversary
         spoke), functionality replies to the route phase (where the
         functionality stepped). *)
      let src_of e =
        match Envelope.src_party e with
        | Some i when not is_corrupt.(i) -> party_span.(i)
        | Some _ -> s_rush
        | None -> s_route
      in
      List.iter
        (fun e ->
          if not (Envelope.is_func_bound e) then pending := src_of e :: !pending)
        all_out;
      List.iter (fun _ -> pending := s_route :: !pending) func_out
    end;
    staging := inbox_router;
    mailboxes := next;
    Sb_obs.Trace_ctx.end_span s_round;
    if record_trace && not last then
      trace :=
        { Trace.round; honest_sent = honest_out; adv_sent = adv_out; func_sent = func_out }
        :: !trace
  done;
  if tracing then begin
    pending := [];
    Sb_obs.Trace_ctx.end_span s_session
  end;
  if metrics_run && Sb_obs.Metrics.enabled () then begin
    (* Fold this run's wall time into the cumulative total and refresh
       the throughput gauges from the cumulative counters. Gauges are
       wall-clock derived and therefore not part of the deterministic
       counter surface. *)
    let wall = Unix.gettimeofday () -. run_t0 in
    Mutex.lock wall_lock;
    let total = Sb_obs.Metrics.gauge_value g_wall +. wall in
    Sb_obs.Metrics.set g_wall total;
    if total > 0.0 then begin
      let c m = float_of_int (Sb_obs.Metrics.counter_value m) in
      Sb_obs.Metrics.set g_sessions_ps (c m_runs /. total);
      Sb_obs.Metrics.set g_msgs_ps ((c m_bcast +. c m_p2p) /. total);
      Sb_obs.Metrics.set g_bytes_ps ((c m_bytes_bcast +. c m_bytes_p2p) /. total)
    end;
    Mutex.unlock wall_lock
  end;
  let trace = List.rev !trace in
  if Sb_obs.Sink.attached () > 0 then
    Sb_obs.Event.emit "network.run"
      ~fields:
      [
        ("protocol", Sb_obs.Json.Str protocol.name);
        ("rounds", Sb_obs.Json.Int total_rounds);
        ("corrupted", Sb_obs.Json.Int (List.length corrupted));
        ("p2p", Sb_obs.Json.Int !p2p_count);
        ( "per_round",
          Sb_obs.Json.List
            (List.map
               (fun (h, a, f) -> Sb_obs.Json.List [ Sb_obs.Json.Int h; Sb_obs.Json.Int a; Sb_obs.Json.Int f ])
               (Trace.per_round_counts trace)) );
      ];
  {
    outputs = List.map (fun (id, party) -> (id, party.Party.output ())) parties;
    adv_output = strategy.Adversary.adv_output ();
    corrupted;
    rounds_used = total_rounds;
    p2p_messages = !p2p_count;
    trace;
    comm =
      (if record_comm then
         Some
           {
             broadcasts = !c_bcast;
             broadcast_bytes = !c_bcast_bytes;
             p2p_bytes = !c_p2p_bytes;
             deliveries = !c_deliveries;
           }
       else None);
  }

let honest_run ?record_trace ?record_comm ?reuse_envelopes ctx ~rng ~protocol ~inputs =
  run ctx ~rng ~protocol ~adversary:(Adversary.passive protocol) ~inputs ?record_trace
    ?record_comm ?reuse_envelopes ()
