(** The partially synchronous network of §3.1, executable.

    Delivery is route-indexed: each round's queue lives in a {!Router}
    whose per-recipient mailboxes preserve enqueue order, so inboxes
    are read in linear time instead of re-filtering a flat list per
    party, while staying byte-identical to the flat-list semantics
    (Router's ordering invariant; pinned by test/test_router.ml).
    Wire-size accounting rides on the same loop: with metrics enabled,
    [sim.bytes.broadcast] and [sim.bytes.p2p] accumulate
    {!Envelope.wire_size} over party-sourced traffic.

    Each round proceeds in a fixed order that encodes the model
    (deliver -> collect -> rush -> intercept -> route):

    + honest parties step on the envelopes delivered this round and
      produce their outgoing envelopes;
    + the adversary observes (a) everything just delivered to corrupted
      parties and (b) the honest parties' outgoing traffic of this very
      round — rushing — except functionality-bound envelopes, which
      travel on the ideal channel;
    + the adversary emits the corrupted parties' envelopes; anything
      with a non-corrupted source is dropped (authenticated channels);
    + the functionality consumes all Func-addressed envelopes of the
      round and produces replies;
    + everything is queued for delivery at the start of the next round.

    After the protocol's declared number of rounds, one final
    delivery-only step runs (outgoing messages are discarded), then
    outputs are collected. *)

type comm = {
  broadcasts : int;  (** broadcast-channel uses (counted once each) *)
  broadcast_bytes : int;
  p2p_bytes : int;
  deliveries : int;
      (** inbox arrivals including broadcast fan-out — the per-round
          {!Router.total} summed over the run *)
}
(** Per-run communication totals, tallied incrementally under
    [?record_comm] — independent of the global metrics registry and of
    the trace, so large-n runs get exact wire accounting without
    retaining a single envelope list. [p2p] message counts stay in
    [result.p2p_messages], which is always tallied. *)

type result = {
  outputs : (int * Msg.t) list;  (** honest parties only, by id *)
  adv_output : Msg.t;
  corrupted : int list;
  rounds_used : int;
  p2p_messages : int;
  trace : Trace.t;
  comm : comm option;  (** [Some] iff the run passed [~record_comm:true] *)
}

type interceptor = round:int -> Envelope.t list -> Envelope.t list
(** A delivery-queue filter: receives the envelopes emitted in [round]
    (honest, adversarial, and — on the way in — functionality-bound
    traffic) and returns what the queue actually carries into the next
    round. An interceptor may drop envelopes, hold them back and
    re-inject them in a later call, but must never forge new sources;
    it is the mechanism [Sb_fault] compiles fault plans into. *)

val run :
  Ctx.t ->
  rng:Sb_util.Rng.t ->
  protocol:Protocol.t ->
  adversary:Adversary.t ->
  inputs:Msg.t array ->
  ?aux:Msg.t ->
  ?record_trace:bool ->
  ?record_comm:bool ->
  ?reuse_envelopes:bool ->
  ?faults:(rng:Sb_util.Rng.t -> interceptor) ->
  unit ->
  result
(** [inputs] must have length [ctx.n]. The given [rng] is split into
    independent streams for each party, the adversary, and the
    functionality, so runs are reproducible from one seed.

    [record_trace] (default [true]): when [false], the per-round
    envelope trace is not retained — [result.trace] is [[]] — which
    removes the dominant allocation of a run. [p2p_messages] is tallied
    incrementally and unaffected. Monte-Carlo samplers, which never
    read the trace, pass [false]; outputs are identical either way.

    [record_comm] (default [false]): when [true], tally per-run
    communication totals into [result.comm] — incrementally, as each
    round's traffic is routed, never by retaining envelope lists. The
    tallies read delivered traffic only and touch no RNG stream, so
    outputs are byte-identical either way.

    [reuse_envelopes] (default [false]): when [true] and [ctx] carries
    an arena pool ({!Ctx.make} [?pool]), the run flips the arena once
    per round so envelope records allocated two rounds ago are
    recycled. Requires [record_trace:false] and no [faults]
    (Invalid_argument otherwise): both retain envelopes past the
    one-round grace window. Adversaries that stash delivered envelopes
    across rounds must not be combined with this flag. Outputs are
    byte-identical with or without reuse.

    [faults], when given, is called once per run with a dedicated RNG
    stream (split from [rng] after the party/adversary/functionality
    streams, so a run with an inert interceptor is byte-identical to a
    run without one) and the resulting {!interceptor} filters every
    round's outgoing traffic before it reaches the delivery queue. The
    adversary's rushing view and the [trace] record traffic as *sent*,
    pre-fault; what the interceptor drops simply never arrives. *)

val honest_run :
  ?record_trace:bool ->
  ?record_comm:bool ->
  ?reuse_envelopes:bool ->
  Ctx.t ->
  rng:Sb_util.Rng.t ->
  protocol:Protocol.t ->
  inputs:Msg.t array ->
  result
(** [run] with the passive adversary; the optional flags are passed
    through (they precede [ctx] so plain [honest_run ctx ...] callers
    erase them). *)

val log_src : Logs.src
(** Per-round debug events ("sb.network"); enable with
    [Logs.Src.set_level log_src (Some Logs.Debug)] or the CLI's
    [--verbose]. *)
