(** The partially synchronous network of §3.1, executable.

    Each round proceeds in a fixed order that encodes the model:

    + honest parties step on the envelopes delivered this round and
      produce their outgoing envelopes;
    + the adversary observes (a) everything just delivered to corrupted
      parties and (b) the honest parties' outgoing traffic of this very
      round — rushing — except functionality-bound envelopes, which
      travel on the ideal channel;
    + the adversary emits the corrupted parties' envelopes; anything
      with a non-corrupted source is dropped (authenticated channels);
    + the functionality consumes all Func-addressed envelopes of the
      round and produces replies;
    + everything is queued for delivery at the start of the next round.

    After the protocol's declared number of rounds, one final
    delivery-only step runs (outgoing messages are discarded), then
    outputs are collected. *)

type result = {
  outputs : (int * Msg.t) list;  (** honest parties only, by id *)
  adv_output : Msg.t;
  corrupted : int list;
  rounds_used : int;
  p2p_messages : int;
  trace : Trace.t;
}

val run :
  Ctx.t ->
  rng:Sb_util.Rng.t ->
  protocol:Protocol.t ->
  adversary:Adversary.t ->
  inputs:Msg.t array ->
  ?aux:Msg.t ->
  ?record_trace:bool ->
  unit ->
  result
(** [inputs] must have length [ctx.n]. The given [rng] is split into
    independent streams for each party, the adversary, and the
    functionality, so runs are reproducible from one seed.

    [record_trace] (default [true]): when [false], the per-round
    envelope trace is not retained — [result.trace] is [[]] — which
    removes the dominant allocation of a run. [p2p_messages] is tallied
    incrementally and unaffected. Monte-Carlo samplers, which never
    read the trace, pass [false]; outputs are identical either way. *)

val honest_run :
  Ctx.t -> rng:Sb_util.Rng.t -> protocol:Protocol.t -> inputs:Msg.t array -> result
(** [run] with the passive adversary. *)

val log_src : Logs.src
(** Per-round debug events ("sb.network"); enable with
    [Logs.Src.set_level log_src (Some Logs.Debug)] or the CLI's
    [--verbose]. *)
