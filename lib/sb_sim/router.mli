(** Route-indexed delivery for one round of the simulated network.

    The round loop used to deliver by re-filtering one flat envelope
    list per party ([List.filter (delivered_to id)]), which costs
    O(parties x envelopes) per round — cubic in n for the
    O(n^2)-message broadcast substrates. A router instead dispatches
    each envelope once at enqueue time into per-recipient mailboxes;
    broadcast envelopes are stored once in a shared buffer and fanned
    out at read time. Reading an inbox is then linear in its size.

    {b Ordering invariant.} Every routed envelope is stamped with a
    global sequence number in enqueue order, and every read-side
    operation merges its buffers by that stamp. Consequently
    [inbox t i] is exactly
    [List.filter (fun e -> Envelope.delivered_to e i) queue] for the
    flat [queue] in enqueue order — envelope for envelope, in the same
    order — which is what keeps the refactored engine byte-identical
    to the seed list-filter delivery. The differential tests in
    [test/test_router.ml] pin this equivalence.

    Routers are single-domain mutable values; the network owns two and
    ping-pongs them between rounds via {!clear}. *)

type t

val create : ?cap:int -> int -> t
(** [create n] makes an empty router for parties [0 .. n-1].
    [?cap] preallocates every mailbox (and the broadcast buffer) with
    that capacity, so a run whose per-round per-recipient volume is
    known up front never grows a buffer mid-round. Default 0: grow on
    demand. *)

val clear : t -> unit
(** Empty all mailboxes, retaining their capacity (the round loop
    reuses two routers for the whole run). *)

val route : t -> Envelope.t -> unit
(** Enqueue one envelope: direct and functionality-sourced traffic
    goes to the destination party's mailbox, broadcast traffic to the
    shared broadcast buffer. Raises [Invalid_argument] on a
    functionality-bound envelope — those are consumed by the
    functionality before routing, never delivered to a party. *)

val route_all : t -> Envelope.t list -> unit
(** [route] each envelope in list order. *)

val inbox : t -> int -> Envelope.t list
(** Everything delivered to party [i], in enqueue order: the merge of
    [i]'s direct mailbox with the broadcast buffer. *)

val delivered_to_any : t -> int list -> Envelope.t list
(** [delivered_to_any t ids] is every envelope delivered to at least
    one party in [ids] — each envelope once, in enqueue order: the
    adversary's view of traffic reaching the corrupted set. [ids] must
    be duplicate-free. Empty [ids] yields [] (broadcasts reach nobody
    in an empty set). *)

val to_list : t -> Envelope.t list
(** The full routed queue in enqueue order (every direct mailbox plus
    the broadcast buffer, merged); the flat list the seed engine would
    have carried. Test and debugging aid. *)

val length : t -> int
(** Routed envelope count (broadcasts counted once). *)

val total : t -> int
(** Delivery count including broadcast fan-out: the sum over parties
    of their {!inbox} lengths, i.e. what reconstructing the flat
    queue and re-filtering per party would count — computed in O(n)
    with no list materialised. Feeds the [deliveries] tally of
    [Network.run ~record_comm]. *)
