type t = {
  n : int;
  thresh : int;
  k : int;
  commit : Sb_crypto.Commit.scheme;
  sigs : Sb_crypto.Sig.scheme;
  crs : string;
}

let make ?(backend = Sb_crypto.Commit.Hash) ~rng ~n ~thresh ~k () =
  assert (n >= 1 && thresh >= 0 && thresh < n && k >= 1);
  {
    n;
    thresh;
    k;
    commit = Sb_crypto.Commit.create ~k backend;
    sigs = Sb_crypto.Sig.create rng ~n;
    crs = Sb_util.Rng.bytes rng k;
  }
