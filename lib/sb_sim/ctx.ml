type t = {
  n : int;
  thresh : int;
  k : int;
  commit : Sb_crypto.Commit.scheme;
  sigs : Sb_crypto.Sig.scheme;
  crs : string;
  pool : Envelope.Arena.arena option;
}

let make ?(backend = Sb_crypto.Commit.Hash) ?pool ~rng ~n ~thresh ~k () =
  assert (n >= 1 && thresh >= 0 && thresh < n && k >= 1);
  {
    n;
    thresh;
    k;
    commit = Sb_crypto.Commit.create ~k backend;
    sigs = Sb_crypto.Sig.create rng ~n;
    crs = Sb_util.Rng.bytes rng k;
    pool;
  }

let to_all ctx ~src body =
  match ctx.pool with
  | Some a -> Envelope.Arena.to_all a ~n:ctx.n ~src body
  | None -> Envelope.to_all ~n:ctx.n ~src body
