type round_record = {
  round : int;
  honest_sent : Envelope.t list;
  adv_sent : Envelope.t list;
  func_sent : Envelope.t list;
}

type t = round_record list

let p2p envs =
  List.filter (fun e -> not (Envelope.is_func_bound e || Envelope.is_broadcast e)) envs

let p2p_message_count trace =
  List.fold_left
    (fun acc r -> acc + List.length (p2p r.honest_sent) + List.length (p2p r.adv_sent))
    0 trace

let bcasts envs = List.filter Envelope.is_broadcast envs

let broadcast_count trace =
  List.fold_left
    (fun acc r -> acc + List.length (bcasts r.honest_sent) + List.length (bcasts r.adv_sent))
    0 trace

let total_transmissions trace = p2p_message_count trace + broadcast_count trace

let messages_from trace src =
  List.fold_left
    (fun acc r ->
      acc
      + List.length
          (List.filter (fun e -> Envelope.src_party e = Some src) (r.honest_sent @ r.adv_sent)))
    0 trace

let pp fmt trace =
  List.iter
    (fun r ->
      Format.fprintf fmt "round %d:@." r.round;
      List.iter (fun e -> Format.fprintf fmt "  %a@." Envelope.pp e)
        (r.honest_sent @ r.adv_sent @ r.func_sent))
    trace
