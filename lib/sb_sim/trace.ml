type round_record = {
  round : int;
  honest_sent : Envelope.t list;
  adv_sent : Envelope.t list;
  func_sent : Envelope.t list;
}

type t = round_record list

let p2p envs =
  List.filter (fun e -> not (Envelope.is_func_bound e || Envelope.is_broadcast e)) envs

let p2p_message_count trace =
  List.fold_left
    (fun acc r -> acc + List.length (p2p r.honest_sent) + List.length (p2p r.adv_sent))
    0 trace

let bcasts envs = List.filter Envelope.is_broadcast envs

let broadcast_count trace =
  List.fold_left
    (fun acc r -> acc + List.length (bcasts r.honest_sent) + List.length (bcasts r.adv_sent))
    0 trace

let total_transmissions trace = p2p_message_count trace + broadcast_count trace

let wire_bytes trace =
  let add acc envs =
    List.fold_left
      (fun (b, p) e ->
        if Envelope.is_func_bound e then (b, p)
        else if Envelope.is_broadcast e then (b + Envelope.wire_size e, p)
        else (b, p + Envelope.wire_size e))
      acc envs
  in
  List.fold_left (fun acc r -> add (add acc r.honest_sent) r.adv_sent) (0, 0) trace

let messages_from trace src =
  let count_from =
    List.fold_left (fun acc e -> if Envelope.src_party e = Some src then acc + 1 else acc)
  in
  List.fold_left (fun acc r -> count_from (count_from acc r.honest_sent) r.adv_sent) 0 trace

let per_round_counts trace =
  List.map
    (fun r -> (List.length r.honest_sent, List.length r.adv_sent, List.length r.func_sent))
    trace

let pp fmt trace =
  List.iter
    (fun r ->
      Format.fprintf fmt "round %d:@." r.round;
      let each e = Format.fprintf fmt "  %a@." Envelope.pp e in
      List.iter each r.honest_sent;
      List.iter each r.adv_sent;
      List.iter each r.func_sent)
    trace
