(** Static, rushing adversaries.

    An adversary picks its corrupted set up front (static corruption),
    then each round receives a {!view} containing

    - every envelope delivered to a corrupted party this round
      ("messages addressed to corrupted players arrive instantly"), and
    - every envelope honest parties are sending *this same round*,
      except functionality-bound ones — this is rushing combined with
      the model's "adversary reads all channels" (§3.1);

    and answers with the corrupted parties' outgoing envelopes for the
    round. The network discards any envelope whose [src] is not a
    corrupted party, so spoofing honest senders is impossible (the
    point-to-point channels are authenticated).

    Strategies are closures over mutable state, created per execution
    by [init]. *)

type view = {
  round : int;
  delivered : Envelope.t list;  (** to corrupted parties, this round *)
  rushed : Envelope.t list;  (** honest parties' same-round traffic *)
}

type strategy = {
  act : view -> Envelope.t list;
  adv_output : unit -> Msg.t;
}

type t = {
  name : string;
  choose_corrupt : Ctx.t -> rng:Sb_util.Rng.t -> int list;
  (** Must return at most [ctx.thresh] distinct ids; checked by the
      network. *)
  init :
    Ctx.t ->
    rng:Sb_util.Rng.t ->
    corrupted:int list ->
    inputs:(int * Msg.t) list ->
    aux:Msg.t ->
    strategy;
  (** [inputs] are the corrupted parties' own inputs; [aux] is the
      auxiliary input z of the definitions. *)
}

val passive : Protocol.t -> t
(** Corrupts nothing; [adv_output] is [Msg.Unit]. The baseline "honest
    execution" adversary. *)

val semi_honest : Protocol.t -> corrupt:int list -> t
(** Corrupted parties run the protocol code honestly on their real
    inputs; the adversary records its full view and outputs it. Used to
    check that corruption alone (with rushing visibility) breaks
    nothing. *)

val substitute_inputs :
  Protocol.t -> corrupt:int list -> choose:(Sb_util.Rng.t -> (int * Msg.t) list -> (int * Msg.t) list) -> t
(** Corrupted parties run honestly but on substituted inputs, chosen
    before the execution starts (so independence is respected —
    this adversary should pass every tester). *)
