type endpoint = Party of int | Func | All

type t = { src : endpoint; dst : endpoint; body : Msg.t }

let make ~src ~dst body = { src = Party src; dst = Party dst; body }
let broadcast ~src body = { src = Party src; dst = All; body }
let to_func ~src body = { src = Party src; dst = Func; body }
let from_func ~dst body = { src = Func; dst = Party dst; body }
let to_all ~n ~src body = List.init n (fun dst -> make ~src ~dst body)
let to_others ~n ~src body =
  List.filter_map (fun dst -> if dst = src then None else Some (make ~src ~dst body)) (List.init n Fun.id)

let src_party e = match e.src with Party i -> Some i | Func | All -> None
let src_is e i = match e.src with Party j -> j = i | Func | All -> false
let dst_party e = match e.dst with Party i -> Some i | Func | All -> None
let is_broadcast e = e.dst = All
let is_func_bound e = e.dst = Func
let is_from_func e = e.src = Func

let delivered_to e i =
  match e.dst with Party j -> j = i | All -> true | Func -> false

(* Addressing header cost: endpoints render as "P<id>", "F" or "*"
   (one char plus the decimal id for parties). *)
let endpoint_size = function
  | Party i ->
      let rec digits acc n = if n < 10 then acc else digits (acc + 1) (n / 10) in
      1 + digits 1 i
  | Func | All -> 1

let wire_size e = endpoint_size e.src + endpoint_size e.dst + Msg.size_bytes e.body

let pp_endpoint fmt = function
  | Party i -> Format.fprintf fmt "P%d" i
  | Func -> Format.pp_print_string fmt "F"
  | All -> Format.pp_print_string fmt "*"

let pp fmt e =
  Format.fprintf fmt "%a->%a: %a" pp_endpoint e.src pp_endpoint e.dst Msg.pp e.body
