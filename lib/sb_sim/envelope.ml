type endpoint = Party of int | Func | All

(* Fields are mutable solely so [Arena] can recycle records on the
   large-n hot path; everywhere else envelopes are treated as
   immutable values (functional update [{ e with ... }] still applies,
   and structural equality is unchanged — no bookkeeping lives in the
   record itself). *)
type t = { mutable src : endpoint; mutable dst : endpoint; mutable body : Msg.t }

let make ~src ~dst body = { src = Party src; dst = Party dst; body }
let broadcast ~src body = { src = Party src; dst = All; body }
let to_func ~src body = { src = Party src; dst = Func; body }
let from_func ~dst body = { src = Func; dst = Party dst; body }
let to_all ~n ~src body = List.init n (fun dst -> make ~src ~dst body)
let to_others ~n ~src body =
  List.filter_map (fun dst -> if dst = src then None else Some (make ~src ~dst body)) (List.init n Fun.id)

let src_party e = match e.src with Party i -> Some i | Func | All -> None
let src_is e i = match e.src with Party j -> j = i | Func | All -> false
let dst_party e = match e.dst with Party i -> Some i | Func | All -> None
let is_broadcast e = e.dst = All
let is_func_bound e = e.dst = Func
let is_from_func e = e.src = Func

let delivered_to e i =
  match e.dst with Party j -> j = i | All -> true | Func -> false

(* Addressing header cost: endpoints render as "P<id>", "F" or "*"
   (one char plus the decimal id for parties). *)
let endpoint_size = function
  | Party i ->
      let rec digits acc n = if n < 10 then acc else digits (acc + 1) (n / 10) in
      1 + digits 1 i
  | Func | All -> 1

let wire_size e = endpoint_size e.src + endpoint_size e.dst + Msg.size_bytes e.body

(* Two-sided envelope arena for the large-n delivery path. Allocation
   draws recycled records from the current side; [flip] switches sides
   and resets the side it lands on, handing its records back for
   reuse. Flipped once per round by [Network.run ~reuse_envelopes],
   this gives every allocation exactly one round of grace: records
   handed out at round r are recycled at round r+2, after their
   delivery round r+1 has consumed them. Bodies are immutable [Msg.t]
   values, so protocol state that retains payloads is unaffected;
   only the envelope records themselves are recycled, which is why
   reuse is incompatible with trace recording, fault delay queues, or
   adversaries that stash delivered envelopes across rounds. *)
module Arena = struct
  type side = { mutable pool : t array; mutable len : int }
  type arena = { sides : side array; mutable cur : int; mutable flips : int }

  let fresh () = { src = Func; dst = Func; body = Msg.Unit }

  let create () =
    { sides = [| { pool = [||]; len = 0 }; { pool = [||]; len = 0 } |]; cur = 0; flips = 0 }

  let flips a = a.flips

  let flip a =
    a.cur <- 1 - a.cur;
    a.flips <- a.flips + 1;
    a.sides.(a.cur).len <- 0

  let alloc a ~src ~dst body =
    let s = a.sides.(a.cur) in
    (if s.len = Array.length s.pool then begin
       let cap = max 64 (2 * Array.length s.pool) in
       (* Grow with fresh records in the new slots; the placeholder
          from Array.make never escapes (every slot is overwritten
          before first use). *)
       let grown = Array.make cap (fresh ()) in
       Array.blit s.pool 0 grown 0 s.len;
       for i = s.len to cap - 1 do
         grown.(i) <- fresh ()
       done;
       s.pool <- grown
     end);
    let e = s.pool.(s.len) in
    s.len <- s.len + 1;
    e.src <- src;
    e.dst <- dst;
    e.body <- body;
    e

  let make a ~src ~dst body = alloc a ~src:(Party src) ~dst:(Party dst) body
  let to_all a ~n ~src body = List.init n (fun dst -> make a ~src ~dst body)
end

let pp_endpoint fmt = function
  | Party i -> Format.fprintf fmt "P%d" i
  | Func -> Format.pp_print_string fmt "F"
  | All -> Format.pp_print_string fmt "*"

let pp fmt e =
  Format.fprintf fmt "%a->%a: %a" pp_endpoint e.src pp_endpoint e.dst Msg.pp e.body
