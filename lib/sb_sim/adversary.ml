type view = {
  round : int;
  delivered : Envelope.t list;
  rushed : Envelope.t list;
}

type strategy = {
  act : view -> Envelope.t list;
  adv_output : unit -> Msg.t;
}

type t = {
  name : string;
  choose_corrupt : Ctx.t -> rng:Sb_util.Rng.t -> int list;
  init :
    Ctx.t ->
    rng:Sb_util.Rng.t ->
    corrupted:int list ->
    inputs:(int * Msg.t) list ->
    aux:Msg.t ->
    strategy;
}

let passive (_p : Protocol.t) =
  {
    name = "passive";
    choose_corrupt = (fun _ ~rng:_ -> []);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        { act = (fun _ -> []); adv_output = (fun () -> Msg.Unit) });
  }

(* Run the real protocol code inside the adversary for each corrupted
   party, feeding each its own deliveries. Shared by [semi_honest] and
   [substitute_inputs]. *)
let honestly_running (p : Protocol.t) ~corrupt ~transform_inputs name =
  {
    name;
    choose_corrupt = (fun ctx ~rng:_ ->
        assert (List.length corrupt <= ctx.Ctx.thresh);
        Sb_util.Subset.of_list corrupt);
    init =
      (fun ctx ~rng ~corrupted ~inputs ~aux:_ ->
        let inputs = transform_inputs rng inputs in
        let parties =
          List.map
            (fun id ->
              let input =
                match List.assoc_opt id inputs with
                | Some m -> m
                | None -> invalid_arg "Adversary: missing corrupted input"
              in
              (id, p.Protocol.make_party ctx ~rng:(Sb_util.Rng.split rng) ~id ~input))
            corrupted
        in
        let transcript = ref [] in
        let act view =
          transcript := view.delivered @ !transcript;
          List.concat_map
            (fun (id, party) ->
              let inbox = List.filter (fun e -> Envelope.delivered_to e id) view.delivered in
              party.Party.step ~round:view.round ~inbox)
            parties
        in
        let adv_output () =
          (* The honest-looking adversary's "output" is its corrupted
             parties' protocol outputs; enough for the Sb tester. *)
          Msg.List (List.map (fun (_, party) -> party.Party.output ()) parties)
        in
        { act; adv_output })
  }

let semi_honest p ~corrupt =
  honestly_running p ~corrupt ~transform_inputs:(fun _ inputs -> inputs) "semi-honest"

let substitute_inputs p ~corrupt ~choose =
  honestly_running p ~corrupt ~transform_inputs:choose "substitute-inputs"
