type t =
  | Unit
  | Bit of bool
  | Int of int
  | Fe of Sb_crypto.Field.t
  | Ge of Sb_crypto.Modgroup.elt
  | Str of string
  | List of t list
  | Tag of string * t

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bit x, Bit y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Fe x, Fe y -> Sb_crypto.Field.equal x y
  | Ge x, Ge y -> Sb_crypto.Modgroup.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Tag (s, x), Tag (r, y) -> String.equal s r && equal x y
  | (Unit | Bit _ | Int _ | Fe _ | Ge _ | Str _ | List _ | Tag _), _ -> false

let compare = Stdlib.compare

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bit b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Int i -> Format.fprintf fmt "%d" i
  | Fe f -> Format.fprintf fmt "f%a" Sb_crypto.Field.pp f
  | Ge g -> Format.fprintf fmt "g%a" Sb_crypto.Modgroup.pp g
  | Str s -> Format.fprintf fmt "%S" s
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp)
        l
  | Tag (s, m) -> Format.fprintf fmt "%s(%a)" s pp m

let to_string m = Format.asprintf "%a" pp m
let bits l = List (List.map (fun b -> Bit b) l)
let of_bitvec v = bits (Array.to_list (Sb_util.Bitvec.to_bools v))

let to_bit_exn = function Bit b -> b | m -> invalid_arg ("Msg.to_bit_exn: " ^ to_string m)
let to_int_exn = function Int i -> i | m -> invalid_arg ("Msg.to_int_exn: " ^ to_string m)
let to_fe_exn = function Fe f -> f | m -> invalid_arg ("Msg.to_fe_exn: " ^ to_string m)
let to_str_exn = function Str s -> s | m -> invalid_arg ("Msg.to_str_exn: " ^ to_string m)
let to_list_exn = function List l -> l | m -> invalid_arg ("Msg.to_list_exn: " ^ to_string m)

let to_bitvec_exn m =
  Sb_util.Bitvec.of_bools (Array.of_list (List.map to_bit_exn (to_list_exn m)))

let untag_exn tag = function
  | Tag (s, m) when String.equal s tag -> m
  | m -> invalid_arg (Printf.sprintf "Msg.untag_exn %s: %s" tag (to_string m))

(* Length-prefixed encoding: injective by construction. *)
let rec serialize m =
  let with_len c s = Printf.sprintf "%c%d:%s" c (String.length s) s in
  match m with
  | Unit -> "u"
  | Bit b -> if b then "b1" else "b0"
  | Int i -> with_len 'i' (string_of_int i)
  | Fe f -> with_len 'f' (Sb_crypto.Field.to_string f)
  | Ge g -> with_len 'g' (string_of_int (Sb_crypto.Modgroup.to_int g))
  | Str s -> with_len 's' s
  | List l -> with_len 'l' (String.concat "" (List.map (fun x -> with_len 'e' (serialize x)) l))
  | Tag (s, x) -> with_len 't' (with_len 'n' s ^ serialize x)
