type t =
  | Unit
  | Bit of bool
  | Int of int
  | Fe of Sb_crypto.Field.t
  | Ge of Sb_crypto.Modgroup.elt
  | Str of string
  | List of t list
  | Tag of string * t

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bit x, Bit y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Fe x, Fe y -> Sb_crypto.Field.equal x y
  | Ge x, Ge y -> Sb_crypto.Modgroup.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Tag (s, x), Tag (r, y) -> String.equal s r && equal x y
  | (Unit | Bit _ | Int _ | Fe _ | Ge _ | Str _ | List _ | Tag _), _ -> false

(* Structural order, consistent with [equal]: constructors rank in
   declaration order, payloads compare via their own module's order
   (canonical int representatives for the abstract Field/Modgroup
   elements — never polymorphic compare, which would peek through the
   private abstraction and break if a representation changed). *)
let rank = function
  | Unit -> 0
  | Bit _ -> 1
  | Int _ -> 2
  | Fe _ -> 3
  | Ge _ -> 4
  | Str _ -> 5
  | List _ -> 6
  | Tag _ -> 7

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bit x, Bit y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Fe x, Fe y -> Int.compare (Sb_crypto.Field.to_int x) (Sb_crypto.Field.to_int y)
  | Ge x, Ge y -> Int.compare (Sb_crypto.Modgroup.to_int x) (Sb_crypto.Modgroup.to_int y)
  | Str x, Str y -> String.compare x y
  | List x, List y -> List.compare compare x y
  | Tag (s, x), Tag (r, y) -> (
      match String.compare s r with 0 -> compare x y | c -> c)
  | (Unit | Bit _ | Int _ | Fe _ | Ge _ | Str _ | List _ | Tag _), _ ->
      Int.compare (rank a) (rank b)

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bit b -> Format.pp_print_string fmt (if b then "1" else "0")
  | Int i -> Format.fprintf fmt "%d" i
  | Fe f -> Format.fprintf fmt "f%a" Sb_crypto.Field.pp f
  | Ge g -> Format.fprintf fmt "g%a" Sb_crypto.Modgroup.pp g
  | Str s -> Format.fprintf fmt "%S" s
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp)
        l
  | Tag (s, m) -> Format.fprintf fmt "%s(%a)" s pp m

let to_string m = Format.asprintf "%a" pp m
let bits l = List (List.map (fun b -> Bit b) l)
let of_bitvec v = bits (Array.to_list (Sb_util.Bitvec.to_bools v))

let to_bit_exn = function Bit b -> b | m -> invalid_arg ("Msg.to_bit_exn: " ^ to_string m)
let to_int_exn = function Int i -> i | m -> invalid_arg ("Msg.to_int_exn: " ^ to_string m)
let to_fe_exn = function Fe f -> f | m -> invalid_arg ("Msg.to_fe_exn: " ^ to_string m)
let to_str_exn = function Str s -> s | m -> invalid_arg ("Msg.to_str_exn: " ^ to_string m)
let to_list_exn = function List l -> l | m -> invalid_arg ("Msg.to_list_exn: " ^ to_string m)

let to_bitvec_exn m =
  Sb_util.Bitvec.of_bools (Array.of_list (List.map to_bit_exn (to_list_exn m)))

let untag_exn tag = function
  | Tag (s, m) when String.equal s tag -> m
  | m -> invalid_arg (Printf.sprintf "Msg.untag_exn %s: %s" tag (to_string m))

(* Length-prefixed encoding: injective by construction. *)
let rec serialize m =
  let with_len c s = Printf.sprintf "%c%d:%s" c (String.length s) s in
  match m with
  | Unit -> "u"
  | Bit b -> if b then "b1" else "b0"
  | Int i -> with_len 'i' (string_of_int i)
  | Fe f -> with_len 'f' (Sb_crypto.Field.to_string f)
  | Ge g -> with_len 'g' (string_of_int (Sb_crypto.Modgroup.to_int g))
  | Str s -> with_len 's' s
  | List l -> with_len 'l' (String.concat "" (List.map (fun x -> with_len 'e' (serialize x)) l))
  | Tag (s, x) -> with_len 't' (with_len 'n' s ^ serialize x)

(* Wire size = |serialize m|, computed structurally so byte accounting
   on the network hot path never materialises the encoded string.
   [prefixed len] mirrors [with_len]: tag char + decimal length + ':' +
   payload. Pinned to the codec by a property test in test_sim.ml. *)
let digits n =
  let rec go acc n = if n < 10 then acc else go (acc + 1) (n / 10) in
  go 1 n

let prefixed len = 2 + digits len + len

let int_digits i = if i < 0 then 1 + digits (-i) else digits i

let rec size_bytes = function
  | Unit -> 1
  | Bit _ -> 2
  | Int i -> prefixed (int_digits i)
  | Fe f -> prefixed (digits (Sb_crypto.Field.to_int f))
  | Ge g -> prefixed (digits (Sb_crypto.Modgroup.to_int g))
  | Str s -> prefixed (String.length s)
  | List l -> prefixed (List.fold_left (fun acc x -> acc + prefixed (size_bytes x)) 0 l)
  | Tag (s, x) -> prefixed (prefixed (String.length s) + size_bytes x)

(* Inverse of [serialize]; [None] on anything the encoder cannot have
   produced (bad framing, trailing bytes, non-canonical field or
   non-member group representatives). *)
let deserialize s =
  let len = String.length s in
  (* Parse "<digits>:<payload>" at [pos]; return (payload lo, payload len, next pos). *)
  let framed pos =
    let rec scan_len p acc =
      if p >= len then None
      else
        match s.[p] with
        | '0' .. '9' -> scan_len (p + 1) ((10 * acc) + (Char.code s.[p] - Char.code '0'))
        | ':' when p > pos -> Some (p + 1, acc)
        | _ -> None
    in
    (* Canonical lengths only (no "02:"): accepted strings are exactly
       the serializer's image at the framing layer. *)
    if pos + 1 < len && s.[pos] = '0' && s.[pos + 1] <> ':' then None
    else
      match scan_len pos 0 with
      | Some (lo, plen) when lo + plen <= len -> Some (lo, plen)
      | _ -> None
  in
  let rec value pos limit =
    if pos >= limit then None
    else
      match s.[pos] with
      | 'u' -> Some (Unit, pos + 1)
      | 'b' ->
          if pos + 1 >= limit then None
          else (
            match s.[pos + 1] with
            | '1' -> Some (Bit true, pos + 2)
            | '0' -> Some (Bit false, pos + 2)
            | _ -> None)
      | ('i' | 'f' | 'g' | 's' | 'l' | 't') as c -> (
          match framed (pos + 1) with
          | Some (lo, plen) when lo + plen <= limit -> (
              let stop = lo + plen in
              let payload () = String.sub s lo plen in
              match c with
              | 'i' -> (
                  match int_of_string_opt (payload ()) with
                  | Some i when String.equal (payload ()) (string_of_int i) ->
                      Some (Int i, stop)
                  | _ -> None)
              | 'f' -> (
                  match int_of_string_opt (payload ()) with
                  | Some i
                    when i >= 0 && i < Sb_crypto.Field.p
                         && String.equal (payload ()) (string_of_int i) ->
                      Some (Fe (Sb_crypto.Field.of_int i), stop)
                  | _ -> None)
              | 'g' -> (
                  match int_of_string_opt (payload ()) with
                  | Some i
                    when Sb_crypto.Modgroup.is_member i
                         && String.equal (payload ()) (string_of_int i) ->
                      Some (Ge (Sb_crypto.Modgroup.of_int_exn i), stop)
                  | _ -> None)
              | 's' -> Some (Str (payload ()), stop)
              | 'l' ->
                  let rec elems pos acc =
                    if pos = stop then Some (List (List.rev acc), stop)
                    else if pos >= stop || s.[pos] <> 'e' then None
                    else
                      match framed (pos + 1) with
                      | Some (elo, eplen) when elo + eplen <= stop -> (
                          match value elo (elo + eplen) with
                          | Some (m, p) when p = elo + eplen -> elems p (m :: acc)
                          | _ -> None)
                      | _ -> None
                  in
                  elems lo []
              | 't' -> (
                  if lo >= stop || s.[lo] <> 'n' then None
                  else
                    match framed (lo + 1) with
                    | Some (nlo, nlen) when nlo + nlen <= stop -> (
                        match value (nlo + nlen) stop with
                        | Some (m, p) when p = stop ->
                            Some (Tag (String.sub s nlo nlen, m), stop)
                        | _ -> None)
                    | _ -> None)
              | _ -> None)
          | _ -> None)
      | _ -> None
  in
  match value 0 len with Some (m, pos) when pos = len -> Some m | _ -> None
