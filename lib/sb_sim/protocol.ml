type t = {
  name : string;
  rounds : Ctx.t -> int;
  make_functionality : (Ctx.t -> rng:Sb_util.Rng.t -> Functionality.t) option;
  make_party : Ctx.t -> rng:Sb_util.Rng.t -> id:int -> input:Msg.t -> Party.t;
}

let with_name name p = { p with name }
