(** Universal message algebra for the simulated network.

    Every protocol in [sb_protocols] speaks this one type, so the
    network, the trace, and the adversary interface stay protocol-
    agnostic while parties still destructure messages with ordinary
    pattern matching. [Tag] gives each protocol its own namespaced
    constructors ("share", "commit", "open", …) without a shared
    variant that every protocol would have to extend. *)

type t =
  | Unit
  | Bit of bool
  | Int of int
  | Fe of Sb_crypto.Field.t
  | Ge of Sb_crypto.Modgroup.elt
  | Str of string
  | List of t list
  | Tag of string * t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Structural total order, consistent with [equal]
    ([compare a b = 0] iff [equal a b]): constructors rank in
    declaration order, same-constructor payloads compare via their own
    module's order (canonical integer representatives for [Fe]/[Ge]).
    Not polymorphic compare — abstract crypto payloads are never
    inspected through their representation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val bits : bool list -> t
(** [List [Bit …]] shorthand. *)

val of_bitvec : Sb_util.Bitvec.t -> t
val to_bitvec_exn : t -> Sb_util.Bitvec.t
(** Raises [Invalid_argument] unless the message is a list of bits. *)

val to_bit_exn : t -> bool
val to_int_exn : t -> int
val to_fe_exn : t -> Sb_crypto.Field.t
val to_str_exn : t -> string
val to_list_exn : t -> t list

val untag_exn : string -> t -> t
(** [untag_exn tag m] strips [Tag (tag, ·)] and raises
    [Invalid_argument] on anything else. *)

val serialize : t -> string
(** Injective encoding, used as input to hashing and signatures. *)

val deserialize : string -> t option
(** Inverse of {!serialize}: [deserialize (serialize m)] is [Some m]
    for every message; [None] on strings the encoder cannot produce
    (bad framing, trailing bytes, non-canonical or non-member
    [Fe]/[Ge] representatives). Together with the round-trip property
    test this proves the codec injective, which is what wire-size
    accounting rests on. *)

val size_bytes : t -> int
(** [String.length (serialize m)], computed structurally without
    materialising the encoding — the per-envelope cost behind the
    network's [sim.bytes.*] counters. *)
