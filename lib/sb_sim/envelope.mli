(** A message in flight: sender, destination, body.

    Senders and destinations are either parties (by id), the trusted
    functionality slot, or — for destinations only — [All]: the
    regular (non-simultaneous) broadcast channel that the paper's
    model provides (§1, §4.1). A broadcast envelope is delivered
    identically to every party, so even a corrupted sender cannot
    equivocate over it; it offers no simultaneity, though: the rushing
    adversary still reads it before choosing the corrupted parties'
    same-round traffic.

    The network authenticates senders — a party cannot spoof another's
    [src] — matching the standard point-to-point model. *)

type endpoint = Party of int | Func | All

type t = { mutable src : endpoint; mutable dst : endpoint; mutable body : Msg.t }
(** Fields are mutable solely for {!Arena} recycling on the large-n
    hot path; treat envelopes as immutable values everywhere else.
    Structural equality and [{ e with ... }] behave exactly as they
    did when the fields were immutable. *)

val make : src:int -> dst:int -> Msg.t -> t
(** Party-to-party. *)

val broadcast : src:int -> Msg.t -> t
(** One envelope on the broadcast channel. *)

val to_func : src:int -> Msg.t -> t
val from_func : dst:int -> Msg.t -> t

val to_all : n:int -> src:int -> Msg.t -> t list
(** One copy to every party, including the sender itself (self-delivery
    keeps broadcast code uniform). *)

val to_others : n:int -> src:int -> Msg.t -> t list

val src_party : t -> int option

val src_is : t -> int -> bool
(** [src_is e i] = [src_party e = Some i] without allocating the
    option — used on the per-round authentication check. *)

val dst_party : t -> int option
val is_broadcast : t -> bool
val is_func_bound : t -> bool
val is_from_func : t -> bool

val delivered_to : t -> int -> bool
(** Whether the envelope reaches party [i]'s inbox: direct address or
    broadcast. *)

val endpoint_size : endpoint -> int
(** Bytes of one rendered endpoint ("P<id>", "F" or "*") — the
    addressing-header component of {!wire_size}, exposed so callers
    that cache body sizes can still account headers per envelope. *)

val wire_size : t -> int
(** Bytes this envelope would occupy on a wire: the {!Msg.size_bytes}
    of the body plus a canonical addressing header (endpoints as
    rendered by {!pp}: ["P<id>"], ["F"], or ["*"]). A broadcast
    envelope is one channel use: its size counts once, not once per
    recipient — matching how [sim.broadcasts] counts messages. *)

val pp : Format.formatter -> t -> unit

(** Two-sided envelope arena for the large-n delivery path: records
    handed out at flip cycle [f] are recycled at cycle [f+2], giving
    every envelope exactly one full round of grace when
    {!Network.run} flips once per round under [~reuse_envelopes].
    Bodies stay immutable {!Msg.t} values; only the envelope records
    are recycled, so the arena must not be combined with trace
    recording, delay-fault queues, or adversaries that retain
    delivered envelopes across rounds ([Network.run] enforces the
    first two). *)
module Arena : sig
  type arena

  val create : unit -> arena

  val flip : arena -> unit
  (** Switch sides and reset the side flipped onto, handing its
      records back for reuse. *)

  val flips : arena -> int
  (** Number of flips performed — the generation counter: an envelope
      allocated at [flips = f] stays un-recycled until two further
      flips have happened. *)

  val make : arena -> src:int -> dst:int -> Msg.t -> t
  (** Party-to-party envelope drawn from the current side (the record
      is recycled, the fields are freshly set). *)

  val to_all : arena -> n:int -> src:int -> Msg.t -> t list
  (** Arena-backed {!Envelope.to_all}: same envelopes in the same
      order, drawn from the pool. *)
end
