(** A message in flight: sender, destination, body.

    Senders and destinations are either parties (by id), the trusted
    functionality slot, or — for destinations only — [All]: the
    regular (non-simultaneous) broadcast channel that the paper's
    model provides (§1, §4.1). A broadcast envelope is delivered
    identically to every party, so even a corrupted sender cannot
    equivocate over it; it offers no simultaneity, though: the rushing
    adversary still reads it before choosing the corrupted parties'
    same-round traffic.

    The network authenticates senders — a party cannot spoof another's
    [src] — matching the standard point-to-point model. *)

type endpoint = Party of int | Func | All

type t = { src : endpoint; dst : endpoint; body : Msg.t }

val make : src:int -> dst:int -> Msg.t -> t
(** Party-to-party. *)

val broadcast : src:int -> Msg.t -> t
(** One envelope on the broadcast channel. *)

val to_func : src:int -> Msg.t -> t
val from_func : dst:int -> Msg.t -> t

val to_all : n:int -> src:int -> Msg.t -> t list
(** One copy to every party, including the sender itself (self-delivery
    keeps broadcast code uniform). *)

val to_others : n:int -> src:int -> Msg.t -> t list

val src_party : t -> int option

val src_is : t -> int -> bool
(** [src_is e i] = [src_party e = Some i] without allocating the
    option — used on the per-round authentication check. *)

val dst_party : t -> int option
val is_broadcast : t -> bool
val is_func_bound : t -> bool
val is_from_func : t -> bool

val delivered_to : t -> int -> bool
(** Whether the envelope reaches party [i]'s inbox: direct address or
    broadcast. *)

val wire_size : t -> int
(** Bytes this envelope would occupy on a wire: the {!Msg.size_bytes}
    of the body plus a canonical addressing header (endpoints as
    rendered by {!pp}: ["P<id>"], ["F"], or ["*"]). A broadcast
    envelope is one channel use: its size counts once, not once per
    recipient — matching how [sim.broadcasts] counts messages. *)

val pp : Format.formatter -> t -> unit
