(** Trusted-party hook (the "ideal process" of Canetti's framework).

    A functionality receives, at the end of each round, every envelope
    addressed to [Envelope.Func] that round, and emits envelopes
    delivered in the next round. Crucially, the network gives the
    adversary *no rushing* on functionality traffic: party→Func
    envelopes are invisible to the adversary, and Func→honest envelopes
    never appear in its view. This is what makes Ideal(f_SB) and the Θ
    subprotocol of Lemma 6.4 behave as ideal processes. *)

type t = { f_step : round:int -> inbox:Envelope.t list -> Envelope.t list }

val none : t
(** Absorbs everything, sends nothing. *)

val one_shot :
  at_round:int -> (Envelope.t list -> Envelope.t list) -> t
(** A functionality that acts exactly once: at the end of [at_round] it
    maps the envelopes received that round to replies; all other rounds
    it is silent (and asserts it receives nothing). *)
