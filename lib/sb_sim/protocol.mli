(** A protocol bundles a round count, a party constructor, and an
    optional trusted functionality.

    The contract for parallel broadcast protocols (the only kind built
    here): every party's input is [Msg.Bit], every honest party's
    output is [Msg.List] of [n] bits — its announced-values vector
    B_i = (B_{i,1}, …, B_{i,n}) from §3.2 of the paper. *)

type t = {
  name : string;
  rounds : Ctx.t -> int;
  (** Number of communication rounds; the network then runs one extra
      delivery-only step so messages sent in the last round are seen. *)
  make_functionality : (Ctx.t -> rng:Sb_util.Rng.t -> Functionality.t) option;
  make_party : Ctx.t -> rng:Sb_util.Rng.t -> id:int -> input:Msg.t -> Party.t;
}

val with_name : string -> t -> t
