type t = { f_step : round:int -> inbox:Envelope.t list -> Envelope.t list }

let none = { f_step = (fun ~round:_ ~inbox:_ -> []) }

let one_shot ~at_round f =
  {
    f_step =
      (fun ~round ~inbox ->
        if round = at_round then f inbox
        else begin
          assert (inbox = []);
          []
        end);
  }
