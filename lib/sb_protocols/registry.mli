(** Name-indexed catalogue of every parallel-broadcast protocol in the
    repository, for experiment sweeps and the CLI. *)

type entry = {
  protocol : Sb_sim.Protocol.t;
  claims_independence : bool;
      (** Whether the literature claims any independence notion for
          it; the naive compositions claim none. *)
  min_honest_fraction : string;  (** Informal resilience note. *)
}

val all : entry list
val find : string -> entry option
val names : string list

val simultaneous : entry list
(** Just the protocols claiming an independence property: CGMA,
    Chor–Rabin, Gennaro, Π_G (under its own definition), Ideal. *)
