open Sb_sim

type 'state program = {
  epochs : int;
  init : n:int -> id:int -> input:Msg.t -> 'state;
  contribute : 'state -> epoch:int -> bool;
  observe : 'state -> epoch:int -> Sb_util.Bitvec.t -> 'state;
  finish : 'state -> Msg.t;
}

let epoch_tag j = "epoch:" ^ string_of_int j

let epoch_window ~base_rounds ~epoch =
  let span = base_rounds + 1 in
  (epoch * span, (epoch * span) + base_rounds)

let wrap_env j (e : Envelope.t) =
  { e with Envelope.body = Msg.Tag (epoch_tag j, e.Envelope.body) }

let unwrap_inbox j inbox =
  List.filter_map
    (fun (e : Envelope.t) ->
      match e.Envelope.body with
      | Msg.Tag (t, body) when String.equal t (epoch_tag j) ->
          Some { e with Envelope.body = body }
      | _ -> None)
    inbox

let compile program ~using:(base : Protocol.t) =
  let rounds ctx =
    let r = base.Protocol.rounds ctx in
    (program.epochs * (r + 1)) - 1
  in
  let make_functionality =
    match base.Protocol.make_functionality with
    | None -> None
    | Some make ->
        Some
          (fun ctx ~rng ->
            let base_rounds = base.Protocol.rounds ctx in
            let instances =
              Array.init program.epochs (fun _ -> make ctx ~rng:(Sb_util.Rng.split rng))
            in
            {
              Functionality.f_step =
                (fun ~round ~inbox ->
                  let span = base_rounds + 1 in
                  let epoch = round / span in
                  if epoch >= program.epochs then []
                  else
                    let local = round - (epoch * span) in
                    List.map (wrap_env epoch)
                      (instances.(epoch).Functionality.f_step ~round:local
                         ~inbox:(unwrap_inbox epoch inbox)));
            })
  in
  let make_party ctx ~rng ~id ~input =
    let n = ctx.Ctx.n in
    let base_rounds = base.Protocol.rounds ctx in
    let state = ref (program.init ~n ~id ~input) in
    let current : Party.t option ref = ref None in
    let step ~round ~inbox =
      let span = base_rounds + 1 in
      let epoch = round / span in
      if epoch >= program.epochs then []
      else begin
        let local = round - (epoch * span) in
        if local = 0 then begin
          (* New epoch: instantiate the base protocol on this epoch's
             contributed bit. *)
          let bit = program.contribute !state ~epoch in
          current :=
            Some
              (base.Protocol.make_party ctx ~rng:(Sb_util.Rng.split rng) ~id
                 ~input:(Msg.Bit bit))
        end;
        match !current with
        | None -> []
        | Some party ->
            let out =
              if Sb_obs.Trace_ctx.enabled () then begin
                let sp =
                  Sb_obs.Trace_ctx.begin_span ~agg:"epoch" ~cat:"phase"
                    ~args:[ ("epoch", string_of_int epoch) ]
                    (Printf.sprintf "epoch %d" epoch)
                in
                let out =
                  List.map (wrap_env epoch)
                    (party.Party.step ~round:local ~inbox:(unwrap_inbox epoch inbox))
                in
                Sb_obs.Trace_ctx.end_span sp;
                out
              end
              else
                List.map (wrap_env epoch)
                  (party.Party.step ~round:local ~inbox:(unwrap_inbox epoch inbox))
            in
            if local = base_rounds then begin
              (* Epoch complete: read the announced vector. *)
              (match party.Party.output () with
              | Msg.List l when List.length l = n ->
                  let w =
                    Sb_util.Bitvec.init n (fun i ->
                        match List.nth l i with Msg.Bit b -> b | _ -> false)
                  in
                  state := program.observe !state ~epoch w
              | _ -> ());
              current := None
            end;
            out
      end
    in
    { Party.step; output = (fun () -> program.finish !state) }
  in
  {
    Protocol.name = Printf.sprintf "compiled-%d-epochs-over-%s" program.epochs base.Protocol.name;
    rounds;
    make_functionality;
    make_party;
  }

let xor_coin_program ~rounds =
  {
    epochs = rounds;
    (* State: my input bit (as seed material) and the coins so far,
       encoded as a bitvector [input; coin_0; ...; coin_{e-1}]. *)
    init =
      (fun ~n:_ ~id:_ ~input ->
        let bit = match input with Msg.Bit b -> b | _ -> false in
        Sb_util.Bitvec.of_bools [| bit |]);
    contribute =
      (fun state ~epoch ->
        (* A deterministic "pseudorandom" contribution: my input bit
           XOR the parity of the coins so far XOR the epoch parity.
           (Real coin-flipping would use a local random tape; for the
           compiler-equivalence tests determinism is the point.) *)
        let coins_parity =
          let acc = ref false in
          for i = 1 to Sb_util.Bitvec.length state - 1 do
            if Sb_util.Bitvec.get state i then acc := not !acc
          done;
          !acc
        in
        Sb_util.Bitvec.get state 0 <> coins_parity <> (epoch mod 2 = 1));
    observe =
      (fun state ~epoch:_ w ->
        let coin = Sb_util.Bitvec.parity w in
        Sb_util.Bitvec.of_bools
          (Array.append (Sb_util.Bitvec.to_bools state) [| coin |]));
    finish =
      (fun state ->
        Msg.List
          (List.init
             (Sb_util.Bitvec.length state - 1)
             (fun i -> Msg.Bit (Sb_util.Bitvec.get state (i + 1)))));
  }
