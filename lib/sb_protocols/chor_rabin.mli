(** Chor–Rabin-style simultaneous broadcast in Θ(log n) rounds (after
    Chor & Rabin, PODC 1987).

    The original achieves independence in logarithmically many rounds
    by interleaving commitments with zero-knowledge proofs of
    knowledge, verified in a tournament of pairings. This reproduction
    keeps the commit → prove-knowledge → open skeleton and the
    logarithmic tournament:

    - rounds 0–2: concurrent Pedersen-VSS of every input
      ({!Vss_session}) — the committing step, with recoverable
      openings;
    - rounds 3 … 3+D (D = ⌊log₂ n⌋): a binary-tree aggregation of
      per-party random strings; the root broadcasts the XOR of all
      contributions as a session salt. The salt is fixed only after
      every commitment is, and takes Θ(log n) rounds to assemble —
      this models the original's log-round proof tournament;
    - round 4+D: every dealer broadcasts a knowledge tag
      H(salt ‖ id ‖ f(0) ‖ f'(0)) — producible only by someone who
      knows the opening of its own commitment (the proof-of-knowledge
      step, collapsed to one round by the random-oracle hash);
    - round 5+D: simultaneous reveal of all shares.

    A dealer whose knowledge tag is missing or wrong announces 0; the
    check uses only pre-reveal data, so it introduces no adaptivity.
    Requires t < n/2. *)

val protocol : Sb_sim.Protocol.t

val tree_depth : int -> int
(** ⌊log₂ n⌋ — the number of aggregation hops. *)

val confirm_round : n:int -> int

val reveal_round : n:int -> int

val knowledge_tag : salt:string -> dealer:int -> secret:Sb_crypto.Field.t -> blind:Sb_crypto.Field.t -> string
(** The hash every party recomputes to validate a dealer's
    proof-of-knowledge tag. *)
