(** Bare commit-then-open parallel broadcast — deliberately WEAK.

    Round 0: everyone broadcasts a commitment to (id, bit); round 1:
    everyone broadcasts the opening; missing or invalid openings
    announce 0.

    Binding stops a corrupted party from *changing* its value after
    seeing the honest openings — but nothing stops it from *selectively
    withholding* its opening as a function of them (rushing shows it
    the honest openings first), steering its announced value between
    "committed bit" and "default 0" adaptively. The reveal-withholding
    adversary exploits exactly this, and the G/CR testers catch it —
    the ablation that shows why CGMA/Chor–Rabin/Gennaro all carry a
    verifiable-secret-sharing layer that makes reveals recoverable by
    the honest majority. *)

val protocol : Sb_sim.Protocol.t

val commit_tag : string
val open_tag : string

val payload : id:int -> bit:bool -> string
(** The committed string; exposed so adversaries can craft openings. *)
