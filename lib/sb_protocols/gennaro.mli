(** Gennaro-style constant-round simultaneous broadcast (after
    Gennaro, IEEE TPDS 2000): all parties VSS their input in parallel
    on the broadcast channel, then reconstruct simultaneously.

    Rounds (independent of n): deal ‖ … ‖ deal, complain, respond,
    reveal — 4 communication rounds. The same recoverable-commitment
    argument as in {!Cgma} applies, just with all dealings concurrent;
    the rushing adversary sees honest commitments before choosing the
    corrupted parties' own dealings, but perfect hiding makes that
    view independent of the honest bits.

    This protocol is the paper's "most efficient" reference point; the
    paper's Lemma 6.4 does NOT say this protocol is weak — it says the
    *definition* [12] it was proven under is weak (see {!Pi_g} for the
    witness). Requires t < n/2. *)

val protocol : Sb_sim.Protocol.t

val reveal_round : int
(** Network round of the simultaneous reveal (3). *)
