open Sb_sim
open Sb_crypto

let rec flog v = if v <= 1 then 0 else 1 + flog (v / 2)

let heap_depth i = flog (i + 1)
let tree_depth n = heap_depth (n - 1)

let tree_base = Vss_session.local_rounds (* = 3: after deal/complain/respond *)
let salt_round ~n = tree_base + tree_depth n
let confirm_round ~n = salt_round ~n + 1
let reveal_round ~n = confirm_round ~n + 1

let knowledge_tag ~salt ~dealer ~secret ~blind =
  Sha256.digest
    (Printf.sprintf "cr-pok:%s:%d:%d:%d" salt dealer (Field.to_int secret)
       (Field.to_int blind))

let protocol =
  {
    Protocol.name = "chor-rabin-log";
    rounds = (fun ctx -> reveal_round ~n:ctx.Ctx.n + 1);
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let n = ctx.Ctx.n in
        let depth = heap_depth id in
        let max_depth = tree_depth n in
        let sessions =
          Array.init n (fun dealer ->
              let secret =
                if dealer = id then Some (Wire.field_of_bit (Msg.to_bit_exn input)) else None
              in
              Vss_session.create ctx ~rng:(Sb_util.Rng.split rng) ~dealer ~me:id ~secret)
        in
        (* Tree aggregation state: my accumulated XOR of contributions. *)
        let acc = ref (Sb_util.Rng.bytes rng ctx.Ctx.k) in
        let salt = ref "" in
        let confs : (int, string) Hashtbl.t = Hashtbl.create 8 in
        let fold_children inbox =
          List.iter
            (fun (src, m) ->
              (* Accept contributions only from my heap children. *)
              if src = (2 * id) + 1 || src = (2 * id) + 2 then
                match m with
                | Msg.Str s when String.length s = String.length !acc ->
                    acc := Sha256.xor_strings !acc s
                | _ -> ())
            (Wire.tagged_from_parties ~tag:"cr-tree" inbox)
        in
        let vss_step ~round ~inbox =
          if round <= Vss_session.local_rounds then
            List.concat (List.init n (fun d -> Vss_session.step sessions.(d) ~round ~inbox))
          else []
        in
        let step ~round ~inbox =
          let msgs = vss_step ~round ~inbox in
          let tree_round = round - tree_base in
          let extra =
            if tree_round >= 0 && tree_round <= max_depth then begin
              fold_children inbox;
              if tree_round = max_depth - depth && id <> 0 then
                (* My slot: pass the accumulated value to my parent. *)
                [ Envelope.make ~src:id ~dst:((id - 1) / 2) (Msg.Tag ("cr-tree", Msg.Str !acc)) ]
              else if tree_round = max_depth && id = 0 then begin
                salt := !acc;
                [ Envelope.broadcast ~src:0 (Msg.Tag ("cr-salt", Msg.Str !salt)) ]
              end
              else []
            end
            else if round = confirm_round ~n then begin
              (match Wire.first_from ~tag:"cr-salt" ~src:0 inbox with
              | Some (Msg.Str s) -> salt := s
              | Some _ | None -> if id <> 0 then salt := "");
              match Vss_session.dealer_opening sessions.(id) with
              | Some (secret, blind) ->
                  [
                    Envelope.broadcast ~src:id
                      (Msg.Tag
                         ("cr-conf", Msg.Str (knowledge_tag ~salt:!salt ~dealer:id ~secret ~blind)));
                  ]
              | None -> []
            end
            else if round = reveal_round ~n then begin
              List.iter
                (fun (src, m) ->
                  match m with
                  | Msg.Str c when not (Hashtbl.mem confs src) -> Hashtbl.replace confs src c
                  | _ -> ())
                (Wire.tagged_from_parties ~tag:"cr-conf" inbox);
              List.concat (List.init n (fun d -> Vss_session.reveal_msgs sessions.(d)))
            end
            else if round = reveal_round ~n + 1 then begin
              Array.iter (fun s -> Vss_session.collect_reveals s inbox) sessions;
              []
            end
            else []
          in
          msgs @ extra
        in
        let output () =
          Msg.bits
            (List.init n (fun d ->
                 match (Vss_session.secret sessions.(d), Vss_session.blind sessions.(d)) with
                 | Some s, Some b ->
                     let expected = knowledge_tag ~salt:!salt ~dealer:d ~secret:s ~blind:b in
                     let confirmed =
                       match Hashtbl.find_opt confs d with
                       | Some c -> String.equal c expected
                       | None -> false
                     in
                     confirmed && Wire.bit_of_field s
                 | _ -> false))
        in
        { Party.step; output });
  }
