(** The CGMA compiler view (§4.1): running protocols written for a
    simultaneous-broadcast network on a network that only has regular
    broadcast.

    Chor, Goldwasser, Micali and Awerbuch present their result as a
    *compiler*: any protocol whose communication consists of epochs of
    simultaneous broadcast can be executed on a regular broadcast
    network by replacing each epoch with a simultaneous-broadcast
    subprotocol. This module is that compiler, executable:

    - a {!program} describes one party of an SB-hybrid protocol — in
      each epoch it contributes a bit and then observes the full
      announced vector;
    - [compile program ~using] lowers it onto the simulated network,
      instantiating each epoch with the given parallel-broadcast
      protocol in its own round window (with envelope namespacing, so
      any base protocol works unmodified);
    - [compile program ~using:Ideal_sb.protocol] is the HYBRID (ideal)
      execution itself — the reference the compiler theorem compares
      against. The test suite checks compiled-with-Gennaro ≡
      compiled-with-Ideal on the adversary battery.

    Programs are pure state machines, so the same program text runs in
    both worlds unchanged — which is the point of the compiler
    theorem. *)

type 'state program = {
  epochs : int;  (** number of simultaneous-broadcast epochs *)
  init : n:int -> id:int -> input:Sb_sim.Msg.t -> 'state;
  contribute : 'state -> epoch:int -> bool;
      (** the bit this party hands to epoch [epoch]'s broadcast *)
  observe : 'state -> epoch:int -> Sb_util.Bitvec.t -> 'state;
      (** the epoch's announced vector, as seen by this party *)
  finish : 'state -> Sb_sim.Msg.t;
}

val compile : 'state program -> using:Sb_sim.Protocol.t -> Sb_sim.Protocol.t
(** The base protocol must not use a trusted functionality unless it is
    [Ideal_sb.protocol] (whose functionality the compiler knows how to
    re-instantiate per epoch). *)

val epoch_window : base_rounds:int -> epoch:int -> int * int
(** Inclusive network-round window of an epoch, for adversaries that
    align with the schedule. *)

val xor_coin_program : rounds:int -> Sb_util.Bitvec.t program
(** Demo program: [rounds] epochs of collective coin flipping; each
    epoch every party contributes a pseudorandom bit derived from its
    input and the previous coins, and the epoch coin is the XOR of the
    announced vector. Outputs the [Msg.List] of coins. Deterministic
    given inputs and announced history, so compiled and hybrid
    executions are comparable bit-for-bit. *)
