(** Ideal(f_SB): the ideal process of Definition 4.1.

    All parties hand their input bit to the trusted functionality,
    which evaluates f_SB(x) = (x, …, x) and returns the full vector to
    everyone. Corrupted parties' inputs reach the functionality
    through the adversary, but — by the ideal-channel semantics of
    {!Sb_sim.Functionality} — without the adversary ever seeing the
    honest inputs first. This protocol is the gold standard the Sb
    tester compares real protocols against, and trivially satisfies
    every independence notion on every distribution. *)

val protocol : Sb_sim.Protocol.t

val input_tag : string
(** Wire tag corrupted parties must use to contribute an input (the
    adversary speaks this format when it substitutes inputs). *)
