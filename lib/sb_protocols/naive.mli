(** The naive parallel-broadcast protocols of §3.2 — consistent and
    correct, but with NO independence guarantee. They exist to be
    attacked: the rushing echo adversary against them is the paper's
    canonical counterexample.

    - [sequential]: party i broadcasts its bit (on the broadcast
      channel) in round i; n rounds. A corrupted late sender announces
      whatever it heard earlier.
    - [concurrent]: everyone broadcasts in round 0; one round. Rushing
      still lets corrupted parties pick their value after reading the
      honest round-0 broadcasts.

    For the point-to-point instantiations over the Byzantine broadcast
    substrates, see {!Sb_broadcast.Parallel}. *)

val sequential : Sb_sim.Protocol.t
val concurrent : Sb_sim.Protocol.t
