(** One dealer's Pedersen-VSS sharing, as a 3-local-round session over
    the broadcast-channel network, plus the deferred public
    reconstruction. This is the engine inside the CGMA-style protocol
    (one session per dealer, run sequentially), Gennaro's protocol
    (all sessions concurrent), and Chor–Rabin (concurrent sessions
    followed by the log-round confirmation tournament).

    Local rounds:
    - 0 (deal): the dealer broadcasts its coefficient commitments and
      sends each party its share pair privately;
    - 1 (complain): every party broadcasts whether its share verified;
    - 2 (respond): the dealer broadcasts the share pairs of the
      complainers; everyone judges the responses against the public
      commitment.
    - 3: judgment is final; [sharing_done] becomes meaningful.

    A dealer is disqualified — announced value 0 — iff its commitment
    was missing/malformed or some broadcast complaint lacks a valid
    broadcast response. Disqualification is decided from broadcast
    data only, so all honest parties agree on it, and it is fixed
    before any secret is revealed (the simultaneity lever: nothing an
    adversary learns at reveal time can change any committed value).

    Reconstruction: each party broadcasts its share pair with
    [reveal_msgs]; shares are filtered against the commitment and
    interpolated. With at most [ctx.thresh < n/2] corruptions there
    are always enough honest verifying shares, so a non-disqualified
    dealer's secret is always recovered — a corrupted party cannot
    even abort its own reveal (this recoverability is what kills the
    selective-abort bias attack on bare commit-then-open). *)

type t

val create :
  Sb_sim.Ctx.t ->
  rng:Sb_util.Rng.t ->
  dealer:int ->
  me:int ->
  secret:Sb_crypto.Field.t option ->
  t
(** [secret] must be [Some _] iff [me = dealer]. *)

val local_rounds : int
(** 3: deal, complain, respond. Judgment is available from local round
    3 on. *)

val step : t -> round:int -> inbox:Sb_sim.Envelope.t list -> Sb_sim.Envelope.t list
(** [round] is local; the inbox may be the party's full inbox (this
    session filters by its own tags). *)

val disqualified : t -> bool
(** Meaningful from local round 3 (after the response round's
    deliveries have been fed to [step]). *)

val reveal_msgs : t -> Sb_sim.Envelope.t list
(** The broadcast this party makes to open the sharing (empty if it
    holds no verifying share or the dealer is disqualified). *)

val collect_reveals : t -> Sb_sim.Envelope.t list -> unit

val secret : t -> Sb_crypto.Field.t option
(** Reconstructed secret: [None] if disqualified or (impossible under
    honest majority) too few verifying shares. *)

val blind : t -> Sb_crypto.Field.t option
(** Reconstructed blinding value f'(0) — used by Chor–Rabin's
    confirmation check. *)

val dealer_opening : t -> (Sb_crypto.Field.t * Sb_crypto.Field.t) option
(** Dealer side only: (f(0), f'(0)); [None] for non-dealers. *)
