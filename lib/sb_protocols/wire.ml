open Sb_sim

let tagged ~tag inbox =
  List.filter_map
    (fun (e : Envelope.t) ->
      match e.Envelope.body with
      | Msg.Tag (t, m) when String.equal t tag -> Some (e.Envelope.src, m)
      | _ -> None)
    inbox

let tagged_from_parties ~tag inbox =
  List.filter_map
    (fun (e : Envelope.t) ->
      match (Envelope.src_party e, e.Envelope.body) with
      | Some src, Msg.Tag (t, m) when String.equal t tag -> Some (src, m)
      | _ -> None)
    inbox

let first_from ~tag ~src inbox =
  List.find_map
    (fun (s, m) -> if s = src then Some m else None)
    (tagged_from_parties ~tag inbox)

let bit_of_field f = Sb_crypto.Field.equal f Sb_crypto.Field.one
let field_of_bit b = if b then Sb_crypto.Field.one else Sb_crypto.Field.zero
