open Sb_sim

let input_tag = "fsb-input"
let output_tag = "fsb-output"

let protocol =
  {
    Protocol.name = "ideal-fsb";
    rounds = (fun _ -> 1);
    make_functionality =
      Some
        (fun ctx ~rng:_ ->
          Functionality.one_shot ~at_round:0 (fun inbox ->
              let n = ctx.Ctx.n in
              let w = Array.make n false in
              List.iter
                (fun (e : Envelope.t) ->
                  match (Envelope.src_party e, e.Envelope.body) with
                  | Some i, Msg.Tag (t, Msg.Bit b) when String.equal t input_tag -> w.(i) <- b
                  | _ -> () (* malformed or missing input: default 0 *))
                inbox;
              let out = Msg.Tag (output_tag, Msg.bits (Array.to_list w)) in
              List.init n (fun i -> Envelope.from_func ~dst:i out)));
    make_party =
      (fun _ ~rng:_ ~id ~input ->
        let result = ref Msg.Unit in
        let step ~round ~inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match e.Envelope.body with
              | Msg.Tag (t, m) when String.equal t output_tag -> result := m
              | _ -> ())
            inbox;
          if round = 0 then [ Envelope.to_func ~src:id (Msg.Tag (input_tag, input)) ] else []
        in
        { Party.step; output = (fun () -> !result) });
  }
