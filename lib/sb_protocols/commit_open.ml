open Sb_sim
open Sb_crypto

let commit_tag = "co-commit"
let open_tag = "co-open"
let payload ~id ~bit = Printf.sprintf "co:%d:%c" id (if bit then '1' else '0')

let parse_payload s =
  match String.split_on_char ':' s with
  | [ "co"; id; bit ] -> (
      match (int_of_string_opt id, bit) with
      | Some id, "1" -> Some (id, true)
      | Some id, "0" -> Some (id, false)
      | _ -> None)
  | _ -> None

let protocol =
  {
    Protocol.name = "commit-open";
    rounds = (fun _ -> 2);
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let commits : (int, string) Hashtbl.t = Hashtbl.create 8 in
        let opens : (int, Commit.opening) Hashtbl.t = Hashtbl.create 8 in
        let my_opening = ref None in
        let step ~round ~inbox =
          List.iter
            (fun (src, m) ->
              match m with
              | Msg.Str c when not (Hashtbl.mem commits src) -> Hashtbl.replace commits src c
              | _ -> ())
            (Wire.tagged_from_parties ~tag:commit_tag inbox);
          List.iter
            (fun (src, m) ->
              match m with
              | Msg.List [ Msg.Str value; Msg.Str nonce ] when not (Hashtbl.mem opens src) ->
                  Hashtbl.replace opens src { Commit.value; nonce }
              | _ -> ())
            (Wire.tagged_from_parties ~tag:open_tag inbox);
          match round with
          | 0 ->
              let bit = Msg.to_bit_exn input in
              let c, o = Commit.commit ctx.Ctx.commit rng (payload ~id ~bit) in
              my_opening := Some o;
              [ Envelope.broadcast ~src:id (Msg.Tag (commit_tag, Msg.Str c)) ]
          | 1 -> (
              match !my_opening with
              | Some o ->
                  [
                    Envelope.broadcast ~src:id
                      (Msg.Tag (open_tag, Msg.List [ Msg.Str o.Commit.value; Msg.Str o.Commit.nonce ]));
                  ]
              | None -> [])
          | _ -> []
        in
        let output () =
          Msg.bits
            (List.init ctx.Ctx.n (fun j ->
                 match (Hashtbl.find_opt commits j, Hashtbl.find_opt opens j) with
                 | Some c, Some o when Commit.verify ctx.Ctx.commit c o -> (
                     match parse_payload o.Commit.value with
                     | Some (id', b) when id' = j -> b
                     | _ -> false)
                 | _ -> false))
        in
        { Party.step; output });
  }
