open Sb_sim

let protocol =
  {
    Protocol.name = "pi-g";
    rounds = (fun _ -> 1);
    make_functionality = Some Theta.make;
    make_party =
      (fun _ ~rng:_ ~id ~input ->
        let result = ref Msg.Unit in
        let step ~round ~inbox =
          List.iter
            (fun (e : Envelope.t) ->
              match e.Envelope.body with
              | Msg.Tag (t, m) when String.equal t Theta.output_tag -> result := m
              | _ -> ())
            inbox;
          if round = 0 then
            (* Honest parties always set the auxiliary bit to 0. *)
            [ Envelope.to_func ~src:id (Msg.Tag (Theta.input_tag, Msg.List [ input; Msg.Bit false ])) ]
          else []
        in
        { Party.step; output = (fun () -> !result) });
  }
