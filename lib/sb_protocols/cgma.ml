open Sb_sim

let phase_len = Vss_session.local_rounds (* deal, complain, respond *)
let phase_base d = d * phase_len
let reveal_round ~n = n * phase_len

let protocol =
  {
    Protocol.name = "cgma-vss";
    (* n dealing phases, the reveal broadcast, and the final delivery
       step the network adds. *)
    rounds = (fun ctx -> reveal_round ~n:ctx.Ctx.n + 1);
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let n = ctx.Ctx.n in
        let sessions =
          Array.init n (fun dealer ->
              let secret =
                if dealer = id then Some (Wire.field_of_bit (Msg.to_bit_exn input)) else None
              in
              Vss_session.create ctx ~rng:(Sb_util.Rng.split rng) ~dealer ~me:id ~secret)
        in
        let step ~round ~inbox =
          let reveal_at = reveal_round ~n in
          (* Feed every session whose phase window covers this round.
             A session's local round r happens at phase_base + r, and
             its judgment step (local 3) coincides with the next
             phase's local 0. *)
          let session_msgs =
            List.concat
              (List.init n (fun dealer ->
                   let local = round - phase_base dealer in
                   if local < 0 || local > Vss_session.local_rounds then []
                   else Vss_session.step sessions.(dealer) ~round:local ~inbox))
          in
          if round = reveal_at then
            session_msgs
            @ List.concat (List.init n (fun d -> Vss_session.reveal_msgs sessions.(d)))
          else if round = reveal_at + 1 then begin
            Array.iter (fun s -> Vss_session.collect_reveals s inbox) sessions;
            session_msgs
          end
          else session_msgs
        in
        let output () =
          Msg.bits
            (List.init n (fun d ->
                 match Vss_session.secret sessions.(d) with
                 | Some s -> Wire.bit_of_field s
                 | None -> false))
        in
        { Party.step; output });
  }
