open Sb_sim

let value_tag = "naive-value"

(* Shared party logic: broadcast my bit at [my_round id]; record every
   first broadcast from each party; announce with default 0. *)
let make ~name ~rounds ~my_round =
  {
    Protocol.name;
    rounds;
    make_functionality = None;
    make_party =
      (fun ctx ~rng:_ ~id ~input ->
        let n = ctx.Ctx.n in
        let heard : Msg.t option array = Array.make n None in
        let step ~round ~inbox =
          List.iter
            (fun (src, m) -> if heard.(src) = None then heard.(src) <- Some m)
            (Wire.tagged_from_parties ~tag:value_tag inbox);
          if round = my_round ctx id then
            [ Envelope.broadcast ~src:id (Msg.Tag (value_tag, input)) ]
          else []
        in
        let output () =
          Msg.bits
            (List.init n (fun j ->
                 match heard.(j) with Some (Msg.Bit b) -> b | Some _ | None -> false))
        in
        { Party.step; output });
  }

let sequential =
  make ~name:"naive-sequential" ~rounds:(fun ctx -> ctx.Ctx.n) ~my_round:(fun _ id -> id)

let concurrent = make ~name:"naive-concurrent" ~rounds:(fun _ -> 1) ~my_round:(fun _ _ -> 0)
