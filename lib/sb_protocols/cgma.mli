(** CGMA-style simultaneous broadcast (after Chor, Goldwasser, Micali,
    Awerbuch, FOCS 1985): verifiable secret sharing of every input,
    dealt one dealer at a time, then one simultaneous public
    reconstruction.

    Structure (on the broadcast-channel network the paper assumes):
    - for each dealer d = 0 … n−1 in turn, a 3-round Pedersen-VSS
      phase ({!Vss_session}): deal, complain, respond;
    - one reveal round in which everybody broadcasts all its shares;
    - output: W_d = 1 if dealer d's reconstructed secret is the field
      element 1, else 0 (disqualified dealers announce 0).

    Round complexity Θ(n) — the sequential dealing mirrors the
    original's linear-round fault handling and is what [8] and [12]
    set out to beat. Independence holds in the strong simulation sense:
    every value is information-theoretically fixed (and recoverable by
    the honest majority alone) before the first secret is revealed.

    Requires t < n/2 (honest-majority reconstruction). *)

val protocol : Sb_sim.Protocol.t

val phase_base : int -> int
(** [phase_base d] is the network round at which dealer [d]'s VSS
    phase starts; exposed for adversaries aligned with the schedule. *)

val reveal_round : n:int -> int
