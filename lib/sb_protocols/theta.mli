(** The subprotocol Θ of Lemma 6.4, as an ideal functionality securely
    computing the function g.

    g(v), with each vᵢ parsed as (xᵢ, bᵢ):
    - draw a uniform bit r; let L = \{ i : bᵢ = 1 \};
    - if |L| = 2 with ℓ₁ < ℓ₂: let y = ⊕_{i ∉ L} xᵢ and set
      w_{ℓ₁} = r, w_{ℓ₂} = r ⊕ y, and wᵢ = xᵢ elsewhere;
    - otherwise w = x;
    - output w to every party.

    Claim 6.5 states a protocol securely implementing g exists (by
    general SFE); running g inside the trusted-party hook exercises
    exactly the behaviour the lemma's proof reasons about: each single
    wᵢ is uniform given the honest outputs (r masks everything), but
    w_{ℓ₁} ⊕ w_{ℓ₂} equals the XOR of everyone else's bits, so the
    XOR of ALL announced values is forced to 0. *)

val input_tag : string
(** Parties send Tag(input_tag, List [Bit x; Bit b]). *)

val output_tag : string

val g :
  r:bool -> (bool * bool) array -> bool array
(** Pure reference implementation of the function g (exposed for unit
    tests); [r] is the internal coin. *)

val make : Sb_sim.Ctx.t -> rng:Sb_util.Rng.t -> Sb_sim.Functionality.t
