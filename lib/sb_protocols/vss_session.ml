open Sb_sim
open Sb_crypto

let local_rounds = 3

type t = {
  ctx : Ctx.t;
  dealer : int;
  me : int;
  tag_comm : string;
  tag_share : string;
  tag_complain : string;
  tag_resp : string;
  tag_reveal : string;
  (* Dealer side *)
  dealt : Pedersen.dealt option;
  secret_in : Field.t option;
  (* Receiver side *)
  mutable commitment : Pedersen.commitment option;
  mutable my_share : Pedersen.share option;
  (* Cached verdict of [Pedersen.verify_share commitment my_share];
     cleared whenever either input changes, so the complain-round check
     is reused by [reveal_msgs] instead of re-running the commitment
     evaluation. *)
  mutable my_share_ok : bool option;
  mutable complainers : int list;
  mutable disqualified : bool;
  mutable reveals : (int, Pedersen.share) Hashtbl.t;
}

let tagname dealer suffix = Printf.sprintf "vss:%d:%s" dealer suffix

(* The five per-session wire tags are pure functions of the dealer
   index, and the samplers create n sessions per party per Monte-Carlo
   run — so they are served from a table built once at module init
   (before any worker domain spawns; the formatted strings are
   identical to the sprintf fallback, so wire bytes don't change). *)
let max_cached_dealer = 128

let tags dealer =
  ( tagname dealer "comm",
    tagname dealer "share",
    tagname dealer "complain",
    tagname dealer "resp",
    tagname dealer "reveal" )

let tag_table = Array.init max_cached_dealer tags

let create ctx ~rng ~dealer ~me ~secret =
  assert ((me = dealer) = Option.is_some secret);
  let dealt =
    Option.map
      (fun secret ->
        Pedersen.deal rng ~threshold:ctx.Ctx.thresh ~parties:ctx.Ctx.n ~secret)
      secret
  in
  let tag_comm, tag_share, tag_complain, tag_resp, tag_reveal =
    if dealer < max_cached_dealer then tag_table.(dealer) else tags dealer
  in
  {
    ctx;
    dealer;
    me;
    tag_comm;
    tag_share;
    tag_complain;
    tag_resp;
    tag_reveal;
    dealt;
    secret_in = secret;
    commitment = None;
    my_share = None;
    my_share_ok = None;
    complainers = [];
    disqualified = false;
    reveals = Hashtbl.create 8;
  }

let decode_commitment ctx m =
  match m with
  | Msg.List elts when List.length elts = ctx.Ctx.thresh + 1 ->
      let decoded = List.filter_map (function Msg.Ge g -> Some g | _ -> None) elts in
      if List.length decoded = List.length elts then Some (Array.of_list decoded) else None
  | _ -> None

let decode_share_pair index = function
  | Msg.List [ Msg.Fe value; Msg.Fe blind ] -> Some { Pedersen.index; value; blind }
  | _ -> None

let encode_share (s : Pedersen.share) = Msg.List [ Msg.Fe s.Pedersen.value; Msg.Fe s.Pedersen.blind ]

let set_commitment t c =
  t.commitment <- c;
  t.my_share_ok <- None

let set_my_share t s =
  t.my_share <- s;
  t.my_share_ok <- None

let my_share_valid t =
  match t.my_share_ok with
  | Some ok -> ok
  | None ->
      let ok =
        match (t.commitment, t.my_share) with
        | Some c, Some s -> Pedersen.verify_share c s
        | _ -> false
      in
      t.my_share_ok <- Some ok;
      ok

(* Trace_ctx phase names for the local rounds (see the mli round
   glossary); sessions driven past round 3 show up as vss.idle. *)
let phase_name = function
  | 0 -> "vss.deal"
  | 1 -> "vss.verify"
  | 2 -> "vss.complain"
  | 3 -> "vss.judge"
  | _ -> "vss.idle"

let step_impl t ~round ~inbox =
  match round with
  | 0 -> (
      (* Deal: broadcast commitment, send shares point-to-point. *)
      match t.dealt with
      | None -> []
      | Some d ->
          set_commitment t (Some d.Pedersen.commitment);
          set_my_share t (Some d.Pedersen.shares.(t.me));
          Envelope.broadcast ~src:t.me
            (Msg.Tag
               ( t.tag_comm,
                 Msg.List
                   (Array.to_list (Array.map (fun g -> Msg.Ge g) d.Pedersen.commitment)) ))
          :: List.filter_map
               (fun j ->
                 if j = t.me then None
                 else
                   Some
                     (Envelope.make ~src:t.me ~dst:j
                        (Msg.Tag (t.tag_share, encode_share d.Pedersen.shares.(j)))))
               (List.init t.ctx.Ctx.n Fun.id))
  | 1 ->
      (* Receive commitment and share; complain if anything is off. *)
      if t.me <> t.dealer then begin
        (match Wire.first_from ~tag:t.tag_comm ~src:t.dealer inbox with
        | Some m -> set_commitment t (decode_commitment t.ctx m)
        | None -> ());
        match Wire.first_from ~tag:t.tag_share ~src:t.dealer inbox with
        | Some m -> set_my_share t (decode_share_pair t.me m)
        | None -> ()
      end;
      let unhappy = not (my_share_valid t) in
      [ Envelope.broadcast ~src:t.me (Msg.Tag (t.tag_complain, Msg.Bit unhappy)) ]
  | 2 ->
      (* Record broadcast complaints; the dealer answers them. *)
      t.complainers <-
        List.filter_map
          (fun (src, m) -> match m with Msg.Bit true -> Some src | _ -> None)
          (Wire.tagged_from_parties ~tag:t.tag_complain inbox);
      (match t.dealt with
      | Some d when t.complainers <> [] ->
          let answers =
            List.map
              (fun j ->
                Msg.List
                  [ Msg.Int j; Msg.Fe d.Pedersen.shares.(j).Pedersen.value;
                    Msg.Fe d.Pedersen.shares.(j).Pedersen.blind ])
              t.complainers
          in
          [ Envelope.broadcast ~src:t.me (Msg.Tag (t.tag_resp, Msg.List answers)) ]
      | _ -> [])
  | 3 ->
      (* Judge: every complaint needs a valid broadcast response. *)
      let responses =
        match Wire.first_from ~tag:t.tag_resp ~src:t.dealer inbox with
        | Some (Msg.List answers) ->
            List.filter_map
              (function
                | Msg.List [ Msg.Int j; Msg.Fe value; Msg.Fe blind ] ->
                    Some (j, { Pedersen.index = j; value; blind })
                | _ -> None)
              answers
        | Some _ | None -> []
      in
      (match t.commitment with
      | None -> t.disqualified <- true
      | Some c ->
          let answered j =
            List.exists (fun (i, s) -> i = j && Pedersen.verify_share c s) responses
          in
          if not (List.for_all answered t.complainers) then t.disqualified <- true
          else if List.mem t.me t.complainers then
            (* Adopt the (valid) public response as my share. *)
            set_my_share t (List.assoc_opt t.me responses));
      []
  | _ -> []

let step t ~round ~inbox =
  if Sb_obs.Trace_ctx.enabled () then begin
    let sp = Sb_obs.Trace_ctx.begin_span ~cat:"phase" (phase_name round) in
    let out = step_impl t ~round ~inbox in
    Sb_obs.Trace_ctx.end_span sp;
    out
  end
  else step_impl t ~round ~inbox

let disqualified t = t.disqualified

let reveal_msgs t =
  if t.disqualified || not (my_share_valid t) then []
  else
    match t.my_share with
    | Some s -> [ Envelope.broadcast ~src:t.me (Msg.Tag (t.tag_reveal, encode_share s)) ]
    | None -> []

let collect_reveals t inbox =
  match t.commitment with
  | None -> ()
  | Some c ->
      List.iter
        (fun (src, m) ->
          if not (Hashtbl.mem t.reveals src) then
            match decode_share_pair src m with
            | Some s when Pedersen.verify_share c s -> Hashtbl.replace t.reveals src s
            | Some _ | None -> ())
        (Wire.tagged_from_parties ~tag:t.tag_reveal inbox)

let good_shares t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.reveals []
  |> List.sort (fun a b -> Int.compare a.Pedersen.index b.Pedersen.index)

let reconstruct_with t f =
  if t.disqualified then None
  else
    let shares = good_shares t in
    if List.length shares >= t.ctx.Ctx.thresh + 1 then Some (f shares) else None

let secret t = reconstruct_with t Pedersen.reconstruct
let blind t = reconstruct_with t Pedersen.reconstruct_blind

let dealer_opening t =
  match (t.secret_in, t.dealt) with
  | Some secret, Some d -> Some (secret, d.Pedersen.blind0)
  | _ -> None
