type entry = {
  protocol : Sb_sim.Protocol.t;
  claims_independence : bool;
  min_honest_fraction : string;
}

let all =
  [
    { protocol = Ideal_sb.protocol; claims_independence = true; min_honest_fraction = "any t < n" };
    { protocol = Cgma.protocol; claims_independence = true; min_honest_fraction = "t < n/2" };
    { protocol = Chor_rabin.protocol; claims_independence = true; min_honest_fraction = "t < n/2" };
    { protocol = Gennaro.protocol; claims_independence = true; min_honest_fraction = "t < n/2" };
    { protocol = Pi_g.protocol; claims_independence = true; min_honest_fraction = "t < n/2" };
    { protocol = Naive.sequential; claims_independence = false; min_honest_fraction = "any t < n" };
    { protocol = Naive.concurrent; claims_independence = false; min_honest_fraction = "any t < n" };
  ]

let find name = List.find_opt (fun e -> String.equal e.protocol.Sb_sim.Protocol.name name) all
let names = List.map (fun e -> e.protocol.Sb_sim.Protocol.name) all

let simultaneous =
  List.filter
    (fun e -> e.claims_independence && e.protocol.Sb_sim.Protocol.name <> "ideal-fsb")
    all
