open Sb_sim

let reveal_round = Vss_session.local_rounds (* judgment step doubles as reveal *)

let protocol =
  {
    Protocol.name = "gennaro-constant";
    rounds = (fun _ -> reveal_round + 1);
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let n = ctx.Ctx.n in
        let sessions =
          Array.init n (fun dealer ->
              let secret =
                if dealer = id then Some (Wire.field_of_bit (Msg.to_bit_exn input)) else None
              in
              Vss_session.create ctx ~rng:(Sb_util.Rng.split rng) ~dealer ~me:id ~secret)
        in
        let all_step ~round ~inbox =
          List.concat
            (List.init n (fun d -> Vss_session.step sessions.(d) ~round ~inbox))
        in
        let step ~round ~inbox =
          let msgs = all_step ~round ~inbox in
          if round = reveal_round then
            (* Judgments just ran (local round 3); open everything. *)
            msgs @ List.concat (List.init n (fun d -> Vss_session.reveal_msgs sessions.(d)))
          else if round = reveal_round + 1 then begin
            Array.iter (fun s -> Vss_session.collect_reveals s inbox) sessions;
            msgs
          end
          else msgs
        in
        let output () =
          Msg.bits
            (List.init n (fun d ->
                 match Vss_session.secret sessions.(d) with
                 | Some s -> Wire.bit_of_field s
                 | None -> false))
        in
        { Party.step; output });
  }
