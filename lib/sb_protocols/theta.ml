open Sb_sim

let input_tag = "theta-input"
let output_tag = "theta-output"

let g ~r v =
  let n = Array.length v in
  let flagged = List.filter (fun i -> snd v.(i)) (List.init n Fun.id) in
  match flagged with
  | [ l1; l2 ] ->
      let y = ref false in
      for i = 0 to n - 1 do
        if i <> l1 && i <> l2 && fst v.(i) then y := not !y
      done;
      Array.init n (fun i ->
          if i = l1 then r else if i = l2 then r <> !y else fst v.(i))
  | _ -> Array.map fst v

let make ctx ~rng =
  Functionality.one_shot ~at_round:0 (fun inbox ->
      let n = ctx.Ctx.n in
      let v = Array.make n (false, false) in
      List.iter
        (fun (e : Envelope.t) ->
          match (Envelope.src_party e, e.Envelope.body) with
          | Some i, Msg.Tag (t, Msg.List [ Msg.Bit x; Msg.Bit b ]) when String.equal t input_tag
            ->
              v.(i) <- (x, b)
          | _ -> ())
        inbox;
      let w = g ~r:(Sb_util.Rng.bool rng) v in
      let out = Msg.Tag (output_tag, Msg.bits (Array.to_list w)) in
      List.init n (fun i -> Envelope.from_func ~dst:i out))
