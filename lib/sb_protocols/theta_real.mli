(** Π_G over a REAL Θ: the function g of Lemma 6.4 evaluated by the
    BGW protocol instead of a trusted party — discharging the
    substitution note on Claim 6.5 ("a protocol that securely
    implements g can be built using known techniques [2, 14, 6]").

    The circuit computes, over the prime field with all bits 0/1:

    - s = Σ bᵢ and the |L| = 2 indicator
      flag = Π_{j ≤ n, j ≠ 2} (s − j)/(2 − j);
    - first/second-flagged selectors mᵢ = bᵢ·Π_{j<i}(1−bⱼ) and
      secᵢ = bᵢ·Σ_{j<i} mⱼ (correct whenever flag = 1, which is the
      only case they are used in);
    - the masked values zᵢ = xᵢ·(1 − flag·mᵢ − flag·secᵢ),
      y = ⊕ᵢ zᵢ, and the shared coin r = ⊕ᵢ ρᵢ from one auxiliary
      random input bit per party;
    - outputs wᵢ = zᵢ + (flag·mᵢ)·r + (flag·secᵢ)·(r ⊕ y).

    Honest parties run it on (xᵢ, bᵢ = 0, ρᵢ uniform); the A* variant
    adversary is pure input substitution (bᵢ = 1 on its two corrupted
    parties), squarely inside BGW's semi-honest model. Requires
    2t < n. *)

val circuit : n:int -> Sb_mpc.Circuit.t
(** The g-circuit for n parties; party i's declared inputs are, in
    order, (xᵢ, bᵢ, ρᵢ). *)

val protocol : n:int -> Sb_sim.Protocol.t
(** Π_G-over-BGW for a FIXED n (the circuit is baked in, so the
    execution context must use the same n). Honest parties feed
    (input bit, 0, fresh random bit). *)

val a_star_real : n:int -> corrupt:int * int -> Sb_sim.Adversary.t
(** A* against {!protocol}: the corrupted pair runs the BGW code
    honestly but with the auxiliary flag raised. *)
