(** Multi-bit simultaneous broadcast from any single-bit protocol.

    [wrap ~bits base] runs [bits] independent instances of [base]
    concurrently — instance j carries bit j of every party's value —
    by namespacing every envelope body with [Tag ("inst:j", …)], so
    the instances cannot interfere even though the base protocol uses
    fixed wire tags. Because the instances are concurrent, all bits of
    all values reach their commit point before any bit is revealed:
    multi-bit values stay simultaneous (a sequential composition would
    let an adversary adapt its high bits to the other parties'
    already-revealed low bits).

    Inputs are [Msg.Int v] with 0 <= v < 2^bits; outputs are
    [Msg.List] of n [Msg.Int] announced values.

    The base protocol must not use a trusted functionality (raises
    [Invalid_argument] otherwise — functionality traffic cannot be
    namespaced from outside). *)

val wrap : bits:int -> Sb_sim.Protocol.t -> Sb_sim.Protocol.t

val instance_tag : int -> string
(** Wire tag of instance [j]; exposed for adversaries that speak the
    multi-instance format. *)
