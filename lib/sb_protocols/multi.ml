open Sb_sim

let instance_tag j = "inst:" ^ string_of_int j

let wrap ~bits (base : Protocol.t) =
  if bits < 1 || bits > 30 then invalid_arg "Multi.wrap: bits out of range";
  if base.Protocol.make_functionality <> None then
    invalid_arg "Multi.wrap: base protocol uses a functionality";
  let wrap_env j (e : Envelope.t) =
    { e with Envelope.body = Msg.Tag (instance_tag j, e.Envelope.body) }
  in
  let unwrap_inbox j inbox =
    List.filter_map
      (fun (e : Envelope.t) ->
        match e.Envelope.body with
        | Msg.Tag (t, body) when String.equal t (instance_tag j) ->
            Some { e with Envelope.body = body }
        | _ -> None)
      inbox
  in
  {
    Protocol.name = Printf.sprintf "%s-x%d" base.Protocol.name bits;
    rounds = base.Protocol.rounds;
    make_functionality = None;
    make_party =
      (fun ctx ~rng ~id ~input ->
        let value = Msg.to_int_exn input in
        if value < 0 || value >= 1 lsl bits then
          invalid_arg "Multi.wrap: input out of range";
        let instances =
          Array.init bits (fun j ->
              base.Protocol.make_party ctx ~rng:(Sb_util.Rng.split rng) ~id
                ~input:(Msg.Bit ((value lsr j) land 1 = 1)))
        in
        let step ~round ~inbox =
          List.concat
            (List.init bits (fun j ->
                 List.map (wrap_env j)
                   (instances.(j).Party.step ~round ~inbox:(unwrap_inbox j inbox))))
        in
        let output () =
          (* Reassemble per-party integers from the per-bit announced
             vectors; a malformed instance output contributes 0s. *)
          let vectors =
            Array.map
              (fun (inst : Party.t) ->
                match inst.Party.output () with
                | Msg.List l when List.length l = ctx.Ctx.n ->
                    Array.of_list
                      (List.map (function Msg.Bit b -> b | _ -> false) l)
                | _ -> Array.make ctx.Ctx.n false)
              instances
          in
          Msg.List
            (List.init ctx.Ctx.n (fun p ->
                 let v = ref 0 in
                 for j = bits - 1 downto 0 do
                   v := (!v lsl 1) lor (if vectors.(j).(p) then 1 else 0)
                 done;
                 Msg.Int !v))
        in
        { Party.step; output });
  }
