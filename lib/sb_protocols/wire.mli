(** Shared wire-format helpers for the protocol implementations. *)

open Sb_sim

val tagged : tag:string -> Envelope.t list -> (Envelope.endpoint * Msg.t) list
(** Envelopes in the inbox whose body is [Tag (tag, m)], as
    (sender, payload). *)

val tagged_from_parties : tag:string -> Envelope.t list -> (int * Msg.t) list
(** Same, restricted to party senders. *)

val first_from : tag:string -> src:int -> Envelope.t list -> Msg.t option
(** The first [tag]-tagged payload sent by party [src] in the inbox,
    if any. *)

val bit_of_field : Sb_crypto.Field.t -> bool
(** Field 1 ↦ true; anything else (including garbage a corrupted
    dealer shared) ↦ false — the paper's footnote-2 default rule. *)

val field_of_bit : bool -> Sb_crypto.Field.t
