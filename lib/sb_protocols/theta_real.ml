open Sb_sim
open Sb_crypto
open Sb_mpc

let circuit ~n =
  let c = Circuit.create ~n_parties:n in
  (* Party i's inputs, in declaration order: x_i, b_i, rho_i. *)
  let xs = Array.make n (Circuit.const c Field.zero) in
  let bs = Array.make n (Circuit.const c Field.zero) in
  let rhos = Array.make n (Circuit.const c Field.zero) in
  for i = 0 to n - 1 do
    xs.(i) <- Circuit.input c ~party:i;
    bs.(i) <- Circuit.input c ~party:i;
    rhos.(i) <- Circuit.input c ~party:i
  done;
  (* s = Σ b_i *)
  let s = Array.fold_left (fun acc b -> Circuit.add c acc b) (Circuit.const c Field.zero) bs in
  (* flag = Π_{j<=n, j<>2} (s - j) / (2 - j) *)
  let flag =
    List.fold_left
      (fun acc j ->
        let term =
          Circuit.scale c
            (Field.inv (Field.of_int (2 - j)))
            (Circuit.sub c s (Circuit.const c (Field.of_int j)))
        in
        match acc with None -> Some term | Some a -> Some (Circuit.mul c a term))
      None
      (List.filter (fun j -> j <> 2) (List.init (n + 1) Fun.id))
    |> Option.get
  in
  (* prefix products of (1 - b_j) and the first-flagged selectors m_i *)
  let m = Array.make n (Circuit.const c Field.zero) in
  let prefix = ref (Circuit.bit_not c bs.(0)) in
  m.(0) <- bs.(0);
  for i = 1 to n - 1 do
    m.(i) <- Circuit.mul c bs.(i) !prefix;
    if i < n - 1 then prefix := Circuit.mul c !prefix (Circuit.bit_not c bs.(i))
  done;
  (* second-flagged selectors: sec_i = b_i * (Σ_{j<i} m_j) *)
  let sec = Array.make n (Circuit.const c Field.zero) in
  let msum = ref (Circuit.const c Field.zero) in
  for i = 1 to n - 1 do
    msum := Circuit.add c !msum m.(i - 1);
    sec.(i) <- Circuit.mul c bs.(i) !msum
  done;
  (* gate the selectors by the |L| = 2 flag *)
  let u = Array.map (fun mi -> Circuit.mul c flag mi) m in
  let v = Array.map (fun si -> Circuit.mul c flag si) sec in
  (* masked values, the leak target y, and the coin r *)
  let z =
    Array.init n (fun i ->
        Circuit.mul c xs.(i)
          (Circuit.sub c (Circuit.sub c (Circuit.const c Field.one) u.(i)) v.(i)))
  in
  let y = Circuit.xor_fold c (Array.to_list z) in
  let r = Circuit.xor_fold c (Array.to_list rhos) in
  let ry = Circuit.bit_xor c r y in
  (* outputs w_i = z_i + u_i*r + v_i*(r xor y) *)
  for i = 0 to n - 1 do
    let wi =
      Circuit.add c z.(i) (Circuit.add c (Circuit.mul c u.(i) r) (Circuit.mul c v.(i) ry))
    in
    Circuit.output c wi
  done;
  c

let encode_honest ~rng ~id:_ input =
  let x = match input with Msg.Bit b -> b | _ -> false in
  [
    (if x then Field.one else Field.zero);
    Field.zero;
    (if Sb_util.Rng.bool rng then Field.one else Field.zero);
  ]

let decode outs = Msg.bits (List.map (fun v -> Field.equal v Field.one) outs)

let protocol ~n =
  Bgw.protocol ~name:"pi-g-bgw" ~circuit:(circuit ~n) ~encode:encode_honest ~decode

let a_star_real ~n ~corrupt:(i, j) =
  assert (i <> j);
  let p =
    (* Same protocol, but corrupted parties raise their auxiliary
       flag: pure input substitution inside the BGW code. *)
    Bgw.protocol ~name:"pi-g-bgw-flagged" ~circuit:(circuit ~n)
      ~encode:(fun ~rng ~id input ->
        match encode_honest ~rng ~id input with
        | [ x; _; rho ] -> [ x; Field.one; rho ]
        | other -> other)
      ~decode
  in
  let adv = Adversary.semi_honest p ~corrupt:[ i; j ] in
  { adv with Adversary.name = "a-star-real" }
