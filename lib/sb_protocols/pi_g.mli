(** Π_G — the "flawed" protocol of Lemma 6.4, the paper's headline
    separation witness.

    Each party Pᵢ sets the auxiliary bit bᵢ ← 0 and calls the
    subprotocol Θ ({!Theta}) on (xᵢ, bᵢ); the vector Θ returns is the
    announced vector. Honest executions are perfect parallel
    broadcast. But the adversary A* ([core]'s [Adversaries.a_star])
    corrupts two parties and sets their auxiliary bits to 1, after
    which the XOR of ALL announced bits is 0 in every execution —
    while each corrupted party's announced bit, taken alone, stays
    perfectly uniform and uncorrelated with the honest vector.

    Consequence (Lemma 6.4): Π_G is G-independent under every locally
    independent distribution, yet fails CR-independence under every
    non-trivial distribution — uniform included. *)

val protocol : Sb_sim.Protocol.t
