open Sb_util

type finding = {
  honest_party : int;
  predicate : string;
  gap : Sb_stats.Estimate.interval;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  findings : finding list;
  worst : finding option;
  verdict : Sb_stats.Verdict.t;
  inconsistent_runs : int;
}

let drop_index arr i =
  Array.of_list
    (List.filteri (fun j _ -> j <> i) (Array.to_list arr))

let run setup ~protocol ~adversary ~dist ?predicates () =
  let n = setup.Setup.n in
  let predicates = match predicates with Some p -> p | None -> Predicate.battery ~n in
  let corrupted = Announced.corrupted_of setup ~protocol ~adversary in
  let honest = Subset.complement n corrupted in
  (* One event-pair counter per (honest i, predicate). *)
  let counters =
    List.map
      (fun i -> (i, List.map (fun p -> (p, Sb_stats.Counts.event_pair ())) predicates))
      honest
  in
  let inconsistent = ref 0 in
  let rng = Rng.create setup.Setup.seed in
  Announced.sample setup ~protocol ~adversary ~dist rng (fun run ->
      if not run.Announced.consistent then incr inconsistent;
      let w = Bitvec.to_bools run.Announced.w in
      List.iter
        (fun (i, per_pred) ->
          let wi_zero = not w.(i) in
          let reduced = drop_index w i in
          List.iter
            (fun ((p : Predicate.t), counter) ->
              Sb_stats.Counts.record counter ~a:wi_zero ~b:(p.Predicate.eval reduced))
            per_pred)
        counters);
  let findings =
    List.concat_map
      (fun (i, per_pred) ->
        List.map
          (fun ((p : Predicate.t), counter) ->
            let gap = Sb_stats.Counts.gap counter in
            {
              honest_party = i;
              predicate = p.Predicate.name;
              gap;
              verdict = Sb_stats.Verdict.of_gap gap;
            })
          per_pred)
      counters
  in
  let worst =
    List.fold_left
      (fun acc f ->
        match acc with
        | Some best when best.gap.Sb_stats.Estimate.point >= f.gap.Sb_stats.Estimate.point -> acc
        | _ -> Some f)
      None findings
  in
  {
    findings;
    worst;
    verdict = Sb_stats.Verdict.all_pass (List.map (fun (f : finding) -> f.verdict) findings);
    inconsistent_runs = !inconsistent;
  }
