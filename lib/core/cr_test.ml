open Sb_util

type finding = {
  honest_party : int;
  predicate : string;
  gap : Sb_stats.Estimate.interval;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  findings : finding list;
  worst : finding option;
  verdict : Sb_stats.Verdict.t;
  inconsistent_runs : int;
}

(* Per-chunk accumulator: the event counters plus reusable scratch
   buffers, so the per-sample loop allocates nothing. *)
type acc = {
  counters : (int * (Predicate.t * Sb_stats.Counts.event) list) list;
  mutable inconsistent : int;
  w_buf : bool array;    (* length n: the announced vector of this run *)
  red_buf : bool array;  (* length n-1: w with one honest index dropped *)
}

let run setup ~protocol ~adversary ~dist ?predicates () =
  let n = setup.Setup.n in
  let predicates = match predicates with Some p -> p | None -> Predicate.battery ~n in
  let corrupted = Announced.corrupted_of setup ~protocol ~adversary in
  let honest = Subset.complement n corrupted in
  (* One event-pair counter per (honest i, predicate). *)
  let init () =
    {
      counters =
        List.map
          (fun i -> (i, List.map (fun p -> (p, Sb_stats.Counts.event_pair ())) predicates))
          honest;
      inconsistent = 0;
      w_buf = Array.make n false;
      red_buf = Array.make (max 0 (n - 1)) false;
    }
  in
  let record acc _index run =
    if not run.Announced.consistent then acc.inconsistent <- acc.inconsistent + 1;
    for j = 0 to n - 1 do
      acc.w_buf.(j) <- Bitvec.get run.Announced.w j
    done;
    List.iter
      (fun (i, per_pred) ->
        let wi_zero = not acc.w_buf.(i) in
        let k = ref 0 in
        for j = 0 to n - 1 do
          if j <> i then begin
            acc.red_buf.(!k) <- acc.w_buf.(j);
            incr k
          end
        done;
        List.iter
          (fun ((p : Predicate.t), counter) ->
            Sb_stats.Counts.record counter ~a:wi_zero ~b:(p.Predicate.eval acc.red_buf))
          per_pred)
      acc.counters
  in
  let merge ~into src =
    into.inconsistent <- into.inconsistent + src.inconsistent;
    List.iter2
      (fun (_, into_preds) (_, src_preds) ->
        List.iter2
          (fun (_, into_ev) (_, src_ev) -> Sb_stats.Counts.event_merge_into ~into:into_ev src_ev)
          into_preds src_preds)
      into.counters src.counters
  in
  let rng = Rng.create setup.Setup.seed in
  let acc =
    Announced.psample setup ~protocol ~adversary ~dist ~init ~f:record ~merge rng
  in
  let counters = acc.counters and inconsistent = ref acc.inconsistent in
  let findings =
    List.concat_map
      (fun (i, per_pred) ->
        List.map
          (fun ((p : Predicate.t), counter) ->
            let gap = Sb_stats.Counts.gap counter in
            {
              honest_party = i;
              predicate = p.Predicate.name;
              gap;
              verdict = Sb_stats.Verdict.of_gap gap;
            })
          per_pred)
      counters
  in
  let worst =
    List.fold_left
      (fun acc f ->
        match acc with
        | Some best when best.gap.Sb_stats.Estimate.point >= f.gap.Sb_stats.Estimate.point -> acc
        | _ -> Some f)
      None findings
  in
  {
    findings;
    worst;
    verdict = Sb_stats.Verdict.all_pass (List.map (fun (f : finding) -> f.verdict) findings);
    inconsistent_runs = !inconsistent;
  }
