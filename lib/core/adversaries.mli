(** The adversary battery.

    Definition 4.x quantify over all PPT adversaries; the experiments
    instantiate the specific strategies the paper's proofs use, plus
    the natural attacks on each protocol family. Separation
    experiments need just one witness (these are them); achievability
    experiments run every member of the battery. *)

open Sb_sim

val passive : Adversary.t
(** Corrupts nobody. *)

val semi_honest : Protocol.t -> corrupt:int list -> Adversary.t
(** Runs the protocol honestly on the corrupted parties' real inputs
    (re-export of {!Sb_sim.Adversary.semi_honest}). *)

val substitute_constant : Protocol.t -> corrupt:int list -> value:bool -> Adversary.t
(** Corrupted parties run honestly but on a constant input chosen
    before the execution — input-independent misbehaviour that every
    notion of independence tolerates. *)

val substitute_random : Protocol.t -> corrupt:int list -> Adversary.t
(** As above with a fresh random input per execution. *)

val a_star : corrupt:int * int -> Adversary.t
(** The Lemma 6.4 adversary A* against Π_G: both corrupted parties
    keep their real input but raise the auxiliary flag b = 1, driving
    the functionality Θ into its leaking branch and forcing
    ⊕ᵢ Wᵢ = 0 in every execution (Claim 6.6). *)

val echo :
  mode:[ `Sequential | `Concurrent ] ->
  copier:int ->
  target:int ->
  ?negate:bool ->
  unit ->
  Adversary.t
(** The §3.2 attack on the naive protocols: [copier] discards its own
    input and announces [target]'s announced value (optionally
    negated). For [`Sequential]' the copier must come after the target
    in the schedule; for [`Concurrent] rushing makes any pair work. *)

val reveal_withhold :
  Protocol.t ->
  corrupt:int list ->
  reveal_round:(Ctx.t -> int) ->
  reveal_tag_prefix:string ->
  honest_probe:(Ctx.t -> Envelope.t list -> bool) ->
  Adversary.t
(** Selective-abort attack: corrupted parties run the protocol
    honestly, but at the reveal round they inspect the honest parties'
    same-round (rushed) reveal traffic with [honest_probe] and, if it
    returns true, suppress every outgoing message whose tag starts
    with [reveal_tag_prefix]. Against bare {!Sb_protocols.Commit_open}
    this correlates the corrupted announced value with the honest
    ones; against the VSS-based protocols it is provably ineffective
    (the honest majority reconstructs regardless). *)

val probe_commit_open_parity : Ctx.t -> Envelope.t list -> bool
(** Probe for {!Sb_protocols.Commit_open}: parse the honest openings
    rushing exposes and return the parity of the revealed honest
    bits. *)

val probe_vss_secret : dealer:int -> Ctx.t -> Envelope.t list -> bool
(** Probe for the VSS protocols: reconstruct [dealer]'s secret from
    the honest reveal shares visible in the rushed traffic and return
    whether the revealed bit is 1. *)

val copycat_dealer : copier:int -> target:int -> Adversary.t
(** Against the concurrent VSS protocols: [copier] re-broadcasts
    [target]'s round-0 coefficient commitments under its own dealer
    tag (and distributes no shares). The complaint round disqualifies
    it, so its announced value is the input-independent default 0. *)

val silent : corrupt:int list -> Adversary.t
(** Corrupted parties send nothing at all. *)
