open Sb_util
open Sb_sim

type cell = {
  protocol : string;
  plan : Sb_fault.Plan.t;
  samples : int;
  agree : Sb_stats.Estimate.interval;
  valid : Sb_stats.Estimate.interval;
}

let substrates () =
  List.map
    (fun (s : Sb_broadcast.Session.scheme) ->
      let p = Sb_broadcast.Parallel.concurrent s in
      (p.Protocol.name, p))
    [
      Sb_broadcast.Send_echo.scheme;
      Sb_broadcast.Dolev_strong.scheme;
      Sb_broadcast.Eig.scheme;
      Sb_broadcast.Bracha.scheme;
      Sb_broadcast.Phase_king.scheme;
    ]

type exact_cell = {
  cell_protocol : string;
  cell_n : int;
  cell_t : int;
  exp_agreement : bool option;
  exp_validity : bool option;
  exp_unforgeability : bool option;
}

(* Hand-derived ground truth at small (n, t) under the benign
   all-or-nothing fault model (per-round crash / omit-all / delay-all
   by up to t parties), cross-validated by the sb_check model
   checker's exhaustive verdicts and by E15's sampled cells where they
   overlap. [None] marks properties the checker cannot settle within
   its default state budget at that point. *)
let exact_cells =
  let cell p n t a v u =
    {
      cell_protocol = p;
      cell_n = n;
      cell_t = t;
      exp_agreement = a;
      exp_validity = v;
      exp_unforgeability = u;
    }
  in
  [
    (* Round faults hit every destination alike, so the two honest
       views stay symmetric and a faulty sender cannot split them. *)
    cell "send-echo" 3 1 (Some true) (Some true) (Some true);
    (* Both non-senders crashed at the echo round leave the honest
       sender's own echo in a 1-vs-2-defaults minority. *)
    cell "send-echo" 3 2 (Some true) (Some false) (Some true);
    cell "dolev-strong" 3 1 (Some true) (Some true) (Some true);
    cell "dolev-strong" 4 1 (Some true) (Some true) (Some true);
    cell "bracha" 4 1 (Some true) (Some true) (Some true);
    (* Above n/3: accepting needs 2t+1 = 5 > n readies, so no honest
       party ever accepts a true broadcast — validity fails with no
       faults at all, while every honest party defaulting keeps
       agreement (and vacuously unforgeability) intact. *)
    cell "bracha" 4 2 (Some true) (Some false) (Some true);
  ]

let vss_protocols () =
  List.map
    (fun (p : Protocol.t) -> (p.Protocol.name, p))
    [
      Sb_protocols.Cgma.protocol;
      Sb_protocols.Chor_rabin.protocol;
      Sb_protocols.Gennaro.protocol;
    ]

let crash_plan ~n ~count =
  List.init count (fun k -> Sb_fault.Plan.crash ~party:(n - 1 - k) ~round:(k + 1))

let drop_plan rate = if rate = 0.0 then [] else [ Sb_fault.Plan.drop rate ]

(* Same budget funnel as Announced.run_once. *)
let m_samples = Sb_obs.Metrics.counter "exp.samples_drawn"

let run_cell_once setup ~protocol ~adversary ~faults ~crashed ~x rng =
  Sb_obs.Metrics.incr m_samples;
  let n = setup.Setup.n in
  let ctx = Setup.fresh_ctx setup (Rng.split rng) in
  let inputs = Array.init n (fun i -> Msg.Bit (Bitvec.get x i)) in
  let r =
    Network.run ctx ~rng ~protocol ~adversary ~inputs ~record_trace:false ~faults ()
  in
  let survivors =
    List.filter (fun (i, _) -> not (List.mem i crashed)) r.Network.outputs
  in
  match survivors with
  | [] -> (true, true)
  | (_, m0) :: rest ->
      let agree = List.for_all (fun (_, m) -> Msg.equal m m0) rest in
      let valid =
        match Announced.to_vector n m0 with
        | Some w ->
            List.for_all (fun (j, _) -> Bitvec.get w j = Bitvec.get x j) survivors
        | None -> false
      in
      (agree, valid)

(* The Announced.psample discipline, with per-run fault interceptors:
   two master splits per sample (input, execution), a fixed 32-chunk
   layout, positional merge — cells are byte-identical for every
   [--jobs] value. *)
let chunk_width = 32

let measure ?pool setup ~protocol ~adversary ~dist ~plan rng =
  (match Sb_fault.Plan.validate ~n:setup.Setup.n plan with
  | Ok () -> ()
  | Error e -> invalid_arg ("Resilience.measure: " ^ e));
  let faults = Sb_fault.Inject.compile ~n:setup.Setup.n plan in
  let crashed = Sb_fault.Plan.crashed_parties plan in
  let pool = match pool with Some p -> p | None -> Sb_par.Pool.default () in
  let total = setup.Setup.samples in
  let streams = Sb_par.Partition.streams rng ~total ~draws_per_item:2 in
  let chunks = Sb_par.Partition.chunks ~total ~jobs:chunk_width in
  let accs =
    Sb_par.Pool.map_chunks pool chunks ~f:(fun { Sb_par.Partition.lo; len } ->
        let agreed = ref 0 and valid = ref 0 in
        for i = lo to lo + len - 1 do
          let x = Sb_dist.Dist.sample dist streams.(2 * i) in
          let a, v =
            run_cell_once setup ~protocol ~adversary ~faults ~crashed ~x
              streams.((2 * i) + 1)
          in
          if a then incr agreed;
          if v then incr valid
        done;
        Announced.note_domain_samples len;
        (!agreed, !valid))
  in
  let agreed = Array.fold_left (fun acc (a, _) -> acc + a) 0 accs in
  let valid = Array.fold_left (fun acc (_, v) -> acc + v) 0 accs in
  {
    protocol = protocol.Protocol.name;
    plan;
    samples = total;
    agree = Sb_stats.Estimate.wilson ~successes:agreed total;
    valid = Sb_stats.Estimate.wilson ~successes:valid total;
  }

(* --- boundary witnesses (n = 4, t = 1) ----------------------------- *)

let wrap0 m = Sb_broadcast.Session.wrap ~sid:(Sb_broadcast.Parallel.session_id 0) m

let send ~src ~dst m = Envelope.make ~src ~dst (wrap0 m)

(* Corrupt sender 0 under-delivers each phase of its own Bracha
   session: with parties {1,2,3} all alive, echo amplification closes
   the gap and everyone accepts true; with party 3 crashed, party 1
   holds 3 readies (quorum) while party 2 holds 2 — a split exactly at
   the n/3 boundary. Silent in the other three sessions. *)
let bracha_flip =
  let v = Msg.Bit true in
  {
    Adversary.name = "bracha-flip";
    choose_corrupt = (fun _ ~rng:_ -> [ 0 ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let act (view : Adversary.view) =
          match view.Adversary.round with
          | 0 ->
              [ send ~src:0 ~dst:1 (Msg.Tag ("br-init", v));
                send ~src:0 ~dst:2 (Msg.Tag ("br-init", v)) ]
          | 1 ->
              [ send ~src:0 ~dst:1 (Msg.Tag ("br-echo", v));
                send ~src:0 ~dst:2 (Msg.Tag ("br-echo", v)) ]
          | 2 -> [ send ~src:0 ~dst:1 (Msg.Tag ("br-ready", v)) ]
          | _ -> []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

(* Corrupt party 3 equivocates its level-2 EIG relay of sender 0's
   (true) value: false to party 0, true to party 1, nothing to party
   2. Alive, honest relays [0,1] and [0,2] outvote it at both
   survivors; with party 2 crashed before relaying, party 0 resolves
   {true, default, false} to default and party 1 resolves
   {true, default, true} to true. *)
let eig_flip =
  let pair path v = Msg.List [ Msg.List (List.map (fun i -> Msg.Int i) path); v ] in
  let relay v = Msg.List [ pair [ 0; 3 ] (Msg.Bit v) ] in
  {
    Adversary.name = "eig-flip";
    choose_corrupt = (fun _ ~rng:_ -> [ 3 ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let act (view : Adversary.view) =
          if view.Adversary.round <> 1 then []
          else
            [ send ~src:3 ~dst:0 (relay false); send ~src:3 ~dst:1 (relay true) ]
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }
