(** Empirical testers for G**-independence (Definition B.2) and
    G*-independence (Definition B.1).

    G** fixes the INPUTS rather than conditioning on announced values:
    for corrupted parties' inputs w and two honest input vectors r, s,

      | Pr(Wᵢ = 1 on input w ⊔ s) − Pr(Wᵢ = 1 on input w ⊔ r) |

    must be negligible for each corrupted Pᵢ. Because the probability
    space is over protocol coins only (no input conditioning), the
    tester runs two separate execution batches per (r, s) pair — no
    bucketing pathologies, which is exactly why the paper introduces
    these variants (Appendix B) and proves G** implies G on locally
    independent distributions (Proposition B.4).

    Pair selection for [run] — the G** tester: all single-bit-flip
    pairs (r, s) over the honest coordinates when 2^|honest| is small —
    the hybrid-argument structure of the paper's proofs — with the
    corrupted inputs w fixed to the given vector. [run_star] — the G*
    tester — instead compares every honest assignment x against its
    zeroed counterpart x_B ⊔ 0_B̄, the ensembles E and E₀ of Definition
    B.1. Proposition B.3 proves the two notions equivalent; experiment
    E10 checks the testers agree. *)

type finding = {
  corrupted_party : int;
  r : Sb_util.Bitvec.t;  (** full input vector variant A *)
  s : Sb_util.Bitvec.t;  (** full input vector variant B *)
  gap : Sb_stats.Estimate.interval;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  findings : finding list;
  worst : finding option;
  verdict : Sb_stats.Verdict.t;
}

val run :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  ?w:Sb_util.Bitvec.t ->
  ?runs_per_point:int ->
  unit ->
  result
(** The G** tester. [w] supplies the corrupted coordinates (default
    all-zero); [runs_per_point] defaults to [setup.samples] per input
    vector. *)

val run_star :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  ?w:Sb_util.Bitvec.t ->
  ?runs_per_point:int ->
  unit ->
  result
(** The G* tester (Definition B.1). *)
