open Sb_util

type simulator = {
  sim_name : string;
  simulate :
    Setup.t ->
    rng:Rng.t ->
    corrupted:int list ->
    inputs_b:(int * bool) list ->
    (int * bool) list;
}

let truthful = { sim_name = "truthful"; simulate = (fun _ ~rng:_ ~corrupted:_ ~inputs_b -> inputs_b) }

let constant b =
  {
    sim_name = Printf.sprintf "constant(%b)" b;
    simulate = (fun _ ~rng:_ ~corrupted:_ ~inputs_b -> List.map (fun (i, _) -> (i, b)) inputs_b);
  }

let random_sim =
  {
    sim_name = "random";
    simulate =
      (fun _ ~rng ~corrupted:_ ~inputs_b -> List.map (fun (i, _) -> (i, Rng.bool rng)) inputs_b);
  }

let sandbox ~protocol ~adversary =
  {
    sim_name = "sandbox(" ^ protocol.Sb_sim.Protocol.name ^ ")";
    simulate =
      (fun setup ~rng ~corrupted ~inputs_b ->
        (* Dummy honest inputs, real corrupted inputs. *)
        let x =
          Bitvec.init setup.Setup.n (fun i ->
              match List.assoc_opt i inputs_b with Some b -> b | None -> false)
        in
        let run = Announced.run_once setup ~protocol ~adversary ~x rng in
        List.map (fun i -> (i, Bitvec.get run.Announced.w i)) corrupted);
  }

type falsifier_result = {
  falsifier : string;
  real_p : Sb_stats.Estimate.interval;
  ideal_max : float;
  ideal_min : float;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  falsifiers : falsifier_result list;
  sim_tvd : float option;
  baseline_tvd : float option;
  verdict : Sb_stats.Verdict.t;
}

(* A (φ, ψ) pair: φ reads the corrupted announced bits, ψ the honest
   input bits; both receive the FULL vector plus the relevant index
   set, to keep the battery simple. *)
type probe = {
  probe_name : string;
  phi : Bitvec.t -> int list -> bool; (* announced, corrupted *)
  psi : Bitvec.t -> int list -> bool; (* inputs, honest *)
}

let probes ~corrupted ~honest =
  let bit_of i = (Printf.sprintf "W[%d]" i, fun (v : Bitvec.t) (_ : int list) -> Bitvec.get v i) in
  let xor_of s = ("xor", fun (v : Bitvec.t) (_ : int list) ->
        List.fold_left (fun acc i -> if Bitvec.get v i then not acc else acc) false s)
  in
  let phis =
    List.map (fun i -> bit_of i) corrupted
    @ (if List.length corrupted >= 2 then [ xor_of corrupted ] else [])
  in
  let psis =
    List.map (fun j -> bit_of j) honest
    @ (if List.length honest >= 2 then [ xor_of honest ] else [])
  in
  List.concat_map
    (fun (pn, phi) ->
      List.map
        (fun (qn, psi) ->
          { probe_name = Printf.sprintf "phi=%s vs psi=%s" pn qn; phi; psi })
        psis)
    phis

(* E_{x_B} [ max_b Pr(psi(x_honest) = b | x_B) ], exactly from the pmf. *)
let ideal_band dist ~corrupted ~honest psi =
  let n = Sb_dist.Dist.n dist in
  let total = ref 0.0 in
  (* Group mass by the corrupted-coordinate assignment. *)
  let groups : (int, float ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let p = Sb_dist.Dist.prob dist v in
      if p > 0.0 then begin
        let key = Bitvec.to_int (Bitvec.of_bools (Bitvec.proj v corrupted)) in
        let mass, ones =
          match Hashtbl.find_opt groups key with
          | Some pair -> pair
          | None ->
              let pair = (ref 0.0, ref 0.0) in
              Hashtbl.replace groups key pair;
              pair
        in
        mass := !mass +. p;
        if psi v honest then ones := !ones +. p
      end)
    (Bitvec.all n);
  Hashtbl.iter
    (fun _ (mass, ones) ->
      let p1 = !ones /. !mass in
      total := !total +. (!mass *. Float.max p1 (1.0 -. p1)))
    groups;
  !total

let run setup ~protocol ~adversary ~dist ?simulator () =
  let n = setup.Setup.n in
  let corrupted = Announced.corrupted_of setup ~protocol ~adversary in
  let honest = Subset.complement n corrupted in
  let rng = Rng.create setup.Setup.seed in
  (* Collect real runs once; reuse for all probes and the TVD. Chunks
     fill disjoint index-addressed slots of one shared array (the pool
     barrier publishes the writes), then runs are laid out newest-first
     — the order the old sequential list accumulation produced — so
     parity-based splits below are unchanged. *)
  let nruns = setup.Setup.samples in
  let slots : Announced.run option array = Array.make nruns None in
  let () =
    Announced.psample setup ~protocol ~adversary ~dist
      ~init:(fun () -> slots)
      ~f:(fun slots i r -> slots.(i) <- Some r)
      ~merge:(fun ~into:_ _ -> ())
      rng
    |> ignore
  in
  let runs =
    Array.init nruns (fun j ->
        match slots.(nruns - 1 - j) with Some r -> r | None -> assert false)
  in
  let falsifiers =
    if corrupted = [] then []
    else
      List.map
        (fun probe ->
          let hits = ref 0 in
          Array.iter
            (fun (r : Announced.run) ->
              if probe.phi r.Announced.w corrupted = probe.psi r.Announced.x honest then
                incr hits)
            runs;
          let real_p = Sb_stats.Estimate.wilson ~successes:!hits nruns in
          let ideal_max = ideal_band dist ~corrupted ~honest probe.psi in
          let ideal_min = 1.0 -. ideal_max in
          let slack = 0.03 in
          let verdict =
            if real_p.Sb_stats.Estimate.lo > ideal_max +. slack then Sb_stats.Verdict.Fail
            else if real_p.Sb_stats.Estimate.hi < ideal_min -. slack then Sb_stats.Verdict.Fail
            else Sb_stats.Verdict.Pass
          in
          { falsifier = probe.probe_name; real_p; ideal_max; ideal_min; verdict })
        (probes ~corrupted ~honest)
  in
  (* Simulator comparison: real joint (x, w) vs ideal joint. *)
  let joint_key (r : Announced.run) =
    Bitvec.to_int r.Announced.x lor (Bitvec.to_int r.Announced.w lsl n)
  in
  let sim_tvd, baseline_tvd =
    match simulator with
    | None -> (None, None)
    | Some sim ->
        let table () = Sb_stats.Counts.create (2 * n) in
        let real_a = table () and real_b = table () and ideal = table () in
        Array.iteri
          (fun idx r ->
            let t = if idx mod 2 = 0 then real_a else real_b in
            Sb_stats.Counts.add t (Bitvec.of_int (2 * n) (joint_key r)))
          runs;
        let sim_rng = Rng.create (setup.Setup.seed + 101) in
        for _ = 1 to nruns do
          let x = Sb_dist.Dist.sample dist (Rng.split sim_rng) in
          let inputs_b = List.map (fun i -> (i, Bitvec.get x i)) corrupted in
          let w_b = sim.simulate setup ~rng:(Rng.split sim_rng) ~corrupted ~inputs_b in
          let w =
            Bitvec.init n (fun i ->
                match List.assoc_opt i w_b with Some b -> b | None -> Bitvec.get x i)
          in
          let key = Bitvec.to_int x lor (Bitvec.to_int w lsl n) in
          Sb_stats.Counts.add ideal (Bitvec.of_int (2 * n) key)
        done;
        let real_full = table () in
        Array.iter (fun r -> Sb_stats.Counts.add real_full (Bitvec.of_int (2 * n) (joint_key r))) runs;
        ( Some (Sb_stats.Counts.empirical_tvd real_full ideal),
          Some (Sb_stats.Counts.empirical_tvd real_a real_b) )
  in
  let falsifier_verdicts = List.map (fun (f : falsifier_result) -> f.verdict) falsifiers in
  let verdict =
    if List.exists (fun v -> v = Sb_stats.Verdict.Fail) falsifier_verdicts then
      Sb_stats.Verdict.Fail
    else
      match (sim_tvd, baseline_tvd) with
      | Some tvd, Some base ->
          if tvd <= (base *. 1.5) +. 0.02 then Sb_stats.Verdict.Pass
          else Sb_stats.Verdict.Inconclusive
      | _ -> if corrupted = [] then Sb_stats.Verdict.Pass else Sb_stats.Verdict.Inconclusive
  in
  { falsifiers; sim_tvd; baseline_tvd; verdict }
