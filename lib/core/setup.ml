type t = {
  n : int;
  thresh : int;
  k : int;
  backend : Sb_crypto.Commit.backend;
  samples : int;
  seed : int;
}

let default =
  { n = 5; thresh = 2; k = 16; backend = Sb_crypto.Commit.Hash; samples = 6000; seed = 1 }

let quick = { default with samples = 800 }
let with_samples samples t = { t with samples }
let with_n ~n ~thresh t = { t with n; thresh }
let with_seed seed t = { t with seed }

let fresh_ctx t rng =
  Sb_sim.Ctx.make ~backend:t.backend ~rng ~n:t.n ~thresh:t.thresh ~k:t.k ()
