(** The announced-values vector of Definition 3.1, executable.

    [AnnouncedΠ_A(x)] is the vector W read off any honest party's
    output after running protocol Π against adversary A on input x.
    This module runs the simulated network and extracts W, checking
    on the way that the parallel-broadcast consistency property
    actually held (all honest outputs equal) — a run violating it is
    reported rather than silently used. *)

type run = {
  x : Sb_util.Bitvec.t;  (** the input vector of this execution *)
  w : Sb_util.Bitvec.t;  (** the announced vector *)
  corrupted : int list;
  consistent : bool;  (** all honest output vectors were equal *)
  adv_output : Sb_sim.Msg.t;
}

val run_once :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  x:Sb_util.Bitvec.t ->
  ?aux:Sb_sim.Msg.t ->
  Sb_util.Rng.t ->
  run

val sample :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  ?aux:Sb_sim.Msg.t ->
  Sb_util.Rng.t ->
  (run -> unit) ->
  unit
(** Draw [setup.samples] inputs from [dist], run the protocol on each,
    and feed every run to the callback. *)

val corrupted_of :
  Setup.t -> protocol:Sb_sim.Protocol.t -> adversary:Sb_sim.Adversary.t -> int list
(** The (static) corrupted set the adversary picks, discovered with a
    dry run. *)
