(** The announced-values vector of Definition 3.1, executable.

    [AnnouncedΠ_A(x)] is the vector W read off any honest party's
    output after running protocol Π against adversary A on input x.
    This module runs the simulated network and extracts W, checking
    on the way that the parallel-broadcast consistency property
    actually held (all honest outputs equal) — a run violating it is
    reported rather than silently used. *)

type run = {
  x : Sb_util.Bitvec.t;  (** the input vector of this execution *)
  w : Sb_util.Bitvec.t;  (** the announced vector *)
  corrupted : int list;
  consistent : bool;  (** all honest output vectors were equal *)
  adv_output : Sb_sim.Msg.t;
}

val to_vector : int -> Sb_sim.Msg.t -> Sb_util.Bitvec.t option
(** Decode an honest party's output as an [n]-bit announced vector —
    [None] if it is not a well-formed length-[n] [Msg.List] of bits. *)

val run_once :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  x:Sb_util.Bitvec.t ->
  ?aux:Sb_sim.Msg.t ->
  ?faults:(rng:Sb_util.Rng.t -> Sb_sim.Network.interceptor) ->
  Sb_util.Rng.t ->
  run

val sample :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  ?aux:Sb_sim.Msg.t ->
  ?faults:(rng:Sb_util.Rng.t -> Sb_sim.Network.interceptor) ->
  Sb_util.Rng.t ->
  (run -> unit) ->
  unit
(** Draw [setup.samples] inputs from [dist], run the protocol on each,
    and feed every run to the callback, sequentially on the calling
    domain. [?faults] (typically [Sb_fault.Inject.compile ~n plan]) is
    passed to every {!Sb_sim.Network.run}; each execution makes a
    fresh interceptor from its own seed stream, so faulty runs stay as
    reproducible as fault-free ones. *)

val psample :
  ?pool:Sb_par.Pool.t ->
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  ?aux:Sb_sim.Msg.t ->
  ?faults:(rng:Sb_util.Rng.t -> Sb_sim.Network.interceptor) ->
  init:(unit -> 'acc) ->
  f:('acc -> int -> run -> unit) ->
  merge:(into:'acc -> 'acc -> unit) ->
  Sb_util.Rng.t ->
  'acc
(** Domain-parallel [sample]. The sample index space is cut into
    contiguous chunks, each chunk gets its own accumulator from [init]
    and the pre-split RNG streams of its samples, and the per-chunk
    accumulators are merged left-to-right in chunk order at the
    barrier. [f acc i run] receives the global sample index [i] so
    order-sensitive consumers can reconstruct sequential order.

    Determinism: sample [i] sees exactly the two generators the
    sequential [sample] loop would have split off the same master
    [rng], for every pool size including 1 — provided [f]/[merge]
    depend only on indices and run contents (all in-tree accumulators
    are integer counters or index-addressed slots), the result is
    byte-identical across [--jobs] settings and to the sequential
    path. [pool] defaults to {!Sb_par.Pool.default}. *)

val note_domain_samples : int -> unit
(** Credit [len] samples to the calling domain's
    [par.domain<k>.samples] counter. Called by [psample]; exposed for
    samplers that drive {!Sb_par.Pool} directly. *)

val corrupted_of :
  Setup.t -> protocol:Sb_sim.Protocol.t -> adversary:Sb_sim.Adversary.t -> int list
(** The (static) corrupted set the adversary picks, discovered with a
    dry run. *)
