(** Empirical tester for CR-independence (Definition 4.3).

    For a protocol Π, adversary A and input distribution D, estimate,
    for every honest party Pᵢ and every predicate R in the battery,

      gap(i, R) = | Pr(Wᵢ = 0) · Pr(R(W₋ᵢ)) − Pr(Wᵢ = 0 ∧ R(W₋ᵢ)) |

    over [setup.samples] executions with x ← D. The definition demands
    the gap be negligible for ALL i and R; the verdict is the
    conjunction over the battery, with Wilson-interval three-way
    outcomes (see {!Sb_stats.Verdict}).

    A [Fail] is a genuine falsification (a concrete (A, i, R) witness,
    like the parity predicate against Π_G). A [Pass] is evidence
    relative to the finite predicate battery and sample budget. *)

type finding = {
  honest_party : int;
  predicate : string;
  gap : Sb_stats.Estimate.interval;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  findings : finding list;
  worst : finding option;  (** largest gap point estimate *)
  verdict : Sb_stats.Verdict.t;
  inconsistent_runs : int;  (** runs where parallel-broadcast consistency broke *)
}

val run :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  ?predicates:Predicate.t list ->
  unit ->
  result
