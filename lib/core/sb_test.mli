(** Empirical tester for Sb-independence (Definitions 4.1/4.2).

    Sb-independence demands a simulator S whose ideal-process output
    distribution matches the real execution. Testing it empirically
    has two sides:

    {2 Universal falsification (sound against EVERY simulator)}

    In the ideal process the corrupted parties' contributed values are
    chosen by S seeing only x_B (and z): conditioned on x_B they are
    independent of the honest inputs x_B̄. Hence for any boolean
    φ (over the corrupted announced values) and ψ (over the honest
    inputs),

      Pr_ideal[ φ(W_B) = ψ(x_B̄) ]  ≤  E_{x_B} [ max_b Pr(ψ(x_B̄) = b | x_B) ]

    and symmetrically ≥ 1 − that bound. The right-hand side is computed
    EXACTLY from the input distribution; the left-hand side of the real
    protocol is estimated by sampling. A real probability outside the
    ideal feasibility band falsifies Sb-independence against all
    simulators at once — this is how the tester proves the echo attack
    (real Pr[W_copier = x_target] = 1 vs band [¼…¾]-ish) and the A*
    parity attack (real Pr[⊕W_B = ⊕x_B̄] = 1 vs band [½ ± ε]) break Sb.

    {2 Simulator comparison (positive evidence)}

    Given a candidate simulator, the tester samples the ideal joint
    (x, W) it induces and compares it to the real joint by empirical
    total-variation distance, judged against a same-size real-vs-real
    baseline (plug-in TVD is biased; the baseline calibrates it). *)

type simulator = {
  sim_name : string;
  simulate :
    Setup.t ->
    rng:Sb_util.Rng.t ->
    corrupted:int list ->
    inputs_b:(int * bool) list ->
    (int * bool) list;
      (** Corrupted parties' contributed values, from corrupted inputs
          only — the ideal-process interface. *)
}

val truthful : simulator
(** Contributes the real corrupted inputs (simulates semi-honest
    adversaries). *)

val constant : bool -> simulator
val random_sim : simulator

val sandbox : protocol:Sb_sim.Protocol.t -> adversary:Sb_sim.Adversary.t -> simulator
(** The generic simulator behind Corollary 5.5 for the VSS-based
    protocols: run the REAL adversary in a sandboxed execution whose
    honest parties hold dummy inputs (all 0), and contribute the
    corrupted coordinates of the sandbox's announced vector.

    Why this is a correct ideal-process simulator for CGMA / Gennaro /
    Chor–Rabin: the adversary's view of the dealing phase consists of
    perfectly hiding Pedersen commitments and at most t shares of each
    honest polynomial — both distributed identically whether the
    honest inputs are real or dummy — and the corrupted announced
    values are fixed (recoverable by the honest majority) at the end
    of that phase, before any reveal. So the sandbox's W_B has exactly
    the distribution of the real W_B given the corrupted inputs, while
    never looking at an honest input. For protocols WITHOUT that
    structure (naive, commit-open, Π_G under the A-star adversary) the
    sandbox simulator exists but produces a detectably wrong joint
    distribution — which is precisely what the tester then reports. *)

type falsifier_result = {
  falsifier : string;
  real_p : Sb_stats.Estimate.interval;
  ideal_max : float;  (** upper edge of the ideal feasibility band *)
  ideal_min : float;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  falsifiers : falsifier_result list;
  sim_tvd : float option;  (** real vs ideal-with-simulator joint TVD *)
  baseline_tvd : float option;  (** real vs real split baseline *)
  verdict : Sb_stats.Verdict.t;
      (** Fail if any universal falsifier fails; else Pass if the
          simulator comparison is within noise of the baseline (or no
          corruption); else Inconclusive. *)
}

val run :
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  ?simulator:simulator ->
  unit ->
  result
