open Sb_util

type finding = {
  corrupted_party : int;
  bucket : Bitvec.t;
  cond : Sb_stats.Estimate.interval;
  gap : Sb_stats.Estimate.interval;
  verdict : Sb_stats.Verdict.t;
}

type result = {
  findings : finding list;
  worst : finding option;
  worst_pair : (Bitvec.t * Bitvec.t * float) option;
  chi2 : (int * Sb_stats.Chi2.result) list;
  verdict : Sb_stats.Verdict.t;
  buckets_used : int;
  buckets_skipped : int;
}

let run setup ~protocol ~adversary ~dist ?min_bucket () =
  let n = setup.Setup.n in
  let min_bucket =
    match min_bucket with Some m -> m | None -> max 50 (setup.Setup.samples / 200)
  in
  let corrupted = Announced.corrupted_of setup ~protocol ~adversary in
  let honest = Subset.complement n corrupted in
  (* Bucket runs by the honest announced sub-vector; per bucket, count
     runs and, per corrupted party, announced ones. Each chunk fills
     its own table; the barrier merge sums them, so totals are exact
     and independent of the chunking. *)
  let key_of w =
    let bits = Bitvec.proj w honest in
    Bitvec.to_int (Bitvec.of_bools bits)
  in
  let record (buckets : (int, int ref * (int, int ref) Hashtbl.t) Hashtbl.t) _index run =
    let key = key_of run.Announced.w in
    let total, ones =
      match Hashtbl.find_opt buckets key with
      | Some pair -> pair
      | None ->
          let pair = (ref 0, Hashtbl.create 4) in
          Hashtbl.replace buckets key pair;
          pair
    in
    incr total;
    List.iter
      (fun i ->
        if Bitvec.get run.Announced.w i then begin
          let c =
            match Hashtbl.find_opt ones i with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.replace ones i c;
                c
          in
          incr c
        end)
      corrupted
  in
  let merge ~into src =
    Hashtbl.iter
      (fun key (s_total, s_ones) ->
        let total, ones =
          match Hashtbl.find_opt into key with
          | Some pair -> pair
          | None ->
              let pair = (ref 0, Hashtbl.create 4) in
              Hashtbl.replace into key pair;
              pair
        in
        total := !total + !s_total;
        Hashtbl.iter
          (fun i s_c ->
            match Hashtbl.find_opt ones i with
            | Some c -> c := !c + !s_c
            | None -> Hashtbl.replace ones i (ref !s_c))
          s_ones)
      src
  in
  let rng = Rng.create setup.Setup.seed in
  let buckets =
    Announced.psample setup ~protocol ~adversary ~dist
      ~init:(fun () -> Hashtbl.create 32)
      ~f:record ~merge rng
  in
  let usable, skipped =
    Hashtbl.fold
      (fun key (total, ones) (u, s) ->
        if !total >= min_bucket then ((key, !total, ones) :: u, s) else (u, s + 1))
      buckets ([], 0)
  in
  let usable = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) usable in
  let m = List.length honest in
  let per_party =
    List.map
      (fun i ->
        let bucket_stats =
          List.map
            (fun (key, total, ones) ->
              let successes = match Hashtbl.find_opt ones i with Some c -> !c | None -> 0 in
              (key, successes, total))
            usable
        in
        let pooled_s = List.fold_left (fun acc (_, s, _) -> acc + s) 0 bucket_stats in
        let pooled_n = List.fold_left (fun acc (_, _, t) -> acc + t) 0 bucket_stats in
        let pooled =
          if pooled_n = 0 then None
          else Some (Sb_stats.Estimate.wilson ~z:1.96 ~successes:pooled_s pooled_n)
        in
        (i, bucket_stats, pooled))
      corrupted
  in
  let findings =
    List.concat_map
      (fun (i, bucket_stats, pooled) ->
        match pooled with
        | None -> []
        | Some pooled ->
            List.map
              (fun (key, successes, total) ->
                let cond = Sb_stats.Estimate.wilson ~z:1.96 ~successes total in
                let gap = Sb_stats.Estimate.interval_abs_diff cond pooled in
                {
                  corrupted_party = i;
                  bucket = Bitvec.of_int m key;
                  cond;
                  gap;
                  verdict = Sb_stats.Verdict.of_gap gap;
                })
              bucket_stats)
      per_party
  in
  (* Raw pairwise maximum, for reporting (Definition 4.4 verbatim). *)
  let worst_pair =
    List.fold_left
      (fun acc (_, bucket_stats, _) ->
        let points =
          List.map (fun (key, s, t) -> (key, float_of_int s /. float_of_int t)) bucket_stats
        in
        List.fold_left
          (fun acc (k1, p1) ->
            List.fold_left
              (fun acc (k2, p2) ->
                let gap = Float.abs (p1 -. p2) in
                if k1 < k2 then
                  match acc with
                  | Some (_, _, best) when best >= gap -> acc
                  | _ -> Some (Bitvec.of_int m k1, Bitvec.of_int m k2, gap)
                else acc)
              acc points)
          acc points)
      None per_party
  in
  let worst =
    List.fold_left
      (fun acc f ->
        match acc with
        | Some best when best.gap.Sb_stats.Estimate.point >= f.gap.Sb_stats.Estimate.point -> acc
        | _ -> Some f)
      None findings
  in
  (* Global homogeneity statistic per corrupted party (buckets with
     expected counts below 5 are dropped per the validity rule). *)
  let chi2 =
    List.filter_map
      (fun (i, bucket_stats, pooled) ->
        match pooled with
        | None -> None
        | Some pooled ->
            let p = pooled.Sb_stats.Estimate.point in
            let groups =
              List.filter
                (fun (_, _, t) ->
                  let t = float_of_int t in
                  t *. p >= 5.0 && t *. (1.0 -. p) >= 5.0)
                bucket_stats
              |> List.map (fun (_, s, t) -> (s, t))
            in
            if List.length groups >= 2 then Some (i, Sb_stats.Chi2.homogeneity groups)
            else None)
      per_party
  in
  let verdict =
    if corrupted = [] then Sb_stats.Verdict.Pass
    else if List.length usable <= 1 && skipped = 0 then
      (* A single honest outcome ever occurs: the ∀ r,s quantifier is
         vacuous (e.g. singleton input distributions). *)
      Sb_stats.Verdict.Pass
    else if findings = [] then Sb_stats.Verdict.Inconclusive
    else Sb_stats.Verdict.all_pass (List.map (fun (f : finding) -> f.verdict) findings)
  in
  {
    findings;
    worst;
    worst_pair;
    chi2;
    verdict;
    buckets_used = List.length usable;
    buckets_skipped = skipped;
  }
