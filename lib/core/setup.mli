(** Experiment configuration shared by every tester: network size,
    corruption bound, security parameter, commitment backend, sample
    budget, and the master seed everything derives from. *)

type t = {
  n : int;
  thresh : int;
  k : int;
  backend : Sb_crypto.Commit.backend;
  samples : int;  (** Monte-Carlo executions per estimate *)
  seed : int;
}

val default : t
(** n = 5, thresh = 2, k = 16, Hash backend, 6000 samples, seed 1. *)

val quick : t
(** Smaller sample budget for unit tests (800). *)

val with_samples : int -> t -> t
val with_n : n:int -> thresh:int -> t -> t
val with_seed : int -> t -> t

val fresh_ctx : t -> Sb_util.Rng.t -> Sb_sim.Ctx.t
(** A new execution context (fresh commitment registry, PKI, CRS) —
    one per protocol run, so runs never share cryptographic state. *)
