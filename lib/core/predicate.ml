type t = { name : string; eval : bool array -> bool }

let parity =
  {
    name = "parity=0";
    eval = (fun z -> not (Array.fold_left (fun acc b -> if b then not acc else acc) false z));
  }

let bit j = { name = Printf.sprintf "bit[%d]" j; eval = (fun z -> z.(j)) }

let majority =
  {
    name = "majority";
    eval =
      (fun z ->
        let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 z in
        2 * ones > Array.length z);
  }

let all_zero = { name = "all-zero"; eval = (fun z -> Array.for_all not z) }

let any_two_equal_adjacent =
  {
    name = "adjacent-equal";
    eval =
      (fun z ->
        let rec go i = i + 1 < Array.length z && (z.(i) = z.(i + 1) || go (i + 1)) in
        go 0);
  }

let battery ~n =
  (parity :: List.init (n - 1) bit) @ [ majority; all_zero; any_two_equal_adjacent ]
