open Sb_sim
open Sb_util

let passive =
  {
    Adversary.name = "passive";
    choose_corrupt = (fun _ ~rng:_ -> []);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        { Adversary.act = (fun _ -> []); adv_output = (fun () -> Msg.Unit) });
  }

let semi_honest = Adversary.semi_honest

let substitute_constant p ~corrupt ~value =
  Adversary.substitute_inputs p ~corrupt
    ~choose:(fun _ inputs -> List.map (fun (i, _) -> (i, Msg.Bit value)) inputs)

let substitute_random p ~corrupt =
  Adversary.substitute_inputs p ~corrupt
    ~choose:(fun rng inputs -> List.map (fun (i, _) -> (i, Msg.Bit (Rng.bool rng))) inputs)

let a_star ~corrupt:(i, j) =
  assert (i <> j);
  {
    Adversary.name = "a-star";
    choose_corrupt = (fun _ ~rng:_ -> Subset.of_list [ i; j ]);
    init =
      (fun _ ~rng:_ ~corrupted ~inputs ~aux:_ ->
        let act (view : Adversary.view) =
          if view.Adversary.round <> 0 then []
          else
            List.map
              (fun id ->
                let x = match List.assoc_opt id inputs with Some m -> m | None -> Msg.Bit false in
                (* The real input, but with the auxiliary flag raised. *)
                Envelope.to_func ~src:id
                  (Msg.Tag (Sb_protocols.Theta.input_tag, Msg.List [ x; Msg.Bit true ])))
              corrupted
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let echo ~mode ~copier ~target ?(negate = false) () =
  let name = Printf.sprintf "echo(%d<-%d%s)" copier target (if negate then ",neg" else "") in
  (match mode with `Sequential -> assert (copier > target) | `Concurrent -> ());
  let value_tag = "naive-value" in
  let payload_of (e : Envelope.t) =
    match e.Envelope.body with
    | Msg.Tag (t, Msg.Bit b) when String.equal t value_tag && e.Envelope.src = Envelope.Party target
      ->
        Some b
    | _ -> None
  in
  {
    Adversary.name = name;
    choose_corrupt = (fun _ ~rng:_ -> [ copier ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let heard = ref None in
        let act (view : Adversary.view) =
          (* Record the target's broadcast whether it arrives by normal
             delivery (sequential: an earlier round) or by rushing
             (concurrent: the same round). *)
          List.iter
            (fun e -> match payload_of e with Some b -> heard := Some b | None -> ())
            (view.Adversary.delivered @ view.Adversary.rushed);
          let my_round = match mode with `Sequential -> copier | `Concurrent -> 0 in
          if view.Adversary.round = my_round then
            let b = Option.value !heard ~default:false in
            let b = if negate then not b else b in
            [ Envelope.broadcast ~src:copier (Msg.Tag (value_tag, Msg.Bit b)) ]
          else []
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

(* Wrap a semi-honest strategy with a post-filter on its outgoing
   envelopes. *)
let filtered base ~name ~filter =
  {
    Adversary.name = name;
    choose_corrupt = base.Adversary.choose_corrupt;
    init =
      (fun ctx ~rng ~corrupted ~inputs ~aux ->
        let s = base.Adversary.init ctx ~rng ~corrupted ~inputs ~aux in
        {
          Adversary.act = (fun view -> filter ctx view (s.Adversary.act view));
          adv_output = s.Adversary.adv_output;
        });
  }

let tag_starts_with prefix (e : Envelope.t) =
  match e.Envelope.body with
  | Msg.Tag (t, _) ->
      String.length t >= String.length prefix
      && String.equal (String.sub t 0 (String.length prefix)) prefix
  | _ -> false

let reveal_withhold p ~corrupt ~reveal_round ~reveal_tag_prefix ~honest_probe =
  let base = Adversary.semi_honest p ~corrupt in
  filtered base ~name:"reveal-withhold"
    ~filter:(fun ctx view out ->
      if view.Adversary.round = reveal_round ctx && honest_probe ctx view.Adversary.rushed then
        List.filter (fun e -> not (tag_starts_with reveal_tag_prefix e)) out
      else out)

let probe_commit_open_parity _ctx rushed =
  (* Parse honest "co-open" payloads; XOR the revealed bits. *)
  List.fold_left
    (fun acc (e : Envelope.t) ->
      match e.Envelope.body with
      | Msg.Tag (t, Msg.List [ Msg.Str value; Msg.Str _ ])
        when String.equal t Sb_protocols.Commit_open.open_tag -> (
          match String.split_on_char ':' value with
          | [ "co"; _; "1" ] -> not acc
          | _ -> acc)
      | _ -> acc)
    false rushed

let probe_vss_secret ~dealer _ctx rushed =
  let tag = Printf.sprintf "vss:%d:reveal" dealer in
  let shares =
    List.filter_map
      (fun (e : Envelope.t) ->
        match (Envelope.src_party e, e.Envelope.body) with
        | Some src, Msg.Tag (t, Msg.List [ Msg.Fe value; Msg.Fe blind ]) when String.equal t tag
          ->
            Some { Sb_crypto.Pedersen.index = src; value; blind }
        | _ -> None)
      rushed
  in
  match shares with
  | [] -> false
  | _ ->
      let secret = Sb_crypto.Pedersen.reconstruct shares in
      Sb_crypto.Field.equal secret Sb_crypto.Field.one

let copycat_dealer ~copier ~target =
  {
    Adversary.name = Printf.sprintf "copycat(%d copies %d)" copier target;
    choose_corrupt = (fun _ ~rng:_ -> [ copier ]);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        let comm_tag = Printf.sprintf "vss:%d:comm" target in
        let my_tag = Printf.sprintf "vss:%d:comm" copier in
        let act (view : Adversary.view) =
          if view.Adversary.round <> 0 then []
          else
            List.filter_map
              (fun (e : Envelope.t) ->
                match e.Envelope.body with
                | Msg.Tag (t, payload)
                  when String.equal t comm_tag && e.Envelope.src = Envelope.Party target ->
                    Some (Envelope.broadcast ~src:copier (Msg.Tag (my_tag, payload)))
                | _ -> None)
              view.Adversary.rushed
        in
        { Adversary.act; adv_output = (fun () -> Msg.Unit) });
  }

let silent ~corrupt =
  {
    Adversary.name = "silent";
    choose_corrupt = (fun _ ~rng:_ -> Subset.of_list corrupt);
    init =
      (fun _ ~rng:_ ~corrupted:_ ~inputs:_ ~aux:_ ->
        { Adversary.act = (fun _ -> []); adv_output = (fun () -> Msg.Unit) });
  }
