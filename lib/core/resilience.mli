(** Resilience curves: agreement/validity of the broadcast substrates
    and the VSS-based protocols under injected benign faults.

    This is the measurement core of experiment E15 and the
    [fault-sweep] CLI command. A {e cell} is one protocol run
    [setup.samples] times against one {!Sb_fault.Plan.t}; the cell
    reports Wilson intervals for

    - {b agreement}: all surviving honest parties (honest and not
      crashed by the plan) announced the same vector, and
    - {b validity}: the surviving parties' own coordinates of that
      vector match their inputs.

    Crashed parties still "output" whatever their stale local state
    holds, so both predicates quantify over survivors only — exactly
    the parties the crash-stop model still obligates.

    Sampling uses the same pre-split-stream chunking as
    {!Announced.psample}: cells are byte-identical across [--jobs]
    settings for a fixed seed. *)

type cell = {
  protocol : string;
  plan : Sb_fault.Plan.t;
  samples : int;
  agree : Sb_stats.Estimate.interval;
  valid : Sb_stats.Estimate.interval;
}

val substrates : unit -> (string * Sb_sim.Protocol.t) list
(** The five Byzantine broadcast substrates, composed into parallel
    broadcast with {!Sb_broadcast.Parallel.concurrent} — one session
    per sender, all sharing the faulty network. *)

type exact_cell = {
  cell_protocol : string;  (** bare substrate name, e.g. ["bracha"] *)
  cell_n : int;
  cell_t : int;
  exp_agreement : bool option;
  exp_validity : bool option;
  exp_unforgeability : bool option;
}
(** Ground-truth verdict for one (protocol, n, t) point under the
    benign-fault model: [Some true] = the property holds over every
    reachable execution, [Some false] = a violation exists, [None] =
    outside the model checker's default state budget. *)

val exact_cells : exact_cell list
(** Hand-derived exact verdicts at small (n, t), used to
    cross-validate the [sb_check] model checker and E15's sampled
    resilience cells. *)

val vss_protocols : unit -> (string * Sb_sim.Protocol.t) list
(** The three VSS-based simultaneous-broadcast protocols (CGMA,
    Chor–Rabin, Gennaro). *)

val crash_plan : n:int -> count:int -> Sb_fault.Plan.t
(** Staggered crash-stop pattern: party [n-1] crashes at round 1,
    party [n-2] at round 2, … [count] parties in all — each gets its
    initial send out, then the network loses them one round apart.
    [count = 0] is the empty plan. *)

val drop_plan : float -> Sb_fault.Plan.t
(** Uniform per-link Bernoulli omission at the given rate ([[]] when
    the rate is 0). *)

val measure :
  ?pool:Sb_par.Pool.t ->
  Setup.t ->
  protocol:Sb_sim.Protocol.t ->
  adversary:Sb_sim.Adversary.t ->
  dist:Sb_dist.Dist.t ->
  plan:Sb_fault.Plan.t ->
  Sb_util.Rng.t ->
  cell
(** Run one cell. @raise Invalid_argument if the plan does not
    validate against [setup.n]. *)

val bracha_flip : Sb_sim.Adversary.t
(** Boundary witness for Bracha at n = 4, t = 1 (corruptions + crashes
    crossing n/3). Corrupt sender 0 sends just enough of the protocol
    — init and echo to parties 1 and 2, ready to party 1 alone — that
    every honest party still accepts when all three are alive, yet
    party 1 accepts and party 2 defaults once party 3 is crashed from
    round 0. Pair with {!Sb_fault.Plan.crash}[ ~party:3 ~round:0]. *)

val eig_flip : Sb_sim.Adversary.t
(** Boundary witness for EIG at n = 4, t = 1 with all-true inputs
    ({!Sb_dist.Dist.product}[ 1.0]): corrupt party 3 equivocates its
    level-2 relay in sender 0's session (false to party 0, true to
    party 1). With everyone alive the honest relays outvote it; with
    party 2 crashed from round 1 the survivors' majorities split.
    Pair with {!Sb_fault.Plan.crash}[ ~party:2 ~round:1]. *)
