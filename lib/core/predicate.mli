(** Polynomial-time predicates R over W_{-i}, for the CR definition.

    Definition 4.3 quantifies over ALL polynomial-time predicates; an
    empirical tester necessarily checks a finite battery. The battery
    below contains every predicate the paper's proofs actually use —
    in particular the parity predicate R(Z_{-i}) = (⊕_{j≠i} Z_j = 0)
    with which Lemma 6.4 breaks Π_G — plus the natural per-coordinate
    and threshold tests. A FAIL against any battery member falsifies
    CR-independence outright; a PASS is evidence bounded by the
    battery (documented in EXPERIMENTS.md). *)

type t = {
  name : string;
  eval : bool array -> bool;
      (** Input: the announced vector with coordinate i removed,
          original order preserved. *)
}

val parity : t
(** ⊕_j z_j = 0 — the Lemma 6.4 predicate. *)

val bit : int -> t
(** z_j (position in the REDUCED vector). *)

val majority : t
val all_zero : t
val any_two_equal_adjacent : t

val battery : n:int -> t list
(** Parity, every coordinate bit of the reduced vector (n−1 of them),
    majority, all-zero, adjacent-equality. *)
