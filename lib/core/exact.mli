(** Exact (non-sampled) evaluation of the CR and G quantities, for
    protocol/adversary pairs whose announced-value distribution is
    known in closed form.

    For several executions in this repository the map from the input
    vector x to the announced vector W is a simple transformation:

    - any protocol under the passive adversary: W = x;
    - naive sequential/concurrent under the echo adversary:
      W = x with coordinate [copier] replaced by x_target;
    - Π_G under A*: W = x with the two corrupted coordinates replaced
      by (r, r ⊕ y) for a fresh uniform coin r;
    - VSS protocols under input substitution: W = x with corrupted
      coordinates replaced by the substituted values.

    Pushing the input distribution through such a transformation gives
    the EXACT announced-value distribution, from which the gap of
    Definition 4.3 (CR) and Definition 4.4 (G) can be computed to
    machine precision. The test suite uses these to calibrate the
    Monte-Carlo testers: sampled estimates must agree with the exact
    values within their confidence intervals, and experiment tables can
    cite exact constants (the 1/4 of Lemma 6.4, for instance) rather
    than estimates. *)

val push_deterministic : Sb_dist.Dist.t -> (Sb_util.Bitvec.t -> Sb_util.Bitvec.t) -> Sb_dist.Dist.t
(** Exact pushforward of the input distribution through a
    deterministic announced-value map. *)

val push_coin :
  Sb_dist.Dist.t -> (coin:bool -> Sb_util.Bitvec.t -> Sb_util.Bitvec.t) -> Sb_dist.Dist.t
(** Pushforward through a map using one fair internal coin (enough for
    Π_G under the A-star adversary). *)

val echo_map : copier:int -> target:int -> Sb_util.Bitvec.t -> Sb_util.Bitvec.t

val pi_g_astar_map : l1:int -> l2:int -> coin:bool -> Sb_util.Bitvec.t -> Sb_util.Bitvec.t
(** The announced-value map of Π_G under A* corrupting l1 < l2
    (Claim 6.6): W_{l1} = r, W_{l2} = r ⊕ (⊕_{i∉\{l1,l2\}} x_i). *)

val cr_gap : Sb_dist.Dist.t -> honest:int list -> predicates:Predicate.t list -> float
(** Exact maximum over honest parties and predicates of
    |Pr(Wᵢ=0)·Pr(R(W₋ᵢ)) − Pr(Wᵢ=0 ∧ R(W₋ᵢ))| for W drawn from the
    given announced-value distribution. *)

val cr_gap_battery : Sb_dist.Dist.t -> honest:int list -> float
(** [cr_gap] with the standard predicate battery. *)

val g_gap : Sb_dist.Dist.t -> corrupted:int list -> float
(** Exact maximum over corrupted i and pairs r, s (of non-zero
    probability) of |Pr(Wᵢ=1 | W_B̄=r) − Pr(Wᵢ=1 | W_B̄=s)| —
    Definition 4.4 verbatim. *)
